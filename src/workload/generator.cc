#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace loas {

namespace {

/** Binomial pmf table for n trials with success probability p. */
std::vector<double>
binomialPmf(double p, int n)
{
    std::vector<double> pmf(static_cast<std::size_t>(n) + 1);
    const double q = 1.0 - p;
    // pmf[c] = C(n, c) p^c q^(n-c), built incrementally.
    double value = std::pow(q, n);
    pmf[0] = value;
    for (int c = 1; c <= n; ++c) {
        value *= (static_cast<double>(n - c + 1) / c) * (p / q);
        pmf[static_cast<std::size_t>(c)] = value;
    }
    return pmf;
}

/** Sample one packed word with >= min_spikes bits set. */
TimeWord
sampleActiveWord(Rng& rng, double p, int t, int min_spikes)
{
    for (int attempt = 0; attempt < 10000; ++attempt) {
        TimeWord w = 0;
        for (int bit = 0; bit < t; ++bit)
            if (rng.bernoulli(p))
                w |= (TimeWord{1} << bit);
        if (popcount64(w) >= min_spikes)
            return w;
    }
    // Probability mass below min_spikes is overwhelming; force the
    // minimum pattern rather than looping forever.
    TimeWord w = 0;
    for (int bit = 0; bit < min_spikes; ++bit)
        w |= (TimeWord{1} << rng.uniformInt(static_cast<std::uint64_t>(t)));
    while (popcount64(w) < min_spikes)
        w |= (TimeWord{1} << rng.uniformInt(static_cast<std::uint64_t>(t)));
    return w;
}

std::int8_t
sampleNonzeroWeight(Rng& rng)
{
    const int magnitude = 1 + static_cast<int>(rng.uniformInt(127));
    return static_cast<std::int8_t>(rng.bernoulli(0.5) ? magnitude
                                                       : -magnitude);
}

} // namespace

double
truncatedBinomialMean(double p, int t, int min_spikes)
{
    if (p <= 0.0)
        return static_cast<double>(min_spikes);
    if (p >= 1.0)
        return static_cast<double>(t);
    const auto pmf = binomialPmf(p, t);
    double mass = 0.0;
    double mean = 0.0;
    for (int c = min_spikes; c <= t; ++c) {
        mass += pmf[static_cast<std::size_t>(c)];
        mean += c * pmf[static_cast<std::size_t>(c)];
    }
    if (mass <= 0.0)
        return static_cast<double>(min_spikes);
    return mean / mass;
}

double
solveFiringProbability(double target_mean, int t, int min_spikes)
{
    if (min_spikes > t)
        panic("min_spikes %d > timesteps %d", min_spikes, t);
    const double lo_mean = truncatedBinomialMean(1e-9, t, min_spikes);
    const double hi_mean = static_cast<double>(t);
    const double target = std::clamp(target_mean, lo_mean, hi_mean);
    if (target >= hi_mean - 1e-9)
        return 1.0;
    double lo = 1e-9;
    double hi = 1.0 - 1e-9;
    for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (truncatedBinomialMean(mid, t, min_spikes) < target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

namespace {

/** Sample one spike tensor off `rng` with the solved statistics. */
void
sampleSpikeTensor(Rng& rng, SpikeTensor& spikes, const LayerSpec& spec,
                  double silent, double p, int min_spikes)
{
    for (std::size_t m = 0; m < spec.m; ++m) {
        for (std::size_t k = 0; k < spec.k; ++k) {
            if (silent >= 1.0 || rng.bernoulli(silent))
                continue;
            spikes.setWord(m, k,
                           sampleActiveWord(rng, p, spec.t, min_spikes));
        }
    }
}

} // namespace

LayerData
generateLayer(const LayerSpec& spec, std::uint64_t seed, bool ft,
              std::size_t batch)
{
    if (spec.t < 1 || spec.t > kMaxTimesteps)
        fatal("layer '%s': unsupported timestep count %d",
              spec.name.c_str(), spec.t);
    if (batch < 1)
        fatal("layer '%s': batch must be >= 1", spec.name.c_str());

    Rng rng(seed ^ 0x5bd1e995u);
    LayerData data{spec, SpikeTensor(spec.m, spec.k, spec.t),
                   DenseMatrix<std::int8_t>(spec.k, spec.n, 0),
                   {}};

    const double silent =
        std::clamp(ft ? spec.silent_ratio_ft : spec.silent_ratio, 0.0, 1.0);
    const int min_spikes = ft ? std::min(2, spec.t) : 1;
    const double d0 = 1.0 - spec.spike_sparsity;

    double p = 0.0;
    if (silent < 1.0) {
        const double mean_spikes =
            d0 * static_cast<double>(spec.t) / (1.0 - silent);
        p = solveFiringProbability(mean_spikes, spec.t, min_spikes);
    }

    sampleSpikeTensor(rng, data.spikes, spec, silent, p, min_spikes);

    const double weight_density = 1.0 - spec.weight_sparsity;
    for (std::size_t k = 0; k < spec.k; ++k)
        for (std::size_t n = 0; n < spec.n; ++n)
            if (rng.bernoulli(weight_density))
                data.weights(k, n) = sampleNonzeroWeight(rng);

    // Extra batch inputs come off per-input streams derived from the
    // layer seed alone: input b is identical whatever the total batch
    // size, and input 0 + weights above never see the batch axis. The
    // mixing constant differs from generateNetwork's per-layer stride
    // so the input axis cannot alias the layer axis.
    data.extra_inputs.reserve(batch - 1);
    for (std::size_t b = 1; b < batch; ++b) {
        Rng input_rng((seed + 0xd1b54a32d192ed03ull * b) ^ 0x5bd1e995u);
        SpikeTensor input(spec.m, spec.k, spec.t);
        sampleSpikeTensor(input_rng, input, spec, silent, p, min_spikes);
        data.extra_inputs.push_back(std::move(input));
    }

    return data;
}

std::vector<LayerData>
generateNetwork(const NetworkSpec& net, std::uint64_t seed, bool ft,
                std::size_t batch)
{
    std::vector<LayerData> layers;
    layers.reserve(net.layers.size());
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
        const std::uint64_t layer_seed =
            seed + 0x9e3779b97f4a7c15ull * (l + 1);
        layers.push_back(
            generateLayer(net.layers[l], layer_seed, ft, batch));
    }
    return layers;
}

AnnLayerData
generateAnnLayer(const LayerSpec& spec, std::uint64_t seed)
{
    Rng rng(seed ^ 0xcafef00du);
    AnnLayerData data{spec, DenseMatrix<std::int8_t>(spec.m, spec.k, 0),
                      DenseMatrix<std::int8_t>(spec.k, spec.n, 0)};
    const double act_density = 1.0 - spec.spike_sparsity;
    for (std::size_t m = 0; m < spec.m; ++m)
        for (std::size_t k = 0; k < spec.k; ++k)
            if (rng.bernoulli(act_density)) {
                // ReLU outputs: positive activations only.
                data.acts(m, k) =
                    static_cast<std::int8_t>(1 + rng.uniformInt(127));
            }
    const double weight_density = 1.0 - spec.weight_sparsity;
    for (std::size_t k = 0; k < spec.k; ++k)
        for (std::size_t n = 0; n < spec.n; ++n)
            if (rng.bernoulli(weight_density))
                data.weights(k, n) = sampleNonzeroWeight(rng);
    return data;
}

} // namespace loas
