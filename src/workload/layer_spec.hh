/**
 * @file
 * Workload descriptions: per-layer GEMM shape plus the Table II sparsity
 * statistics that fully determine the non-zero structure the accelerator
 * simulators observe.
 */

#pragma once

#include <string>
#include <vector>

namespace loas {

/** One SNN layer lowered to a GEMM: A (M x K x T) times B (K x N). */
struct LayerSpec
{
    std::string name;

    int t = 4;          // timesteps
    std::size_t m = 0;  // output spatial positions
    std::size_t n = 0;  // output channels
    std::size_t k = 0;  // reduction (input channels x kernel)

    /** AvSpA-origin: fraction of zero bits in A across all timesteps. */
    double spike_sparsity = 0.0;
    /** AvSpA-packed: fraction of silent neurons. */
    double silent_ratio = 0.0;
    /** AvSpA-packed(+FT): silent fraction after fine-tuned preprocessing. */
    double silent_ratio_ft = 0.0;
    /** AvSpB: fraction of zero weights in B. */
    double weight_sparsity = 0.0;

    /** Total output neurons M*N (per timestep). */
    std::size_t outputs() const { return m * n; }

    /** Dense multiply-accumulate count per timestep (M*N*K). */
    std::size_t denseMacs() const { return m * n * k; }
};

/** A multi-layer network workload. */
struct NetworkSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    /** Unweighted layer averages, matching Table II's reporting. */
    double avgSpikeSparsity() const;
    double avgSilentRatio() const;
    double avgSilentRatioFt() const;
    double avgWeightSparsity() const;
};

} // namespace loas
