#include "workload/artifact_io.hh"

#include <memory>
#include <utility>

#include "baselines/gamma.hh"
#include "baselines/gospa.hh"
#include "baselines/sparten.hh"
#include "baselines/systolic.hh"
#include "core/loas_sim.hh"

namespace loas {
namespace artio {

namespace {

void
putBitmask(Writer& out, const Bitmask& mask)
{
    out.u64(mask.size());
    out.vec(mask.words());
}

bool
getBitmask(Reader& in, Bitmask& mask)
{
    std::uint64_t size = 0;
    std::vector<std::uint64_t> words;
    if (!in.u64(size) || !in.vec(words))
        return false;
    // Validate what Bitmask's reconstruction panics on: a corrupt file
    // must read as a cache miss, never abort the process.
    const std::size_t bits = static_cast<std::size_t>(size);
    if (words.size() != (bits + Bitmask::kWordBits - 1) /
                            Bitmask::kWordBits)
        return false;
    const std::size_t tail = bits % Bitmask::kWordBits;
    if (tail != 0 && (words.back() >> tail) != 0)
        return false;
    mask = Bitmask(bits, std::move(words));
    return true;
}

/** A stored rank table valid for `mask`, rejected like any corruption. */
bool
getRanked(Reader& in, const Bitmask& mask, RankedBitmask& ranked)
{
    std::vector<std::uint32_t> prefix;
    if (!in.vec(prefix))
        return false;
    if (prefix.size() != mask.words().size() + 1 ||
        prefix.empty() || prefix.back() != mask.popcount())
        return false;
    ranked = RankedBitmask(mask, std::move(prefix));
    return true;
}

void
putWeightFibers(Writer& out, const CompiledWeightFibers& fibers)
{
    out.u64(fibers.fibers.size());
    for (std::size_t i = 0; i < fibers.fibers.size(); ++i) {
        putBitmask(out, fibers.fibers[i].mask);
        out.vec(fibers.fibers[i].values);
        out.vec(fibers.ranked[i].prefixTable());
    }
    out.vec(fibers.meta_off);
    out.vec(fibers.val_off);
}

bool
getWeightFibers(Reader& in, CompiledWeightFibers& fibers)
{
    std::uint64_t count = 0;
    if (!in.u64(count))
        return false;
    fibers.fibers.resize(static_cast<std::size_t>(count));
    fibers.ranked.resize(fibers.fibers.size());
    for (std::size_t i = 0; i < fibers.fibers.size(); ++i) {
        if (!getBitmask(in, fibers.fibers[i].mask) ||
            !in.vec(fibers.fibers[i].values) ||
            !getRanked(in, fibers.fibers[i].mask, fibers.ranked[i]))
            return false;
    }
    if (!in.vec(fibers.meta_off) || !in.vec(fibers.val_off))
        return false;
    return fibers.meta_off.size() == fibers.fibers.size() + 1 &&
           fibers.val_off.size() == fibers.fibers.size() + 1;
}

void
putSpikeFibers(Writer& out, const CompiledSpikeFibers& fibers)
{
    out.u64(fibers.fibers.size());
    for (std::size_t i = 0; i < fibers.fibers.size(); ++i) {
        putBitmask(out, fibers.fibers[i].mask);
        out.vec(fibers.fibers[i].values);
        out.vec(fibers.ranked[i].prefixTable());
    }
    out.vec(fibers.meta_off);
    out.vec(fibers.val_off);
}

bool
getSpikeFibers(Reader& in, CompiledSpikeFibers& fibers)
{
    std::uint64_t count = 0;
    if (!in.u64(count))
        return false;
    fibers.fibers.resize(static_cast<std::size_t>(count));
    fibers.ranked.resize(fibers.fibers.size());
    for (std::size_t i = 0; i < fibers.fibers.size(); ++i) {
        if (!getBitmask(in, fibers.fibers[i].mask) ||
            !in.vec(fibers.fibers[i].values) ||
            !getRanked(in, fibers.fibers[i].mask, fibers.ranked[i]))
            return false;
    }
    if (!in.vec(fibers.meta_off) || !in.vec(fibers.val_off))
        return false;
    return fibers.meta_off.size() == fibers.fibers.size() + 1 &&
           fibers.val_off.size() == fibers.fibers.size() + 1;
}

// --- Per-family artifact payloads -----------------------------------

// Every spike-side member is stored per batch input (count-prefixed);
// the weight-side operand is stored exactly once per layer.

void
putLoas(Writer& out, const LoasCompiled& art)
{
    out.u64(art.a.size());
    for (const auto& a : art.a)
        putSpikeFibers(out, a);
    putWeightFibers(out, art.b);
}

std::shared_ptr<const CompiledArtifact>
getLoas(Reader& in)
{
    auto art = std::make_shared<LoasCompiled>();
    std::uint64_t batch = 0;
    if (!in.u64(batch) || batch == 0)
        return nullptr;
    art->a.resize(static_cast<std::size_t>(batch));
    for (auto& a : art->a)
        if (!getSpikeFibers(in, a))
            return nullptr;
    if (!getWeightFibers(in, art->b))
        return nullptr;
    return art;
}

void
putSparten(Writer& out, const SpartenCompiled& art)
{
    putWeightFibers(out, art.b);
    out.u64(art.row_masks.size());
    for (const auto& masks : art.row_masks) {
        out.u64(masks.size());
        for (const auto& mask : masks)
            putBitmask(out, mask);
    }
    // Format v3: the temporally-packed view of the same inputs (the
    // fused datapath's operand) plus its per-row dense-timeword counts.
    for (const auto& packed : art.packed)
        putSpikeFibers(out, packed);
    for (const auto& counts : art.dense_nnz)
        out.vec(counts);
}

std::shared_ptr<const CompiledArtifact>
getSparten(Reader& in)
{
    auto art = std::make_shared<SpartenCompiled>();
    std::uint64_t batch = 0;
    if (!getWeightFibers(in, art->b) || !in.u64(batch) || batch == 0)
        return nullptr;
    art->row_masks.resize(static_cast<std::size_t>(batch));
    for (auto& masks : art->row_masks) {
        std::uint64_t count = 0;
        if (!in.u64(count))
            return nullptr;
        masks.resize(static_cast<std::size_t>(count));
        for (auto& mask : masks)
            if (!getBitmask(in, mask))
                return nullptr;
    }
    art->packed.resize(static_cast<std::size_t>(batch));
    for (auto& packed : art->packed)
        if (!getSpikeFibers(in, packed))
            return nullptr;
    art->dense_nnz.resize(static_cast<std::size_t>(batch));
    for (std::size_t b = 0; b < art->dense_nnz.size(); ++b) {
        if (!in.vec(art->dense_nnz[b]) ||
            art->dense_nnz[b].size() != art->packed[b].fibers.size())
            return nullptr;
    }
    return art;
}

void
putGospa(Writer& out, const GospaCompiled& art)
{
    putWeightFibers(out, art.b);
    out.u64(art.col_spikes.size());
    for (std::size_t b = 0; b < art.col_spikes.size(); ++b) {
        out.vec(art.col_spikes[b]);
        out.u64(art.total_spikes[b]);
    }
}

std::shared_ptr<const CompiledArtifact>
getGospa(Reader& in)
{
    auto art = std::make_shared<GospaCompiled>();
    std::uint64_t batch = 0;
    if (!getWeightFibers(in, art->b) || !in.u64(batch) || batch == 0)
        return nullptr;
    art->col_spikes.resize(static_cast<std::size_t>(batch));
    art->total_spikes.resize(static_cast<std::size_t>(batch));
    for (std::size_t b = 0; b < art->col_spikes.size(); ++b)
        if (!in.vec(art->col_spikes[b]) || !in.u64(art->total_spikes[b]))
            return nullptr;
    return art;
}

void
putGamma(Writer& out, const GammaCompiled& art)
{
    putWeightFibers(out, art.b);
    out.f64(art.weight_density);
    out.u64(art.cols.size());
    for (std::size_t b = 0; b < art.cols.size(); ++b) {
        out.u64(art.total_spikes[b]);
        out.vec(art.cols[b]);
        out.vec(art.ptr[b]);
    }
}

std::shared_ptr<const CompiledArtifact>
getGamma(Reader& in)
{
    auto art = std::make_shared<GammaCompiled>();
    std::uint64_t batch = 0;
    if (!getWeightFibers(in, art->b) || !in.f64(art->weight_density) ||
        !in.u64(batch) || batch == 0)
        return nullptr;
    art->total_spikes.resize(static_cast<std::size_t>(batch));
    art->cols.resize(static_cast<std::size_t>(batch));
    art->ptr.resize(static_cast<std::size_t>(batch));
    for (std::size_t b = 0; b < art->cols.size(); ++b)
        if (!in.u64(art->total_spikes[b]) || !in.vec(art->cols[b]) ||
            !in.vec(art->ptr[b]))
            return nullptr;
    return art;
}

// Format v4: the one-shot ANN entry points folded into the two-phase
// API, so their artifacts ride the disk cache like any SNN layer.

void
putSpartenAnn(Writer& out, const SpartenAnnCompiled& art)
{
    putWeightFibers(out, art.a);
    putWeightFibers(out, art.b);
}

std::shared_ptr<const CompiledArtifact>
getSpartenAnn(Reader& in)
{
    auto art = std::make_shared<SpartenAnnCompiled>();
    if (!getWeightFibers(in, art->a) || !getWeightFibers(in, art->b))
        return nullptr;
    return art;
}

void
putGammaAnn(Writer& out, const GammaAnnCompiled& art)
{
    putWeightFibers(out, art.b);
    out.f64(art.weight_density);
    out.u64(art.nnz_acts);
    out.vec(art.cols);
    out.vec(art.ptr);
}

std::shared_ptr<const CompiledArtifact>
getGammaAnn(Reader& in)
{
    auto art = std::make_shared<GammaAnnCompiled>();
    if (!getWeightFibers(in, art->b) || !in.f64(art->weight_density) ||
        !in.u64(art->nnz_acts) || !in.vec(art->cols) ||
        !in.vec(art->ptr))
        return nullptr;
    // The CSR must be well-formed: executeAnn() walks it unchecked.
    if (art->ptr.empty() || art->ptr.front() != 0 ||
        art->ptr.back() != art->cols.size())
        return nullptr;
    for (std::size_t r = 1; r < art->ptr.size(); ++r)
        if (art->ptr[r] < art->ptr[r - 1])
            return nullptr;
    return art;
}

void
putSystolic(Writer& out, const SystolicCompiled& art)
{
    out.u64(art.spikes.size());
    for (std::size_t b = 0; b < art.spikes.size(); ++b) {
        out.u64(art.spikes[b]);
        out.u64(art.max_spikes_per_t[b]);
    }
}

std::shared_ptr<const CompiledArtifact>
getSystolic(Reader& in)
{
    auto art = std::make_shared<SystolicCompiled>();
    std::uint64_t batch = 0;
    if (!in.u64(batch) || batch == 0)
        return nullptr;
    art->spikes.resize(static_cast<std::size_t>(batch));
    art->max_spikes_per_t.resize(static_cast<std::size_t>(batch));
    for (std::size_t b = 0; b < art->spikes.size(); ++b)
        if (!in.u64(art->spikes[b]) ||
            !in.u64(art->max_spikes_per_t[b]))
            return nullptr;
    return art;
}

void
putSpec(Writer& out, const LayerSpec& spec)
{
    out.str(spec.name);
    out.i32(spec.t);
    out.u64(spec.m);
    out.u64(spec.n);
    out.u64(spec.k);
    out.f64(spec.spike_sparsity);
    out.f64(spec.silent_ratio);
    out.f64(spec.silent_ratio_ft);
    out.f64(spec.weight_sparsity);
}

bool
getSpec(Reader& in, LayerSpec& spec)
{
    std::uint64_t m = 0, n = 0, k = 0;
    const bool ok = in.str(spec.name) && in.i32(spec.t) && in.u64(m) &&
                    in.u64(n) && in.u64(k) &&
                    in.f64(spec.spike_sparsity) &&
                    in.f64(spec.silent_ratio) &&
                    in.f64(spec.silent_ratio_ft) &&
                    in.f64(spec.weight_sparsity);
    spec.m = static_cast<std::size_t>(m);
    spec.n = static_cast<std::size_t>(n);
    spec.k = static_cast<std::size_t>(k);
    return ok;
}

} // namespace

bool
serializeCompiledLayer(const CompiledLayer& layer, Writer& out)
{
    out.str(layer.family);
    putSpec(out, layer.spec);
    out.u64(layer.m);
    out.u64(layer.k);
    out.u64(layer.n);
    out.i32(layer.timesteps);
    out.u64(layer.batch);
    out.u64(layer.bytes);

    if (!layer.artifact)
        return false;
    if (layer.family == "loas")
        putLoas(out, static_cast<const LoasCompiled&>(*layer.artifact));
    else if (layer.family == "sparten-snn")
        putSparten(out,
                   static_cast<const SpartenCompiled&>(*layer.artifact));
    else if (layer.family == "gospa")
        putGospa(out,
                 static_cast<const GospaCompiled&>(*layer.artifact));
    else if (layer.family == "gamma")
        putGamma(out,
                 static_cast<const GammaCompiled&>(*layer.artifact));
    else if (layer.family == "systolic")
        putSystolic(
            out, static_cast<const SystolicCompiled&>(*layer.artifact));
    else if (layer.family == SpartenSim::kAnnFamily)
        putSpartenAnn(
            out,
            static_cast<const SpartenAnnCompiled&>(*layer.artifact));
    else if (layer.family == GammaSim::kAnnFamily)
        putGammaAnn(
            out, static_cast<const GammaAnnCompiled&>(*layer.artifact));
    else
        return false;
    return true;
}

bool
deserializeCompiledLayer(Reader& in, CompiledLayer& out)
{
    std::uint64_t m = 0, k = 0, n = 0, batch = 0, bytes = 0;
    if (!in.str(out.family) || !getSpec(in, out.spec) || !in.u64(m) ||
        !in.u64(k) || !in.u64(n) || !in.i32(out.timesteps) ||
        !in.u64(batch) || !in.u64(bytes) || batch == 0)
        return false;
    out.m = static_cast<std::size_t>(m);
    out.k = static_cast<std::size_t>(k);
    out.n = static_cast<std::size_t>(n);
    out.batch = static_cast<std::size_t>(batch);
    out.bytes = static_cast<std::size_t>(bytes);

    if (out.family == "loas")
        out.artifact = getLoas(in);
    else if (out.family == "sparten-snn")
        out.artifact = getSparten(in);
    else if (out.family == "gospa")
        out.artifact = getGospa(in);
    else if (out.family == "gamma")
        out.artifact = getGamma(in);
    else if (out.family == "systolic")
        out.artifact = getSystolic(in);
    else if (out.family == SpartenSim::kAnnFamily)
        out.artifact = getSpartenAnn(in);
    else if (out.family == GammaSim::kAnnFamily)
        out.artifact = getGammaAnn(in);
    else
        return false;
    return out.artifact != nullptr && in.ok() && in.remaining() == 0;
}

std::uint64_t
fnv1a(const char* data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace artio
} // namespace loas
