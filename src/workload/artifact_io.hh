/**
 * @file
 * Binary serialization of compiled-layer artifacts, the payload format
 * of the on-disk cache level (artifact_store.hh). Every format family
 * (LoAS, SparTen-SNN, GoSPA, Gamma, systolic) round-trips its full
 * prepare() output — fibers, CSR views, cumulative offset tables, and
 * the RankedBitmask rank tables — so a disk hit reconstructs exactly
 * what a fresh compile would have produced and execute() is
 * byte-identical either way.
 *
 * The encoding is a flat little-ceremony stream of host-endian
 * fixed-width fields and length-prefixed arrays. It is a *cache*
 * format, not an interchange format: files are only ever read back by
 * the same build family on the same machine class, and the store's
 * format-version stamp plus checksum reject anything else.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "accel/compiled_layer.hh"

namespace loas {
namespace artio {

/** Append-only buffer of fixed-width fields and arrays. */
class Writer
{
  public:
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void i32(std::int32_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    void
    str(const std::string& s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }

    /** Length-prefixed array of trivially-copyable elements. */
    template <typename T>
    void
    vec(const std::vector<T>& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        raw(v.data(), v.size() * sizeof(T));
    }

    const std::string& buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    void
    raw(const void* data, std::size_t size)
    {
        if (size != 0) // empty vectors hand out a null data()
            buf_.append(static_cast<const char*>(data), size);
    }

    std::string buf_;
};

/**
 * Bounds-checked reader over a serialized buffer. Every accessor
 * returns false once the stream is exhausted or malformed; callers
 * check ok() (or the accessor results) and treat failure as a cache
 * miss — never as an error to surface.
 */
class Reader
{
  public:
    Reader(const char* data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return ok_; }

    /** Unconsumed bytes (a fully-parsed payload ends at zero). */
    std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

    bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
    bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
    bool i32(std::int32_t& v) { return raw(&v, sizeof(v)); }
    bool f64(double& v) { return raw(&v, sizeof(v)); }

    bool
    str(std::string& s)
    {
        std::uint64_t size = 0;
        if (!u64(size) || size > remaining())
            return fail();
        s.assign(data_ + pos_, static_cast<std::size_t>(size));
        pos_ += static_cast<std::size_t>(size);
        return true;
    }

    template <typename T>
    bool
    vec(std::vector<T>& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t count = 0;
        if (!u64(count) || count > remaining() / sizeof(T))
            return fail();
        v.resize(static_cast<std::size_t>(count));
        return raw(v.data(), v.size() * sizeof(T));
    }

  private:
    bool
    raw(void* out, std::size_t size)
    {
        if (!ok_ || size > size_ - pos_)
            return fail();
        if (size != 0) // empty vectors hand out a null data()
            std::memcpy(out, data_ + pos_, size);
        pos_ += size;
        return true;
    }

    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    const char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Serialize a compiled layer (spec, shapes, family artifact) into
 * `out`. Returns false for an unknown family — the caller simply
 * skips the disk level for that artifact.
 */
bool serializeCompiledLayer(const CompiledLayer& layer, Writer& out);

/**
 * Reconstruct a compiled layer from `in`. Returns false on any
 * malformed or truncated payload (treated as a cache miss upstream).
 */
bool deserializeCompiledLayer(Reader& in, CompiledLayer& out);

/** FNV-1a 64-bit, the store's checksum and filename hash. */
std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t seed = 1469598103934665603ull);

} // namespace artio
} // namespace loas
