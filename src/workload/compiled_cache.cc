#include "workload/compiled_cache.hh"

#include <chrono>

namespace loas {

std::string
compiledLayerKey(const std::string& network, std::size_t layer_index,
                 bool ft_workload, const std::string& family,
                 int timesteps)
{
    return network + "#l" + std::to_string(layer_index) +
           (ft_workload ? "#ft" : "#plain") + "#" + family + "#t" +
           std::to_string(timesteps);
}

std::shared_ptr<const CompiledLayer>
CompiledCache::getOrCompile(const std::string& key,
                            const Compile& compile)
{
    std::shared_ptr<Slot> slot;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto& entry = slots_[key];
        if (!entry)
            entry = std::make_shared<Slot>();
        slot = entry;
    }

    // The slot mutex makes the compilation once-only: the first caller
    // compiles while any concurrent caller for the same key blocks
    // here, wakes to a filled slot, and counts a hit.
    const std::lock_guard<std::mutex> slot_lock(slot->mutex);
    if (slot->value) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        return slot->value;
    }

    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    slot->value = std::make_shared<const CompiledLayer>(compile());
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    ++stats_.entries;
    stats_.bytes += slot->value->bytes;
    stats_.compile_ms += ms;
    return slot->value;
}

CompiledCache::Stats
CompiledCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CompiledCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    stats_ = Stats{};
}

} // namespace loas
