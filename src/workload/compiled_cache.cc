#include "workload/compiled_cache.hh"

#include <cassert>
#include <chrono>
#include <iterator>

#include "common/fault.hh"
#include "workload/artifact_store.hh"

namespace loas {

std::string
compiledLayerKey(const std::string& network, std::size_t layer_index,
                 bool ft_workload, const std::string& family,
                 int timesteps, std::uint64_t seed, std::size_t batch)
{
    return network + "#l" + std::to_string(layer_index) +
           (ft_workload ? "#ft" : "#plain") + "#" + family + "#t" +
           std::to_string(timesteps) + "#s" + std::to_string(seed) +
           "#b" + std::to_string(batch);
}

CompiledCache::Stats
CompiledCache::Stats::delta(const Stats& now, const Stats& before)
{
    Stats out = now;
    out.hits -= before.hits;
    out.misses -= before.misses;
    out.disk_hits -= before.disk_hits;
    out.disk_writes -= before.disk_writes;
    out.disk_rejects -= before.disk_rejects;
    out.evictions -= before.evictions;
    out.disk_trips -= before.disk_trips;
    out.disk_tmp_swept -= before.disk_tmp_swept;
    out.compile_ms -= before.compile_ms;
    // entries / bytes / disk_degraded are gauges: the current state
    // stands.
    return out;
}

CompiledCache::~CompiledCache() = default;

CompiledCache&
CompiledCache::process()
{
    static CompiledCache instance;
    return instance;
}

void
CompiledCache::insertAccountedLocked(const std::string& key, Slot& slot)
{
    assert(!slot.accounted);
    ++stats_.entries;
    stats_.bytes += slot.value->bytes;
    live_lru_.push_front(key);
    slot.lru_it = live_lru_.begin();
    slot.accounted = true;
    slot.finished = false;
}

void
CompiledCache::eraseAccountedLocked(Slot& slot)
{
    assert(slot.accounted);
    assert(stats_.entries > 0);
    assert(stats_.bytes >= slot.value->bytes);
    --stats_.entries;
    stats_.bytes -= slot.value->bytes;
    (slot.finished ? finished_lru_ : live_lru_).erase(slot.lru_it);
    slot.accounted = false;
}

void
CompiledCache::touchLocked(const std::string& key, Slot& slot)
{
    if (!slot.accounted)
        return;
    // A hit on a finished-network entry promotes it back to the live
    // pool: something is using that network again.
    (slot.finished ? finished_lru_ : live_lru_).erase(slot.lru_it);
    live_lru_.push_front(key);
    slot.lru_it = live_lru_.begin();
    slot.finished = false;
}

void
CompiledCache::enforceBudgetLocked(const std::string& protect)
{
    while (budget_ != 0 && stats_.bytes > budget_) {
        // Finished-network entries go first, oldest first; then plain
        // LRU over the live pool, always sparing the entry whose
        // insert triggered the enforcement.
        std::string victim;
        if (!finished_lru_.empty() && finished_lru_.back() != protect)
            victim = finished_lru_.back();
        else if (finished_lru_.size() > 1)
            victim = *std::next(finished_lru_.rbegin());
        else if (!live_lru_.empty() && live_lru_.back() != protect)
            victim = live_lru_.back();
        else if (live_lru_.size() > 1)
            victim = *std::next(live_lru_.rbegin());
        else
            return; // only the protected entry remains
        const auto it = slots_.find(victim);
        assert(it != slots_.end());
        eraseAccountedLocked(*it->second);
        slots_.erase(it);
        ++stats_.evictions;
    }
}

bool
CompiledCache::diskAllowedLocked() const
{
    if (!breaker_open_)
        return true;
    // Half-open: one request past the cooldown probes the disk again.
    return std::chrono::steady_clock::now() >= breaker_retry_at_;
}

void
CompiledCache::recordDiskOutcomeLocked(bool ok, Stats* attributed)
{
    if (ok) {
        breaker_failures_ = 0;
        if (breaker_open_) {
            breaker_open_ = false;
            stats_.disk_degraded = 0;
        }
        return;
    }
    const auto cooldown = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(
            breaker_cooldown_ms_));
    if (breaker_open_) {
        // The half-open probe failed: re-arm the cooldown.
        breaker_retry_at_ = std::chrono::steady_clock::now() + cooldown;
        return;
    }
    if (breaker_threshold_ == 0 ||
        ++breaker_failures_ < breaker_threshold_)
        return;
    breaker_open_ = true;
    breaker_retry_at_ = std::chrono::steady_clock::now() + cooldown;
    ++stats_.disk_trips;
    stats_.disk_degraded = 1;
    if (attributed)
        ++attributed->disk_trips;
}

std::shared_ptr<const CompiledLayer>
CompiledCache::getOrCompile(const std::string& key,
                            const Compile& compile, Stats* attributed)
{
    std::shared_ptr<Slot> slot;
    std::shared_ptr<const ArtifactStore> disk;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto& entry = slots_[key];
        if (!entry)
            entry = std::make_shared<Slot>();
        slot = entry;
        // An open breaker holds the whole request memory-only: no
        // load, no store, until the half-open probe closes it again.
        if (disk_ && diskAllowedLocked())
            disk = disk_;
    }

    // The slot mutex makes the fill once-only: the first caller loads
    // or compiles while any concurrent caller for the same key blocks
    // here, wakes to a filled slot, and counts a hit.
    const std::lock_guard<std::mutex> slot_lock(slot->mutex);
    if (slot->value) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        if (attributed)
            ++attributed->hits;
        touchLocked(key, *slot);
        return slot->value;
    }

    // Disk level: a validated file is as good as a compile and far
    // cheaper; a rejected one (corrupt, stale version, collision)
    // falls through to recompile-and-overwrite.
    bool disk_rejected = false;
    bool disk_io_error = false;
    if (disk) {
        ArtifactStore::LoadResult loaded = disk->load(key);
        disk_rejected = loaded.rejected;
        disk_io_error = loaded.io_error;
        if (loaded.layer) {
            slot->value = std::move(loaded.layer);
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.disk_hits;
            if (attributed)
                ++attributed->disk_hits;
            recordDiskOutcomeLocked(true, attributed);
            // The slot may have been dropped by clear() while the
            // file was read; only a slot still in the table joins
            // the accounting and the LRU.
            const auto it = slots_.find(key);
            if (it != slots_.end() && it->second == slot) {
                if (fault::shouldFail(fault::Site::CacheInsert)) {
                    // Injected insert failure: serve the artifact
                    // but do not retain it — the next request for
                    // this key loads or compiles afresh.
                    slots_.erase(it);
                } else {
                    const std::uint64_t evicted_before =
                        stats_.evictions;
                    insertAccountedLocked(key, *slot);
                    enforceBudgetLocked(key);
                    if (attributed)
                        attributed->evictions +=
                            stats_.evictions - evicted_before;
                }
            }
            return slot->value;
        }
    }

    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    slot->value = std::make_shared<const CompiledLayer>(compile());
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    bool persisted = false;
    if (disk)
        persisted = disk->store(key, *slot->value);

    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    stats_.compile_ms += ms;
    if (disk_rejected)
        ++stats_.disk_rejects;
    if (persisted)
        ++stats_.disk_writes;
    if (attributed) {
        ++attributed->misses;
        attributed->compile_ms += ms;
        if (disk_rejected)
            ++attributed->disk_rejects;
        if (persisted)
            ++attributed->disk_writes;
    }
    // Feed the breaker: a failed read (I/O, not data) and the store's
    // outcome each count. Data rejections stay out of it — a stale
    // format version must overwrite, not disable the disk level.
    if (disk) {
        if (disk_io_error)
            recordDiskOutcomeLocked(false, attributed);
        recordDiskOutcomeLocked(persisted, attributed);
    }
    const auto it = slots_.find(key);
    if (it != slots_.end() && it->second == slot) {
        if (fault::shouldFail(fault::Site::CacheInsert)) {
            // Injected insert failure: serve the artifact but do not
            // retain it — the next request for this key recompiles.
            slots_.erase(it);
        } else {
            const std::uint64_t evicted_before = stats_.evictions;
            insertAccountedLocked(key, *slot);
            enforceBudgetLocked(key);
            if (attributed)
                attributed->evictions +=
                    stats_.evictions - evicted_before;
        }
    }
    return slot->value;
}

void
CompiledCache::setByteBudget(std::uint64_t budget)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget;
    enforceBudgetLocked("");
}

void
CompiledCache::setDiskDir(const std::string& dir)
{
    std::shared_ptr<const ArtifactStore> store =
        dir.empty() ? nullptr
                    : std::make_shared<const ArtifactStore>(dir);
    // Reclaim dead writers' leaked temp files while attaching; the
    // directory walk stays outside the lock so it cannot stall
    // concurrent getOrCompile traffic.
    const std::size_t swept = store ? store->sweepStaleTemps() : 0;
    const std::lock_guard<std::mutex> lock(mutex_);
    disk_ = std::move(store);
    stats_.disk_tmp_swept += swept;
    // A different disk is a different failure domain: close the
    // breaker and start counting afresh.
    breaker_failures_ = 0;
    breaker_open_ = false;
    stats_.disk_degraded = 0;
}

void
CompiledCache::setDiskBreaker(std::uint64_t threshold,
                              double cooldown_ms)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    breaker_threshold_ = threshold;
    breaker_cooldown_ms_ = cooldown_ms;
    breaker_failures_ = 0;
    breaker_open_ = false;
    stats_.disk_degraded = 0;
}

void
CompiledCache::finishNetwork(const std::string& network)
{
    const std::string prefix = network + "#";
    const std::lock_guard<std::mutex> lock(mutex_);
    // Walk MRU to LRU, moving matches so the finished list keeps the
    // same relative recency order (its back is the oldest, evicted
    // first).
    for (auto it = live_lru_.begin(); it != live_lru_.end();) {
        if (it->compare(0, prefix.size(), prefix) != 0) {
            ++it;
            continue;
        }
        Slot& slot = *slots_.at(*it);
        finished_lru_.push_back(*it);
        slot.lru_it = std::prev(finished_lru_.end());
        slot.finished = true;
        it = live_lru_.erase(it);
    }
}

CompiledCache::Stats
CompiledCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CompiledCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    live_lru_.clear();
    finished_lru_.clear();
    // One reset for counters *and* gauges: entries/bytes go to zero
    // with the table, and any compile finishing after this point sees
    // its slot gone and skips the accounting entirely, so `bytes`
    // can never drift from the sum of resident artifacts.
    stats_ = Stats{};
    // The gauge reset above also cleared disk_degraded; keep the
    // breaker state consistent with it.
    breaker_failures_ = 0;
    breaker_open_ = false;
}

} // namespace loas
