/**
 * @file
 * Synthetic dual-sparse workload synthesis. Given a LayerSpec, produce a
 * spike tensor and weight matrix whose measured statistics match the
 * spec's Table II columns: origin bit sparsity, silent-neuron ratio
 * (with or without fine-tuned preprocessing) and weight sparsity.
 *
 * The accelerators under study are data-structure-driven: cycle counts
 * and traffic depend only on the non-zero structure, which these
 * statistics determine, so calibrated synthesis stands in for the
 * paper's trained-and-pruned checkpoints (see DESIGN.md, Substitutions).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"
#include "workload/layer_spec.hh"

namespace loas {

/** Concrete data for one SNN layer. */
struct LayerData
{
    LayerSpec spec;
    SpikeTensor spikes;                 // A: M x K x T
    DenseMatrix<std::int8_t> weights;   // B: K x N
};

/** Concrete data for one ANN layer (Fig. 18 comparisons). */
struct AnnLayerData
{
    LayerSpec spec;                     // t is 1; spike_sparsity is the
                                        // activation sparsity
    DenseMatrix<std::int8_t> acts;      // M x K, int8 activations
    DenseMatrix<std::int8_t> weights;   // K x N
};

/**
 * Generate one layer. With `ft` set, the fine-tuned-preprocessing
 * statistics are used: the silent ratio rises to spec.silent_ratio_ft
 * and every remaining active neuron fires at least twice (single-spike
 * neurons are exactly what preprocessing masks).
 */
LayerData generateLayer(const LayerSpec& spec, std::uint64_t seed,
                        bool ft = false);

/** Generate every layer of a network (seed is diversified per layer). */
std::vector<LayerData> generateNetwork(const NetworkSpec& net,
                                       std::uint64_t seed, bool ft = false);

/** Generate an int8 ANN layer with the spec's activation sparsity. */
AnnLayerData generateAnnLayer(const LayerSpec& spec, std::uint64_t seed);

/**
 * Mean of a binomial(t, p) conditioned on at least `min_spikes`
 * successes. Exposed for the calibration tests.
 */
double truncatedBinomialMean(double p, int t, int min_spikes);

/**
 * Solve the per-timestep firing probability p such that the truncated
 * binomial mean equals `target_mean` (clamped to the reachable range).
 */
double solveFiringProbability(double target_mean, int t, int min_spikes);

} // namespace loas
