/**
 * @file
 * Synthetic dual-sparse workload synthesis. Given a LayerSpec, produce a
 * spike tensor and weight matrix whose measured statistics match the
 * spec's Table II columns: origin bit sparsity, silent-neuron ratio
 * (with or without fine-tuned preprocessing) and weight sparsity.
 *
 * The accelerators under study are data-structure-driven: cycle counts
 * and traffic depend only on the non-zero structure, which these
 * statistics determine, so calibrated synthesis stands in for the
 * paper's trained-and-pruned checkpoints (see DESIGN.md, Substitutions).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"
#include "workload/layer_spec.hh"

namespace loas {

/**
 * Concrete data for one SNN layer. A batched request carries B input
 * spike tensors through ONE weight matrix: `spikes` is input 0 (the
 * batch=1 tensor, byte-identical whatever the batch size) and
 * `extra_inputs` holds inputs 1..B-1, each synthesized from its own
 * seed derived from the layer seed alone — input b is the same tensor
 * whether the request batches 2 or 64.
 */
struct LayerData
{
    LayerSpec spec;
    SpikeTensor spikes;                 // A: M x K x T (input 0)
    DenseMatrix<std::int8_t> weights;   // B: K x N (shared by the batch)
    std::vector<SpikeTensor> extra_inputs;  // inputs 1..B-1

    /** Number of input tensors (>= 1). */
    std::size_t batchSize() const { return 1 + extra_inputs.size(); }

    /** Input tensor `b` of the batch (0 = `spikes`). */
    const SpikeTensor& input(std::size_t b) const
    {
        return b == 0 ? spikes : extra_inputs[b - 1];
    }
};

/** Concrete data for one ANN layer (Fig. 18 comparisons). */
struct AnnLayerData
{
    LayerSpec spec;                     // t is 1; spike_sparsity is the
                                        // activation sparsity
    DenseMatrix<std::int8_t> acts;      // M x K, int8 activations
    DenseMatrix<std::int8_t> weights;   // K x N
};

/**
 * Generate one layer. With `ft` set, the fine-tuned-preprocessing
 * statistics are used: the silent ratio rises to spec.silent_ratio_ft
 * and every remaining active neuron fires at least twice (single-spike
 * neurons are exactly what preprocessing masks).
 *
 * `batch` >= 1 adds independently-seeded extra input tensors drawn
 * from the same layer statistics; input 0 and the weights come off the
 * original RNG stream, so batch=1 output is byte-identical to before
 * the batch axis existed and the batch=1 tensors are a prefix of any
 * larger batch.
 */
LayerData generateLayer(const LayerSpec& spec, std::uint64_t seed,
                        bool ft = false, std::size_t batch = 1);

/** Generate every layer of a network (seed is diversified per layer). */
std::vector<LayerData> generateNetwork(const NetworkSpec& net,
                                       std::uint64_t seed, bool ft = false,
                                       std::size_t batch = 1);

/** Generate an int8 ANN layer with the spec's activation sparsity. */
AnnLayerData generateAnnLayer(const LayerSpec& spec, std::uint64_t seed);

/**
 * Mean of a binomial(t, p) conditioned on at least `min_spikes`
 * successes. Exposed for the calibration tests.
 */
double truncatedBinomialMean(double p, int t, int min_spikes);

/**
 * Solve the per-timestep firing probability p such that the truncated
 * binomial mean equals `target_mean` (clamped to the reachable range).
 */
double solveFiringProbability(double target_mean, int t, int min_spikes);

} // namespace loas
