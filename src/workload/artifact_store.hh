/**
 * @file
 * On-disk level of the compiled-workload cache: one file per cache key
 * under a user-chosen directory (`--cache-dir`), so repeated CLI
 * invocations, bench runs and CI jobs skip operand recompression
 * entirely.
 *
 * File format (host-endian):
 *     8 B  magic   "LOASART\0"
 *     4 B  format version (kFormatVersion; bumped on any layout change)
 *     8 B  FNV-1a checksum of the payload
 *     8 B  payload size
 *     N B  payload: cache key string, then the serialized
 *          CompiledLayer (artifact_io.hh)
 *
 * Robustness rules: every anomaly — missing file, short read, magic or
 * version mismatch, checksum failure, key mismatch (hash collision),
 * malformed payload, or an injected disk.read fault — is reported as a
 * *rejection*, never an error; the caller recompiles and overwrites.
 * Writes go to a process-unique temporary name, are fsync'd, and only
 * then renamed into place, so a crash (or ENOSPC, or a short write)
 * can never publish a torn artifact; concurrent writers and readers
 * only ever observe complete files. A writer dying between open and
 * rename orphans its temp file — sweepStaleTemps() reclaims those by
 * age, clear() unconditionally, and stats() counts the ones present.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "accel/compiled_layer.hh"

namespace loas {

/** Directory of versioned, checksummed compiled-artifact files. */
class ArtifactStore
{
  public:
    /**
     * Bump on any change to the payload layout or header fields —
     * and, just as importantly, on any *behavioral* change to a
     * prepare() implementation or to workload synthesis. A stored
     * artifact is a pure function of (layer data, family, version);
     * the version stamp is what keeps a layout-compatible but
     * semantically different artifact from being served to a newer
     * binary as if it were fresh.
     */
    static constexpr std::uint32_t kFormatVersion = 4;

    /** Filename suffix of artifact files (everything else is ignored). */
    static constexpr const char* kFileSuffix = ".loasart";

    /** Age past which an orphaned temp file counts as stale: long
     *  enough that no live writer (writes take milliseconds) can still
     *  own it, short enough that leaked space is reclaimed on the next
     *  attach rather than never. */
    static constexpr double kStaleTmpAgeSeconds = 3600.0;

    explicit ArtifactStore(std::string dir);

    const std::string& dir() const { return dir_; }

    /** Outcome of a load: at most one of layer / rejected is set. */
    struct LoadResult
    {
        /** The reconstructed layer, or null. */
        std::shared_ptr<const CompiledLayer> layer;
        /** True when a file existed but failed validation. */
        bool rejected = false;
        /**
         * True (alongside rejected) when the rejection was the I/O
         * itself failing — a short read or an injected disk.read
         * fault — rather than the *data* being stale or corrupt. The
         * cache's disk circuit breaker counts only these: a stale
         * format version must recompile-and-overwrite, not trip the
         * store into memory-only mode.
         */
        bool io_error = false;
    };

    /** Load the artifact stored for `key`, validating everything. */
    LoadResult load(const std::string& key) const;

    /**
     * Persist `layer` under `key` (atomic rename; creates the
     * directory on first use). Returns false — without raising — when
     * the family is unknown or any filesystem step fails.
     */
    bool store(const std::string& key, const CompiledLayer& layer) const;

    /** Current occupancy of the directory's artifact files. */
    struct DiskStats
    {
        std::uint64_t files = 0;
        std::uint64_t bytes = 0;
        /** Orphaned temp files (dead writers) still on disk. */
        std::uint64_t tmp_files = 0;
    };
    DiskStats stats() const;

    /**
     * Delete every artifact file *and* every leftover temp file;
     * returns how many files were removed in total.
     */
    std::size_t clear() const;

    /**
     * Remove temp files whose mtime is older than `max_age_seconds`
     * (0 sweeps them all); returns how many were removed. Live
     * writers' temps are seconds old at most, so the default age
     * (kStaleTmpAgeSeconds) can only ever reap dead writers' leaks.
     */
    std::size_t sweepStaleTemps(
        double max_age_seconds = kStaleTmpAgeSeconds) const;

    /** Full path of the file that would store `key`. */
    std::string path(const std::string& key) const;

  private:
    std::string dir_;
};

} // namespace loas
