/**
 * @file
 * Reconstructed network tables for the paper's workloads (Table II).
 *
 * The paper publishes network-average sparsities and the shapes of three
 * representative layers (A-L4, V-L8, R-L19) plus the SpikeTransformer
 * hidden feed-forward layer (T-HFF). Full per-layer shapes are
 * reconstructed from the standard CIFAR variants of each network with
 * convolutions lowered to GEMM (M = H*W, K = Cin*k*k, N = Cout); the
 * published layers are pinned exactly, and the remaining layers' sparsity
 * ramps are solved so the unweighted layer averages reproduce Table II.
 */

#pragma once

#include "workload/layer_spec.hh"

namespace loas {
namespace tables {

/** Table II representative layers (pinned to the published values). */
LayerSpec alexnetL4();
LayerSpec vgg16L8();
LayerSpec resnet19L19();
LayerSpec transformerHff();

/** Early layers used by Fig. 5 (psum traffic study). */
LayerSpec alexnetL1();
LayerSpec vgg16EarlyL8(); // VGG16-L8 alias used in Fig. 5
LayerSpec resnet19L8();

/** Full networks (Table II rows AlexNet / VGG16 / ResNet19). */
NetworkSpec alexnet();
NetworkSpec vgg16();
NetworkSpec resnet19();

/** All three networks, in paper order. */
std::vector<NetworkSpec> allNetworks();

/**
 * A VGG16 layer-spec variant with the requested weight sparsity
 * (Fig. 17's High / Medium / Low study) and timesteps.
 */
LayerSpec vgg16L8WithWeightSparsity(double weight_sparsity, int timesteps);

/**
 * Rescale a layer's temporal statistics to a different timestep count
 * (Fig. 16b / Fig. 17): origin bit-sparsity is held, silent ratio decays
 * with T as (1 - d_active)^T for the per-timestep firing probability
 * implied by the source spec, with the FT preprocessing recovering part
 * of the silent fraction as reported in Fig. 16b.
 */
LayerSpec withTimesteps(const LayerSpec& spec, int timesteps);

} // namespace tables
} // namespace loas
