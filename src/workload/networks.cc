#include "workload/networks.hh"

#include <cmath>

#include "common/logging.hh"

namespace loas {

namespace {

double
layerAverage(const std::vector<LayerSpec>& layers,
             double LayerSpec::*field)
{
    double sum = 0.0;
    for (const auto& layer : layers)
        sum += layer.*field;
    return layers.empty() ? 0.0 : sum / static_cast<double>(layers.size());
}

} // namespace

double
NetworkSpec::avgSpikeSparsity() const
{
    return layerAverage(layers, &LayerSpec::spike_sparsity);
}

double
NetworkSpec::avgSilentRatio() const
{
    return layerAverage(layers, &LayerSpec::silent_ratio);
}

double
NetworkSpec::avgSilentRatioFt() const
{
    return layerAverage(layers, &LayerSpec::silent_ratio_ft);
}

double
NetworkSpec::avgWeightSparsity() const
{
    return layerAverage(layers, &LayerSpec::weight_sparsity);
}

namespace tables {
namespace {

constexpr int kTimesteps = 4;

/** GEMM shape of one reconstructed layer. */
struct ShapeRow
{
    std::size_t m, n, k;
};

/** Network-average targets from Table II (fractions, not percent). */
struct NetworkTargets
{
    double origin;    // AvSpA-origin
    double silent;    // AvSpA-packed
    double silent_ft; // AvSpA-packed(+FT)
    double weight;    // AvSpB
};

/**
 * Build a full network around one pinned (published) layer. Non-pinned
 * origin sparsities ramp linearly with depth and are shifted so the
 * unweighted averages reproduce Table II exactly; silent ratios follow
 * from a single network-wide mean-spikes-per-active-neuron constant
 * solved from the silent-average target (see DESIGN.md section 6).
 */
NetworkSpec
buildNetwork(const std::string& name, const std::vector<ShapeRow>& shapes,
             std::size_t pinned_index, const LayerSpec& pinned,
             const NetworkTargets& targets, double ramp_lo, double ramp_hi)
{
    const std::size_t nl = shapes.size();
    if (pinned_index >= nl)
        panic("pinned index %zu outside %zu layers", pinned_index, nl);
    const double nl_d = static_cast<double>(nl);
    const double np_d = nl_d - 1.0;

    // Linear origin-sparsity ramp over non-pinned layers, then a uniform
    // shift so the layer average (including the pinned layer) matches.
    std::vector<double> origin(nl, 0.0);
    {
        std::size_t idx = 0;
        for (std::size_t l = 0; l < nl; ++l) {
            if (l == pinned_index)
                continue;
            const double frac =
                np_d > 1 ? static_cast<double>(idx) / (np_d - 1.0) : 0.0;
            origin[l] = ramp_lo + (ramp_hi - ramp_lo) * frac;
            ++idx;
        }
        double sum_np = 0.0;
        for (std::size_t l = 0; l < nl; ++l)
            if (l != pinned_index)
                sum_np += origin[l];
        const double target_np =
            targets.origin * nl_d - pinned.spike_sparsity;
        const double shift = (target_np - sum_np) / np_d;
        for (std::size_t l = 0; l < nl; ++l)
            if (l != pinned_index)
                origin[l] += shift;
    }

    // Solve the network mean-spikes-per-active-neuron mu so the silent
    // average matches: silent_l = 1 - d0_l * T / mu.
    auto solve_mu = [&](double silent_avg, double pinned_silent) {
        double sum_d0 = 0.0;
        for (std::size_t l = 0; l < nl; ++l)
            if (l != pinned_index)
                sum_d0 += 1.0 - origin[l];
        const double denom = np_d - silent_avg * nl_d + pinned_silent;
        if (denom <= 0.0)
            panic("%s: infeasible silent-average target", name.c_str());
        return kTimesteps * sum_d0 / denom;
    };
    const double mu = solve_mu(targets.silent, pinned.silent_ratio);
    const double mu_ft = solve_mu(targets.silent_ft, pinned.silent_ratio_ft);
    if (mu < 1.02 || mu > kTimesteps || mu_ft < 2.02 || mu_ft > kTimesteps) {
        panic("%s: solved mu=%.3f mu_ft=%.3f outside feasible range",
              name.c_str(), mu, mu_ft);
    }

    // Uniform weight sparsity on non-pinned layers.
    const double weight_np =
        (targets.weight * nl_d - pinned.weight_sparsity) / np_d;

    NetworkSpec net;
    net.name = name;
    for (std::size_t l = 0; l < nl; ++l) {
        if (l == pinned_index) {
            net.layers.push_back(pinned);
            continue;
        }
        LayerSpec spec;
        spec.name = name + "-L" + std::to_string(l + 1);
        spec.t = kTimesteps;
        spec.m = shapes[l].m;
        spec.n = shapes[l].n;
        spec.k = shapes[l].k;
        spec.spike_sparsity = origin[l];
        const double d0 = 1.0 - origin[l];
        spec.silent_ratio = 1.0 - d0 * kTimesteps / mu;
        spec.silent_ratio_ft = 1.0 - d0 * kTimesteps / mu_ft;
        spec.weight_sparsity = weight_np;
        if (spec.silent_ratio <= 0.0 || spec.silent_ratio_ft <= 0.0)
            panic("%s layer %zu: infeasible silent ratio", name.c_str(), l);
        net.layers.push_back(spec);
    }
    return net;
}

LayerSpec
makeSpec(const std::string& name, int t, std::size_t m, std::size_t n,
         std::size_t k, double origin, double silent, double silent_ft,
         double weight)
{
    LayerSpec spec;
    spec.name = name;
    spec.t = t;
    spec.m = m;
    spec.n = n;
    spec.k = k;
    spec.spike_sparsity = origin;
    spec.silent_ratio = silent;
    spec.silent_ratio_ft = silent_ft;
    spec.weight_sparsity = weight;
    return spec;
}

} // namespace

LayerSpec
alexnetL4()
{
    // Table II: A-L4 = (T=4, M=64, N=256, K=3456), 75.8 / 63.2(69.7) / 98.9
    return makeSpec("A-L4", 4, 64, 256, 3456, 0.758, 0.632, 0.697, 0.989);
}

LayerSpec
vgg16L8()
{
    // Table II: V-L8 = (T=4, M=16, N=512, K=2304), 88.1 / 76.5(86.8) / 96.8
    return makeSpec("V-L8", 4, 16, 512, 2304, 0.881, 0.765, 0.868, 0.968);
}

LayerSpec
resnet19L19()
{
    // Table II: R-L19 = (T=4, M=16, N=512, K=2304), 57.9 / 51.4(55.7) / 99.1
    return makeSpec("R-L19", 4, 16, 512, 2304, 0.579, 0.514, 0.557, 0.991);
}

LayerSpec
transformerHff()
{
    // Table II: T-HFF = (T=4, M=784, N=3072, K=3072), -(86.8) / 96.8.
    // Origin and non-FT silent ratio are not published; we use values
    // consistent with the published FT density (see DESIGN.md).
    return makeSpec("T-HFF", 4, 784, 3072, 3072, 0.880, 0.800, 0.868,
                    0.968);
}

LayerSpec
alexnetL1()
{
    return alexnet().layers.at(0);
}

LayerSpec
vgg16EarlyL8()
{
    return vgg16L8();
}

LayerSpec
resnet19L8()
{
    return resnet19().layers.at(7);
}

NetworkSpec
alexnet()
{
    // CIFAR AlexNet: 5 conv + 2 FC. Conv4 is the published A-L4.
    const std::vector<ShapeRow> shapes = {
        {1024, 96, 27},   // conv1 3x3x3 -> 96 @ 32x32
        {256, 256, 864},  // conv2 3x3x96 -> 256 @ 16x16
        {64, 384, 2304},  // conv3 3x3x256 -> 384 @ 8x8
        {64, 256, 3456},  // conv4 3x3x384 -> 256 @ 8x8 (= A-L4)
        {64, 256, 2304},  // conv5 3x3x256 -> 256 @ 8x8
        {1, 1024, 4096},  // fc1 256*4*4 -> 1024
        {1, 10, 1024},    // fc2 1024 -> 10
    };
    return buildNetwork("AlexNet", shapes, 3, alexnetL4(),
                        {0.812, 0.713, 0.767, 0.982}, 0.74, 0.90);
}

NetworkSpec
vgg16()
{
    // CIFAR VGG16: 13 conv + 1 FC. Conv4_1 (layer 8) is V-L8.
    const std::vector<ShapeRow> shapes = {
        {1024, 64, 27},   // conv1_1
        {1024, 64, 576},  // conv1_2
        {256, 128, 576},  // conv2_1
        {256, 128, 1152}, // conv2_2
        {64, 256, 1152},  // conv3_1
        {64, 256, 2304},  // conv3_2
        {64, 256, 2304},  // conv3_3
        {16, 512, 2304},  // conv4_1 (= V-L8)
        {16, 512, 4608},  // conv4_2
        {16, 512, 4608},  // conv4_3
        {4, 512, 4608},   // conv5_1
        {4, 512, 4608},   // conv5_2
        {4, 512, 4608},   // conv5_3
        {1, 10, 512},     // fc
    };
    return buildNetwork("VGG16", shapes, 7, vgg16L8(),
                        {0.823, 0.741, 0.796, 0.982}, 0.72, 0.88);
}

NetworkSpec
resnet19()
{
    // CIFAR ResNet19 (stem + 16 block convs + transition conv + FC).
    // The published R-L19 shape (16, 512, 2304) is the 256->512
    // transition conv at 4x4.
    const std::vector<ShapeRow> shapes = {
        {1024, 64, 27},   // stem
        {1024, 64, 576},  {1024, 64, 576},  {1024, 64, 576},
        {1024, 64, 576},  {1024, 64, 576},  {1024, 64, 576},
        {256, 128, 576},  // downsample entry
        {256, 128, 1152}, {256, 128, 1152}, {256, 128, 1152},
        {256, 128, 1152}, {256, 128, 1152},
        {64, 256, 1152},  // stage 3 entry
        {64, 256, 2304},  {64, 256, 2304},  {64, 256, 2304},
        {16, 512, 2304},  // transition conv (= R-L19)
        {1, 10, 512},     // fc
    };
    return buildNetwork("ResNet19", shapes, 17, resnet19L19(),
                        {0.686, 0.596, 0.661, 0.968}, 0.60, 0.77);
}

std::vector<NetworkSpec>
allNetworks()
{
    return {alexnet(), vgg16(), resnet19()};
}

LayerSpec
vgg16L8WithWeightSparsity(double weight_sparsity, int timesteps)
{
    LayerSpec spec = vgg16L8();
    spec.weight_sparsity = weight_sparsity;
    if (timesteps != spec.t)
        spec = withTimesteps(spec, timesteps);
    return spec;
}

LayerSpec
withTimesteps(const LayerSpec& source, int timesteps)
{
    // Behavioral fit of Fig. 16(b): holding the per-timestep firing rate,
    // a fraction of the T=4-silent population is truly dead and stays
    // silent at any T; the rest fires at a low residual rate and leaks
    // out of the silent set as T grows. FT preprocessing re-silences
    // most of the leakage (single-spike neurons), so its silent ratio
    // decays much more slowly.
    constexpr double kDeadFraction = 0.75;
    constexpr double kResidualQuiet = 0.93; // per-step stay-quiet prob
    constexpr double kDeadFractionFt = 0.92;

    LayerSpec spec = source;
    spec.name = source.name + "-T" + std::to_string(timesteps);
    spec.t = timesteps;
    const double extra = static_cast<double>(timesteps - source.t);
    if (timesteps > source.t) {
        const double decay = std::pow(kResidualQuiet, extra);
        spec.silent_ratio = source.silent_ratio *
                            (kDeadFraction + (1.0 - kDeadFraction) * decay);
        spec.silent_ratio_ft =
            source.silent_ratio_ft *
            (kDeadFractionFt + (1.0 - kDeadFractionFt) * decay);
    } else if (timesteps == 1) {
        // With a single timestep every neuron is one bit: the silent
        // ratio degenerates to the origin bit sparsity.
        spec.silent_ratio = source.spike_sparsity;
        spec.silent_ratio_ft = source.spike_sparsity;
    } else if (timesteps < source.t) {
        // Shrinking T moves the silent ratio toward the bit sparsity.
        const double w = static_cast<double>(timesteps - 1) /
                         static_cast<double>(source.t - 1);
        spec.silent_ratio = source.spike_sparsity +
                            (source.silent_ratio - source.spike_sparsity) * w;
        spec.silent_ratio_ft =
            source.spike_sparsity +
            (source.silent_ratio_ft - source.spike_sparsity) * w;
    }
    return spec;
}

} // namespace tables
} // namespace loas
