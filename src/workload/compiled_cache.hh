/**
 * @file
 * Shared compiled-workload cache. The SimEngine lowers each layer with
 * a backend's prepare() exactly once per cache key and shares the
 * resulting CompiledLayer read-only across every sweep cell of the same
 * format family — a `loas?pes=16,32,64` grid compresses its operands
 * once, not once per design.
 *
 * Keys name the workload-side identity of an artifact:
 * (network, layer index, ft-variant, format family, timesteps).
 * Hardware options are deliberately absent — prepare() output must not
 * depend on them (that is what makes a family a family) — while the
 * ft-variant component keeps `loas` and `loas-ft` apart: their layers
 * come from different preprocessing, so their artifacts must too.
 *
 * Thread safety: getOrCompile() is callable from any number of worker
 * threads. Exactly one caller compiles a given key (per-slot mutex);
 * the rest block on that slot and then share the artifact, so hit/miss
 * accounting is thread-count invariant.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "accel/compiled_layer.hh"

namespace loas {

/** Canonical cache key of one compiled layer (see file comment). */
std::string compiledLayerKey(const std::string& network,
                             std::size_t layer_index, bool ft_workload,
                             const std::string& family, int timesteps);

/** Memoizes CompiledLayer artifacts by key. */
class CompiledCache
{
  public:
    /** Aggregate accounting, readable while the cache is in use. */
    struct Stats
    {
        std::uint64_t hits = 0;
        /** Cache misses == compilations actually performed. */
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
        /** Sum of the cached artifacts' footprint estimates. */
        std::uint64_t bytes = 0;
        /** Wall time spent inside compile callbacks, summed. */
        double compile_ms = 0.0;
    };

    using Compile = std::function<CompiledLayer()>;

    /**
     * The compiled layer for `key`, compiling it via `compile` on the
     * first request. Concurrent requests for the same key block until
     * the one compilation finishes and then share its artifact.
     */
    std::shared_ptr<const CompiledLayer>
    getOrCompile(const std::string& key, const Compile& compile);

    Stats stats() const;

    /** Drop every entry and reset the statistics. */
    void clear();

  private:
    /** One key's compilation slot; its mutex serializes the compile. */
    struct Slot
    {
        std::mutex mutex;
        std::shared_ptr<const CompiledLayer> value;
    };

    mutable std::mutex mutex_;  // guards slots_ and stats_
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
    Stats stats_;
};

} // namespace loas
