/**
 * @file
 * Shared compiled-workload cache, two levels deep.
 *
 * Level 1 is an in-memory memoization table: the SimEngine lowers each
 * layer with a backend's prepare() exactly once per cache key and
 * shares the resulting CompiledLayer read-only across every sweep cell
 * of the same format family — a `loas?pes=16,32,64` grid compresses
 * its operands once, not once per cell. The level can outlive a single
 * engine run (CompiledCache::process() is one process-lifetime
 * instance) and is bounded by an optional byte budget with LRU
 * eviction; layers of finished networks (see finishNetwork()) are
 * evicted before anything a live run may still want.
 *
 * Level 2 is an optional on-disk store (setDiskDir()): artifacts are
 * persisted as versioned, checksummed binary files, so a *new process*
 * — a repeated CLI invocation, a bench run, a CI job — skips
 * recompression entirely. Disk loads fill the in-memory level; disk
 * writes happen after a compile, via atomic rename (artifact_store.hh).
 * A failing disk cannot take the cache down with it: a circuit
 * breaker (setDiskBreaker()) counts consecutive disk I/O failures and
 * trips the store into memory-only mode, probing for recovery after a
 * cooldown — the degradation ladder is disk, then memory-only, then
 * recompile, never an error surfaced to the caller.
 *
 * Keys name the workload-side identity of an artifact:
 * (network, layer index, ft-variant, format family, timesteps,
 * workload seed, batch size). Hardware options are deliberately
 * absent —
 * prepare() output must not depend on them (that is what makes a
 * family a family) — while the ft-variant component keeps `loas` and
 * `loas-ft` apart and the seed component keeps differently-synthesized
 * workloads apart once the cache outlives one engine run.
 *
 * Thread safety: every member is callable from any number of worker
 * threads. Exactly one caller compiles a given key (per-slot mutex);
 * the rest block on that slot and then share the artifact, so hit/miss
 * accounting is thread-count invariant. All byte accounting funnels
 * through one insert/erase pair, so `bytes` always equals the sum of
 * the currently-resident artifacts' footprints, across hits, misses,
 * disk loads, evictions and clear().
 *
 * Accounting comes in two views. stats() is the cache-wide total,
 * snapshotted consistently under the cache mutex. For per-request
 * accounting, getOrCompile() additionally takes an `attributed` Stats
 * the caller owns: every counter the call bumps globally is bumped
 * there too, under the same mutex, so a request's counters are exact
 * even while other engines hammer the same cache concurrently — the
 * serve daemon's per-request cache deltas come from this, not from
 * subtracting racy before/after snapshots.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "accel/compiled_layer.hh"

namespace loas {

class ArtifactStore;

/** Canonical cache key of one compiled layer (see file comment). */
std::string compiledLayerKey(const std::string& network,
                             std::size_t layer_index, bool ft_workload,
                             const std::string& family, int timesteps,
                             std::uint64_t seed, std::size_t batch = 1);

/** Memoizes CompiledLayer artifacts by key, bounded and persistent. */
class CompiledCache
{
  public:
    /** Aggregate accounting, readable while the cache is in use. */
    struct Stats
    {
        // Counters, monotonic over the cache lifetime (until clear()).
        std::uint64_t hits = 0;
        /** Cache misses == compilations actually performed. */
        std::uint64_t misses = 0;
        /** Artifacts served from the on-disk level (not recompiled). */
        std::uint64_t disk_hits = 0;
        /** Artifacts persisted to the on-disk level. */
        std::uint64_t disk_writes = 0;
        /** Corrupt / stale / mismatched disk files rejected. */
        std::uint64_t disk_rejects = 0;
        /** Entries evicted to honor the byte budget. */
        std::uint64_t evictions = 0;
        /** Times the disk circuit breaker tripped to memory-only. */
        std::uint64_t disk_trips = 0;
        /** Stale writer temp files swept when attaching the disk. */
        std::uint64_t disk_tmp_swept = 0;
        /** Wall time spent inside compile callbacks, summed. */
        double compile_ms = 0.0;

        // Gauges: current in-memory occupancy.
        std::uint64_t entries = 0;
        /** Sum of the resident artifacts' footprint estimates. */
        std::uint64_t bytes = 0;
        /** 1 while the breaker holds the disk level out of service. */
        std::uint64_t disk_degraded = 0;

        /**
         * Per-run view over a shared, long-lived cache: counters since
         * `before`, gauges from `now`. With a fresh cache (before all
         * zero) this is `now` itself, so private-cache reports are
         * unchanged.
         */
        static Stats delta(const Stats& now, const Stats& before);
    };

    using Compile = std::function<CompiledLayer()>;

    CompiledCache() = default;
    ~CompiledCache();
    CompiledCache(const CompiledCache&) = delete;
    CompiledCache& operator=(const CompiledCache&) = delete;

    /**
     * The process-lifetime instance shared by CLI/bench engine runs.
     * Configure it once (budget, disk dir) and pass it via
     * SimRequest::compiled_cache; per-run reports are delta-based.
     */
    static CompiledCache& process();

    /**
     * The compiled layer for `key`: from memory, else from the on-disk
     * level, else compiled via `compile` (and persisted when a disk
     * level is attached). Concurrent requests for the same key block
     * until the one compilation finishes and then share its artifact.
     *
     * When `attributed` is given, every counter this call adds to the
     * global stats (hits/misses/disk traffic/evictions/compile_ms) is
     * also added there, under the cache mutex — callers sharing one
     * `attributed` across their worker threads get an exact per-run
     * tally with no extra synchronization. Its gauges are left alone.
     */
    std::shared_ptr<const CompiledLayer>
    getOrCompile(const std::string& key, const Compile& compile,
                 Stats* attributed = nullptr);

    /**
     * In-memory byte budget; 0 = unlimited. When an insert pushes
     * `bytes` past the budget, least-recently-used entries are evicted
     * — finished-network entries first — until the budget holds again
     * (the just-inserted entry itself is never evicted, so one
     * over-budget artifact still caches).
     */
    void setByteBudget(std::uint64_t budget);

    /**
     * Attach (or detach, with "") the on-disk level rooted at `dir`.
     * The directory is created on first use. Attaching sweeps stale
     * writer temp files (counted in Stats::disk_tmp_swept) and resets
     * the disk circuit breaker.
     */
    void setDiskDir(const std::string& dir);

    /**
     * Disk circuit breaker: after `threshold` consecutive disk I/O
     * failures (short/injected reads, failed stores — not data
     * rejections), the disk level is taken out of service and every
     * request runs memory-only (Stats::disk_degraded = 1). After
     * `cooldown_ms` one request probes the disk again (half-open): a
     * success restores full service, a failure re-arms the cooldown.
     * threshold 0 disables the breaker. Defaults: 3 failures, 10 s.
     */
    void setDiskBreaker(std::uint64_t threshold, double cooldown_ms);

    /**
     * Demote every resident entry of `network` to evict-first status.
     * Engines call this when a run retires a network; the entries stay
     * served until the byte budget actually needs their space. A later
     * hit promotes an entry back to the live pool.
     */
    void finishNetwork(const std::string& network);

    Stats stats() const;

    /** Drop every in-memory entry and reset the statistics. */
    void clear();

  private:
    /** One key's compilation slot; its mutex serializes the compile. */
    struct Slot
    {
        std::mutex mutex;
        std::shared_ptr<const CompiledLayer> value;

        // Accounting state, guarded by CompiledCache::mutex_.
        bool accounted = false;
        bool finished = false;
        std::list<std::string>::iterator lru_it;
    };

    /** Register a filled slot in stats/LRU. Caller holds mutex_. */
    void insertAccountedLocked(const std::string& key, Slot& slot);

    /** Remove a resident entry from stats/LRU. Caller holds mutex_. */
    void eraseAccountedLocked(Slot& slot);

    /** Mark use: move to the front of the live LRU. Holds mutex_. */
    void touchLocked(const std::string& key, Slot& slot);

    /** Evict until the budget holds, sparing `protect`. Holds mutex_. */
    void enforceBudgetLocked(const std::string& protect);

    /** True when this request may touch the disk level (breaker
     *  closed, or the cooldown elapsed and this is the half-open
     *  probe). Caller holds mutex_. */
    bool diskAllowedLocked() const;

    /** Feed one disk I/O outcome to the breaker. Holds mutex_. */
    void recordDiskOutcomeLocked(bool ok, Stats* attributed);

    mutable std::mutex mutex_;  // guards everything below
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
    /** Resident keys, most-recently-used first. */
    std::list<std::string> live_lru_;
    /** Finished-network keys, evicted before anything in live_lru_. */
    std::list<std::string> finished_lru_;
    std::uint64_t budget_ = 0;
    std::shared_ptr<const ArtifactStore> disk_;
    Stats stats_;

    // Disk circuit breaker (see setDiskBreaker).
    std::uint64_t breaker_threshold_ = 3;
    double breaker_cooldown_ms_ = 10000.0;
    std::uint64_t breaker_failures_ = 0;
    bool breaker_open_ = false;
    std::chrono::steady_clock::time_point breaker_retry_at_;
};

} // namespace loas
