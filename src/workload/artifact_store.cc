#include "workload/artifact_store.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault.hh"
#include "workload/artifact_io.hh"

namespace loas {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'L', 'O', 'A', 'S', 'A', 'R', 'T', '\0'};
constexpr std::size_t kHeaderBytes =
    sizeof(kMagic) + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

/** A not-yet-renamed writer temp: "<hash>.loasart.tmp.<pid>.<n>". */
bool
isTempFile(const fs::path& path)
{
    return path.filename().string().find(
               std::string(ArtifactStore::kFileSuffix) + ".tmp.") !=
           std::string::npos;
}

/** write() the whole buffer, riding out EINTR and short writes; a
 *  short write with no errno (ENOSPC reporting as a partial count)
 *  simply continues and fails on the next call's -1. */
bool
writeAllFd(int fd, const char* data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string
ArtifactStore::path(const std::string& key) const
{
    // Keys contain '#', '?', '&' and other shell-hostile characters;
    // the filename is a hash, the key itself is validated from the
    // payload on load (collisions read as rejections, not wrong data).
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx",
                  static_cast<unsigned long long>(
                      artio::fnv1a(key.data(), key.size())));
    return (fs::path(dir_) / (std::string(name) + kFileSuffix))
        .string();
}

ArtifactStore::LoadResult
ArtifactStore::load(const std::string& key) const
{
    LoadResult result;
    std::ifstream file(path(key), std::ios::binary);
    if (!file)
        return result; // plain miss: nothing stored yet

    const auto reject = [&result] {
        result.rejected = true;
        return result;
    };
    // The file exists, so an injected read fault is an EIO mid-read:
    // the same rejection (recompile-and-overwrite) path as a real one.
    if (fault::shouldFail(fault::Site::DiskRead)) {
        result.io_error = true;
        return reject();
    }

    std::string blob((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    if (!file.good() && !file.eof()) {
        result.io_error = true;
        return reject();
    }
    if (blob.size() < kHeaderBytes)
        return reject();
    if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0)
        return reject();

    std::uint32_t version = 0;
    std::uint64_t checksum = 0, payload_size = 0;
    std::size_t pos = sizeof(kMagic);
    std::memcpy(&version, blob.data() + pos, sizeof(version));
    pos += sizeof(version);
    std::memcpy(&checksum, blob.data() + pos, sizeof(checksum));
    pos += sizeof(checksum);
    std::memcpy(&payload_size, blob.data() + pos, sizeof(payload_size));
    pos += sizeof(payload_size);

    if (version != kFormatVersion)
        return reject();
    if (payload_size != blob.size() - kHeaderBytes)
        return reject();
    if (artio::fnv1a(blob.data() + pos, payload_size) != checksum)
        return reject();

    artio::Reader reader(blob.data() + pos,
                         static_cast<std::size_t>(payload_size));
    std::string stored_key;
    if (!reader.str(stored_key) || stored_key != key)
        return reject();
    auto layer = std::make_shared<CompiledLayer>();
    if (!artio::deserializeCompiledLayer(reader, *layer))
        return reject();
    result.layer = std::move(layer);
    return result;
}

bool
ArtifactStore::store(const std::string& key,
                     const CompiledLayer& layer) const
{
    artio::Writer payload;
    payload.str(key);
    if (!artio::serializeCompiledLayer(layer, payload))
        return false;

    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return false;

    const std::string body = payload.take();
    std::string blob(kMagic, sizeof(kMagic));
    const std::uint32_t version = kFormatVersion;
    const std::uint64_t checksum =
        artio::fnv1a(body.data(), body.size());
    const std::uint64_t payload_size = body.size();
    blob.append(reinterpret_cast<const char*>(&version),
                sizeof(version));
    blob.append(reinterpret_cast<const char*>(&checksum),
                sizeof(checksum));
    blob.append(reinterpret_cast<const char*>(&payload_size),
                sizeof(payload_size));
    blob += body;

    // Unique temporary, fsync, atomic rename: readers and concurrent
    // writers only ever see complete files, the last writer wins, and
    // a crash at any point can publish the old file or nothing — never
    // a torn one. Raw fds instead of ofstream because fsync needs one,
    // and because ENOSPC/short writes must be caught on *every* step:
    // write, fsync and close can each be the first to report them.
    static std::atomic<std::uint64_t> write_counter{0};
    const std::string final_path = path(key);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(write_counter.fetch_add(1));
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    bool ok = !fault::shouldFail(fault::Site::DiskWrite) &&
              writeAllFd(fd, blob.data(), blob.size());
    ok = ok && ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
    if (!ok) {
        fs::remove(tmp_path, ec);
        return false;
    }
    if (fault::shouldFail(fault::Site::DiskRename)) {
        fs::remove(tmp_path, ec);
        return false;
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        return false;
    }
    return true;
}

ArtifactStore::DiskStats
ArtifactStore::stats() const
{
    DiskStats stats;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        if (isTempFile(entry.path())) {
            ++stats.tmp_files;
            continue;
        }
        if (entry.path().extension() != kFileSuffix)
            continue;
        // A file may vanish between iteration and stat (concurrent
        // clear/rename); skip it rather than summing the error value.
        const std::uintmax_t size = entry.file_size(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        ++stats.files;
        stats.bytes += size;
    }
    return stats;
}

std::size_t
ArtifactStore::clear() const
{
    std::size_t removed = 0;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        if (entry.path().extension() != kFileSuffix &&
            !isTempFile(entry.path()))
            continue;
        if (fs::remove(entry.path(), ec))
            ++removed;
    }
    return removed;
}

std::size_t
ArtifactStore::sweepStaleTemps(double max_age_seconds) const
{
    std::size_t removed = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    const auto max_age = std::chrono::duration_cast<
        fs::file_time_type::duration>(
        std::chrono::duration<double>(max_age_seconds));
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec) || !isTempFile(entry.path()))
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        if (now - mtime < max_age)
            continue;
        if (fs::remove(entry.path(), ec))
            ++removed;
    }
    return removed;
}

} // namespace loas
