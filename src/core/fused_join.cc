#include "core/fused_join.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

FusedJoinStats
fusedTemporalJoin(const SpikeFiber& fiber_a, const RankedBitmask& rank_a,
                  const WeightFiber& fiber_b, const RankedBitmask& rank_b,
                  int timesteps, bool collapse, std::int32_t* sums,
                  std::int64_t* correction)
{
    if (timesteps < 1 || timesteps > kMaxTimesteps)
        panic("fusedTemporalJoin: %d timesteps outside [1, %d]",
              timesteps, kMaxTimesteps);
    if (collapse && correction == nullptr)
        panic("fusedTemporalJoin: collapse path needs a correction "
              "buffer");

    const auto tcount = static_cast<std::size_t>(timesteps);
    const TimeWord all_ones =
        timesteps >= kMaxTimesteps
            ? ~TimeWord(0)
            : static_cast<TimeWord>((TimeWord(1) << timesteps) - 1);

    FusedJoinStats stats;
    stats.collapsed = collapse;

    if (!collapse) {
        // Fan-out: one add per firing timestep of each match.
        for (std::size_t t = 0; t < tcount; ++t)
            sums[t] = 0;
        forEachMatch(
            rank_a, rank_b,
            [&](std::size_t, std::size_t a_off, std::size_t b_off) {
                const std::int32_t weight = fiber_b.values[b_off];
                TimeWord w = fiber_a.values[a_off];
                stats.acc_ops += static_cast<std::uint64_t>(
                    popcount64(w));
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    sums[t] += weight;
                }
                ++stats.matches;
            });
        return stats;
    }

    // Collapse: speculate all-ones into one pseudo-accumulator, correct
    // only the zero bits. int64 intermediates — the pseudo sum can
    // exceed what any single timestep accumulates.
    std::int64_t pseudo = 0;
    for (std::size_t t = 0; t < tcount; ++t)
        correction[t] = 0;
    forEachMatch(
        rank_a, rank_b,
        [&](std::size_t, std::size_t a_off, std::size_t b_off) {
            const std::int32_t weight = fiber_b.values[b_off];
            pseudo += weight;
            ++stats.acc_ops;
            TimeWord zeros = static_cast<TimeWord>(
                ~fiber_a.values[a_off] & all_ones);
            while (zeros) {
                const int t = lowestSetBit(zeros);
                zeros &= zeros - 1;
                correction[t] += weight;
                ++stats.correction_ops;
            }
            ++stats.matches;
        });
    // One subtract per timestep materializes the full sums (Eq. 1).
    for (std::size_t t = 0; t < tcount; ++t) {
        sums[t] = static_cast<std::int32_t>(pseudo - correction[t]);
        ++stats.correction_ops;
    }
    return stats;
}

} // namespace loas
