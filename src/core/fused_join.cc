#include "core/fused_join.hh"

#include "common/logging.hh"
#include "core/kernel_dispatch.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

FusedJoinStats
fusedTemporalJoin(const SpikeFiber& fiber_a, const RankedBitmask& rank_a,
                  const WeightFiber& fiber_b, const RankedBitmask& rank_b,
                  int timesteps, bool collapse, std::int32_t* sums,
                  std::int64_t* correction)
{
    if (timesteps < 1 || timesteps > kMaxTimesteps)
        panic("fusedTemporalJoin: %d timesteps outside [1, %d]",
              timesteps, kMaxTimesteps);
    if (collapse && correction == nullptr)
        panic("fusedTemporalJoin: collapse path needs a correction "
              "buffer");
    if (rank_a.mask().size() != rank_b.mask().size())
        panic("fusedTemporalJoin over mismatched mask sizes %zu vs %zu",
              rank_a.mask().size(), rank_b.mask().size());

    const auto tcount = static_cast<std::size_t>(timesteps);
    const TimeWord all_ones =
        timesteps >= kMaxTimesteps
            ? ~TimeWord(0)
            : static_cast<TimeWord>((TimeWord(1) << timesteps) - 1);

    const auto& wa = rank_a.mask().words();
    const auto& wb = rank_b.mask().words();
    const kernels::KernelOps& kops = kernels::ops();

    FusedJoinStats stats;
    stats.collapsed = collapse;

    if (!collapse) {
        // Fan-out: one add per firing timestep of each match. The
        // dispatched kernel owns the whole loop — on vector ISAs the T
        // accumulators live in lanes and each match is one masked
        // lane-add (exact integer arithmetic, bit-identical to the
        // scalar path).
        for (std::size_t t = 0; t < tcount; ++t)
            sums[t] = 0;
        stats.matches = kops.fusedFanoutJoin(
            wa.data(), wb.data(), wa.size(), rank_a.prefixTable().data(),
            rank_b.prefixTable().data(), fiber_a.values.data(),
            fiber_b.values.data(), timesteps, sums, &stats.acc_ops);
        return stats;
    }

    // Collapse: speculate all-ones into one pseudo-accumulator, correct
    // only the zero bits. int64 intermediates — the pseudo sum can
    // exceed what any single timestep accumulates.
    std::int64_t pseudo = 0;
    for (std::size_t t = 0; t < tcount; ++t)
        correction[t] = 0;
    stats.matches = kops.fusedCollapseJoin(
        wa.data(), wb.data(), wa.size(), rank_a.prefixTable().data(),
        rank_b.prefixTable().data(), fiber_a.values.data(),
        fiber_b.values.data(), timesteps, all_ones, &pseudo, correction,
        &stats.acc_ops, &stats.correction_ops);
    // One subtract per timestep materializes the full sums (Eq. 1).
    for (std::size_t t = 0; t < tcount; ++t) {
        sums[t] = static_cast<std::int32_t>(pseudo - correction[t]);
        ++stats.correction_ops;
    }
    return stats;
}

} // namespace loas
