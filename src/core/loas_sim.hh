/**
 * @file
 * Top-level cycle-level simulator of the LoAS accelerator (Fig. 7):
 * 16 TPPEs fed by a scheduler, P-LIF units, an output compressor, and a
 * shared banked global cache over HBM. Implements the FTP dataflow of
 * Algorithm 1: every TPPE produces the full sums of one output neuron
 * for ALL timesteps in a single inner-join pass, then fires the P-LIF
 * once.
 */

#pragma once

#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "core/compressor.hh"
#include "core/inner_join.hh"
#include "core/loas_config.hh"
#include "core/scheduler.hh"
#include "mem/memory_system.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/**
 * Compiled LoAS operands: both tensors in the FTP-friendly fiber
 * format (Fig. 8) with their cumulative address-offset tables. Shared
 * by every LoAS design variant — PE count, cache size and pipelining
 * change the datapath, not the compiled format. The spike side carries
 * one compiled fiber set per batch input; the weight side is compiled
 * exactly once however large the batch.
 */
struct LoasCompiled : CompiledArtifact
{
    std::vector<CompiledSpikeFibers> a;  // per input: rows of A
    CompiledWeightFibers b;              // columns of B
};

/** LoAS accelerator model. */
class LoasSim : public Accelerator
{
  public:
    /**
     * @param config        hardware configuration (defaults: Table III)
     * @param ft_compress   enable the fine-tuned-preprocessing output
     *                      rule (discard single-spike output neurons)
     */
    explicit LoasSim(const LoasConfig& config = {},
                     bool ft_compress = false);

    std::string name() const override;

    std::string formatFamily() const override;

    CompiledLayer prepare(const LayerData& layer) const override;

    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;

    void reserveWorkers(std::size_t workers) override;

    /**
     * Output spike tensor of input 0 of the last simulated layer,
     * before output compression (for verification against the
     * functional reference).
     */
    const SpikeTensor& lastOutput() const { return last_output_; }

    const LoasConfig& config() const { return config_; }

  private:
    LoasConfig config_;
    bool ft_compress_;
    SpikeTensor last_output_;

    /**
     * Reusable working state of one execute worker. An accelerator
     * instance is driven by one thread at a time per worker slot (the
     * SimEngine gives each job a private instance; executeBatch hands
     * each batch worker its own slot), so the buffers warm up on the
     * first layer and steady-state execution performs no heap
     * allocations.
     */
    /**
     * Intra-layer parallel state (setLayerThreads > 1): phase A runs
     * the pure joins of one block of waves across transient workers,
     * each into its own slot; phase B replays the block's waves
     * serially, consuming the slots in original item order. Nested
     * inside ExecuteScratch so batch-level and intra-layer parallelism
     * compose without sharing.
     */
    struct IntraScratch
    {
        std::vector<JoinResult> slots;        // per block item
        std::vector<JoinScratch> worker_join; // per intra worker
        std::vector<WorkItem> block_items;    // block waves, flattened
        std::vector<std::size_t> wave_sizes;  // wave boundaries
    };

    struct ExecuteScratch
    {
        std::optional<MemorySystem> mem;
        JoinScratch join;
        std::vector<TimeWord> out_rows;  // m x n, row-major
        std::vector<WorkItem> items;     // current wave
        CompressResult compress;
        IntraScratch intra;
    };
    std::vector<ExecuteScratch> scratch_;
};

} // namespace loas
