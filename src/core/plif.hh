/**
 * @file
 * Parallel Leaky-Integrate-and-Fire unit (P-LIF, Fig. 7): consumes the
 * corrected full sums of one output neuron for all timesteps at once and
 * emits the packed output spike word in one shot. Internally the
 * membrane recurrence ripples through T spatially-unrolled stages, so
 * the unit has T cycles of latency but unit throughput.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "accel/op_counts.hh"
#include "snn/lif.hh"

namespace loas {

/** Result of one P-LIF firing. */
struct PlifResult
{
    TimeWord spikes = 0;
    OpCounts ops;
};

/** One P-LIF unit. */
class Plif
{
  public:
    Plif(const LifParams& params, int timesteps);

    /** Fire for one output neuron given its per-timestep full sums. */
    PlifResult fire(const std::vector<std::int32_t>& sums) const;

    /** Pipeline latency in cycles (one ripple stage per timestep). */
    std::uint64_t latency() const
    {
        return static_cast<std::uint64_t>(timesteps_);
    }

  private:
    LifParams params_;
    int timesteps_;
};

} // namespace loas
