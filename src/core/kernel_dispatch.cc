#include "core/kernel_dispatch.hh"

#include <cstdlib>

#include "common/logging.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define LOAS_KERNELS_X86 1
#else
#define LOAS_KERNELS_X86 0
#endif

namespace loas {
namespace kernels {

namespace {

// ---------------------------------------------------------------- scalar

std::uint64_t
scalarAndPopcountWords(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n)
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i] & b[i]));
    return count;
}

std::size_t
scalarFirstMatchWord(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t w, std::size_t w_end)
{
    for (; w < w_end; ++w)
        if ((a[w] & b[w]) != 0)
            return w;
    return w_end;
}

/** Low `bit` bits of a word (bit in [0, 63]). */
inline std::uint64_t
lowBits(int bit)
{
    return (std::uint64_t(1) << bit) - 1;
}

std::uint64_t
scalarFusedFanoutJoin(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n, const std::uint32_t* rank_a,
                      const std::uint32_t* rank_b,
                      const std::uint32_t* a_vals,
                      const std::int32_t* b_vals, int timesteps,
                      std::int32_t* sums, std::uint64_t* acc_ops)
{
    (void)timesteps; // The scalar fan-out indexes sums[] directly.
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    for (std::size_t w = scalarFirstMatchWord(a, b, 0, n); w < n;
         w = scalarFirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            accs += static_cast<std::uint64_t>(
                __builtin_popcount(tw));
            std::uint32_t t_bits = tw;
            while (t_bits) {
                const int t = __builtin_ctz(t_bits);
                t_bits &= t_bits - 1;
                sums[t] += weight;
            }
            ++matches;
        }
    }
    *acc_ops += accs;
    return matches;
}

std::uint64_t
scalarFusedCollapseJoin(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n, const std::uint32_t* rank_a,
                        const std::uint32_t* rank_b,
                        const std::uint32_t* a_vals,
                        const std::int32_t* b_vals, int timesteps,
                        std::uint32_t all_ones, std::int64_t* pseudo,
                        std::int64_t* correction,
                        std::uint64_t* acc_ops,
                        std::uint64_t* correction_ops)
{
    (void)timesteps; // all_ones already encodes the timestep width.
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    std::uint64_t corrs = 0;
    std::int64_t p = 0;
    for (std::size_t w = scalarFirstMatchWord(a, b, 0, n); w < n;
         w = scalarFirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            p += weight;
            ++accs;
            std::uint32_t zeros = ~tw & all_ones;
            corrs += static_cast<std::uint64_t>(
                __builtin_popcount(zeros));
            while (zeros) {
                const int t = __builtin_ctz(zeros);
                zeros &= zeros - 1;
                correction[t] += weight;
            }
            ++matches;
        }
    }
    *pseudo += p;
    *acc_ops += accs;
    *correction_ops += corrs;
    return matches;
}

#if LOAS_KERNELS_X86

// ----------------------------------------------------------------- AVX2

/**
 * Nibble-LUT popcount of one 256-bit AND lane pair: pshufb maps each
 * nibble to its bit count, _mm256_sad_epu8 horizontally sums bytes
 * into four 64-bit lanes.
 */
__attribute__((target("avx2"))) inline __m256i
avx2PopcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) std::uint64_t
avx2AndPopcountWords(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n)
{
    std::size_t i = 0;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i bytes =
            avx2PopcountBytes(_mm256_and_si256(va, vb));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i] & b[i]));
    return count;
}

__attribute__((target("avx2"))) std::size_t
avx2FirstMatchWord(const std::uint64_t* a, const std::uint64_t* b,
                   std::size_t w, std::size_t w_end)
{
    while (w + 4 <= w_end) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        const __m256i v = _mm256_and_si256(va, vb);
        if (!_mm256_testz_si256(v, v))
            break; // A hit inside this block: finish word-at-a-time.
        w += 4;
    }
    return scalarFirstMatchWord(a, b, w, w_end);
}

/**
 * AVX2 fused fan-out: the 8 timestep accumulators live in one ymm of
 * int32 lanes; each match is one emulated masked add (lane-bit test
 * against the broadcast temporal word selects which lanes take the
 * broadcast weight). Falls back to the scalar kernel above 8
 * timesteps. Integer lane adds are exact, so the result is identical
 * to the scalar fan-out loop.
 */
__attribute__((target("avx2"))) std::uint64_t
avx2FusedFanoutJoin(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n, const std::uint32_t* rank_a,
                    const std::uint32_t* rank_b,
                    const std::uint32_t* a_vals,
                    const std::int32_t* b_vals, int timesteps,
                    std::int32_t* sums, std::uint64_t* acc_ops)
{
    if (timesteps > 8)
        return scalarFusedFanoutJoin(a, b, n, rank_a, rank_b, a_vals,
                                     b_vals, timesteps, sums, acc_ops);
    const __m256i lane_bits =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    __m256i acc = _mm256_setzero_si256();
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    for (std::size_t w = avx2FirstMatchWord(a, b, 0, n); w < n;
         w = avx2FirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            accs += static_cast<std::uint64_t>(
                __builtin_popcount(tw));
            const __m256i hit = _mm256_cmpeq_epi32(
                _mm256_and_si256(
                    _mm256_set1_epi32(static_cast<int>(tw)),
                    lane_bits),
                lane_bits);
            acc = _mm256_add_epi32(
                acc,
                _mm256_and_si256(hit, _mm256_set1_epi32(weight)));
            ++matches;
        }
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int t = 0; t < timesteps; ++t)
        sums[t] = lanes[t];
    *acc_ops += accs;
    return matches;
}

/**
 * AVX2 fused collapse: the (64-bit) correction accumulators live in
 * two ymms of int64 lanes, masked by the *zero* timestep bits of each
 * match. Falls back to the scalar kernel above 8 timesteps.
 */
__attribute__((target("avx2"))) std::uint64_t
avx2FusedCollapseJoin(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n, const std::uint32_t* rank_a,
                      const std::uint32_t* rank_b,
                      const std::uint32_t* a_vals,
                      const std::int32_t* b_vals, int timesteps,
                      std::uint32_t all_ones, std::int64_t* pseudo,
                      std::int64_t* correction, std::uint64_t* acc_ops,
                      std::uint64_t* correction_ops)
{
    if (timesteps > 8)
        return scalarFusedCollapseJoin(a, b, n, rank_a, rank_b, a_vals,
                                       b_vals, timesteps, all_ones,
                                       pseudo, correction, acc_ops,
                                       correction_ops);
    const __m256i lo_bits = _mm256_setr_epi64x(1, 2, 4, 8);
    const __m256i hi_bits = _mm256_setr_epi64x(16, 32, 64, 128);
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    std::uint64_t corrs = 0;
    std::int64_t p = 0;
    for (std::size_t w = avx2FirstMatchWord(a, b, 0, n); w < n;
         w = avx2FirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            p += weight;
            ++accs;
            const std::uint32_t zeros = ~tw & all_ones;
            corrs += static_cast<std::uint64_t>(
                __builtin_popcount(zeros));
            const __m256i zv = _mm256_set1_epi64x(
                static_cast<long long>(zeros));
            const __m256i wv = _mm256_set1_epi64x(
                static_cast<long long>(weight));
            acc_lo = _mm256_add_epi64(
                acc_lo,
                _mm256_and_si256(
                    _mm256_cmpeq_epi64(
                        _mm256_and_si256(zv, lo_bits), lo_bits),
                    wv));
            acc_hi = _mm256_add_epi64(
                acc_hi,
                _mm256_and_si256(
                    _mm256_cmpeq_epi64(
                        _mm256_and_si256(zv, hi_bits), hi_bits),
                    wv));
            ++matches;
        }
    }
    alignas(32) std::int64_t lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4), acc_hi);
    for (int t = 0; t < timesteps; ++t)
        correction[t] = lanes[t];
    *pseudo += p;
    *acc_ops += accs;
    *correction_ops += corrs;
    return matches;
}

// --------------------------------------------------------------- AVX-512

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
avx512AndPopcountWords(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n)
{
    std::size_t i = 0;
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= n; i += 8) {
        const __m512i va = _mm512_loadu_si512(a + i);
        const __m512i vb = _mm512_loadu_si512(b + i);
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
    }
    // Not _mm512_reduce_add_epi64: its expansion goes through
    // _mm256_undefined_si256, which gcc 12 flags -Wuninitialized
    // (a false positive, but the CI build is -Werror).
    alignas(64) std::uint64_t acc_lanes[8];
    _mm512_storeu_si512(acc_lanes, acc);
    std::uint64_t count = 0;
    for (int l = 0; l < 8; ++l)
        count += acc_lanes[l];
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i] & b[i]));
    return count;
}

__attribute__((target("avx512f"))) std::size_t
avx512FirstMatchWord(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t w, std::size_t w_end)
{
    while (w + 8 <= w_end) {
        const __m512i va = _mm512_loadu_si512(a + w);
        const __m512i vb = _mm512_loadu_si512(b + w);
        const __mmask8 hits =
            _mm512_test_epi64_mask(va, vb); // (va & vb) != 0 per lane
        if (hits != 0)
            return w + static_cast<std::size_t>(__builtin_ctz(
                           static_cast<unsigned>(hits)));
        w += 8;
    }
    return scalarFirstMatchWord(a, b, w, w_end);
}

/**
 * AVX-512 fused fan-out: up to 16 timestep accumulators in one zmm of
 * int32 lanes; the packed temporal word is the lane mask of one
 * native masked add per match. Falls back to the scalar kernel above
 * 16 timesteps.
 */
__attribute__((target("avx512f"))) std::uint64_t
avx512FusedFanoutJoin(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n, const std::uint32_t* rank_a,
                      const std::uint32_t* rank_b,
                      const std::uint32_t* a_vals,
                      const std::int32_t* b_vals, int timesteps,
                      std::int32_t* sums, std::uint64_t* acc_ops)
{
    if (timesteps > 16)
        return scalarFusedFanoutJoin(a, b, n, rank_a, rank_b, a_vals,
                                     b_vals, timesteps, sums, acc_ops);
    __m512i acc = _mm512_setzero_si512();
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    for (std::size_t w = avx512FirstMatchWord(a, b, 0, n); w < n;
         w = avx512FirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            accs += static_cast<std::uint64_t>(
                __builtin_popcount(tw));
            acc = _mm512_mask_add_epi32(
                acc, static_cast<__mmask16>(tw), acc,
                _mm512_set1_epi32(weight));
            ++matches;
        }
    }
    alignas(64) std::int32_t lanes[16];
    _mm512_storeu_si512(lanes, acc);
    for (int t = 0; t < timesteps; ++t)
        sums[t] = lanes[t];
    *acc_ops += accs;
    return matches;
}

/**
 * AVX-512 fused collapse: up to 16 (64-bit) correction accumulators
 * in two zmms of int64 lanes, masked by the *zero* timestep bits.
 * Falls back to the scalar kernel above 16 timesteps.
 */
__attribute__((target("avx512f"))) std::uint64_t
avx512FusedCollapseJoin(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n, const std::uint32_t* rank_a,
                        const std::uint32_t* rank_b,
                        const std::uint32_t* a_vals,
                        const std::int32_t* b_vals, int timesteps,
                        std::uint32_t all_ones, std::int64_t* pseudo,
                        std::int64_t* correction,
                        std::uint64_t* acc_ops,
                        std::uint64_t* correction_ops)
{
    if (timesteps > 16)
        return scalarFusedCollapseJoin(a, b, n, rank_a, rank_b, a_vals,
                                       b_vals, timesteps, all_ones,
                                       pseudo, correction, acc_ops,
                                       correction_ops);
    __m512i acc_lo = _mm512_setzero_si512();
    __m512i acc_hi = _mm512_setzero_si512();
    std::uint64_t matches = 0;
    std::uint64_t accs = 0;
    std::uint64_t corrs = 0;
    std::int64_t p = 0;
    for (std::size_t w = avx512FirstMatchWord(a, b, 0, n); w < n;
         w = avx512FirstMatchWord(a, b, w + 1, n)) {
        const std::uint64_t aw = a[w];
        const std::uint64_t bw = b[w];
        std::uint64_t x = aw & bw;
        const std::uint32_t ra = rank_a[w];
        const std::uint32_t rb = rank_b[w];
        while (x) {
            const int bit = __builtin_ctzll(x);
            x &= x - 1;
            const std::uint64_t low = lowBits(bit);
            const std::uint32_t tw =
                a_vals[ra + static_cast<std::uint32_t>(
                                __builtin_popcountll(aw & low))];
            const std::int32_t weight =
                b_vals[rb + static_cast<std::uint32_t>(
                                __builtin_popcountll(bw & low))];
            p += weight;
            ++accs;
            const std::uint32_t zeros = ~tw & all_ones;
            corrs += static_cast<std::uint64_t>(
                __builtin_popcount(zeros));
            const __m512i wv = _mm512_set1_epi64(weight);
            acc_lo = _mm512_mask_add_epi64(
                acc_lo, static_cast<__mmask8>(zeros & 0xff), acc_lo,
                wv);
            acc_hi = _mm512_mask_add_epi64(
                acc_hi, static_cast<__mmask8>(zeros >> 8), acc_hi, wv);
            ++matches;
        }
    }
    alignas(64) std::int64_t lanes[16];
    _mm512_storeu_si512(lanes, acc_lo);
    _mm512_storeu_si512(lanes + 8, acc_hi);
    for (int t = 0; t < timesteps; ++t)
        correction[t] = lanes[t];
    *pseudo += p;
    *acc_ops += accs;
    *correction_ops += corrs;
    return matches;
}

#endif // LOAS_KERNELS_X86

constexpr KernelOps kScalarOps = {scalarAndPopcountWords,
                                  scalarFirstMatchWord,
                                  scalarFusedFanoutJoin,
                                  scalarFusedCollapseJoin};
#if LOAS_KERNELS_X86
constexpr KernelOps kAvx2Ops = {avx2AndPopcountWords,
                                avx2FirstMatchWord,
                                avx2FusedFanoutJoin,
                                avx2FusedCollapseJoin};
constexpr KernelOps kAvx512Ops = {avx512AndPopcountWords,
                                  avx512FirstMatchWord,
                                  avx512FusedFanoutJoin,
                                  avx512FusedCollapseJoin};
#endif

const KernelOps&
opsFor(Isa isa)
{
#if LOAS_KERNELS_X86
    if (isa == Isa::Avx512)
        return kAvx512Ops;
    if (isa == Isa::Avx2)
        return kAvx2Ops;
#endif
    (void)isa;
    return kScalarOps;
}

/** The mutable dispatch state: resolved lazily, overridable. */
struct Dispatch
{
    Isa isa;
    const KernelOps* table;
};

Dispatch&
dispatch()
{
    static Dispatch d = [] {
        Isa isa = bestSupportedIsa();
        if (const char* env = std::getenv("LOAS_ISA");
            env != nullptr && *env != '\0') {
            Isa requested;
            if (!parseIsa(env, &requested))
                fatal("LOAS_ISA: unknown ISA '%s' (want scalar, avx2 "
                      "or avx512)",
                      env);
            if (!isaSupported(requested))
                fatal("LOAS_ISA: this CPU does not support '%s'", env);
            isa = requested;
        }
        return Dispatch{isa, &opsFor(isa)};
    }();
    return d;
}

} // namespace

const char*
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Avx512:
        return "avx512";
    }
    return "unknown";
}

bool
isaSupported(Isa isa)
{
    if (isa == Isa::Scalar)
        return true;
#if LOAS_KERNELS_X86
    if (isa == Isa::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
    if (isa == Isa::Avx512)
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512bw") != 0 &&
               __builtin_cpu_supports("avx512vpopcntdq") != 0;
#endif
    return false;
}

Isa
bestSupportedIsa()
{
    if (isaSupported(Isa::Avx512))
        return Isa::Avx512;
    if (isaSupported(Isa::Avx2))
        return Isa::Avx2;
    return Isa::Scalar;
}

Isa
resolvedIsa()
{
    return dispatch().isa;
}

void
setIsa(Isa isa)
{
    if (!isaSupported(isa))
        fatal("--isa: this CPU does not support '%s'", isaName(isa));
    Dispatch& d = dispatch();
    d.isa = isa;
    d.table = &opsFor(isa);
}

bool
parseIsa(const std::string& name, Isa* out)
{
    if (name == "scalar")
        *out = Isa::Scalar;
    else if (name == "avx2")
        *out = Isa::Avx2;
    else if (name == "avx512")
        *out = Isa::Avx512;
    else
        return false;
    return true;
}

const KernelOps&
ops()
{
    return *dispatch().table;
}

} // namespace kernels
} // namespace loas
