#include "core/scheduler.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace loas {

Scheduler::Scheduler(std::size_t m, std::size_t n, int num_pes)
    : m_(m), n_(n), num_pes_(num_pes)
{
}

std::size_t
Scheduler::waveCount() const
{
    return ceilDiv(m_ * n_, static_cast<std::size_t>(num_pes_));
}

std::vector<WorkItem>
Scheduler::wave(std::size_t w) const
{
    std::vector<WorkItem> items;
    wave(w, items);
    return items;
}

void
Scheduler::wave(std::size_t w, std::vector<WorkItem>& out) const
{
    // Row-tile-major walk: a tile of up to num_pes rows of A stays
    // resident while every output column streams past it (good input
    // reuse for the IP dataflow); within a tile, the PEs of a wave
    // share a column and its broadcast weight fiber.
    const auto ts = static_cast<std::size_t>(num_pes_);
    const std::size_t full_tiles = m_ / ts;
    const std::size_t items_per_full_tile = n_ * ts;
    const std::size_t full_items = full_tiles * items_per_full_tile;
    const std::size_t last_rows = m_ - full_tiles * ts;

    auto item_at = [&](std::size_t i) {
        if (i < full_items) {
            const std::size_t tile = i / items_per_full_tile;
            const std::size_t r = i % items_per_full_tile;
            return WorkItem{tile * ts + r % ts, r / ts};
        }
        const std::size_t r = i - full_items;
        return WorkItem{full_tiles * ts + r % last_rows, r / last_rows};
    };

    out.clear();
    const std::size_t begin = w * ts;
    if (begin >= m_ * n_)
        return;
    const std::size_t end = std::min(begin + ts, m_ * n_);
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i)
        out.push_back(item_at(i));
}

} // namespace loas
