/**
 * @file
 * The FTP-friendly inner-join unit (Section IV-C, Figs. 9-10),
 * simulated cycle-by-cycle.
 *
 * Pipeline per 128-bit bitmask chunk:
 *  1. AND the spike and weight bitmask chunks, priority-encode the
 *     matched positions (one chunk per cycle).
 *  2. The fast prefix-sum circuit emits one matched weight offset per
 *     cycle; the weight is speculatively added to the pseudo-
 *     accumulator (assuming the spike word is all ones) and the pair
 *     (position, weight) is pushed into depth-8 FIFOs.
 *  3. The laggy prefix-sum circuit - a pipelined serial prefix chain
 *     with chunk_bits / adders cycles of latency but one chunk per
 *     cycle of throughput - produces the spike-side offsets; the check
 *     stage then drains one FIFO entry per cycle, fetching the matched
 *     packed spike word and, if it is not all ones, adding the weight
 *     into the correction accumulator of every timestep whose spike
 *     bit is zero.
 *  4. The fast path stalls when the FIFOs are full.
 *
 * The final per-timestep full sums are pseudo - correction[t], exactly
 * Eq. (1) of the paper.
 *
 * The host-side kernel is allocation-free and word-parallel: matches
 * are extracted by ANDing the operands' 64-bit mask words directly
 * (one ctz per match), both fiber offsets come from the O(1)
 * RankedBitmask prefix tables compiled in prepare(), and all working
 * state lives in a caller-owned JoinScratch reused across calls.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "accel/op_counts.hh"
#include "core/loas_config.hh"
#include "tensor/fiber.hh"
#include "tensor/ranked_bitmask.hh"

namespace loas {

/** Outcome of joining one spike fiber with one weight fiber. */
struct JoinResult
{
    /** Cycles from setup to drain for this fiber pair. */
    std::uint64_t cycles = 0;

    /** Full sums per timestep for this output neuron (Eq. 1). */
    std::vector<std::int32_t> sums;

    /** Matched (non-silent, non-zero-weight) positions. */
    std::uint64_t matches = 0;

    /** Matches whose spike word needed correction (not all ones). */
    std::uint64_t corrections = 0;

    /** Packed spike-value bytes fetched from the global cache. */
    std::uint64_t spike_value_bytes = 0;

    /** Matched positions, for the memory model's address streams. */
    std::vector<std::uint32_t> matched_offsets_a;

    OpCounts ops;
};

/**
 * Reusable working state of the join kernel. One instance per thread
 * (or per accelerator instance — the SimEngine gives every job its
 * own); after the first call its buffers are warm and steady-state
 * joins perform no heap allocations. The JoinResult returned by
 * join() aliases `result` and is overwritten by the next call.
 */
struct JoinScratch
{
    JoinResult result;
    std::vector<std::int64_t> correction;   // one slot per timestep
    std::vector<std::uint64_t> fifo;        // in-flight check ring
};

/** Cycle-level model of one TPPE's inner-join datapath. */
class InnerJoinUnit
{
  public:
    InnerJoinUnit(const InnerJoinConfig& config, int timesteps);

    /**
     * Join one fiber pair and produce the output neuron's full sums.
     * `rank_a` / `rank_b` must view the fibers' masks (compiled
     * artifacts carry them). The returned reference points into
     * `scratch` and is valid until the next join() on that scratch.
     */
    const JoinResult& join(const SpikeFiber& fiber_a,
                           const RankedBitmask& rank_a,
                           const WeightFiber& fiber_b,
                           const RankedBitmask& rank_b,
                           JoinScratch& scratch) const;

    /**
     * One-shot convenience for tests and harnesses: builds the rank
     * tables and a private scratch, then returns the result by value.
     */
    JoinResult join(const SpikeFiber& fiber_a,
                    const WeightFiber& fiber_b) const;

    const InnerJoinConfig& config() const { return config_; }
    int timesteps() const { return timesteps_; }

  private:
    InnerJoinConfig config_;
    int timesteps_;
};

} // namespace loas
