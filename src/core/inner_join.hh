/**
 * @file
 * The FTP-friendly inner-join unit (Section IV-C, Figs. 9-10),
 * simulated cycle-by-cycle.
 *
 * Pipeline per 128-bit bitmask chunk:
 *  1. AND the spike and weight bitmask chunks, priority-encode the
 *     matched positions (one chunk per cycle).
 *  2. The fast prefix-sum circuit emits one matched weight offset per
 *     cycle; the weight is speculatively added to the pseudo-
 *     accumulator (assuming the spike word is all ones) and the pair
 *     (position, weight) is pushed into depth-8 FIFOs.
 *  3. The laggy prefix-sum circuit - a pipelined serial prefix chain
 *     with chunk_bits / adders cycles of latency but one chunk per
 *     cycle of throughput - produces the spike-side offsets; the check
 *     stage then drains one FIFO entry per cycle, fetching the matched
 *     packed spike word and, if it is not all ones, adding the weight
 *     into the correction accumulator of every timestep whose spike
 *     bit is zero.
 *  4. The fast path stalls when the FIFOs are full.
 *
 * The final per-timestep full sums are pseudo - correction[t], exactly
 * Eq. (1) of the paper.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "accel/op_counts.hh"
#include "core/loas_config.hh"
#include "tensor/fiber.hh"

namespace loas {

/** Outcome of joining one spike fiber with one weight fiber. */
struct JoinResult
{
    /** Cycles from setup to drain for this fiber pair. */
    std::uint64_t cycles = 0;

    /** Full sums per timestep for this output neuron (Eq. 1). */
    std::vector<std::int32_t> sums;

    /** Matched (non-silent, non-zero-weight) positions. */
    std::uint64_t matches = 0;

    /** Matches whose spike word needed correction (not all ones). */
    std::uint64_t corrections = 0;

    /** Packed spike-value bytes fetched from the global cache. */
    std::uint64_t spike_value_bytes = 0;

    /** Matched positions, for the memory model's address streams. */
    std::vector<std::uint32_t> matched_offsets_a;

    OpCounts ops;
};

/** Cycle-level model of one TPPE's inner-join datapath. */
class InnerJoinUnit
{
  public:
    InnerJoinUnit(const InnerJoinConfig& config, int timesteps);

    /** Join one fiber pair and produce the output neuron's full sums. */
    JoinResult join(const SpikeFiber& fiber_a,
                    const WeightFiber& fiber_b) const;

    const InnerJoinConfig& config() const { return config_; }
    int timesteps() const { return timesteps_; }

  private:
    InnerJoinConfig config_;
    int timesteps_;
};

} // namespace loas
