#include "core/compressor.hh"

#include "common/bitutil.hh"

namespace loas {

OutputCompressor::OutputCompressor(int adders, bool discard_single)
    : adders_(adders), discard_single_(discard_single)
{
}

CompressResult
OutputCompressor::compress(const std::vector<TimeWord>& row) const
{
    CompressResult result;
    compressInto(row.data(), row.size(), result);
    return result;
}

void
OutputCompressor::compressInto(const TimeWord* row, std::size_t n,
                               CompressResult& out) const
{
    out.fiber.mask.reset(n);
    out.fiber.values.clear();
    out.ops = OpCounts{};
    for (std::size_t i = 0; i < n; ++i) {
        const TimeWord w = row[i];
        const int spikes = popcount64(w);
        const bool keep = discard_single_ ? spikes >= 2 : spikes >= 1;
        if (keep) {
            out.fiber.mask.set(i);
            out.fiber.values.push_back(w);
        }
        out.ops.encode_ops += 1;
    }
    out.cycles =
        ceilDiv<std::uint64_t>(n, static_cast<std::uint64_t>(adders_));
}

} // namespace loas
