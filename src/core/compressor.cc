#include "core/compressor.hh"

#include "common/bitutil.hh"

namespace loas {

OutputCompressor::OutputCompressor(int adders, bool discard_single)
    : adders_(adders), discard_single_(discard_single)
{
}

CompressResult
OutputCompressor::compress(const std::vector<TimeWord>& row) const
{
    CompressResult result;
    result.fiber.mask = Bitmask(row.size());
    for (std::size_t n = 0; n < row.size(); ++n) {
        const TimeWord w = row[n];
        const int spikes = popcount64(w);
        const bool keep = discard_single_ ? spikes >= 2 : spikes >= 1;
        if (keep) {
            result.fiber.mask.set(n);
            result.fiber.values.push_back(w);
        }
        result.ops.encode_ops += 1;
    }
    result.cycles = ceilDiv<std::uint64_t>(
        row.size(), static_cast<std::uint64_t>(adders_));
    return result;
}

} // namespace loas
