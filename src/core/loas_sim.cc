#include "core/loas_sim.hh"

#include <algorithm>
#include <memory>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/compressor.hh"
#include "core/inner_join.hh"
#include "core/plif.hh"
#include "core/scheduler.hh"
#include "mem/memory_system.hh"

namespace loas {

namespace {

// Non-overlapping address regions for the tensors of one layer.
constexpr std::uint64_t kBaseAMeta = 0x0000'0000ull;
constexpr std::uint64_t kBaseAValues = 0x4000'0000ull;
constexpr std::uint64_t kBaseBMeta = 0x8000'0000ull;
constexpr std::uint64_t kBaseBValues = 0xc000'0000ull;

} // namespace

LoasSim::LoasSim(const LoasConfig& config, bool ft_compress)
    : config_(config), ft_compress_(ft_compress)
{
}

std::string
LoasSim::name() const
{
    return ft_compress_ ? "LoAS-FT" : "LoAS";
}

std::string
LoasSim::formatFamily() const
{
    return "loas";
}

CompiledLayer
LoasSim::prepare(const LayerData& layer) const
{
    const std::size_t m = layer.spikes.rows();
    const std::size_t k = layer.spikes.cols();
    const std::size_t n = layer.weights.cols();
    if (layer.weights.rows() != k)
        fatal("layer '%s': A is %zux%zu but B is %zux%zu",
              layer.spec.name.c_str(), m, k, layer.weights.rows(), n);

    // Input operands in their compressed formats. The spike values are
    // packed T bits each (4-bit for T=4, Fig. 8); per-row regions are
    // byte-aligned but values pack within a row. Each batch input gets
    // its own compiled spike fibers; the weights compile once.
    auto art = std::make_shared<LoasCompiled>();
    art->a.reserve(layer.batchSize());
    for (std::size_t b = 0; b < layer.batchSize(); ++b)
        art->a.push_back(compileSpikeRows(layer.input(b)));
    art->b = compileWeightColumns(layer.weights);
    std::size_t bytes = art->b.footprintBytes();
    for (const auto& a : art->a)
        bytes += a.footprintBytes(layer.spec.t);
    return makeCompiledLayer(layer, formatFamily(), std::move(art),
                             bytes);
}

void
LoasSim::reserveWorkers(std::size_t workers)
{
    if (scratch_.size() < workers)
        scratch_.resize(workers);
}

RunResult
LoasSim::executeInput(const CompiledLayer& compiled, std::size_t input,
                      std::size_t worker)
{
    const auto& art = artifactAs<LoasCompiled>(compiled, formatFamily());
    if (input >= art.a.size())
        fatal("layer '%s': input %zu of a %zu-input batch",
              compiled.spec.name.c_str(), input, art.a.size());
    const int timesteps = compiled.timesteps;
    if (timesteps > config_.timesteps) {
        fatal("LoAS configured for %d timesteps, layer '%s' needs %d",
              config_.timesteps, compiled.spec.name.c_str(), timesteps);
    }
    const std::size_t m = compiled.m;
    const std::size_t n = compiled.n;

    const CompiledSpikeFibers& a = art.a[input];
    const auto& fibers_a = a.fibers;
    const auto& fibers_b = art.b.fibers;
    const auto& ranked_a = a.ranked;
    const auto& ranked_b = art.b.ranked;
    const auto& a_meta_off = a.meta_off;
    const auto& a_val_off = a.val_off;
    const auto& b_meta_off = art.b.meta_off;
    const auto& b_val_off = art.b.val_off;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= scratch_.size())
        scratch_.resize(worker + 1);
    ExecuteScratch& scratch = scratch_[worker];

    if (!scratch.mem)
        scratch.mem.emplace(config_.cache, config_.dram);
    else
        scratch.mem->reset();
    MemorySystem& mem = *scratch.mem;
    const InnerJoinUnit join_unit(config_.join, timesteps);
    const Plif plif(config_.lif, timesteps);
    const OutputCompressor compressor(config_.join.laggy_adders,
                                      ft_compress_);
    const Scheduler scheduler(m, n, config_.num_pes);

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;

    if (input == 0)
        last_output_.reset(m, n, timesteps);
    scratch.out_rows.assign(m * n, 0);
    TimeWord* const out_rows = scratch.out_rows.data();

    // With wave pipelining, the correction/drain tail of one join
    // overlaps the next wave's fill; it is re-added once at the end.
    const std::uint64_t wave_overlap =
        config_.pipelined_waves
            ? config_.join.laggyLatency() + config_.join.drain_cycles
            : 0;

    std::uint64_t dram_bytes_seen = 0;

    // Fetch + broadcast the weight fiber of each column touched by
    // one wave (one SRAM read serves all PEs on that column).
    const auto broadcastWave = [&](const WorkItem* items,
                                   std::size_t count) {
        std::uint64_t prev_col = ~0ull;
        for (std::size_t i = 0; i < count; ++i) {
            const WorkItem& item = items[i];
            if (item.n == prev_col)
                continue;
            prev_col = item.n;
            mem.read(TensorCategory::Meta, kBaseBMeta + b_meta_off[item.n],
                     fibers_b[item.n].metadataBytes());
            mem.read(TensorCategory::Weight,
                     kBaseBValues + b_val_off[item.n],
                     fibers_b[item.n].values.size());
        }
    };

    // Memory traffic, P-LIF firing, output and accounting of one item
    // given its join result; returns the item's PE cycles. The serial
    // path computes the join in place, the intra-layer path replays
    // precomputed joins through this same code in the same order — the
    // join itself never touches the memory system, so both produce the
    // identical access sequence.
    const auto processItem = [&](const WorkItem& item,
                                 const JoinResult& jr) -> std::uint64_t {
        // Stream the spike bitmask of this row into the TPPE.
        mem.read(TensorCategory::Meta, kBaseAMeta + a_meta_off[item.m],
                 fibers_a[item.m].metadataBytes());
        {
            // Matched packed spike words fetched from the global cache;
            // adjacent offsets coalesce into one access, and accesses
            // whose byte spans share a boundary cache line batch into a
            // single line walk (the offsets are sorted, so runs only
            // ever extend forward). Addresses are T-bit granular within
            // the row's value region; the recorded SRAM traffic is
            // exactly the consumed span bytes, so only the duplicate
            // boundary-line lookups disappear.
            const auto& offs = jr.matched_offsets_a;
            const auto tbits = static_cast<std::uint64_t>(timesteps);
            const std::uint64_t line = config_.cache.line_bytes;
            const std::uint64_t row_base =
                kBaseAValues + a_val_off[item.m];
            std::uint64_t run_addr = 0;    // merged walk, [addr, end)
            std::uint64_t run_end = 0;
            std::uint64_t run_payload = 0;
            for (std::size_t i = 0; i < offs.size();) {
                std::size_t j = i + 1;
                while (j < offs.size() && offs[j] == offs[j - 1] + 1)
                    ++j;
                const std::uint64_t first_bit = offs[i] * tbits;
                const std::uint64_t span_bytes = ceilDiv<std::uint64_t>(
                    (j - i) * tbits, 8);
                const std::uint64_t addr = row_base + first_bit / 8;
                if (run_payload != 0 &&
                    addr / line <= (run_end - 1) / line) {
                    run_end = std::max(run_end, addr + span_bytes);
                    run_payload += span_bytes;
                } else {
                    if (run_payload != 0)
                        mem.readRun(TensorCategory::Input, run_addr,
                                    run_end - run_addr, run_payload);
                    run_addr = addr;
                    run_end = addr + span_bytes;
                    run_payload = span_bytes;
                }
                i = j;
            }
            if (run_payload != 0)
                mem.readRun(TensorCategory::Input, run_addr,
                            run_end - run_addr, run_payload);
        }

        const PlifResult pr = plif.fire(jr.sums);
        out_rows[item.m * n + item.n] = pr.spikes;
        if (input == 0)
            last_output_.setWord(item.m, item.n, pr.spikes);

        result.ops += jr.ops;
        result.ops += pr.ops;
        return jr.cycles;
    };

    const auto finishWave = [&](std::uint64_t wave_cycles) {
        if (wave_cycles > wave_overlap + 1)
            wave_cycles -= wave_overlap;
        else
            wave_cycles = 1;
        wave_cycles += config_.wave_overhead_cycles;
        result.compute_cycles += wave_cycles;

        // Compute/memory overlap: a wave completes when both its PE
        // work and the DRAM bytes it generated are done.
        const std::uint64_t dram_now = mem.dramBytes();
        result.total_cycles += std::max(
            wave_cycles, mem.dramCyclesFor(dram_now - dram_bytes_seen));
        dram_bytes_seen = dram_now;
    };

    const int layer_threads = layerThreads();
    if (layer_threads <= 1 ||
        scheduler.totalItems() < kIntraMinItems) {
        // Serial reference path: join, traffic and accounting item by
        // item, wave by wave.
        for (std::size_t w = 0; w < scheduler.waveCount(); ++w) {
            scheduler.wave(w, scratch.items);
            const auto& items = scratch.items;
            broadcastWave(items.data(), items.size());
            std::uint64_t wave_cycles = 0;
            for (const auto& item : items) {
                const JoinResult& jr =
                    join_unit.join(fibers_a[item.m], ranked_a[item.m],
                                   fibers_b[item.n], ranked_b[item.n],
                                   scratch.join);
                wave_cycles =
                    std::max(wave_cycles, processItem(item, jr));
            }
            finishWave(wave_cycles);
        }
    } else {
        // Intra-layer parallel path. Phase A: the pure joins of one
        // block of waves fan out across transient workers, each item
        // into its own slot. Phase B: the block's waves replay
        // serially in original order — every memory-system access and
        // every cycle/ops update happens exactly as the serial path
        // would, reading join results from the slots. Block
        // boundaries are a fixed constant, so results are byte-
        // identical at any thread count.
        IntraScratch& intra = scratch.intra;
        if (intra.worker_join.size() <
            static_cast<std::size_t>(layer_threads))
            intra.worker_join.resize(
                static_cast<std::size_t>(layer_threads));
        std::size_t w = 0;
        while (w < scheduler.waveCount()) {
            intra.block_items.clear();
            intra.wave_sizes.clear();
            while (w < scheduler.waveCount() &&
                   intra.block_items.size() < kIntraBlockItems) {
                scheduler.wave(w, scratch.items);
                intra.wave_sizes.push_back(scratch.items.size());
                intra.block_items.insert(intra.block_items.end(),
                                         scratch.items.begin(),
                                         scratch.items.end());
                ++w;
            }
            if (intra.slots.size() < intra.block_items.size())
                intra.slots.resize(intra.block_items.size());
            parallelForWorkers(
                intra.block_items.size(), layer_threads,
                [&](std::size_t intra_worker, std::size_t i) {
                    const WorkItem& item = intra.block_items[i];
                    intra.slots[i] = join_unit.join(
                        fibers_a[item.m], ranked_a[item.m],
                        fibers_b[item.n], ranked_b[item.n],
                        intra.worker_join[intra_worker]);
                });
            std::size_t cursor = 0;
            for (const std::size_t wave_size : intra.wave_sizes) {
                broadcastWave(intra.block_items.data() + cursor,
                              wave_size);
                std::uint64_t wave_cycles = 0;
                for (std::size_t i = 0; i < wave_size; ++i)
                    wave_cycles = std::max(
                        wave_cycles,
                        processItem(intra.block_items[cursor + i],
                                    intra.slots[cursor + i]));
                finishWave(wave_cycles);
                cursor += wave_size;
            }
        }
    }

    // Drain the overlapped tail of the final wave, then the P-LIF
    // pipeline.
    result.compute_cycles += wave_overlap + plif.latency();
    result.total_cycles += wave_overlap + plif.latency();

    // Output compression and write-back. Compression overlaps with
    // compute except for the final row's sweep.
    std::uint64_t last_row_cycles = 0;
    for (std::size_t row = 0; row < m; ++row) {
        compressor.compressInto(out_rows + row * n, n,
                                scratch.compress);
        const CompressResult& cr = scratch.compress;
        result.ops += cr.ops;
        last_row_cycles = cr.cycles;
        // Spike words enter the compressor buffer, the compressed fiber
        // leaves for DRAM.
        mem.scratchWrite(TensorCategory::Output,
                         ceilDiv<std::uint64_t>(
                             n * static_cast<std::size_t>(timesteps), 8));
        mem.streamWrite(TensorCategory::Meta, cr.fiber.metadataBytes());
        mem.streamWrite(TensorCategory::Output,
                        ceilDiv<std::uint64_t>(
                            cr.fiber.values.size() *
                                static_cast<std::size_t>(timesteps),
                            8));
    }
    result.compute_cycles += last_row_cycles;

    mem.flushCache();
    const std::uint64_t tail_bytes = mem.dramBytes() - dram_bytes_seen;
    result.total_cycles +=
        std::max(last_row_cycles, mem.dramCyclesFor(tail_bytes));

    result.dram_cycles = mem.dramCycles();
    result.traffic = mem.stats();
    result.cache_hits = mem.cacheHits();
    result.cache_misses = mem.cacheMisses();
    return result;
}


namespace {

LoasConfig
loasConfigFromSpec(OptionReader& opts)
{
    LoasConfig config;
    config.timesteps = opts.getInt("t", config.timesteps);
    config.num_pes = opts.getInt("pes", config.num_pes);
    config.join.chunk_bits = static_cast<std::size_t>(
        opts.getInt("chunk", static_cast<int>(config.join.chunk_bits)));
    config.pipelined_waves =
        opts.getBool("pipelined", config.pipelined_waves);
    config.cache.size_bytes =
        static_cast<std::uint64_t>(opts.getInt(
            "cache_kb",
            static_cast<int>(config.cache.size_bytes / 1024))) *
        1024;
    // Table III: 128 GB/s at 800 MHz is 160 bytes per cycle.
    config.dram.bytes_per_cycle =
        opts.getDouble("dram_gbps",
                       config.dram.bytes_per_cycle * 800.0e6 / 1.0e9,
                       1.0, 8192.0) *
        1.0e9 / 800.0e6;
    return config;
}

const std::vector<std::string> kLoasOptions = {
    "t", "pes", "chunk", "pipelined", "cache_kb", "dram_gbps"};

const RegisterAccelerator register_loas(
    "loas",
    {"LoAS fully temporal-parallel dataflow",
     kLoasOptions,
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         const LoasConfig config = loasConfigFromSpec(opts);
         opts.finish();
         return std::make_unique<LoasSim>(config);
     }});

const RegisterAccelerator register_loas_ft(
    "loas-ft",
    {"LoAS with fine-tuned preprocessing",
     kLoasOptions,
     /*ft_workload=*/true, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         const LoasConfig config = loasConfigFromSpec(opts);
         opts.finish();
         return std::make_unique<LoasSim>(config, /*ft_compress=*/true);
     }});

} // namespace
} // namespace loas
