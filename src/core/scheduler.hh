/**
 * @file
 * Work scheduler: distributes output neurons across the TPPEs
 * (Section IV-D). Each TPPE produces one output neuron per wave; the
 * weight fiber of a column is broadcast to every TPPE working on that
 * column through the swizzle-switch crossbar. When a layer's M is
 * smaller than the PE count, one wave spans several consecutive
 * columns so the array stays utilized.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace loas {

/** One unit of PE work: produce output neuron (m, n). */
struct WorkItem
{
    std::size_t m;
    std::size_t n;
};

/** Static wave schedule over an M x N output space. */
class Scheduler
{
  public:
    Scheduler(std::size_t m, std::size_t n, int num_pes);

    /** Number of waves needed. */
    std::size_t waveCount() const;

    /** The work items of wave w (at most num_pes of them). */
    std::vector<WorkItem> wave(std::size_t w) const;

    /**
     * In-place variant for execute loops: clears `out` and fills it
     * with wave w's items, reusing its capacity so steady-state waves
     * allocate nothing.
     */
    void wave(std::size_t w, std::vector<WorkItem>& out) const;

    /** Total output neurons. */
    std::size_t totalItems() const { return m_ * n_; }

    int numPes() const { return num_pes_; }

  private:
    std::size_t m_;
    std::size_t n_;
    int num_pes_;
};

} // namespace loas
