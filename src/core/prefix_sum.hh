/**
 * @file
 * The two prefix-sum circuits of the FTP-friendly inner join
 * (Section IV-C, Fig. 9).
 *
 * The fast circuit is a tree prefix-sum over the full chunk that
 * produces one matched offset per cycle. The laggy circuit is a small
 * group of adders that sweeps the chunk sequentially and is only ready
 * after chunk_bits / adders cycles; it exists because the spike operand
 * of an SNN join does not need to be known at accumulate time, only at
 * correction time.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/bitmask.hh"

namespace loas {

/** Functional helper shared by both circuits. */
namespace prefix_sum {

/**
 * Offsets (ranks) of the given positions within `mask`: the index of
 * each position's value inside the fiber's value array.
 */
std::vector<std::uint32_t> offsets(const Bitmask& mask,
                                   const std::vector<std::uint32_t>&
                                       positions);

} // namespace prefix_sum

/** Single-cycle tree prefix-sum circuit model. */
class FastPrefixSum
{
  public:
    /** Latency in cycles to produce one offset. */
    static constexpr std::uint64_t kLatency = 1;
};

/** Laggy prefix-sum circuit model (Fig. 9, left). */
class LaggyPrefixSum
{
  public:
    LaggyPrefixSum(std::size_t chunk_bits, int adders)
        : chunk_bits_(chunk_bits), adders_(adders)
    {
    }

    /** Cycles until the chunk's offsets are all available. */
    std::uint64_t
    readyLatency() const
    {
        return (chunk_bits_ + static_cast<std::size_t>(adders_) - 1) /
               static_cast<std::size_t>(adders_);
    }

    std::size_t chunkBits() const { return chunk_bits_; }
    int adders() const { return adders_; }

  private:
    std::size_t chunk_bits_;
    int adders_;
};

} // namespace loas
