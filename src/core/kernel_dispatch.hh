/**
 * @file
 * Runtime-dispatched SIMD kernel layer.
 *
 * The word-parallel join kernels (PR 4) and the fused temporal join
 * (PR 8) are scalar-64-bit: one AND, one popcount, one ctz fan-out per
 * stored word. On AVX2/AVX-512 hosts the hot inner loops — scanning
 * for the next non-zero AND word and counting matched bits — can run
 * 4–8 words per instruction. This layer picks an instruction set once
 * per process (cpuid at first use, overridable with `--isa` or
 * `$LOAS_ISA`) and exposes the two primitives every join kernel is
 * built from:
 *
 *  - andPopcountWords(a, b, n): popcount of the pairwise AND.
 *  - firstMatchWord(a, b, w, w_end): index of the first word in
 *    [w, w_end) whose AND is non-zero, or w_end.
 *
 * plus the two whole-loop fused temporal-join kernels
 * (fusedFanoutJoin / fusedCollapseJoin) behind fusedTemporalJoin(),
 * where the per-match temporal fan-out itself is vectorized: the T
 * accumulators live in vector lanes and each match lands as one
 * masked lane-add keyed by its packed temporal word.
 *
 * Bit-identity contract: the vector paths may only (a) skip words the
 * scalar loop would have skipped one at a time, and (b) reorder
 * *exact integer* additions across accumulator lanes — each lane
 * still receives the same multiset of adds in the original match
 * order, and two's-complement addition has no reassociation hazard.
 * Rank lookups, value gathers, FIFO/stall modelling and every other
 * per-match action stay on the scalar path in the original match
 * order, so the vector paths can never change a RunResult.
 * tests/test_kernel_dispatch.cc and the golden identity matrix
 * enforce this across every supported ISA.
 *
 * Dispatch cost contract: resolution is a function-local static, so
 * steady state is one load of a function-pointer table per call site.
 * No allocation, no locks after first use — the zero-alloc execute()
 * gate (CI) runs through this layer.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace loas {
namespace kernels {

/** Instruction sets the dispatcher can select, weakest first. */
enum class Isa : int
{
    Scalar = 0, ///< Portable 64-bit words; the reference path.
    Avx2 = 1,   ///< 256-bit AND/testz scan, pshufb-LUT popcount.
    Avx512 = 2, ///< 512-bit scan; needs F+BW+VPOPCNTDQ.
};

/** The dispatched primitives. All pointers are to 64-bit words. */
struct KernelOps
{
    /** popcount(a[i] & b[i]) summed over i in [0, n). */
    std::uint64_t (*andPopcountWords)(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t n);

    /** Smallest i in [w, w_end) with (a[i] & b[i]) != 0, else
     *  w_end. */
    std::size_t (*firstMatchWord)(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t w,
                                  std::size_t w_end);

    /**
     * Fused temporal fan-out join over the whole word range [0, n):
     * for every bit set in a[w] & b[w], adds b_vals[b_off] into
     * sums[t] for each set timestep bit t of the packed temporal word
     * a_vals[a_off], both offsets derived from the per-word rank
     * tables (words + 1 entries each). `sums` must hold `timesteps`
     * zeroed slots; temporal words must have no bits at or above
     * `timesteps`. Adds the popcount of every matched temporal word
     * into *acc_ops and returns the match count. Vector paths keep
     * the accumulators in lanes (one masked lane-add per match) up to
     * an ISA-specific timestep width and fall back to the scalar
     * kernel above it — results are identical either way.
     */
    std::uint64_t (*fusedFanoutJoin)(
        const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
        const std::uint32_t* rank_a, const std::uint32_t* rank_b,
        const std::uint32_t* a_vals, const std::int32_t* b_vals,
        int timesteps, std::int32_t* sums, std::uint64_t* acc_ops);

    /**
     * Fused collapse join ("Collapse or Preserve"): per match adds
     * the weight into *pseudo and into correction[t] (64-bit lanes,
     * `timesteps` zeroed slots) for every *zero* timestep bit within
     * `all_ones`. Adds one acc op per match and one correction op per
     * zero bit; returns the match count. The final per-timestep
     * materialization (pseudo - correction[t]) stays with the caller.
     */
    std::uint64_t (*fusedCollapseJoin)(
        const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
        const std::uint32_t* rank_a, const std::uint32_t* rank_b,
        const std::uint32_t* a_vals, const std::int32_t* b_vals,
        int timesteps, std::uint32_t all_ones, std::int64_t* pseudo,
        std::int64_t* correction, std::uint64_t* acc_ops,
        std::uint64_t* correction_ops);
};

/** The spec-string name of `isa` ("scalar", "avx2", "avx512"). */
const char* isaName(Isa isa);

/** True when the running CPU can execute `isa`'s kernels. */
bool isaSupported(Isa isa);

/** The strongest ISA the running CPU supports. */
Isa bestSupportedIsa();

/**
 * The ISA in effect: the first call resolves `$LOAS_ISA` if set
 * (panicking on an unknown or unsupported name), else
 * bestSupportedIsa(), and later calls return the same choice unless
 * setIsa() intervenes.
 */
Isa resolvedIsa();

/**
 * Override the resolved ISA (CLI `--isa`, tests). Panics when the
 * running CPU does not support `isa`. Not thread-safe against
 * concurrent joins: select before executing, as the CLI does.
 */
void setIsa(Isa isa);

/**
 * Parse "scalar" / "avx2" / "avx512" (as in `--isa` and `$LOAS_ISA`).
 * Returns false on an unknown name.
 */
bool parseIsa(const std::string& name, Isa* out);

/** The dispatch table for the resolved ISA. */
const KernelOps& ops();

} // namespace kernels
} // namespace loas
