/**
 * @file
 * Output spike compressor (Section IV-D): collects the output spike
 * words of one row of C, discards silent output neurons (and, with the
 * fine-tuned preprocessing enabled, neurons firing only once) and emits
 * the compressed FTP fiber. An inverted *laggy* prefix-sum circuit is
 * used because compression is off the critical path.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "accel/op_counts.hh"
#include "tensor/fiber.hh"

namespace loas {

/** Result of compressing one output row. */
struct CompressResult
{
    SpikeFiber fiber;
    /** Cycles of the inverted laggy prefix-sum sweep. */
    std::uint64_t cycles = 0;
    OpCounts ops;
};

/** Output-side compressor unit. */
class OutputCompressor
{
  public:
    /**
     * @param adders  parallel adders of the inverted laggy prefix-sum
     * @param discard_single  also discard single-spike neurons (the
     *        fine-tuned preprocessing of Section V)
     */
    OutputCompressor(int adders, bool discard_single = false);

    /** Compress one output row of packed spike words. */
    CompressResult compress(const std::vector<TimeWord>& row) const;

    /**
     * In-place variant for execute loops: compress `n` words starting
     * at `row` into `out`, reusing its fiber buffers so steady-state
     * rows allocate nothing.
     */
    void compressInto(const TimeWord* row, std::size_t n,
                      CompressResult& out) const;

  private:
    int adders_;
    bool discard_single_;
};

} // namespace loas
