#include "core/plif.hh"

#include "common/logging.hh"

namespace loas {

Plif::Plif(const LifParams& params, int timesteps)
    : params_(params), timesteps_(timesteps)
{
}

PlifResult
Plif::fire(const std::vector<std::int32_t>& sums) const
{
    if (sums.size() != static_cast<std::size_t>(timesteps_))
        panic("P-LIF fed %zu sums for %d timesteps", sums.size(),
              timesteps_);
    PlifResult result;
    result.spikes = lifAcrossTimesteps(sums, params_);
    result.ops.lif_ops += static_cast<std::uint64_t>(timesteps_);
    return result;
}

} // namespace loas
