#include "core/inner_join.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace loas {

InnerJoinUnit::InnerJoinUnit(const InnerJoinConfig& config, int timesteps)
    : config_(config), timesteps_(timesteps)
{
    if (timesteps < 1 || timesteps > kMaxTimesteps)
        fatal("InnerJoinUnit: timesteps %d unsupported", timesteps);
}

const JoinResult&
InnerJoinUnit::join(const SpikeFiber& fiber_a,
                    const RankedBitmask& rank_a,
                    const WeightFiber& fiber_b,
                    const RankedBitmask& rank_b,
                    JoinScratch& scratch) const
{
    if (fiber_a.mask.size() != fiber_b.mask.size())
        panic("inner join over mismatched fiber lengths %zu vs %zu",
              fiber_a.mask.size(), fiber_b.mask.size());

    const std::size_t k = fiber_a.mask.size();
    const std::size_t chunk_bits = config_.chunk_bits;
    const std::uint64_t laggy_latency = config_.laggyLatency();
    const TimeWord all_ones =
        timesteps_ >= kMaxTimesteps
            ? ~TimeWord{0}
            : static_cast<TimeWord>((TimeWord{1} << timesteps_) - 1);

    JoinResult& result = scratch.result;
    result.cycles = 0;
    result.matches = 0;
    result.corrections = 0;
    result.spike_value_bytes = 0;
    result.ops = OpCounts{};
    result.sums.assign(static_cast<std::size_t>(timesteps_), 0);
    result.matched_offsets_a.clear();

    std::int64_t pseudo = 0;
    scratch.correction.assign(static_cast<std::size_t>(timesteps_), 0);
    std::int64_t* const correction = scratch.correction.data();

    // Pipeline timestamps (cycle numbers).
    std::uint64_t now = config_.setup_cycles; // fast path frontier
    std::uint64_t prev_check = 0;   // completion of last check
    std::uint64_t last_event = now; // overall completion frontier

    // Completion cycles of in-flight FIFO entries (for the depth
    // bound), kept in a fixed-capacity ring inside the scratch.
    const std::size_t fifo_cap = config_.fifo_depth + 1;
    if (scratch.fifo.size() < fifo_cap)
        scratch.fifo.resize(fifo_cap);
    std::uint64_t* const fifo = scratch.fifo.data();
    std::size_t fifo_head = 0, fifo_tail = 0, fifo_count = 0;

    const std::size_t value_bytes =
        static_cast<std::size_t>(ceilDiv(timesteps_, 8));

    for (std::size_t chunk_lo = 0; chunk_lo < k; chunk_lo += chunk_bits) {
        const std::size_t chunk_hi = std::min(chunk_lo + chunk_bits, k);

        // One cycle to AND the buffered chunk masks and priority-encode.
        const std::uint64_t and_done = now + 1;
        result.ops.mask_and_ops += 1;
        now = and_done;
        last_event = std::max(last_event, and_done);

        if (!anyMatch(fiber_a.mask, fiber_b.mask, chunk_lo, chunk_hi))
            continue;

        // The laggy circuit is a deeply pipelined serial prefix chain:
        // a chunk enters every cycle and its offsets emerge
        // laggyLatency() cycles later (that latency - not throughput -
        // is what distinguishes it from the single-cycle fast tree).
        const std::uint64_t laggy_ready = and_done + laggy_latency;
        result.ops.laggy_prefix_ops += laggy_latency;

        forEachMatch(rank_a, rank_b, chunk_lo, chunk_hi,
                     [&](std::size_t, std::size_t a_off,
                         std::size_t b_off) {
            // Fast path: one offset per cycle, stalling on FIFO-full.
            std::uint64_t emit = now + 1;
            while (fifo_count >= config_.fifo_depth) {
                emit = std::max(emit, fifo[fifo_head] + 1);
                fifo_head = (fifo_head + 1) % fifo_cap;
                --fifo_count;
            }
            now = emit;
            result.ops.fast_prefix_ops += 1;
            result.ops.fifo_ops += 2; // push into FIFO-mp and FIFO-B

            // Speculative accumulate of the matched weight.
            const std::int32_t weight = fiber_b.values[b_off];
            pseudo += weight;
            result.ops.acc_ops += 1;

            // Check path: drains after the laggy circuit is ready.
            const std::uint64_t check =
                std::max({prev_check + 1, laggy_ready, emit + 1});
            prev_check = check;
            fifo[fifo_tail] = check;
            fifo_tail = (fifo_tail + 1) % fifo_cap;
            ++fifo_count;
            result.ops.fifo_ops += 2; // pop both FIFOs

            const TimeWord spike_word = fiber_a.values[a_off];
            result.spike_value_bytes += value_bytes;
            result.matched_offsets_a.push_back(
                static_cast<std::uint32_t>(a_off));
            if (spike_word != all_ones) {
                // Mis-speculation: subtract the weight from every
                // timestep whose spike bit is zero.
                result.corrections += 1;
                for (int t = 0; t < timesteps_; ++t) {
                    if (!((spike_word >> t) & 1u)) {
                        correction[static_cast<std::size_t>(t)] += weight;
                        result.ops.correction_ops += 1;
                    }
                }
            }
            result.matches += 1;
            last_event = std::max(last_event, check);
        });
    }

    // Final correction subtraction into each timestep's accumulator.
    for (int t = 0; t < timesteps_; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        const std::int64_t sum = pseudo - correction[ts];
        result.sums[ts] = static_cast<std::int32_t>(sum);
        result.ops.correction_ops += 1;
    }

    result.cycles = last_event + config_.drain_cycles;
    return result;
}

JoinResult
InnerJoinUnit::join(const SpikeFiber& fiber_a,
                    const WeightFiber& fiber_b) const
{
    const RankedBitmask rank_a(fiber_a.mask);
    const RankedBitmask rank_b(fiber_b.mask);
    JoinScratch scratch;
    return join(fiber_a, rank_a, fiber_b, rank_b, scratch);
}

} // namespace loas
