#include "core/prefix_sum.hh"

namespace loas {
namespace prefix_sum {

std::vector<std::uint32_t>
offsets(const Bitmask& mask, const std::vector<std::uint32_t>& positions)
{
    std::vector<std::uint32_t> out;
    out.reserve(positions.size());
    for (const auto pos : positions)
        out.push_back(static_cast<std::uint32_t>(mask.rank(pos)));
    return out;
}

} // namespace prefix_sum
} // namespace loas
