/**
 * @file
 * Fused temporally-parallel inner join: the paper's core temporal-
 * parallelism claim applied to the host-side join kernel. One 64-bit
 * AND per weight word serves every timestep at once — each matched
 * position fans its weight out to all T accumulators through the
 * packed temporal word, turning the sequential baseline's O(T x words)
 * mask streaming into O(words + T x matches).
 *
 * Two datapaths over the same compiled operands:
 *
 *  - Fan-out: per match, iterate the set bits of the packed TimeWord
 *    and add the weight into each firing timestep's accumulator. Cost
 *    is one add per (match, firing timestep) — cheapest when trains
 *    are sparse in time.
 *  - Collapse: when a row's spike train is dense in time ("Collapse or
 *    Preserve", PAPERS.md), aggregate instead: speculatively add every
 *    matched weight into one pseudo-accumulator as if the train were
 *    all ones, and correct only the *zero* bits per timestep — the
 *    final sums are pseudo - correction[t], exactly Eq. (1) of the
 *    paper. Cost is one add per match plus one per (match, silent
 *    timestep), cheapest when trains are dense in time.
 *
 * Both paths produce bit-identical integer sums (exact arithmetic, no
 * reassociation hazards), so the data-dependent choice between them is
 * purely a performance decision. The kernel is allocation-free: all
 * output lands in caller-owned buffers.
 *
 * Both loops run through the runtime-dispatched kernel table
 * (core/kernel_dispatch.hh): on vector ISAs the T accumulators live
 * in lanes and each match is one masked lane-add — same sums, same
 * stats, at any ISA.
 */

#pragma once

#include <cstdint>

#include "tensor/fiber.hh"
#include "tensor/ranked_bitmask.hh"

namespace loas {

/** Datapath event counts of one fused join. */
struct FusedJoinStats
{
    /** Matched (non-silent, non-zero-weight) positions. */
    std::uint64_t matches = 0;

    /** Accumulator additions (fan-out adds, or pseudo-adds when
     *  collapsed). */
    std::uint64_t acc_ops = 0;

    /** Correction-accumulator additions (collapse path only). */
    std::uint64_t correction_ops = 0;

    /** True when the collapse datapath was taken. */
    bool collapsed = false;

    /** Total accumulator-port updates — the fused cycle model charges
     *  one cycle per update, whichever datapath ran. */
    std::uint64_t updates() const { return acc_ops + correction_ops; }
};

/**
 * Join one spike fiber with one weight fiber across all `timesteps` in
 * a single word-parallel pass, writing the per-timestep full sums into
 * caller-owned `sums` (at least `timesteps` slots, overwritten).
 *
 * `rank_a` / `rank_b` must view the fibers' masks (compiled artifacts
 * carry them). When `collapse` is set the pseudo-accumulator datapath
 * runs and `correction` must point at `timesteps` scratch slots (its
 * contents are clobbered); otherwise `correction` may be null.
 */
FusedJoinStats fusedTemporalJoin(const SpikeFiber& fiber_a,
                                 const RankedBitmask& rank_a,
                                 const WeightFiber& fiber_b,
                                 const RankedBitmask& rank_b,
                                 int timesteps, bool collapse,
                                 std::int32_t* sums,
                                 std::int64_t* correction = nullptr);

/**
 * The data-dependent collapse policy: collapse when at least
 * `threshold` of a row's stored temporal words are all ones
 * (`dense_nnz` of `nnz`). Empty rows never collapse (nothing to
 * aggregate); threshold 0 collapses every non-empty row, threshold 1
 * only fully dense ones.
 */
inline bool
shouldCollapse(std::uint32_t dense_nnz, std::size_t nnz,
               double threshold)
{
    return nnz > 0 && static_cast<double>(dense_nnz) >=
                          threshold * static_cast<double>(nnz);
}

} // namespace loas
