/**
 * @file
 * Configuration of the LoAS system (Table III) and of the TPPE
 * micro-architecture (Section IV).
 */

#pragma once

#include <cstdint>

#include "mem/cache.hh"
#include "mem/traffic.hh"
#include "snn/lif.hh"

namespace loas {

/** Inner-join / TPPE micro-architecture parameters. */
struct InnerJoinConfig
{
    /** Bitmask chunk width processed per AND+encode step (bits). */
    std::size_t chunk_bits = 128;

    /** Parallel adders inside the laggy prefix-sum circuit. */
    int laggy_adders = 16;

    /** Depth of FIFO-mp / FIFO-B between fast and laggy paths. */
    std::size_t fifo_depth = 8;

    /** Pipeline fill cycles per fiber pair (buffer/pointer setup). */
    std::uint64_t setup_cycles = 2;

    /** Pipeline drain cycles per fiber pair. */
    std::uint64_t drain_cycles = 2;

    /** Laggy prefix-sum latency for one chunk. */
    std::uint64_t
    laggyLatency() const
    {
        return (chunk_bits + static_cast<std::size_t>(laggy_adders) - 1) /
               static_cast<std::size_t>(laggy_adders);
    }
};

/** Full-system configuration (defaults follow Table III). */
struct LoasConfig
{
    int num_pes = 16;
    int timesteps = 4;
    InnerJoinConfig join;
    CacheConfig cache;       // 256 KB, 16 banks, 16-way
    DramConfig dram;         // 128 GB/s HBM
    LifParams lif;

    /** Fixed scheduling overhead added per wave of PE work. */
    std::uint64_t wave_overhead_cycles = 1;

    /**
     * Overlap consecutive waves: the laggy-prefix/correction tail of
     * one join overlaps the next wave's fiber-B fetch and fast phase
     * (the Fig. 10 pipelining), so only the fast-path length of each
     * wave occupies the steady-state schedule.
     */
    bool pipelined_waves = true;
};

} // namespace loas
