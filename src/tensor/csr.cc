#include "tensor/csr.hh"

#include "common/bitutil.hh"

namespace loas {

CsrMatrix
CsrMatrix::fromDense(const DenseMatrix<std::int32_t>& dense)
{
    CsrMatrix out;
    out.rows = dense.rows();
    out.cols = dense.cols();
    out.row_ptr.reserve(out.rows + 1);
    out.row_ptr.push_back(0);
    for (std::size_t r = 0; r < dense.rows(); ++r) {
        for (std::size_t c = 0; c < dense.cols(); ++c) {
            const std::int32_t v = dense(r, c);
            if (v != 0) {
                out.col_idx.push_back(static_cast<std::uint32_t>(c));
                out.values.push_back(v);
            }
        }
        out.row_ptr.push_back(static_cast<std::uint32_t>(out.nnz()));
    }
    return out;
}

CsrMatrix
CsrMatrix::fromSpikes(const SpikeTensor& spikes, int t)
{
    CsrMatrix out;
    out.rows = spikes.rows();
    out.cols = spikes.cols();
    out.row_ptr.reserve(out.rows + 1);
    out.row_ptr.push_back(0);
    for (std::size_t r = 0; r < spikes.rows(); ++r) {
        for (std::size_t c = 0; c < spikes.cols(); ++c) {
            if (spikes.spike(r, c, t)) {
                out.col_idx.push_back(static_cast<std::uint32_t>(c));
                out.values.push_back(1);
            }
        }
        out.row_ptr.push_back(static_cast<std::uint32_t>(out.nnz()));
    }
    return out;
}

DenseMatrix<std::int32_t>
CsrMatrix::toDense() const
{
    DenseMatrix<std::int32_t> out(rows, cols, 0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            out(r, col_idx[i]) = values[i];
    }
    return out;
}

std::size_t
CsrMatrix::storageBytes(int coord_bits, int value_bits) const
{
    const std::size_t payload_bits =
        nnz() * static_cast<std::size_t>(coord_bits + value_bits);
    return ceilDiv<std::size_t>(payload_bits, 8) + 4 * (rows + 1);
}

} // namespace loas
