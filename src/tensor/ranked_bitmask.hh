/**
 * @file
 * O(1) rank acceleration for Bitmask: a per-word prefix-popcount table,
 * the software analogue of the precomputed offset tables the paper's
 * prefix-sum circuits (Fig. 8) stream from memory. Built once per fiber
 * in an accelerator's prepare() phase and stored inside the compiled
 * artifacts, so the cost is amortized across every execute() of every
 * design variant sharing the CompiledCache entry.
 *
 * A RankedBitmask is a *view*: it holds a pointer to the Bitmask it
 * indexes plus the prefix table. The viewed Bitmask must outlive the
 * view and must not be mutated or relocated after construction (moving
 * the *container* that owns both — e.g. a compiled-fiber struct whose
 * vector storage transfers wholesale — is fine; element-wise copies or
 * vector reallocation are not).
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/kernel_dispatch.hh"
#include "tensor/bitmask.hh"

namespace loas {

/** Prefix-popcount view over a Bitmask giving O(1) rank queries. */
class RankedBitmask
{
  public:
    RankedBitmask() = default;

    /** Build the per-word rank table for `mask` (O(words) once). */
    explicit RankedBitmask(const Bitmask& mask) : mask_(&mask)
    {
        const auto& words = mask.words();
        prefix_.resize(words.size() + 1);
        std::uint32_t running = 0;
        for (std::size_t w = 0; w < words.size(); ++w) {
            prefix_[w] = running;
            running += static_cast<std::uint32_t>(popcount64(words[w]));
        }
        prefix_[words.size()] = running;
    }

    /**
     * Reattach a stored prefix table to `mask` (deserialization of the
     * on-disk compiled-artifact format). The table must be the one
     * RankedBitmask(mask) would build: words()+1 entries ending in the
     * mask's popcount (panic otherwise — offset arithmetic downstream
     * has no other guard).
     */
    RankedBitmask(const Bitmask& mask, std::vector<std::uint32_t> prefix)
        : mask_(&mask), prefix_(std::move(prefix))
    {
        if (prefix_.size() != mask.words().size() + 1 ||
            prefix_.back() != mask.popcount())
            panic("RankedBitmask prefix table does not match its mask "
                  "(%zu entries, total %u, mask %zu words / %zu set)",
                  prefix_.size(),
                  prefix_.empty() ? 0u : prefix_.back(),
                  mask.words().size(), mask.popcount());
    }

    /** The raw prefix-popcount table (serialization). */
    const std::vector<std::uint32_t>& prefixTable() const
    {
        return prefix_;
    }

    /** The viewed mask (must still be alive). */
    const Bitmask&
    mask() const
    {
        return *mask_;
    }

    /** Set bits strictly before the start of word w. */
    std::uint32_t wordRank(std::size_t w) const { return prefix_[w]; }

    /** Total set bits of the viewed mask. */
    std::size_t popcount() const { return prefix_.back(); }

    /** Set bits strictly before position i, in O(1). */
    std::size_t
    rank(std::size_t i) const
    {
        if (i > mask_->size())
            panic("RankedBitmask::rank out of range: %zu > %zu", i,
                  mask_->size());
        const std::size_t w = i / Bitmask::kWordBits;
        if (w >= mask_->words().size())
            return prefix_.back();
        const int rem = static_cast<int>(i % Bitmask::kWordBits);
        return prefix_[w] +
               static_cast<std::size_t>(
                   popcount64(mask_->words()[w] & lowMask64(rem)));
    }

    /** Popcount of the sub-range [lo, hi), in O(1). */
    std::size_t
    popcountRange(std::size_t lo, std::size_t hi) const
    {
        if (hi > mask_->size())
            hi = mask_->size();
        if (lo >= hi)
            return 0;
        return rank(hi) - rank(lo);
    }

  private:
    const Bitmask* mask_ = nullptr;
    std::vector<std::uint32_t> prefix_; // words() + 1 entries
};

namespace detail {

/** AND of word w of a and b, masked to the bit range [lo, hi). */
inline std::uint64_t
rangeWord(const std::vector<std::uint64_t>& a,
          const std::vector<std::uint64_t>& b, std::size_t w,
          std::size_t lo, std::size_t hi)
{
    std::uint64_t x = a[w] & b[w];
    const std::size_t base = w * Bitmask::kWordBits;
    if (lo > base)
        x &= ~lowMask64(static_cast<int>(lo - base));
    if (hi < base + Bitmask::kWordBits)
        x &= lowMask64(static_cast<int>(hi - base));
    return x;
}

/**
 * Word-index split of a bit range [lo, hi): the words in
 * [full_lo, full_hi) lie entirely inside the range, so their raw AND
 * equals rangeWord() and the dispatched SIMD scan may skip over them;
 * the at-most-one leading word [w_begin, full_lo) and trailing words
 * [full_hi, w_end) straddle a range boundary and need rangeWord()'s
 * masking. When lo and hi fall inside the same word, full_lo == full_hi
 * and the leading region covers everything.
 */
struct WordRange
{
    std::size_t w_begin;
    std::size_t full_lo;
    std::size_t full_hi;
    std::size_t w_end;
};

inline WordRange
splitWordRange(std::size_t lo, std::size_t hi)
{
    WordRange r;
    r.w_begin = lo / Bitmask::kWordBits;
    r.w_end = ceilDiv(hi, Bitmask::kWordBits);
    r.full_lo = std::min(ceilDiv(lo, Bitmask::kWordBits), r.w_end);
    r.full_hi = std::max(hi / Bitmask::kWordBits, r.full_lo);
    return r;
}

} // namespace detail

/** True when a & b has any set bit in [lo, hi); O(words in range). */
inline bool
anyMatch(const Bitmask& a, const Bitmask& b, std::size_t lo,
         std::size_t hi)
{
    if (a.size() != b.size())
        panic("anyMatch over mismatched mask sizes %zu vs %zu",
              a.size(), b.size());
    const auto& wa = a.words();
    const auto& wb = b.words();
    if (lo >= hi)
        return false;
    const detail::WordRange r = detail::splitWordRange(lo, hi);
    for (std::size_t w = r.w_begin; w < r.full_lo; ++w)
        if (detail::rangeWord(wa, wb, w, lo, hi))
            return true;
    if (kernels::ops().firstMatchWord(wa.data(), wb.data(), r.full_lo,
                                      r.full_hi) < r.full_hi)
        return true;
    for (std::size_t w = r.full_hi; w < r.w_end; ++w)
        if (detail::rangeWord(wa, wb, w, lo, hi))
            return true;
    return false;
}

/**
 * Invoke fn(pos, rank_a, rank_b) for every position in [lo, hi) set in
 * both masks, in increasing order. Word-parallel: one 64-bit AND per
 * word plus a ctz per match, with both ranks derived from the prefix
 * tables in O(1) — the cost is O(words in range + matches), never
 * O(matches x words).
 */
template <typename Fn>
void
forEachMatch(const RankedBitmask& a, const RankedBitmask& b,
             std::size_t lo, std::size_t hi, Fn&& fn)
{
    if (a.mask().size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.mask().size(), b.mask().size());
    const auto& wa = a.mask().words();
    const auto& wb = b.mask().words();
    if (lo >= hi)
        return;
    // Boundary words take the scalar rangeWord path; the fully-covered
    // middle words advance via the dispatched zero-AND skip scan. The
    // per-match fan-out below is identical in every region, so emit
    // order and results match the all-scalar loop bit for bit.
    const auto emitWord = [&](std::size_t w, std::uint64_t x) {
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(w * Bitmask::kWordBits + static_cast<std::size_t>(bit),
               a.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wa[w] & lowMask64(bit))),
               b.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wb[w] & lowMask64(bit))));
        }
    };
    const detail::WordRange r = detail::splitWordRange(lo, hi);
    for (std::size_t w = r.w_begin; w < r.full_lo; ++w)
        emitWord(w, detail::rangeWord(wa, wb, w, lo, hi));
    const kernels::KernelOps& kops = kernels::ops();
    for (std::size_t w = kops.firstMatchWord(wa.data(), wb.data(),
                                             r.full_lo, r.full_hi);
         w < r.full_hi;
         w = kops.firstMatchWord(wa.data(), wb.data(), w + 1,
                                 r.full_hi))
        emitWord(w, wa[w] & wb[w]);
    for (std::size_t w = r.full_hi; w < r.w_end; ++w)
        emitWord(w, detail::rangeWord(wa, wb, w, lo, hi));
}

/**
 * Invoke fn(pos, rank_a, rank_b) for every position set in both masks
 * over the full length — the fused temporally-parallel join: one
 * 64-bit AND per weight word serves every timestep at once, with both
 * value offsets coming from the compiled prefix tables in O(1).
 */
template <typename Fn>
void
forEachMatch(const RankedBitmask& a, const RankedBitmask& b, Fn&& fn)
{
    if (a.mask().size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.mask().size(), b.mask().size());
    const auto& wa = a.mask().words();
    const auto& wb = b.mask().words();
    const kernels::KernelOps& kops = kernels::ops();
    const std::size_t n = wa.size();
    // The dispatched scan hops straight to the next non-zero AND word
    // (the common case at realistic sparsities is long zero runs);
    // every matched word then fans out exactly as the scalar loop
    // would, so results are bit-identical at any ISA.
    for (std::size_t w = kops.firstMatchWord(wa.data(), wb.data(), 0, n);
         w < n;
         w = kops.firstMatchWord(wa.data(), wb.data(), w + 1, n)) {
        const std::uint64_t aw = wa[w];
        std::uint64_t x = aw & wb[w];
        // Word-local state hoisted out of the per-match loop: both
        // word ranks load once, and positions/ranks derive from the
        // cached words.
        const std::uint64_t bw = wb[w];
        const std::size_t base = w * Bitmask::kWordBits;
        const std::size_t ra = a.wordRank(w);
        const std::size_t rb = b.wordRank(w);
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(base + static_cast<std::size_t>(bit),
               ra + static_cast<std::size_t>(
                        popcount64(aw & lowMask64(bit))),
               rb + static_cast<std::size_t>(
                        popcount64(bw & lowMask64(bit))));
        }
    }
}

/**
 * Invoke fn(pos, rank_b) for every position set in both masks over the
 * full length, with only b's rank materialized (the SparTen join: the
 * spike row is its own data, only the weight offset is needed).
 */
template <typename Fn>
void
forEachMatch(const Bitmask& a, const RankedBitmask& b, Fn&& fn)
{
    if (a.size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.size(), b.mask().size());
    const auto& wa = a.words();
    const auto& wb = b.mask().words();
    const kernels::KernelOps& kops = kernels::ops();
    const std::size_t n = wa.size();
    for (std::size_t w = kops.firstMatchWord(wa.data(), wb.data(), 0, n);
         w < n;
         w = kops.firstMatchWord(wa.data(), wb.data(), w + 1, n)) {
        std::uint64_t x = wa[w] & wb[w];
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(w * Bitmask::kWordBits + static_cast<std::size_t>(bit),
               b.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wb[w] & lowMask64(bit))));
        }
    }
}

} // namespace loas
