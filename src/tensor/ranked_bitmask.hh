/**
 * @file
 * O(1) rank acceleration for Bitmask: a per-word prefix-popcount table,
 * the software analogue of the precomputed offset tables the paper's
 * prefix-sum circuits (Fig. 8) stream from memory. Built once per fiber
 * in an accelerator's prepare() phase and stored inside the compiled
 * artifacts, so the cost is amortized across every execute() of every
 * design variant sharing the CompiledCache entry.
 *
 * A RankedBitmask is a *view*: it holds a pointer to the Bitmask it
 * indexes plus the prefix table. The viewed Bitmask must outlive the
 * view and must not be mutated or relocated after construction (moving
 * the *container* that owns both — e.g. a compiled-fiber struct whose
 * vector storage transfers wholesale — is fine; element-wise copies or
 * vector reallocation are not).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "tensor/bitmask.hh"

namespace loas {

/** Prefix-popcount view over a Bitmask giving O(1) rank queries. */
class RankedBitmask
{
  public:
    RankedBitmask() = default;

    /** Build the per-word rank table for `mask` (O(words) once). */
    explicit RankedBitmask(const Bitmask& mask) : mask_(&mask)
    {
        const auto& words = mask.words();
        prefix_.resize(words.size() + 1);
        std::uint32_t running = 0;
        for (std::size_t w = 0; w < words.size(); ++w) {
            prefix_[w] = running;
            running += static_cast<std::uint32_t>(popcount64(words[w]));
        }
        prefix_[words.size()] = running;
    }

    /**
     * Reattach a stored prefix table to `mask` (deserialization of the
     * on-disk compiled-artifact format). The table must be the one
     * RankedBitmask(mask) would build: words()+1 entries ending in the
     * mask's popcount (panic otherwise — offset arithmetic downstream
     * has no other guard).
     */
    RankedBitmask(const Bitmask& mask, std::vector<std::uint32_t> prefix)
        : mask_(&mask), prefix_(std::move(prefix))
    {
        if (prefix_.size() != mask.words().size() + 1 ||
            prefix_.back() != mask.popcount())
            panic("RankedBitmask prefix table does not match its mask "
                  "(%zu entries, total %u, mask %zu words / %zu set)",
                  prefix_.size(),
                  prefix_.empty() ? 0u : prefix_.back(),
                  mask.words().size(), mask.popcount());
    }

    /** The raw prefix-popcount table (serialization). */
    const std::vector<std::uint32_t>& prefixTable() const
    {
        return prefix_;
    }

    /** The viewed mask (must still be alive). */
    const Bitmask&
    mask() const
    {
        return *mask_;
    }

    /** Set bits strictly before the start of word w. */
    std::uint32_t wordRank(std::size_t w) const { return prefix_[w]; }

    /** Total set bits of the viewed mask. */
    std::size_t popcount() const { return prefix_.back(); }

    /** Set bits strictly before position i, in O(1). */
    std::size_t
    rank(std::size_t i) const
    {
        if (i > mask_->size())
            panic("RankedBitmask::rank out of range: %zu > %zu", i,
                  mask_->size());
        const std::size_t w = i / Bitmask::kWordBits;
        if (w >= mask_->words().size())
            return prefix_.back();
        const int rem = static_cast<int>(i % Bitmask::kWordBits);
        return prefix_[w] +
               static_cast<std::size_t>(
                   popcount64(mask_->words()[w] & lowMask64(rem)));
    }

    /** Popcount of the sub-range [lo, hi), in O(1). */
    std::size_t
    popcountRange(std::size_t lo, std::size_t hi) const
    {
        if (hi > mask_->size())
            hi = mask_->size();
        if (lo >= hi)
            return 0;
        return rank(hi) - rank(lo);
    }

  private:
    const Bitmask* mask_ = nullptr;
    std::vector<std::uint32_t> prefix_; // words() + 1 entries
};

namespace detail {

/** AND of word w of a and b, masked to the bit range [lo, hi). */
inline std::uint64_t
rangeWord(const std::vector<std::uint64_t>& a,
          const std::vector<std::uint64_t>& b, std::size_t w,
          std::size_t lo, std::size_t hi)
{
    std::uint64_t x = a[w] & b[w];
    const std::size_t base = w * Bitmask::kWordBits;
    if (lo > base)
        x &= ~lowMask64(static_cast<int>(lo - base));
    if (hi < base + Bitmask::kWordBits)
        x &= lowMask64(static_cast<int>(hi - base));
    return x;
}

} // namespace detail

/** True when a & b has any set bit in [lo, hi); O(words in range). */
inline bool
anyMatch(const Bitmask& a, const Bitmask& b, std::size_t lo,
         std::size_t hi)
{
    if (a.size() != b.size())
        panic("anyMatch over mismatched mask sizes %zu vs %zu",
              a.size(), b.size());
    const auto& wa = a.words();
    const auto& wb = b.words();
    if (lo >= hi)
        return false;
    const std::size_t w1 = ceilDiv(hi, Bitmask::kWordBits);
    for (std::size_t w = lo / Bitmask::kWordBits; w < w1; ++w)
        if (detail::rangeWord(wa, wb, w, lo, hi))
            return true;
    return false;
}

/**
 * Invoke fn(pos, rank_a, rank_b) for every position in [lo, hi) set in
 * both masks, in increasing order. Word-parallel: one 64-bit AND per
 * word plus a ctz per match, with both ranks derived from the prefix
 * tables in O(1) — the cost is O(words in range + matches), never
 * O(matches x words).
 */
template <typename Fn>
void
forEachMatch(const RankedBitmask& a, const RankedBitmask& b,
             std::size_t lo, std::size_t hi, Fn&& fn)
{
    if (a.mask().size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.mask().size(), b.mask().size());
    const auto& wa = a.mask().words();
    const auto& wb = b.mask().words();
    if (lo >= hi)
        return;
    const std::size_t w1 = ceilDiv(hi, Bitmask::kWordBits);
    for (std::size_t w = lo / Bitmask::kWordBits; w < w1; ++w) {
        std::uint64_t x = detail::rangeWord(wa, wb, w, lo, hi);
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(w * Bitmask::kWordBits + static_cast<std::size_t>(bit),
               a.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wa[w] & lowMask64(bit))),
               b.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wb[w] & lowMask64(bit))));
        }
    }
}

/**
 * Invoke fn(pos, rank_a, rank_b) for every position set in both masks
 * over the full length — the fused temporally-parallel join: one
 * 64-bit AND per weight word serves every timestep at once, with both
 * value offsets coming from the compiled prefix tables in O(1).
 */
template <typename Fn>
void
forEachMatch(const RankedBitmask& a, const RankedBitmask& b, Fn&& fn)
{
    if (a.mask().size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.mask().size(), b.mask().size());
    const auto& wa = a.mask().words();
    const auto& wb = b.mask().words();
    for (std::size_t w = 0; w < wa.size(); ++w) {
        const std::uint64_t aw = wa[w];
        std::uint64_t x = aw & wb[w];
        if (!x)
            continue;
        // Word-local state hoisted out of the per-match loop: both
        // word ranks load once, and positions/ranks derive from the
        // cached words.
        const std::uint64_t bw = wb[w];
        const std::size_t base = w * Bitmask::kWordBits;
        const std::size_t ra = a.wordRank(w);
        const std::size_t rb = b.wordRank(w);
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(base + static_cast<std::size_t>(bit),
               ra + static_cast<std::size_t>(
                        popcount64(aw & lowMask64(bit))),
               rb + static_cast<std::size_t>(
                        popcount64(bw & lowMask64(bit))));
        }
    }
}

/**
 * Invoke fn(pos, rank_b) for every position set in both masks over the
 * full length, with only b's rank materialized (the SparTen join: the
 * spike row is its own data, only the weight offset is needed).
 */
template <typename Fn>
void
forEachMatch(const Bitmask& a, const RankedBitmask& b, Fn&& fn)
{
    if (a.size() != b.mask().size())
        panic("forEachMatch over mismatched mask sizes %zu vs %zu",
              a.size(), b.mask().size());
    const auto& wa = a.words();
    const auto& wb = b.mask().words();
    for (std::size_t w = 0; w < wa.size(); ++w) {
        std::uint64_t x = wa[w] & wb[w];
        while (x) {
            const int bit = lowestSetBit(x);
            x &= x - 1;
            fn(w * Bitmask::kWordBits + static_cast<std::size_t>(bit),
               b.wordRank(w) +
                   static_cast<std::size_t>(
                       popcount64(wb[w] & lowMask64(bit))));
        }
    }
}

} // namespace loas
