/**
 * @file
 * Converters between dense tensors and compressed fibers, plus the
 * aggregate footprint helpers the traffic models use.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"
#include "tensor/fiber.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/** Compress one row of the spike tensor into an FTP-friendly fiber. */
SpikeFiber compressSpikeRow(const SpikeTensor& spikes, std::size_t row);

/** Compress every row of the spike tensor. */
std::vector<SpikeFiber> compressSpikeRows(const SpikeTensor& spikes);

/** Reconstruct a spike tensor from row fibers (round-trip testing). */
SpikeTensor decompressSpikeRows(const std::vector<SpikeFiber>& fibers,
                                std::size_t cols, int timesteps);

/** Compress one column of B into a weight fiber. */
WeightFiber compressWeightColumn(const DenseMatrix<std::int8_t>& weights,
                                 std::size_t col);

/** Compress every column of B. */
std::vector<WeightFiber>
compressWeightColumns(const DenseMatrix<std::int8_t>& weights);

/** Compress one row of B into a weight fiber (Gustavson baselines). */
WeightFiber compressWeightRow(const DenseMatrix<std::int8_t>& weights,
                              std::size_t row);

/** Compress every row of B. */
std::vector<WeightFiber>
compressWeightRows(const DenseMatrix<std::int8_t>& weights);

/** Reconstruct B from column fibers (round-trip testing). */
DenseMatrix<std::int8_t>
decompressWeightColumns(const std::vector<WeightFiber>& fibers,
                        std::size_t rows);

/** Total storage of all spike fibers of A, in bytes. */
std::size_t spikeFiberBytes(const std::vector<SpikeFiber>& fibers,
                            int timesteps);

/** Total storage of all weight fibers, in bytes. */
std::size_t weightFiberBytes(const std::vector<WeightFiber>& fibers);

/**
 * Compression efficiency as defined in Section IV-A: raw spike bits that
 * carry information divided by stored bits (> 1 means the format beats
 * storing the raw train).
 */
double compressionEfficiency(const SpikeTensor& spikes);

} // namespace loas
