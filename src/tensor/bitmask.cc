#include "tensor/bitmask.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/kernel_dispatch.hh"

namespace loas {

Bitmask::Bitmask(std::size_t size)
    : size_(size), words_(ceilDiv(size, kWordBits), 0ull)
{
}

Bitmask::Bitmask(std::size_t size, std::vector<std::uint64_t> words)
    : size_(size), words_(std::move(words))
{
    if (words_.size() != ceilDiv(size_, kWordBits))
        panic("Bitmask of %zu bits needs %zu words, got %zu", size_,
              ceilDiv(size_, kWordBits), words_.size());
    const int tail = static_cast<int>(size_ % kWordBits);
    if (tail != 0 && (words_.back() & ~lowMask64(tail)) != 0)
        panic("Bitmask word storage has bits set past size %zu", size_);
}

void
Bitmask::reset(std::size_t size)
{
    size_ = size;
    words_.assign(ceilDiv(size, kWordBits), 0ull);
}

void
Bitmask::set(std::size_t i, bool value)
{
    if (i >= size_)
        panic("Bitmask::set out of range: %zu >= %zu", i, size_);
    const std::uint64_t bit = 1ull << (i % kWordBits);
    if (value)
        words_[i / kWordBits] |= bit;
    else
        words_[i / kWordBits] &= ~bit;
}

bool
Bitmask::test(std::size_t i) const
{
    if (i >= size_)
        panic("Bitmask::test out of range: %zu >= %zu", i, size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

std::size_t
Bitmask::popcount() const
{
    std::size_t count = 0;
    for (const auto word : words_)
        count += static_cast<std::size_t>(popcount64(word));
    return count;
}

std::size_t
Bitmask::rank(std::size_t i) const
{
    if (i > size_)
        panic("Bitmask::rank out of range: %zu > %zu", i, size_);
    std::size_t count = 0;
    const std::size_t full_words = i / kWordBits;
    for (std::size_t w = 0; w < full_words; ++w)
        count += static_cast<std::size_t>(popcount64(words_[w]));
    const int rem = static_cast<int>(i % kWordBits);
    if (rem != 0)
        count += static_cast<std::size_t>(
            popcount64(words_[full_words] & lowMask64(rem)));
    return count;
}

Bitmask
Bitmask::operator&(const Bitmask& other) const
{
    if (size_ != other.size_)
        panic("Bitmask AND of mismatched sizes %zu vs %zu", size_,
              other.size_);
    Bitmask out(size_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        out.words_[w] = words_[w] & other.words_[w];
    return out;
}

std::size_t
Bitmask::andPopcount(const Bitmask& other) const
{
    if (size_ != other.size_)
        panic("Bitmask AND of mismatched sizes %zu vs %zu", size_,
              other.size_);
    return static_cast<std::size_t>(kernels::ops().andPopcountWords(
        words_.data(), other.words_.data(), words_.size()));
}

bool
Bitmask::any() const
{
    for (const auto word : words_)
        if (word)
            return true;
    return false;
}

std::vector<std::uint32_t>
Bitmask::setBitsInRange(std::size_t lo, std::size_t hi) const
{
    std::vector<std::uint32_t> out;
    if (hi > size_)
        hi = size_;
    for (std::size_t i = lo; i < hi;) {
        const std::size_t w = i / kWordBits;
        const int shift = static_cast<int>(i % kWordBits);
        std::uint64_t word = words_[w] >> shift;
        const std::size_t span = std::min(hi - i, kWordBits - shift);
        word &= lowMask64(static_cast<int>(span));
        while (word) {
            out.push_back(static_cast<std::uint32_t>(
                i + static_cast<std::size_t>(lowestSetBit(word))));
            word &= word - 1;
        }
        i += span;
    }
    return out;
}

std::size_t
Bitmask::popcountRange(std::size_t lo, std::size_t hi) const
{
    if (hi > size_)
        hi = size_;
    if (lo >= hi)
        return 0;
    return rank(hi) - rank(lo);
}

} // namespace loas
