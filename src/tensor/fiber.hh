/**
 * @file
 * Compressed fibers: the paper's FTP-friendly compression format
 * (Section IV-A, Fig. 8). A fiber is one row of A (or one column of B)
 * stored as a bitmask of non-zero positions followed by the packed
 * non-zero values.
 *
 * For spike fibers the stored values are packed temporal words (T bits
 * per non-silent neuron); silent neurons (zero at every timestep) are not
 * stored at all. For weight fibers the values are int8 weights.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/bitmask.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/** Compressed row of the spike tensor A, packed across timesteps. */
struct SpikeFiber
{
    /** One bit per pre-synaptic neuron: 1 = non-silent (value stored). */
    Bitmask mask;
    /** Packed temporal words of the non-silent neurons, in order. */
    std::vector<TimeWord> values;

    /** Number of stored (non-silent) neurons. */
    std::size_t nnz() const { return values.size(); }

    /**
     * Memory footprint in bytes: bitmask + pointer + T bits per stored
     * value, rounded up per fiber. `timesteps` selects the value width.
     */
    std::size_t
    storageBytes(int timesteps) const
    {
        const std::size_t value_bits =
            values.size() * static_cast<std::size_t>(timesteps);
        return mask.storageBytes() + kPointerBytes + (value_bits + 7) / 8;
    }

    /** Bytes of metadata (bitmask + pointer) only. */
    std::size_t
    metadataBytes() const
    {
        return mask.storageBytes() + kPointerBytes;
    }

    /** Row pointer stored alongside the bitmask (Fig. 8). */
    static constexpr std::size_t kPointerBytes = 4;
};

/** Compressed column (or row) of the weight matrix B. */
struct WeightFiber
{
    /** One bit per position: 1 = non-zero weight stored. */
    Bitmask mask;
    /** Non-zero weights, int8 widened for arithmetic convenience. */
    std::vector<std::int32_t> values;

    std::size_t nnz() const { return values.size(); }

    /** Memory footprint in bytes (bitmask + pointer + 1 B per weight). */
    std::size_t
    storageBytes() const
    {
        return mask.storageBytes() + SpikeFiber::kPointerBytes +
               values.size();
    }

    std::size_t
    metadataBytes() const
    {
        return mask.storageBytes() + SpikeFiber::kPointerBytes;
    }
};

} // namespace loas
