/**
 * @file
 * Spike tensor A in U^{M x K x T}, stored temporally packed: the T spike
 * bits of each pre-synaptic neuron (m, k) live in one machine word, which
 * is exactly the memory layout the paper's FTP-friendly compression packs
 * into fibers (Fig. 8, "packed real data").
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/dense_matrix.hh"

namespace loas {

/** Packed spike bits of one neuron across all timesteps (bit t = spike). */
using TimeWord = std::uint32_t;

/** Maximum number of timesteps a TimeWord can hold. */
constexpr int kMaxTimesteps = 32;

/** M x K x T binary spike tensor, packed along the temporal dimension. */
class SpikeTensor
{
  public:
    SpikeTensor() : rows_(0), cols_(0), timesteps_(0) {}

    /** Create an all-zero tensor; t must be in [1, kMaxTimesteps]. */
    SpikeTensor(std::size_t rows, std::size_t cols, int timesteps);

    /**
     * Reset to an all-zero tensor of the given shape, reusing the word
     * storage when the shape already matches (the execute()-scratch
     * path of the simulators' lastOutput tensors).
     */
    void reset(std::size_t rows, std::size_t cols, int timesteps);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    int timesteps() const { return timesteps_; }

    /** Packed temporal word of neuron (r, c). */
    TimeWord word(std::size_t r, std::size_t c) const;

    /** Overwrite the packed temporal word of neuron (r, c). */
    void setWord(std::size_t r, std::size_t c, TimeWord w);

    /** Single spike bit at (r, c, t). */
    bool spike(std::size_t r, std::size_t c, int t) const;

    /** Set/clear the spike bit at (r, c, t). */
    void setSpike(std::size_t r, std::size_t c, int t, bool value = true);

    /** Total number of 1-spikes across all timesteps. */
    std::uint64_t countSpikes() const;

    /** Fraction of zero bits among all M*K*T bits ("origin sparsity"). */
    double originSparsity() const;

    /** Number of silent neurons (no spike at any timestep). */
    std::size_t silentCount() const;

    /** Fraction of silent neurons among the M*K neurons. */
    double silentRatio() const;

    /** Number of neurons firing exactly once across all timesteps. */
    std::size_t singleSpikeCount() const;

    /** Uncompressed footprint of the tensor in bytes (M*K*T bits). */
    std::size_t denseBytes() const;

    /** Uncompressed footprint of one timestep slice in bytes. */
    std::size_t denseBytesPerTimestep() const;

    bool operator==(const SpikeTensor&) const = default;

  private:
    std::size_t rows_;
    std::size_t cols_;
    int timesteps_;
    DenseMatrix<TimeWord> words_;
};

} // namespace loas
