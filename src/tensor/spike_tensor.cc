#include "tensor/spike_tensor.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace loas {

SpikeTensor::SpikeTensor(std::size_t rows, std::size_t cols, int timesteps)
    : rows_(rows), cols_(cols), timesteps_(timesteps),
      words_(rows, cols, 0)
{
    if (timesteps < 1 || timesteps > kMaxTimesteps) {
        fatal("SpikeTensor timesteps %d outside [1, %d]", timesteps,
              kMaxTimesteps);
    }
}

void
SpikeTensor::reset(std::size_t rows, std::size_t cols, int timesteps)
{
    if (rows == rows_ && cols == cols_ && timesteps == timesteps_) {
        auto& data = words_.data();
        std::fill(data.begin(), data.end(), TimeWord{0});
        return;
    }
    *this = SpikeTensor(rows, cols, timesteps);
}

TimeWord
SpikeTensor::word(std::size_t r, std::size_t c) const
{
    return words_.at(r, c);
}

void
SpikeTensor::setWord(std::size_t r, std::size_t c, TimeWord w)
{
    if (timesteps_ < kMaxTimesteps && (w >> timesteps_) != 0)
        panic("setWord: bits above timestep count (w=0x%x, T=%d)", w,
              timesteps_);
    words_.at(r, c) = w;
}

bool
SpikeTensor::spike(std::size_t r, std::size_t c, int t) const
{
    if (t < 0 || t >= timesteps_)
        panic("spike timestep %d outside [0, %d)", t, timesteps_);
    return (words_.at(r, c) >> t) & 1u;
}

void
SpikeTensor::setSpike(std::size_t r, std::size_t c, int t, bool value)
{
    if (t < 0 || t >= timesteps_)
        panic("setSpike timestep %d outside [0, %d)", t, timesteps_);
    TimeWord w = words_.at(r, c);
    if (value)
        w |= (TimeWord{1} << t);
    else
        w &= ~(TimeWord{1} << t);
    words_.at(r, c) = w;
}

std::uint64_t
SpikeTensor::countSpikes() const
{
    std::uint64_t count = 0;
    for (const auto w : words_.data())
        count += static_cast<std::uint64_t>(popcount64(w));
    return count;
}

double
SpikeTensor::originSparsity() const
{
    const double total =
        static_cast<double>(rows_ * cols_) * timesteps_;
    if (total == 0.0)
        return 0.0;
    return 1.0 - static_cast<double>(countSpikes()) / total;
}

std::size_t
SpikeTensor::silentCount() const
{
    std::size_t count = 0;
    for (const auto w : words_.data())
        if (w == 0)
            ++count;
    return count;
}

double
SpikeTensor::silentRatio() const
{
    if (rows_ * cols_ == 0)
        return 0.0;
    return static_cast<double>(silentCount()) /
           static_cast<double>(rows_ * cols_);
}

std::size_t
SpikeTensor::singleSpikeCount() const
{
    std::size_t count = 0;
    for (const auto w : words_.data())
        if (popcount64(w) == 1)
            ++count;
    return count;
}

std::size_t
SpikeTensor::denseBytes() const
{
    return ceilDiv<std::size_t>(rows_ * cols_ *
                                static_cast<std::size_t>(timesteps_), 8);
}

std::size_t
SpikeTensor::denseBytesPerTimestep() const
{
    return ceilDiv<std::size_t>(rows_ * cols_, 8);
}

} // namespace loas
