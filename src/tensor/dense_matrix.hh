/**
 * @file
 * Row-major dense matrix. Weight matrices B (int8 values widened where
 * convenient) and accumulator matrices O (int32) use this type.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace loas {

/** Simple row-major dense matrix with bounds-checked element access. */
template <typename T>
class DenseMatrix
{
  public:
    DenseMatrix() : rows_(0), cols_(0) {}

    /** Create a rows x cols matrix initialized to `fill`. */
    DenseMatrix(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T&
    at(std::size_t r, std::size_t c)
    {
        checkIndex(r, c);
        return data_[r * cols_ + c];
    }

    const T&
    at(std::size_t r, std::size_t c) const
    {
        checkIndex(r, c);
        return data_[r * cols_ + c];
    }

    /** Unchecked access for hot loops. */
    T& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    const T& operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    const std::vector<T>& data() const { return data_; }
    std::vector<T>& data() { return data_; }

    /** Count of entries equal to zero. */
    std::size_t
    zeroCount() const
    {
        std::size_t count = 0;
        for (const auto& v : data_)
            if (v == T{})
                ++count;
        return count;
    }

    /** Fraction of entries equal to zero. */
    double
    sparsity() const
    {
        if (data_.empty())
            return 0.0;
        return static_cast<double>(zeroCount()) /
               static_cast<double>(data_.size());
    }

    bool operator==(const DenseMatrix&) const = default;

  private:
    void
    checkIndex(std::size_t r, std::size_t c) const
    {
        if (r >= rows_ || c >= cols_) {
            panic("DenseMatrix index (%zu,%zu) out of (%zu,%zu)", r, c,
                  rows_, cols_);
        }
    }

    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

} // namespace loas
