/**
 * @file
 * Compressed sparse row/column matrices. The conventional ANN compression
 * format the paper contrasts against (Section II-D): multi-bit coordinates
 * per non-zero. GoSPA-style baselines store spikes this way, one CSR
 * structure per timestep.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/** CSR matrix with 32-bit coordinates and int32 values. */
struct CsrMatrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint32_t> row_ptr; // rows + 1 entries
    std::vector<std::uint32_t> col_idx; // nnz entries
    std::vector<std::int32_t> values;   // nnz entries

    std::size_t nnz() const { return col_idx.size(); }

    /** Build from a dense matrix, dropping zeros. */
    static CsrMatrix fromDense(const DenseMatrix<std::int32_t>& dense);

    /**
     * Build the CSR view of one timestep slice of a spike tensor
     * (values are all 1): how an ANN spMspM accelerator would have to
     * store SNN spikes with per-spike coordinates.
     */
    static CsrMatrix fromSpikes(const SpikeTensor& spikes, int t);

    /** Reconstruct the dense matrix (for round-trip tests). */
    DenseMatrix<std::int32_t> toDense() const;

    /**
     * Storage footprint in bytes given a coordinate width in bits
     * (e.g. log2(cols)) and a value width in bits. Row pointers cost
     * 4 bytes per row. This is what the traffic model charges for
     * CSR-compressed operands.
     */
    std::size_t storageBytes(int coord_bits, int value_bits) const;
};

} // namespace loas
