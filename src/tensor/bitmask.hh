/**
 * @file
 * Dynamic bitmask used as the coordinate representation of compressed
 * fibers (Section IV-A of the paper): one bit per position in a row or
 * column, 1 marking a stored non-zero value.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace loas {

/** Fixed-size dynamic bitset with the rank/iteration ops fibers need. */
class Bitmask
{
  public:
    static constexpr std::size_t kWordBits = 64;

    /** Create an all-zero mask of the given bit length. */
    explicit Bitmask(std::size_t size = 0);

    /**
     * Reconstruct a mask from its raw word storage (deserialization).
     * `words` must be exactly ceil(size / 64) entries with no set bit
     * past `size` (panic otherwise — a corrupt word vector would break
     * every popcount-derived invariant downstream).
     */
    Bitmask(std::size_t size, std::vector<std::uint64_t> words);

    /**
     * Reset to an all-zero mask of the given bit length, reusing the
     * existing word storage when it is large enough (the scratch-buffer
     * path of the output compressor).
     */
    void reset(std::size_t size);

    /** Number of bit positions. */
    std::size_t size() const { return size_; }

    /** Set (or clear) the bit at position i. */
    void set(std::size_t i, bool value = true);

    /** Read the bit at position i. */
    bool test(std::size_t i) const;

    /** Number of set bits in the whole mask. */
    std::size_t popcount() const;

    /**
     * Number of set bits strictly before position i: the offset of the
     * value for position i inside the fiber's value array. This is what
     * the prefix-sum circuits compute in hardware.
     */
    std::size_t rank(std::size_t i) const;

    /** Bitwise AND; both masks must be the same length. */
    Bitmask operator&(const Bitmask& other) const;

    /**
     * Popcount of (*this & other) without materializing the AND mask
     * (word-parallel, allocation-free). Lengths must match.
     */
    std::size_t andPopcount(const Bitmask& other) const;

    bool operator==(const Bitmask& other) const = default;

    /** Any bit set? */
    bool any() const;

    /** Invoke fn(position) for every set bit, in increasing order. */
    template <typename Fn>
    void
    forEachSet(Fn&& fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word) {
                const int bit = __builtin_ctzll(word);
                fn(w * kWordBits + static_cast<std::size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /** Set bits in a sub-range [lo, hi) collected into a vector. */
    std::vector<std::uint32_t> setBitsInRange(std::size_t lo,
                                              std::size_t hi) const;

    /** Popcount of the sub-range [lo, hi). */
    std::size_t popcountRange(std::size_t lo, std::size_t hi) const;

    /** Raw storage (little-endian bit order within each word). */
    const std::vector<std::uint64_t>& words() const { return words_; }

    /** Bytes needed to store this mask in memory (ceil(size/8)). */
    std::size_t storageBytes() const { return (size_ + 7) / 8; }

  private:
    std::size_t size_;
    std::vector<std::uint64_t> words_;
};

} // namespace loas
