#include "tensor/compress.hh"

#include "common/logging.hh"

namespace loas {

SpikeFiber
compressSpikeRow(const SpikeTensor& spikes, std::size_t row)
{
    SpikeFiber fiber;
    fiber.mask = Bitmask(spikes.cols());
    for (std::size_t c = 0; c < spikes.cols(); ++c) {
        const TimeWord w = spikes.word(row, c);
        if (w != 0) {
            fiber.mask.set(c);
            fiber.values.push_back(w);
        }
    }
    return fiber;
}

std::vector<SpikeFiber>
compressSpikeRows(const SpikeTensor& spikes)
{
    std::vector<SpikeFiber> fibers;
    fibers.reserve(spikes.rows());
    for (std::size_t r = 0; r < spikes.rows(); ++r)
        fibers.push_back(compressSpikeRow(spikes, r));
    return fibers;
}

SpikeTensor
decompressSpikeRows(const std::vector<SpikeFiber>& fibers,
                    std::size_t cols, int timesteps)
{
    SpikeTensor out(fibers.size(), cols, timesteps);
    for (std::size_t r = 0; r < fibers.size(); ++r) {
        const auto& fiber = fibers[r];
        if (fiber.mask.size() != cols)
            panic("fiber %zu mask size %zu != cols %zu", r,
                  fiber.mask.size(), cols);
        std::size_t next = 0;
        fiber.mask.forEachSet([&](std::size_t c) {
            out.setWord(r, c, fiber.values[next++]);
        });
        if (next != fiber.values.size())
            panic("fiber %zu mask popcount %zu != value count %zu", r,
                  next, fiber.values.size());
    }
    return out;
}

WeightFiber
compressWeightColumn(const DenseMatrix<std::int8_t>& weights,
                     std::size_t col)
{
    WeightFiber fiber;
    fiber.mask = Bitmask(weights.rows());
    for (std::size_t r = 0; r < weights.rows(); ++r) {
        const std::int8_t v = weights(r, col);
        if (v != 0) {
            fiber.mask.set(r);
            fiber.values.push_back(v);
        }
    }
    return fiber;
}

std::vector<WeightFiber>
compressWeightColumns(const DenseMatrix<std::int8_t>& weights)
{
    std::vector<WeightFiber> fibers;
    fibers.reserve(weights.cols());
    for (std::size_t c = 0; c < weights.cols(); ++c)
        fibers.push_back(compressWeightColumn(weights, c));
    return fibers;
}

WeightFiber
compressWeightRow(const DenseMatrix<std::int8_t>& weights, std::size_t row)
{
    WeightFiber fiber;
    fiber.mask = Bitmask(weights.cols());
    for (std::size_t c = 0; c < weights.cols(); ++c) {
        const std::int8_t v = weights(row, c);
        if (v != 0) {
            fiber.mask.set(c);
            fiber.values.push_back(v);
        }
    }
    return fiber;
}

std::vector<WeightFiber>
compressWeightRows(const DenseMatrix<std::int8_t>& weights)
{
    std::vector<WeightFiber> fibers;
    fibers.reserve(weights.rows());
    for (std::size_t r = 0; r < weights.rows(); ++r)
        fibers.push_back(compressWeightRow(weights, r));
    return fibers;
}

DenseMatrix<std::int8_t>
decompressWeightColumns(const std::vector<WeightFiber>& fibers,
                        std::size_t rows)
{
    DenseMatrix<std::int8_t> out(rows, fibers.size(), 0);
    for (std::size_t c = 0; c < fibers.size(); ++c) {
        std::size_t next = 0;
        fibers[c].mask.forEachSet([&](std::size_t r) {
            out(r, c) = static_cast<std::int8_t>(fibers[c].values[next++]);
        });
    }
    return out;
}

std::size_t
spikeFiberBytes(const std::vector<SpikeFiber>& fibers, int timesteps)
{
    std::size_t bytes = 0;
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes(timesteps);
    return bytes;
}

std::size_t
weightFiberBytes(const std::vector<WeightFiber>& fibers)
{
    std::size_t bytes = 0;
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes();
    return bytes;
}

double
compressionEfficiency(const SpikeTensor& spikes)
{
    // Spike bits carried per coordinate-overhead bit. The FTP format
    // spends exactly one bitmask bit per neuron; Fig. 8's example row
    // (5 spikes over a 4-neuron row) yields 125%.
    const std::size_t mask_bits = spikes.rows() * spikes.cols();
    if (mask_bits == 0)
        return 0.0;
    return static_cast<double>(spikes.countSpikes()) /
           static_cast<double>(mask_bits);
}

} // namespace loas
