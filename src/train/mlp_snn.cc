#include "train/mlp_snn.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace loas {

namespace {

/** Kaiming-style initialization. */
void
initWeights(DenseMatrix<float>& w, Rng& rng)
{
    const double scale = std::sqrt(2.0 / static_cast<double>(w.rows()));
    for (auto& v : w.data())
        v = static_cast<float>(rng.normal(0.0, scale));
}

} // namespace

/** Per-sample forward record needed by BPTT. */
struct MlpSnn::Trace
{
    // [t][neuron]
    std::vector<std::vector<float>> x1, x2; // membrane inputs X
    std::vector<std::vector<float>> s1, s2; // spikes
    std::vector<float> logits;
};

MlpSnn::MlpSnn(const MlpSnnConfig& config, std::uint64_t seed)
    : config_(config),
      w1_(config.inputs, config.hidden),
      w2_(config.hidden, config.hidden),
      w3_(config.hidden, static_cast<std::size_t>(config.classes)),
      m1_(config.inputs, config.hidden, 0.0f),
      m2_(config.hidden, config.hidden, 0.0f),
      m3_(config.hidden, static_cast<std::size_t>(config.classes), 0.0f),
      g1_(config.inputs, config.hidden, 0.0f),
      g2_(config.hidden, config.hidden, 0.0f),
      g3_(config.hidden, static_cast<std::size_t>(config.classes), 0.0f),
      mask1_(config.inputs * config.hidden, 1),
      mask2_(config.hidden * config.hidden, 1),
      mask3_(config.hidden * static_cast<std::size_t>(config.classes), 1),
      neuron_mask_(config.hidden, 1),
      epoch_seed_(seed)
{
    Rng rng(seed);
    initWeights(w1_, rng);
    initWeights(w2_, rng);
    initWeights(w3_, rng);
    w1_init_ = w1_;
    w2_init_ = w2_;
    w3_init_ = w3_;
}

void
MlpSnn::forwardSample(const float* x, Trace& trace) const
{
    const std::size_t hid = config_.hidden;
    const auto classes = static_cast<std::size_t>(config_.classes);
    const int timesteps = config_.timesteps;

    trace.x1.assign(static_cast<std::size_t>(timesteps),
                    std::vector<float>(hid, 0.0f));
    trace.x2 = trace.x1;
    trace.s1 = trace.x1;
    trace.s2 = trace.x1;
    trace.logits.assign(classes, 0.0f);

    // Direct coding: the input current of layer 1 is the same every
    // timestep, so compute it once.
    std::vector<float> i1(hid, 0.0f);
    for (std::size_t i = 0; i < config_.inputs; ++i) {
        const float xi = x[i];
        if (xi == 0.0f)
            continue;
        const float* row = &w1_(i, 0);
        for (std::size_t h = 0; h < hid; ++h)
            i1[h] += xi * row[h];
    }

    std::vector<float> u1(hid, 0.0f), u2(hid, 0.0f);
    for (int t = 0; t < timesteps; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        auto& x1 = trace.x1[ts];
        auto& s1 = trace.s1[ts];
        for (std::size_t h = 0; h < hid; ++h) {
            x1[h] = i1[h] + u1[h];
            const bool fire =
                neuron_mask_[h] != 0 && x1[h] > config_.v_th;
            s1[h] = fire ? 1.0f : 0.0f;
            u1[h] = fire ? 0.0f : config_.tau * x1[h];
            if (neuron_mask_[h] == 0)
                u1[h] = 0.0f; // dead neuron
        }

        auto& x2 = trace.x2[ts];
        auto& s2 = trace.s2[ts];
        std::vector<float> i2(hid, 0.0f);
        for (std::size_t h = 0; h < hid; ++h) {
            if (s1[h] == 0.0f)
                continue;
            const float* row = &w2_(h, 0);
            for (std::size_t j = 0; j < hid; ++j)
                i2[j] += row[j];
        }
        for (std::size_t j = 0; j < hid; ++j) {
            x2[j] = i2[j] + u2[j];
            const bool fire = x2[j] > config_.v_th;
            s2[j] = fire ? 1.0f : 0.0f;
            u2[j] = fire ? 0.0f : config_.tau * x2[j];
        }

        for (std::size_t j = 0; j < hid; ++j) {
            if (s2[j] == 0.0f)
                continue;
            const float* row = &w3_(j, 0);
            for (std::size_t c = 0; c < classes; ++c)
                trace.logits[c] += row[c];
        }
    }
    for (auto& logit : trace.logits)
        logit /= static_cast<float>(timesteps);
}

void
MlpSnn::backwardSample(const float* x, int label, const Trace& trace)
{
    const std::size_t hid = config_.hidden;
    const auto classes = static_cast<std::size_t>(config_.classes);
    const int timesteps = config_.timesteps;
    const float alpha = config_.surrogate_alpha;

    // Softmax cross-entropy gradient on the mean logits.
    std::vector<float> dlogits(classes);
    {
        float max_logit = trace.logits[0];
        for (const auto v : trace.logits)
            max_logit = std::max(max_logit, v);
        float denom = 0.0f;
        for (std::size_t c = 0; c < classes; ++c) {
            dlogits[c] = std::exp(trace.logits[c] - max_logit);
            denom += dlogits[c];
        }
        for (std::size_t c = 0; c < classes; ++c)
            dlogits[c] /= denom;
        dlogits[static_cast<std::size_t>(label)] -= 1.0f;
    }

    // Surrogate derivative of the Heaviside spike function.
    auto surrogate = [&](float v) {
        const float z = alpha * (v - config_.v_th);
        return alpha / ((1.0f + std::fabs(z)) * (1.0f + std::fabs(z)));
    };

    // dL/dS3 per timestep is W3 dlogits / T (same every t).
    std::vector<float> ds2_static(hid, 0.0f);
    for (std::size_t j = 0; j < hid; ++j) {
        float acc = 0.0f;
        const float* row = &w3_(j, 0);
        for (std::size_t c = 0; c < classes; ++c)
            acc += row[c] * dlogits[c];
        ds2_static[j] = acc / static_cast<float>(timesteps);
    }

    std::vector<float> du2(hid, 0.0f), du1(hid, 0.0f);
    for (int t = timesteps - 1; t >= 0; --t) {
        const auto ts = static_cast<std::size_t>(t);
        const auto& s1 = trace.s1[ts];
        const auto& s2 = trace.s2[ts];
        const auto& x2 = trace.x2[ts];
        const auto& x1 = trace.x1[ts];

        // dW3 += s2 (x) dlogits / T.
        for (std::size_t j = 0; j < hid; ++j) {
            if (s2[j] == 0.0f)
                continue;
            float* grow = &g3_(j, 0);
            for (std::size_t c = 0; c < classes; ++c)
                grow[c] +=
                    dlogits[c] / static_cast<float>(timesteps);
        }

        // LIF backward, layer 2. The reset path through the spike is
        // detached (standard surrogate-gradient practice).
        std::vector<float> gx2(hid);
        for (std::size_t j = 0; j < hid; ++j) {
            const float ds = ds2_static[j] + 0.0f;
            const float leak_path =
                du2[j] * (s2[j] != 0.0f ? 0.0f : config_.tau);
            gx2[j] = ds * surrogate(x2[j]) + leak_path;
            du2[j] = gx2[j]; // X2[t] = I2[t] + U2[t-1]
        }

        // dW2 += s1 (x) gx2; dS1 = W2 gx2.
        std::vector<float> ds1(hid, 0.0f);
        for (std::size_t h = 0; h < hid; ++h) {
            const float* row = &w2_(h, 0);
            float acc = 0.0f;
            for (std::size_t j = 0; j < hid; ++j)
                acc += row[j] * gx2[j];
            ds1[h] = acc;
            if (s1[h] != 0.0f) {
                float* grow = &g2_(h, 0);
                for (std::size_t j = 0; j < hid; ++j)
                    grow[j] += gx2[j];
            }
        }

        // LIF backward, layer 1; masked neurons pass no gradient.
        std::vector<float> gx1(hid);
        for (std::size_t h = 0; h < hid; ++h) {
            if (neuron_mask_[h] == 0) {
                gx1[h] = 0.0f;
                du1[h] = 0.0f;
                continue;
            }
            const float leak_path =
                du1[h] * (s1[h] != 0.0f ? 0.0f : config_.tau);
            gx1[h] = ds1[h] * surrogate(x1[h]) + leak_path;
            du1[h] = gx1[h];
        }

        // dW1 += x (x) gx1.
        for (std::size_t i = 0; i < config_.inputs; ++i) {
            const float xi = x[i];
            if (xi == 0.0f)
                continue;
            float* grow = &g1_(i, 0);
            for (std::size_t h = 0; h < hid; ++h)
                grow[h] += xi * gx1[h];
        }
    }
}

void
MlpSnn::applyMasksAndStep()
{
    auto step = [&](DenseMatrix<float>& w, DenseMatrix<float>& m,
                    DenseMatrix<float>& g,
                    const std::vector<std::uint8_t>& mask) {
        auto& wd = w.data();
        auto& md = m.data();
        auto& gd = g.data();
        for (std::size_t i = 0; i < wd.size(); ++i) {
            if (!mask[i]) {
                wd[i] = 0.0f;
                md[i] = 0.0f;
                gd[i] = 0.0f;
                continue;
            }
            md[i] = config_.momentum * md[i] + gd[i];
            wd[i] -= config_.lr * md[i];
            gd[i] = 0.0f;
        }
    };
    step(w1_, m1_, g1_, mask1_);
    step(w2_, m2_, g2_, mask2_);
    step(w3_, m3_, g3_, mask3_);
}

float
MlpSnn::trainEpoch(const Dataset& data)
{
    Rng rng(epoch_seed_++);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniformInt(i)]);

    Trace trace;
    float loss_sum = 0.0f;
    for (const auto s : order) {
        const float* x = &data.x(s, 0);
        forwardSample(x, trace);

        // Cross-entropy loss for reporting.
        float max_logit = trace.logits[0];
        for (const auto v : trace.logits)
            max_logit = std::max(max_logit, v);
        float denom = 0.0f;
        for (const auto v : trace.logits)
            denom += std::exp(v - max_logit);
        loss_sum -= trace.logits[static_cast<std::size_t>(data.y[s])] -
                    max_logit - std::log(denom);

        backwardSample(x, data.y[s], trace);
        applyMasksAndStep();
    }
    return loss_sum / static_cast<float>(data.size());
}

double
MlpSnn::accuracy(const Dataset& data) const
{
    Trace trace;
    std::size_t correct = 0;
    for (std::size_t s = 0; s < data.size(); ++s) {
        forwardSample(&data.x(s, 0), trace);
        const auto best = std::max_element(trace.logits.begin(),
                                           trace.logits.end());
        if (static_cast<int>(best - trace.logits.begin()) == data.y[s])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

void
MlpSnn::pruneToSparsity(double target_sparsity)
{
    std::vector<float> magnitudes;
    auto collect = [&](const DenseMatrix<float>& w,
                       const std::vector<std::uint8_t>& mask) {
        for (std::size_t i = 0; i < w.data().size(); ++i)
            if (mask[i])
                magnitudes.push_back(std::fabs(w.data()[i]));
    };
    collect(w1_, mask1_);
    collect(w2_, mask2_);
    collect(w3_, mask3_);

    const std::size_t total =
        mask1_.size() + mask2_.size() + mask3_.size();
    const auto target_pruned = static_cast<std::size_t>(
        target_sparsity * static_cast<double>(total));
    const std::size_t already_pruned = total - magnitudes.size();
    if (target_pruned <= already_pruned)
        return;
    const std::size_t to_prune = target_pruned - already_pruned;
    if (to_prune >= magnitudes.size())
        fatal("pruneToSparsity(%.2f) would remove every weight",
              target_sparsity);

    std::nth_element(magnitudes.begin(),
                     magnitudes.begin() +
                         static_cast<std::ptrdiff_t>(to_prune),
                     magnitudes.end());
    const float threshold =
        magnitudes[to_prune];

    auto apply = [&](DenseMatrix<float>& w,
                     std::vector<std::uint8_t>& mask) {
        for (std::size_t i = 0; i < w.data().size(); ++i) {
            if (mask[i] && std::fabs(w.data()[i]) < threshold) {
                mask[i] = 0;
                w.data()[i] = 0.0f;
            }
        }
    };
    apply(w1_, mask1_);
    apply(w2_, mask2_);
    apply(w3_, mask3_);
}

void
MlpSnn::rewindWeights()
{
    auto rewind = [&](DenseMatrix<float>& w,
                      const DenseMatrix<float>& init,
                      DenseMatrix<float>& m,
                      const std::vector<std::uint8_t>& mask) {
        for (std::size_t i = 0; i < w.data().size(); ++i) {
            w.data()[i] = mask[i] ? init.data()[i] : 0.0f;
            m.data()[i] = 0.0f;
        }
    };
    rewind(w1_, w1_init_, m1_, mask1_);
    rewind(w2_, w2_init_, m2_, mask2_);
    rewind(w3_, w3_init_, m3_, mask3_);
}

double
MlpSnn::weightSparsity() const
{
    std::size_t pruned = 0;
    const std::size_t total =
        mask1_.size() + mask2_.size() + mask3_.size();
    for (const auto m : mask1_)
        pruned += m == 0;
    for (const auto m : mask2_)
        pruned += m == 0;
    for (const auto m : mask3_)
        pruned += m == 0;
    return static_cast<double>(pruned) / static_cast<double>(total);
}

std::size_t
MlpSnn::maskLowActivityHidden(const Dataset& calib, int max_spikes,
                              double tolerance)
{
    Trace trace;
    std::vector<std::size_t> active_samples(config_.hidden, 0);
    for (std::size_t s = 0; s < calib.size(); ++s) {
        forwardSample(&calib.x(s, 0), trace);
        for (std::size_t h = 0; h < config_.hidden; ++h) {
            int count = 0;
            for (int t = 0; t < config_.timesteps; ++t)
                count += trace.s1[static_cast<std::size_t>(t)][h] != 0.0f;
            if (count > max_spikes)
                ++active_samples[h];
        }
    }
    const auto budget = static_cast<std::size_t>(
        tolerance * static_cast<double>(calib.size()));
    std::size_t masked = 0;
    for (std::size_t h = 0; h < config_.hidden; ++h) {
        if (neuron_mask_[h] && active_samples[h] <= budget) {
            neuron_mask_[h] = 0;
            ++masked;
        }
    }
    return masked;
}

void
MlpSnn::clearNeuronMask()
{
    std::fill(neuron_mask_.begin(), neuron_mask_.end(), 1);
}

SpikeActivityStats
MlpSnn::hiddenActivity(const Dataset& data) const
{
    Trace trace;
    std::uint64_t spikes = 0;
    std::uint64_t silent = 0;
    std::uint64_t single = 0;
    const std::uint64_t neurons =
        static_cast<std::uint64_t>(data.size()) * config_.hidden;
    for (std::size_t s = 0; s < data.size(); ++s) {
        forwardSample(&data.x(s, 0), trace);
        for (std::size_t h = 0; h < config_.hidden; ++h) {
            int count = 0;
            for (int t = 0; t < config_.timesteps; ++t)
                count += trace.s1[static_cast<std::size_t>(t)][h] != 0.0f;
            spikes += static_cast<std::uint64_t>(count);
            silent += count == 0;
            single += count == 1;
        }
    }
    SpikeActivityStats stats;
    stats.spike_sparsity =
        1.0 - static_cast<double>(spikes) /
                  static_cast<double>(neurons * config_.timesteps);
    stats.silent_ratio =
        static_cast<double>(silent) / static_cast<double>(neurons);
    stats.single_spike_ratio =
        static_cast<double>(single) / static_cast<double>(neurons);
    return stats;
}

SpikeTensor
MlpSnn::exportHiddenSpikes(const Dataset& data,
                           std::size_t max_samples) const
{
    const std::size_t samples = std::min(max_samples, data.size());
    SpikeTensor spikes(samples, config_.hidden, config_.timesteps);
    Trace trace;
    for (std::size_t s = 0; s < samples; ++s) {
        forwardSample(&data.x(s, 0), trace);
        for (int t = 0; t < config_.timesteps; ++t)
            for (std::size_t h = 0; h < config_.hidden; ++h)
                if (trace.s1[static_cast<std::size_t>(t)][h] != 0.0f)
                    spikes.setSpike(s, h, t);
    }
    return spikes;
}

DenseMatrix<std::int8_t>
MlpSnn::exportQuantizedW2() const
{
    float max_abs = 0.0f;
    for (const auto v : w2_.data())
        max_abs = std::max(max_abs, std::fabs(v));
    DenseMatrix<std::int8_t> q(w2_.rows(), w2_.cols(), 0);
    if (max_abs == 0.0f)
        return q;
    const float scale = 127.0f / max_abs;
    for (std::size_t r = 0; r < w2_.rows(); ++r)
        for (std::size_t c = 0; c < w2_.cols(); ++c) {
            q(r, c) = static_cast<std::int8_t>(
                std::lround(w2_(r, c) * scale));
        }
    return q;
}

} // namespace loas
