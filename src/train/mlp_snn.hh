/**
 * @file
 * Training substrate: a direct-coded MLP SNN trained with
 * backpropagation-through-time and a surrogate gradient (Section II-A2
 * of the paper), with lottery-ticket-style iterative magnitude pruning
 * (train, prune, rewind) and the paper's fine-tuned preprocessing
 * (mask low-activity pre-synaptic neurons, then fine-tune).
 *
 * Architecture: input -> Linear -> LIF -> Linear -> LIF -> Linear,
 * with the analog input presented at every timestep (direct coding)
 * and the output logits accumulated across timesteps.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"
#include "train/dataset.hh"

namespace loas {

/** Hyper-parameters of the MLP SNN. */
struct MlpSnnConfig
{
    std::size_t inputs = 32;
    std::size_t hidden = 96;
    int classes = 8;
    int timesteps = 4;
    float v_th = 1.0f;
    float tau = 0.5f;            // membrane leak
    float surrogate_alpha = 4.0f; // surrogate-gradient sharpness
    float lr = 0.02f;
    float momentum = 0.9f;
};

/** Firing statistics of the first hidden spike layer. */
struct SpikeActivityStats
{
    double spike_sparsity = 0.0;
    double silent_ratio = 0.0;
    double single_spike_ratio = 0.0;
};

/** Trainable two-hidden-layer spiking MLP. */
class MlpSnn
{
  public:
    MlpSnn(const MlpSnnConfig& config, std::uint64_t seed);

    /** One epoch of per-sample SGD; returns the mean loss. */
    float trainEpoch(const Dataset& data);

    /** Classification accuracy on a dataset. */
    double accuracy(const Dataset& data) const;

    /**
     * Lottery-ticket step: raise the global weight sparsity to
     * `target_sparsity` by magnitude, masking the smallest weights.
     */
    void pruneToSparsity(double target_sparsity);

    /** Rewind surviving weights to their initialization (LTH). */
    void rewindWeights();

    /** Fraction of weights currently masked out. */
    double weightSparsity() const;

    /**
     * Fine-tuned preprocessing: permanently silence hidden (layer-1)
     * neurons that fire more than `max_spikes` times across the
     * timesteps on at most a `tolerance` fraction of calibration
     * samples (the paper masks neurons "with only one output spike
     * throughout all timesteps"). Returns how many were masked.
     */
    std::size_t maskLowActivityHidden(const Dataset& calib,
                                      int max_spikes = 1,
                                      double tolerance = 0.05);

    /** Remove the neuron mask. */
    void clearNeuronMask();

    /** Firing statistics of the hidden spike layer on a dataset. */
    SpikeActivityStats hiddenActivity(const Dataset& data) const;

    /**
     * Export the layer-2 input spikes of the first `max_samples`
     * samples as an M x hidden x T spike tensor: the bridge from the
     * training substrate to the accelerator simulators.
     */
    SpikeTensor exportHiddenSpikes(const Dataset& data,
                                   std::size_t max_samples) const;

    /** Export layer-2 weights quantized to int8. */
    DenseMatrix<std::int8_t> exportQuantizedW2() const;

    const MlpSnnConfig& config() const { return config_; }

  private:
    struct Trace; // per-sample forward record for BPTT

    void forwardSample(const float* x, Trace& trace) const;
    void backwardSample(const float* x, int label, const Trace& trace);
    void applyMasksAndStep();

    MlpSnnConfig config_;

    // Weights, their initial snapshot (for rewind), prune masks and
    // momentum buffers. w1: in x hid, w2: hid x hid, w3: hid x classes.
    DenseMatrix<float> w1_, w2_, w3_;
    DenseMatrix<float> w1_init_, w2_init_, w3_init_;
    DenseMatrix<float> m1_, m2_, m3_; // momentum
    DenseMatrix<float> g1_, g2_, g3_; // gradient scratch
    std::vector<std::uint8_t> mask1_, mask2_, mask3_;

    std::vector<std::uint8_t> neuron_mask_; // layer-1 neurons kept
    std::uint64_t epoch_seed_;
};

} // namespace loas
