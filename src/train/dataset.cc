#include "train/dataset.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace loas {

Dataset
makeClusterDataset(std::size_t samples, std::size_t features, int classes,
                   double noise, std::uint64_t seed)
{
    if (classes < 2)
        fatal("dataset needs at least 2 classes, got %d", classes);
    Rng rng(seed);

    // Random cluster centers, normalized onto the unit sphere so class
    // separation is controlled by `noise` alone.
    DenseMatrix<float> centers(static_cast<std::size_t>(classes),
                               features, 0.0f);
    for (int c = 0; c < classes; ++c) {
        double norm = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            const double v = rng.normal();
            centers(static_cast<std::size_t>(c), f) =
                static_cast<float>(v);
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (std::size_t f = 0; f < features; ++f)
            centers(static_cast<std::size_t>(c), f) /=
                static_cast<float>(norm);
    }

    Dataset data;
    data.x = DenseMatrix<float>(samples, features, 0.0f);
    data.y.resize(samples);
    data.features = features;
    data.classes = classes;
    for (std::size_t s = 0; s < samples; ++s) {
        const int label = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(classes)));
        data.y[s] = label;
        for (std::size_t f = 0; f < features; ++f) {
            data.x(s, f) =
                centers(static_cast<std::size_t>(label), f) +
                static_cast<float>(rng.normal(0.0, noise));
        }
    }
    return data;
}

std::pair<Dataset, Dataset>
splitDataset(const Dataset& data, double train_fraction)
{
    const std::size_t train_count = static_cast<std::size_t>(
        static_cast<double>(data.size()) * train_fraction);
    Dataset train, test;
    train.features = test.features = data.features;
    train.classes = test.classes = data.classes;
    const std::size_t test_count = data.size() - train_count;
    train.x = DenseMatrix<float>(train_count, data.features, 0.0f);
    test.x = DenseMatrix<float>(test_count, data.features, 0.0f);
    train.y.resize(train_count);
    test.y.resize(test_count);
    for (std::size_t s = 0; s < data.size(); ++s) {
        if (s < train_count) {
            for (std::size_t f = 0; f < data.features; ++f)
                train.x(s, f) = data.x(s, f);
            train.y[s] = data.y[s];
        } else {
            for (std::size_t f = 0; f < data.features; ++f)
                test.x(s - train_count, f) = data.x(s, f);
            test.y[s - train_count] = data.y[s];
        }
    }
    return {train, test};
}

} // namespace loas
