/**
 * @file
 * Synthetic classification dataset for the training substrate: Gaussian
 * clusters with random centers, standing in for the paper's CIFAR
 * images (see DESIGN.md, Substitutions - Fig. 11's claim is a trend,
 * not an absolute accuracy).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/dense_matrix.hh"

namespace loas {

/** A labeled dataset of real-valued feature vectors. */
struct Dataset
{
    DenseMatrix<float> x; // samples x features
    std::vector<int> y;   // class labels
    std::size_t features = 0;
    int classes = 0;

    std::size_t size() const { return y.size(); }
};

/**
 * Draw `samples` points from `classes` Gaussian clusters with random
 * unit-ball centers and the given within-cluster noise.
 */
Dataset makeClusterDataset(std::size_t samples, std::size_t features,
                           int classes, double noise, std::uint64_t seed);

/** Split a dataset into train/test halves (front/back split). */
std::pair<Dataset, Dataset> splitDataset(const Dataset& data,
                                         double train_fraction);

} // namespace loas
