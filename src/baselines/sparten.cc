#include "baselines/sparten.hh"

#include <algorithm>
#include <memory>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/fused_join.hh"
#include "core/scheduler.hh"
#include "mem/memory_system.hh"

namespace loas {

namespace {

constexpr std::uint64_t kBaseA = 0x0000'0000ull;
constexpr std::uint64_t kBaseAMeta = 0x4000'0000ull;
constexpr std::uint64_t kBaseBMeta = 0x8000'0000ull;
constexpr std::uint64_t kBaseBValues = 0xc000'0000ull;

} // namespace

SpartenSim::SpartenSim(const SpartenConfig& config) : config_(config) {}

std::string
SpartenSim::name() const
{
    // Both names stay within std::string's small-string capacity:
    // RunResult carries the accel name by value on the steady-state
    // (zero-allocation) execute path.
    return config_.fused ? "SparTen-SNN(f)" : "SparTen-SNN";
}

std::string
SpartenSim::formatFamily() const
{
    return "sparten-snn";
}

CompiledLayer
SpartenSim::prepare(const LayerData& layer) const
{
    const int timesteps = layer.spec.t;
    const std::size_t m = layer.spikes.rows();
    const std::size_t k = layer.spikes.cols();

    auto art = std::make_shared<SpartenCompiled>();
    art->b = compileWeightColumns(layer.weights);

    // Per-timestep bitmask views of the spike rows, one set per batch
    // input. Rows are independent (row r touches only the T slots
    // t*m + r), so the construction parallelizes per row; each packed
    // word scatters via one ctz per set spike bit.
    art->row_masks.resize(layer.batchSize());
    for (std::size_t b = 0; b < layer.batchSize(); ++b) {
        const SpikeTensor& spikes = layer.input(b);
        auto& masks = art->row_masks[b];
        masks.assign(static_cast<std::size_t>(timesteps) * m,
                     Bitmask());
        parallelFor(m, prepareParallelism(m), [&](std::size_t r) {
            for (int t = 0; t < timesteps; ++t)
                masks[static_cast<std::size_t>(t) * m + r] = Bitmask(k);
            for (std::size_t c = 0; c < k; ++c) {
                TimeWord w = spikes.word(r, c);
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    masks[static_cast<std::size_t>(t) * m + r].set(c);
                }
            }
        });
    }

    // Temporally-packed view of the same rows for the fused datapath,
    // plus the per-row density signal its collapse policy keys on. The
    // artifact carries both views so the fused=0/1 design variants
    // share one compilation (artifacts never depend on hardware
    // options).
    art->packed.reserve(layer.batchSize());
    art->dense_nnz.reserve(layer.batchSize());
    for (std::size_t b = 0; b < layer.batchSize(); ++b) {
        art->packed.push_back(compileSpikeRows(layer.input(b)));
        art->dense_nnz.push_back(
            denseTimewordCounts(art->packed.back(), timesteps));
    }

    std::size_t bytes = art->b.footprintBytes();
    for (const auto& masks : art->row_masks)
        for (const auto& mask : masks)
            bytes += mask.storageBytes();
    for (const auto& packed : art->packed)
        bytes += packed.footprintBytes(timesteps);
    for (const auto& counts : art->dense_nnz)
        bytes += counts.size() * sizeof(std::uint32_t);
    return makeCompiledLayer(layer, formatFamily(), std::move(art),
                             bytes);
}

void
SpartenSim::reserveWorkers(std::size_t workers)
{
    if (scratch_.size() < workers)
        scratch_.resize(workers);
}

RunResult
SpartenSim::executeInput(const CompiledLayer& compiled,
                         std::size_t input, std::size_t worker)
{
    if (compiled.family == kAnnFamily) {
        if (input != 0)
            fatal("layer '%s': ANN compiled layers carry one input, "
                  "got %zu",
                  compiled.spec.name.c_str(), input);
        return executeAnn(compiled, worker);
    }
    const auto& art =
        artifactAs<SpartenCompiled>(compiled, formatFamily());
    if (input >= art.row_masks.size())
        fatal("layer '%s': input %zu of a %zu-input batch",
              compiled.spec.name.c_str(), input, art.row_masks.size());
    const std::vector<Bitmask>& row_masks = art.row_masks[input];
    const int timesteps = compiled.timesteps;
    const std::size_t m = compiled.m;
    const std::size_t k = compiled.k;
    const std::size_t n = compiled.n;
    const std::size_t chunks = ceilDiv(k, config_.chunk_bits);
    const std::size_t row_bytes = ceilDiv<std::size_t>(k, 8);

    const auto& fibers_b = art.b.fibers;
    const auto& ranked_b = art.b.ranked;
    const auto& b_meta_off = art.b.meta_off;
    const auto& b_val_off = art.b.val_off;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= scratch_.size())
        scratch_.resize(worker + 1);
    ExecuteScratch& scratch = scratch_[worker];

    if (!scratch.mem)
        scratch.mem.emplace(config_.cache, config_.dram);
    else
        scratch.mem->reset();
    MemorySystem& mem = *scratch.mem;
    const Scheduler scheduler(m, n, config_.num_pes);

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;
    if (input == 0)
        last_output_.reset(m, n, timesteps);

    scratch.sums.assign(static_cast<std::size_t>(timesteps), 0);
    scratch.correction.assign(static_cast<std::size_t>(timesteps), 0);
    std::vector<std::int32_t>& sums = scratch.sums;
    const CompiledSpikeFibers& packed = art.packed[input];
    const std::vector<std::uint32_t>& dense_nnz = art.dense_nnz[input];
    std::uint64_t dram_bytes_seen = 0;

    // Weight fiber of each column in one wave, broadcast once.
    const auto broadcastWave = [&](const WorkItem* items,
                                   std::size_t count) {
        std::uint64_t prev_col = ~0ull;
        for (std::size_t i = 0; i < count; ++i) {
            const WorkItem& item = items[i];
            if (item.n == prev_col)
                continue;
            prev_col = item.n;
            mem.read(TensorCategory::Meta, kBaseBMeta + b_meta_off[item.n],
                     fibers_b[item.n].metadataBytes());
            mem.read(TensorCategory::Weight,
                     kBaseBValues + b_val_off[item.n],
                     fibers_b[item.n].values.size());
        }
    };

    // Spike-side memory traffic of one item. The joins themselves
    // never touch the memory system, so issuing the reads before (or
    // on another thread than) the join arithmetic leaves the access
    // sequence identical to the interleaved original.
    const auto readsForItem = [&](const WorkItem& item) {
        if (config_.fused) {
            // The compressed row: mask metadata plus the packed
            // temporal words, fetched once for all T timesteps.
            mem.read(TensorCategory::Meta,
                     kBaseAMeta + packed.meta_off[item.m],
                     packed.fibers[item.m].metadataBytes());
            const std::uint64_t value_bytes =
                packed.val_off[item.m + 1] - packed.val_off[item.m];
            if (value_bytes)
                mem.read(TensorCategory::Input,
                         kBaseA + packed.val_off[item.m], value_bytes);
        } else {
            // The raw spike train is bitmask and data at once; every
            // bit of the row is fetched, every timestep again.
            for (int t = 0; t < timesteps; ++t) {
                const auto ts = static_cast<std::size_t>(t);
                mem.read(TensorCategory::Input,
                         kBaseA + (ts * m + item.m) * row_bytes,
                         row_bytes);
            }
        }
    };

    // The pure join work of one item — no memory-system access, no
    // result mutation — into caller-owned accumulator scratch. Safe
    // to run concurrently across items with distinct scratch.
    const auto computeItem = [&](const WorkItem& item,
                                 std::vector<std::int32_t>& jsums,
                                 std::vector<std::int64_t>& jcorr) {
        const WeightFiber& fb = fibers_b[item.n];
        IntraSlot slot;
        if (config_.fused) {
            // Fused temporally-parallel join: the masks are ANDed
            // once, and every match fans its weight out to all T
            // accumulators — or collapses through the pseudo-
            // accumulator when the row's train is dense in time.
            const SpikeFiber& fa = packed.fibers[item.m];
            const bool collapse =
                shouldCollapse(dense_nnz[item.m], fa.nnz(),
                               config_.collapse_threshold);
            const FusedJoinStats stats = fusedTemporalJoin(
                fa, packed.ranked[item.m], fb, ranked_b[item.n],
                timesteps, collapse, jsums.data(), jcorr.data());
            // Both operands are compressed here, so both prefix
            // circuits fire per match (like the ANN datapath).
            slot.fast_prefix_ops = 2 * stats.matches;
            slot.acc_ops = stats.acc_ops;
            slot.correction_ops = stats.correction_ops;
            slot.pe_cycles =
                config_.fusedJoinCycles(chunks, stats.updates());
        } else {
            for (int t = 0; t < timesteps; ++t) {
                const auto ts = static_cast<std::size_t>(t);
                // Accumulate matched weights, one per cycle; a
                // single fast prefix-sum serves the weight side
                // (the spike is its own data). Word-parallel: AND
                // the mask words directly, with the weight offset
                // from the compiled rank table — no materialized
                // AND mask.
                const Bitmask& ma = row_masks[ts * m + item.m];
                std::uint64_t matches = 0;
                std::int32_t acc = 0;
                forEachMatch(ma, ranked_b[item.n],
                             [&](std::size_t, std::size_t b_off) {
                                 acc += fb.values[b_off];
                                 ++matches;
                             });
                jsums[ts] = acc;
                slot.fast_prefix_ops += matches;
                slot.acc_ops += matches;
                slot.pe_cycles +=
                    config_.timestepJoinCycles(chunks, matches);
            }
        }
        slot.spikes = lifAcrossTimesteps(jsums, config_.lif);
        return slot;
    };

    // Ops accounting and output of one item's precomputed join;
    // returns its PE cycles. The per-item mask-scan and LIF charges
    // depend only on the datapath, not on the join's data.
    const auto accountItem = [&](const WorkItem& item,
                                 const IntraSlot& slot) -> std::uint64_t {
        result.ops.mask_and_ops +=
            config_.fused
                ? chunks
                : chunks * static_cast<std::uint64_t>(timesteps);
        result.ops.fast_prefix_ops += slot.fast_prefix_ops;
        result.ops.acc_ops += slot.acc_ops;
        result.ops.correction_ops += slot.correction_ops;
        result.ops.lif_ops += static_cast<std::uint64_t>(timesteps);
        if (input == 0)
            last_output_.setWord(item.m, item.n, slot.spikes);
        return slot.pe_cycles;
    };

    const auto finishWave = [&](std::uint64_t wave_cycles) {
        wave_cycles += config_.wave_overhead_cycles;
        result.compute_cycles += wave_cycles;

        const std::uint64_t dram_now = mem.dramBytes();
        result.total_cycles += std::max(
            wave_cycles, mem.dramCyclesFor(dram_now - dram_bytes_seen));
        dram_bytes_seen = dram_now;
    };

    const int layer_threads = layerThreads();
    if (layer_threads <= 1 ||
        scheduler.totalItems() < kIntraMinItems) {
        // Serial reference path.
        for (std::size_t w = 0; w < scheduler.waveCount(); ++w) {
            scheduler.wave(w, scratch.items);
            const auto& items = scratch.items;
            broadcastWave(items.data(), items.size());
            std::uint64_t wave_cycles = 0;
            for (const auto& item : items) {
                readsForItem(item);
                const IntraSlot slot =
                    computeItem(item, sums, scratch.correction);
                wave_cycles =
                    std::max(wave_cycles, accountItem(item, slot));
            }
            finishWave(wave_cycles);
        }
    } else {
        // Intra-layer parallel path: phase A joins one block of waves
        // across transient workers (per-worker accumulator scratch,
        // per-item slots); phase B replays the block's waves serially
        // in original order — memory traffic and accounting exactly as
        // the serial path issues them. See LoasSim::executeInput.
        IntraScratch& intra = scratch.intra;
        const auto threads_sz =
            static_cast<std::size_t>(layer_threads);
        if (intra.worker_sums.size() < threads_sz) {
            intra.worker_sums.resize(threads_sz);
            intra.worker_correction.resize(threads_sz);
        }
        for (std::size_t i = 0; i < threads_sz; ++i) {
            intra.worker_sums[i].assign(
                static_cast<std::size_t>(timesteps), 0);
            intra.worker_correction[i].assign(
                static_cast<std::size_t>(timesteps), 0);
        }
        std::size_t w = 0;
        while (w < scheduler.waveCount()) {
            intra.block_items.clear();
            intra.wave_sizes.clear();
            while (w < scheduler.waveCount() &&
                   intra.block_items.size() < kIntraBlockItems) {
                scheduler.wave(w, scratch.items);
                intra.wave_sizes.push_back(scratch.items.size());
                intra.block_items.insert(intra.block_items.end(),
                                         scratch.items.begin(),
                                         scratch.items.end());
                ++w;
            }
            if (intra.slots.size() < intra.block_items.size())
                intra.slots.resize(intra.block_items.size());
            parallelForWorkers(
                intra.block_items.size(), layer_threads,
                [&](std::size_t intra_worker, std::size_t i) {
                    intra.slots[i] = computeItem(
                        intra.block_items[i],
                        intra.worker_sums[intra_worker],
                        intra.worker_correction[intra_worker]);
                });
            std::size_t cursor = 0;
            for (const std::size_t wave_size : intra.wave_sizes) {
                broadcastWave(intra.block_items.data() + cursor,
                              wave_size);
                std::uint64_t wave_cycles = 0;
                for (std::size_t i = 0; i < wave_size; ++i) {
                    const WorkItem& item =
                        intra.block_items[cursor + i];
                    readsForItem(item);
                    wave_cycles = std::max(
                        wave_cycles,
                        accountItem(item, intra.slots[cursor + i]));
                }
                finishWave(wave_cycles);
                cursor += wave_size;
            }
        }
    }

    // Outputs leave as raw spike trains, timestep-major like the input.
    mem.streamWrite(TensorCategory::Output,
                    ceilDiv<std::uint64_t>(
                        m * n * static_cast<std::size_t>(timesteps), 8));
    mem.flushCache();
    result.total_cycles +=
        mem.dramCyclesFor(mem.dramBytes() - dram_bytes_seen);

    result.dram_cycles = mem.dramCycles();
    result.traffic = mem.stats();
    result.cache_hits = mem.cacheHits();
    result.cache_misses = mem.cacheMisses();
    return result;
}

CompiledLayer
SpartenSim::prepareAnn(const AnnLayerData& layer) const
{
    const std::size_t m = layer.acts.rows();
    const std::size_t k = layer.acts.cols();
    const std::size_t n = layer.weights.cols();
    if (layer.weights.rows() != k)
        fatal("layer '%s': A is %zux%zu but B is %zux%zu",
              layer.spec.name.c_str(), m, k, layer.weights.rows(), n);

    // Both operands compressed as bitmask + int8 values, through the
    // same compiled-operand helpers the SNN prepare phase uses.
    std::vector<WeightFiber> act_fibers;
    act_fibers.reserve(m);
    for (std::size_t r = 0; r < m; ++r) {
        WeightFiber f;
        f.mask = Bitmask(k);
        for (std::size_t c = 0; c < k; ++c)
            if (layer.acts(r, c) != 0) {
                f.mask.set(c);
                f.values.push_back(layer.acts(r, c));
            }
        act_fibers.push_back(std::move(f));
    }
    auto art = std::make_shared<SpartenAnnCompiled>();
    art->a = compileWeightFibers(std::move(act_fibers));
    art->b = compileWeightColumns(layer.weights);

    CompiledLayer out;
    out.spec = layer.spec;
    out.family = kAnnFamily;
    out.m = m;
    out.k = k;
    out.n = n;
    out.timesteps = 1;
    out.batch = 1;
    out.bytes = art->a.footprintBytes() + art->b.footprintBytes();
    out.artifact = std::move(art);
    return out;
}

RunResult
SpartenSim::executeAnn(const CompiledLayer& compiled, std::size_t worker)
{
    const auto& art = artifactAs<SpartenAnnCompiled>(compiled, kAnnFamily);
    const std::size_t m = compiled.m;
    const std::size_t k = compiled.k;
    const std::size_t n = compiled.n;
    const std::size_t chunks = ceilDiv(k, config_.chunk_bits);

    const auto& fibers_a = art.a.fibers;
    const auto& fibers_b = art.b.fibers;
    const auto& a_meta_off = art.a.meta_off;
    const auto& a_val_off = art.a.val_off;
    const auto& b_meta_off = art.b.meta_off;
    const auto& b_val_off = art.b.val_off;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= scratch_.size())
        scratch_.resize(worker + 1);
    ExecuteScratch& scratch = scratch_[worker];
    if (!scratch.mem)
        scratch.mem.emplace(config_.cache, config_.dram);
    else
        scratch.mem->reset();
    MemorySystem& mem = *scratch.mem;
    const Scheduler scheduler(m, n, config_.num_pes);

    RunResult result;
    result.accel = "SparTen-ANN";
    result.workload = compiled.spec.name;

    std::uint64_t dram_bytes_seen = 0;
    for (std::size_t w = 0; w < scheduler.waveCount(); ++w) {
        scheduler.wave(w, scratch.items);
        const auto& items = scratch.items;
        std::uint64_t prev_col = ~0ull;
        for (const auto& item : items) {
            if (item.n == prev_col)
                continue;
            prev_col = item.n;
            mem.read(TensorCategory::Meta, kBaseBMeta + b_meta_off[item.n],
                     fibers_b[item.n].metadataBytes());
            mem.read(TensorCategory::Weight,
                     kBaseBValues + b_val_off[item.n],
                     fibers_b[item.n].values.size());
        }

        std::uint64_t wave_cycles = 0;
        for (const auto& item : items) {
            const WeightFiber& fa = fibers_a[item.m];
            const WeightFiber& fb = fibers_b[item.n];
            mem.read(TensorCategory::Meta, kBaseAMeta + a_meta_off[item.m],
                     fa.metadataBytes());
            const std::uint64_t matches = fa.mask.andPopcount(fb.mask);
            // Matched activations fetched from the cache.
            mem.read(TensorCategory::Input, kBaseA + a_val_off[item.m],
                     matches);
            result.ops.mask_and_ops += chunks;
            result.ops.fast_prefix_ops += 2 * matches; // both operands
            result.ops.mac_ops += matches;
            const std::uint64_t pe_cycles =
                config_.mask_stream_passes * chunks + matches +
                config_.t_restart_cycles;
            wave_cycles = std::max(wave_cycles, pe_cycles);
        }
        wave_cycles += config_.wave_overhead_cycles;
        result.compute_cycles += wave_cycles;
        const std::uint64_t dram_now = mem.dramBytes();
        result.total_cycles += std::max(
            wave_cycles, mem.dramCyclesFor(dram_now - dram_bytes_seen));
        dram_bytes_seen = dram_now;
    }

    // int8 outputs, compressed on the way out (bitmask + values).
    mem.streamWrite(TensorCategory::Output, m * n);
    mem.streamWrite(TensorCategory::Meta, ceilDiv<std::uint64_t>(m * n, 8));
    mem.flushCache();
    result.total_cycles +=
        mem.dramCyclesFor(mem.dramBytes() - dram_bytes_seen);

    result.dram_cycles = mem.dramCycles();
    result.traffic = mem.stats();
    result.cache_hits = mem.cacheHits();
    result.cache_misses = mem.cacheMisses();
    return result;
}


namespace {

const RegisterAccelerator register_sparten(
    "sparten",
    {"SparTen-SNN inner-join baseline (sequential timesteps; "
     "fused=1 joins all T in one pass, collapse sets its "
     "dense-train threshold)",
     {"pes", "chunk", "fused", "collapse"},
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         SpartenConfig config;
         config.num_pes = opts.getInt("pes", config.num_pes);
         config.chunk_bits = static_cast<std::size_t>(opts.getInt(
             "chunk", static_cast<int>(config.chunk_bits)));
         config.fused = opts.getBool("fused", config.fused);
         config.collapse_threshold = opts.getDouble(
             "collapse", config.collapse_threshold, 0.0, 1.0);
         opts.finish();
         return std::make_unique<SpartenSim>(config);
     }});

} // namespace

} // namespace loas
