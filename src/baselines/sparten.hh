/**
 * @file
 * SparTen-SNN baseline (Section V): the inner-product, inner-join
 * bitmask accelerator of Gondimalla et al. (MICRO'19), stripped of its
 * multipliers and naively running an SNN by processing the T timesteps
 * sequentially with the temporal dimension at the innermost loop (the
 * paper's conservative baseline construction).
 *
 * Per output neuron and per timestep, the PE streams the raw spike
 * train of row m (the spike train doubles as the bitmask, so all K
 * bits are fetched), ANDs it chunk-by-chunk with the weight column's
 * bitmask, and accumulates matched weights at one match per cycle; a
 * LIF step closes each timestep. Each extra timestep pays a full
 * mask-scan plus an inner-join pipeline restart.
 *
 * The ANN mode (Fig. 18) keeps the original SparTen datapath: both
 * operands compressed as bitmask+values, two fast prefix-sum circuits
 * and int8 MACs, single "timestep".
 */

#pragma once

#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "core/scheduler.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/traffic.hh"
#include "snn/lif.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/** Configuration of the SparTen baseline. */
struct SpartenConfig
{
    int num_pes = 16;
    std::size_t chunk_bits = 128;

    /**
     * Passes over the bitmask chunks per join: SparTen's PE streams
     * both operands' chunk buffers through a single port before the
     * prefix stage consumes them.
     */
    std::uint64_t mask_stream_passes = 2;

    /** Inner-join pipeline restart cost per (neuron, timestep). */
    std::uint64_t t_restart_cycles = 10;

    /** Fixed scheduling overhead per wave. */
    std::uint64_t wave_overhead_cycles = 1;

    /**
     * Fused temporally-parallel joins: AND each weight word once and
     * fan matches out to all T accumulators (one mask scan and one
     * pipeline restart per output neuron instead of T), fed from the
     * temporally-packed compiled operand. Off by default — the
     * sequential datapath is the paper's conservative baseline.
     */
    bool fused = false;

    /**
     * Collapse policy of the fused datapath: a row aggregates
     * timesteps through the pseudo-accumulator when at least this
     * fraction of its stored temporal words is all ones (0 = always
     * collapse, 1 = only fully dense rows; see core/fused_join.hh).
     */
    double collapse_threshold = 0.75;

    CacheConfig cache;
    DramConfig dram;
    LifParams lif;

    /**
     * Cycle model of one sequential-datapath join at a single
     * timestep: stream the mask chunks, drain one match per cycle,
     * restart the pipeline for the next timestep.
     */
    std::uint64_t
    timestepJoinCycles(std::size_t chunks, std::uint64_t matches) const
    {
        return mask_stream_passes * chunks + matches + t_restart_cycles;
    }

    /**
     * Cycle model of one fused join covering all T timesteps: a single
     * mask-chunk stream, one accumulator update per cycle (fan-out
     * adds plus collapse corrections), a single restart.
     */
    std::uint64_t
    fusedJoinCycles(std::size_t chunks, std::uint64_t updates) const
    {
        return mask_stream_passes * chunks + updates + t_restart_cycles;
    }
};

/**
 * Compiled SparTen-SNN operands: B in column-fiber form plus, per
 * batch input, both views of the A operand — the per-timestep bitmask
 * views the sequential-timestep datapath scans (timestep-major: mask
 * of row m at timestep t of input b is `row_masks[b][t * M + m]`) and
 * the temporally-packed spike fibers the fused datapath joins in one
 * pass, with the per-row dense-timeword counts its collapse policy
 * keys on. Artifacts depend only on layer data, so the fused=0/1
 * design variants share one compilation.
 */
struct SpartenCompiled : CompiledArtifact
{
    CompiledWeightFibers b;  // columns of B (shared by the batch)
    std::vector<std::vector<Bitmask>> row_masks;  // per input: T x M
    std::vector<CompiledSpikeFibers> packed;      // per input: M fibers
    /** Per input, per row: stored temporal words that are all ones. */
    std::vector<std::vector<std::uint32_t>> dense_nnz;
};

/**
 * Compiled SparTen ANN operands (family "sparten-ann"): both int8
 * operands in bitmask+values fiber form with their offset tables — the
 * activation rows of A and the weight columns of B. Single input,
 * single "timestep".
 */
struct SpartenAnnCompiled : CompiledArtifact
{
    CompiledWeightFibers a;  // rows of A (non-zero activations)
    CompiledWeightFibers b;  // columns of B
};

/** SparTen running SNN workloads timestep-by-timestep. */
class SpartenSim : public Accelerator
{
  public:
    explicit SpartenSim(const SpartenConfig& config = {});

    std::string name() const override;

    std::string formatFamily() const override;

    CompiledLayer prepare(const LayerData& layer) const override;

    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;

    void reserveWorkers(std::size_t workers) override;

    /** Format family of prepareAnn() artifacts. */
    static constexpr const char* kAnnFamily = "sparten-ann";

    /**
     * Phase 1 of the ANN mode (Fig. 18): compress both int8 operands
     * into bitmask+values fiber form. The compiled layer carries the
     * "sparten-ann" family, so it rides the same CompiledCache /
     * artifact-store machinery as SNN layers; execute() dispatches on
     * the family.
     */
    CompiledLayer prepareAnn(const AnnLayerData& layer) const;

    /** Output spikes of input 0 of the last SNN layer (verification). */
    const SpikeTensor& lastOutput() const { return last_output_; }

  private:
    SpartenConfig config_;
    SpikeTensor last_output_;

    /** The original SparTen datapath over a prepared ANN layer. */
    RunResult executeAnn(const CompiledLayer& compiled,
                         std::size_t worker);

    /** Result of one item's pure join work, precomputed by the
     *  intra-layer phase A and replayed by phase B (see
     *  LoasSim::IntraScratch). Covers both datapaths. */
    struct IntraSlot
    {
        std::uint64_t pe_cycles = 0;
        std::uint64_t fast_prefix_ops = 0;
        std::uint64_t acc_ops = 0;
        std::uint64_t correction_ops = 0;
        TimeWord spikes = 0;
    };

    /** Intra-layer parallel state (see LoasSim::IntraScratch). */
    struct IntraScratch
    {
        std::vector<IntraSlot> slots;         // per block item
        std::vector<std::vector<std::int32_t>> worker_sums;
        std::vector<std::vector<std::int64_t>> worker_correction;
        std::vector<WorkItem> block_items;    // block waves, flattened
        std::vector<std::size_t> wave_sizes;  // wave boundaries
    };

    /** Reusable per-worker execute() working state (see
     *  LoasSim::ExecuteScratch). */
    struct ExecuteScratch
    {
        std::optional<MemorySystem> mem;
        std::vector<std::int32_t> sums;  // one slot per timestep
        std::vector<std::int64_t> correction;  // collapse-path scratch
        std::vector<WorkItem> items;     // current wave
        IntraScratch intra;
    };
    std::vector<ExecuteScratch> scratch_;
};

} // namespace loas
