#include "baselines/gamma.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "mem/memory_system.hh"
#include "tensor/compress.hh"

namespace loas {

namespace {

/** Expected non-zero count of a merged output row. */
std::uint64_t
expectedRowOccupancy(std::size_t n, double weight_density,
                     std::uint64_t fibers_merged)
{
    if (weight_density >= 1.0 || fibers_merged == 0)
        return fibers_merged == 0 ? 0 : n;
    const double miss =
        std::pow(1.0 - weight_density,
                 static_cast<double>(fibers_merged));
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(n) * (1.0 - miss)));
}

} // namespace

GammaSim::GammaSim(const GammaConfig& config) : config_(config) {}

std::string
GammaSim::name() const
{
    return "Gamma-SNN";
}

std::string
GammaSim::formatFamily() const
{
    return "gamma";
}

CompiledLayer
GammaSim::prepare(const LayerData& layer) const
{
    const int timesteps = layer.spec.t;
    const std::size_t m = layer.spikes.rows();
    const std::size_t k = layer.spikes.cols();

    auto art = std::make_shared<GammaCompiled>();
    art->b = compileWeightRows(layer.weights);
    art->weight_density = 1.0 - layer.weights.sparsity();

    // Per-(timestep, row) merge tasks, one CSR per batch input: the
    // columns whose spike fires and whose B row carries values, in the
    // scheduler's replay order. Built in two per-row-parallel passes
    // (count, then fill) so the CSR comes out identical to the serial
    // t-outer walk: task t*m+r only ever holds row r's columns in
    // ascending order.
    const std::size_t batch = layer.batchSize();
    art->total_spikes.resize(batch);
    art->cols.resize(batch);
    art->ptr.resize(batch);
    std::size_t bytes = art->b.footprintBytes();
    for (std::size_t bi = 0; bi < batch; ++bi) {
        const SpikeTensor& spikes = layer.input(bi);
        auto& cols = art->cols[bi];
        auto& ptr = art->ptr[bi];
        art->total_spikes[bi] = spikes.countSpikes();

        const std::size_t n_tasks =
            static_cast<std::size_t>(timesteps) * m;
        std::vector<std::uint64_t> sizes(n_tasks, 0);
        parallelFor(m, prepareParallelism(m), [&](std::size_t r) {
            for (std::size_t c = 0; c < k; ++c) {
                if (art->b.fibers[c].values.empty())
                    continue;
                TimeWord w = spikes.word(r, c);
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    ++sizes[static_cast<std::size_t>(t) * m + r];
                }
            }
        });
        ptr.resize(n_tasks + 1);
        ptr[0] = 0;
        for (std::size_t i = 0; i < n_tasks; ++i)
            ptr[i + 1] = ptr[i] + sizes[i];
        cols.resize(ptr[n_tasks]);
        parallelFor(m, prepareParallelism(m), [&](std::size_t r) {
            std::array<std::uint64_t, kMaxTimesteps> cursor{};
            for (std::size_t c = 0; c < k; ++c) {
                if (art->b.fibers[c].values.empty())
                    continue;
                TimeWord w = spikes.word(r, c);
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    const std::size_t task =
                        static_cast<std::size_t>(t) * m + r;
                    cols[ptr[task] +
                         cursor[static_cast<std::size_t>(t)]++] =
                        static_cast<std::uint32_t>(c);
                }
            }
        });
        bytes += cols.size() * sizeof(std::uint32_t) +
                 ptr.size() * sizeof(std::uint64_t);
    }

    return makeCompiledLayer(layer, formatFamily(), std::move(art),
                             bytes);
}

void
GammaSim::reserveWorkers(std::size_t workers)
{
    if (scratch_.size() < workers)
        scratch_.resize(workers);
}

RunResult
GammaSim::executeInput(const CompiledLayer& compiled, std::size_t input,
                       std::size_t worker)
{
    if (compiled.family == kAnnFamily) {
        if (input != 0)
            fatal("layer '%s': ANN compiled layers carry one input, "
                  "got %zu",
                  compiled.spec.name.c_str(), input);
        return executeAnn(compiled, worker);
    }
    const auto& art = artifactAs<GammaCompiled>(compiled, formatFamily());
    if (input >= art.cols.size())
        fatal("layer '%s': input %zu of a %zu-input batch",
              compiled.spec.name.c_str(), input, art.cols.size());
    const std::vector<std::uint32_t>& task_cols = art.cols[input];
    const std::vector<std::uint64_t>& task_ptr = art.ptr[input];
    const int timesteps = compiled.timesteps;
    const std::size_t m = compiled.m;
    const std::size_t k = compiled.k;
    const std::size_t n = compiled.n;
    const double weight_density = art.weight_density;
    const auto& fibers_b = art.b.fibers;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= scratch_.size())
        scratch_.resize(worker + 1);
    ExecuteScratch& scratch = scratch_[worker];

    if (!scratch.mem)
        scratch.mem.emplace(config_.cache, config_.dram);
    else
        scratch.mem->reset();
    MemorySystem& mem = *scratch.mem;

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;

    // A rows stream in once per timestep as per-spike CSR metadata.
    mem.streamRead(
        TensorCategory::Meta,
        ceilDiv<std::uint64_t>(
            art.total_spikes[input] *
                static_cast<std::uint64_t>(config_.coord_bits),
            8) +
            4 * (m + 1) * static_cast<std::uint64_t>(timesteps));

    // Gamma's row-window scheduler achieves near-perfect B-row reuse
    // through the FiberCache: each distinct row crosses DRAM once per
    // layer and is served on-chip afterwards.
    scratch.fetched.assign(k, false);
    std::vector<bool>& fetched = scratch.fetched;
    std::uint64_t row_uses = 0;
    std::uint64_t distinct_rows = 0;
    auto fetch_row = [&](std::size_t c, std::size_t nnz_b) {
        if (!fetched[c]) {
            fetched[c] = true;
            ++distinct_rows;
            mem.streamRead(TensorCategory::Meta,
                           fibers_b[c].metadataBytes());
            mem.streamRead(TensorCategory::Weight, nnz_b);
        }
        mem.scratchRead(TensorCategory::Meta,
                        fibers_b[c].metadataBytes());
        mem.scratchRead(TensorCategory::Weight, nnz_b);
        ++row_uses;
    };

    std::uint64_t pe_work_cycles = 0; // summed over all (t, row) tasks
    for (int t = 0; t < timesteps; ++t) {
        for (std::size_t r = 0; r < m; ++r) {
            // The compiled merge task of this (timestep, row): columns
            // with a spike set and a non-empty B row.
            const std::size_t task = static_cast<std::size_t>(t) * m + r;
            std::uint64_t nnz_a = 0;
            std::uint64_t updates = 0;
            for (std::uint64_t i = task_ptr[task];
                 i < task_ptr[task + 1]; ++i) {
                const std::size_t c = task_cols[i];
                const std::size_t nnz_b = fibers_b[c].values.size();
                ++nnz_a;
                updates += nnz_b;
                fetch_row(c, nnz_b);
            }
            if (nnz_a == 0)
                continue;

            // Radix-limited merge: extra rounds re-read and re-write
            // the partial output row in the FiberCache.
            const std::uint64_t rounds = ceilDiv<std::uint64_t>(
                nnz_a, static_cast<std::uint64_t>(config_.merge_radix));
            const std::uint64_t occupancy =
                expectedRowOccupancy(n, weight_density, nnz_a);
            const std::uint64_t repass_elems =
                (rounds > 1 ? rounds - 1 : 0) * occupancy;

            mem.scratchRead(TensorCategory::Psum, updates * 4);
            mem.scratchWrite(TensorCategory::Psum, updates * 4);
            mem.scratchRead(TensorCategory::Psum, repass_elems * 4);
            mem.scratchWrite(TensorCategory::Psum, repass_elems * 4);

            result.ops.merge_ops += updates + repass_elems;
            result.ops.acc_ops += updates;
            pe_work_cycles +=
                updates * config_.merge_cycles_per_update +
                repass_elems + nnz_a * config_.fiber_switch_cycles;
        }
    }

    // 16 PEs process rows in parallel; tasks are plentiful, so the
    // balanced approximation holds.
    std::uint64_t compute_cycles = ceilDiv<std::uint64_t>(
        pe_work_cycles, static_cast<std::uint64_t>(config_.num_pes));

    // LIF and output write-back (raw spike trains).
    result.ops.lif_ops += static_cast<std::uint64_t>(m) * n *
                          static_cast<std::uint64_t>(timesteps);
    compute_cycles += ceilDiv<std::uint64_t>(
        static_cast<std::uint64_t>(m) * n,
        static_cast<std::uint64_t>(config_.num_pes));
    mem.streamWrite(TensorCategory::Output,
                    ceilDiv<std::uint64_t>(
                        m * n * static_cast<std::size_t>(timesteps), 8));
    mem.flushCache();

    result.compute_cycles = compute_cycles;
    result.dram_cycles = mem.dramCycles();
    result.total_cycles = std::max(compute_cycles, result.dram_cycles);
    result.traffic = mem.stats();
    // FiberCache behavior: one miss per distinct row, hits afterwards.
    result.cache_misses = distinct_rows;
    result.cache_hits = row_uses - distinct_rows;
    return result;
}

CompiledLayer
GammaSim::prepareAnn(const AnnLayerData& layer) const
{
    const std::size_t m = layer.acts.rows();
    const std::size_t k = layer.acts.cols();
    const std::size_t n = layer.weights.cols();
    if (layer.weights.rows() != k)
        fatal("layer '%s': A is %zux%zu but B is %zux%zu",
              layer.spec.name.c_str(), m, k, layer.weights.rows(), n);

    auto art = std::make_shared<GammaAnnCompiled>();
    art->b = compileWeightRows(layer.weights);
    art->weight_density = 1.0 - layer.weights.sparsity();

    // Per-row merge tasks in CSR form: the columns whose activation is
    // non-zero and whose B row carries values, ascending — exactly the
    // serial walk order of the merger. nnz_acts counts every non-zero
    // activation (they all stream in, mergeable or not).
    art->ptr.resize(m + 1);
    art->ptr[0] = 0;
    for (std::size_t r = 0; r < m; ++r) {
        std::uint64_t count = 0;
        for (std::size_t c = 0; c < k; ++c) {
            if (layer.acts(r, c) == 0)
                continue;
            ++art->nnz_acts;
            if (!art->b.fibers[c].values.empty())
                ++count;
        }
        art->ptr[r + 1] = art->ptr[r] + count;
    }
    art->cols.resize(art->ptr[m]);
    std::uint64_t cursor = 0;
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < k; ++c)
            if (layer.acts(r, c) != 0 &&
                !art->b.fibers[c].values.empty())
                art->cols[cursor++] = static_cast<std::uint32_t>(c);

    CompiledLayer out;
    out.spec = layer.spec;
    out.family = kAnnFamily;
    out.m = m;
    out.k = k;
    out.n = n;
    out.timesteps = 1;
    out.batch = 1;
    out.bytes = art->b.footprintBytes() +
                art->cols.size() * sizeof(std::uint32_t) +
                art->ptr.size() * sizeof(std::uint64_t);
    out.artifact = std::move(art);
    return out;
}

RunResult
GammaSim::executeAnn(const CompiledLayer& compiled, std::size_t worker)
{
    const auto& art = artifactAs<GammaAnnCompiled>(compiled, kAnnFamily);
    const std::size_t m = compiled.m;
    const std::size_t k = compiled.k;
    const std::size_t n = compiled.n;
    const double weight_density = art.weight_density;
    const auto& fibers_b = art.b.fibers;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= scratch_.size())
        scratch_.resize(worker + 1);
    ExecuteScratch& scratch = scratch_[worker];
    if (!scratch.mem)
        scratch.mem.emplace(config_.cache, config_.dram);
    else
        scratch.mem->reset();
    MemorySystem& mem = *scratch.mem;

    RunResult result;
    result.accel = "Gamma-ANN";
    result.workload = compiled.spec.name;

    // Activations stream once: per-nonzero coordinate + int8 value.
    mem.streamRead(TensorCategory::Input, art.nnz_acts);
    mem.streamRead(
        TensorCategory::Meta,
        ceilDiv<std::uint64_t>(
            art.nnz_acts * static_cast<std::uint64_t>(config_.coord_bits),
            8) +
            4 * (m + 1));

    scratch.fetched.assign(k, false);
    std::vector<bool>& fetched = scratch.fetched;
    std::uint64_t row_uses = 0;
    std::uint64_t distinct_rows = 0;
    auto fetch_row = [&](std::size_t c, std::size_t nnz_b) {
        if (!fetched[c]) {
            fetched[c] = true;
            ++distinct_rows;
            mem.streamRead(TensorCategory::Meta,
                           fibers_b[c].metadataBytes());
            mem.streamRead(TensorCategory::Weight, nnz_b);
        }
        mem.scratchRead(TensorCategory::Meta,
                        fibers_b[c].metadataBytes());
        mem.scratchRead(TensorCategory::Weight, nnz_b);
        ++row_uses;
    };

    std::uint64_t pe_work_cycles = 0;
    for (std::size_t r = 0; r < m; ++r) {
        std::uint64_t nnz_a = 0;
        std::uint64_t updates = 0;
        for (std::uint64_t i = art.ptr[r]; i < art.ptr[r + 1]; ++i) {
            const std::size_t c = art.cols[i];
            const std::size_t nnz_b = fibers_b[c].values.size();
            ++nnz_a;
            updates += nnz_b;
            fetch_row(c, nnz_b);
        }
        if (nnz_a == 0)
            continue;
        const std::uint64_t rounds = ceilDiv<std::uint64_t>(
            nnz_a, static_cast<std::uint64_t>(config_.merge_radix));
        const std::uint64_t occupancy =
            expectedRowOccupancy(n, weight_density, nnz_a);
        const std::uint64_t repass_elems =
            (rounds > 1 ? rounds - 1 : 0) * occupancy;

        mem.scratchRead(TensorCategory::Psum, updates * 4);
        mem.scratchWrite(TensorCategory::Psum, updates * 4);
        mem.scratchRead(TensorCategory::Psum, repass_elems * 4);
        mem.scratchWrite(TensorCategory::Psum, repass_elems * 4);

        result.ops.merge_ops += updates + repass_elems;
        result.ops.mac_ops += updates;
        pe_work_cycles += updates * config_.merge_cycles_per_update +
                          repass_elems +
                          nnz_a * config_.fiber_switch_cycles;
    }

    std::uint64_t compute_cycles = ceilDiv<std::uint64_t>(
        pe_work_cycles, static_cast<std::uint64_t>(config_.num_pes));

    // int8 outputs written back once.
    mem.streamWrite(TensorCategory::Output, m * n);
    mem.flushCache();

    result.compute_cycles = compute_cycles;
    result.dram_cycles = mem.dramCycles();
    result.total_cycles = std::max(compute_cycles, result.dram_cycles);
    result.traffic = mem.stats();
    result.cache_misses = distinct_rows;
    result.cache_hits = row_uses - distinct_rows;
    return result;
}


namespace {

const RegisterAccelerator register_gamma(
    "gamma",
    {"Gamma-SNN row-wise merging baseline",
     {"pes", "radix"},
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         GammaConfig config;
         config.num_pes = opts.getInt("pes", config.num_pes);
         config.merge_radix = opts.getInt("radix", config.merge_radix);
         opts.finish();
         return std::make_unique<GammaSim>(config);
     }});

} // namespace

} // namespace loas
