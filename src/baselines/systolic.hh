/**
 * @file
 * Dense-SNN systolic-array baselines for Fig. 19: PTB (Lee et al.,
 * HPCA'22) and Stellar (Mao et al., HPCA'24), modeled with
 * ScaleSim-style analytical equations for a weight-stationary array
 * (the paper itself used ScaleSim for these baselines).
 *
 * Both are configured as a 16 x 4 array producing 16 full-sum outputs
 * for 4 timesteps in parallel, matching the paper's "fair comparison"
 * setup. Neither exploits weight sparsity (dense weight streaming).
 * PTB processes the timesteps of each time window sequentially inside
 * a column and does not skip zero spikes in the streamed input;
 * Stellar's FS-neuron design is fully temporal-parallel and skips
 * zero spikes.
 */

#pragma once

#include <optional>

#include "accel/accelerator.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/traffic.hh"
#include "snn/lif.hh"

namespace loas {

/** Shared configuration of the systolic baselines. */
struct SystolicConfig
{
    int rows = 16; // output-neuron lanes
    int cols = 4;  // time-window lanes
    CacheConfig cache;
    DramConfig dram;
    LifParams lif;
};

/**
 * Compiled operands of the dense systolic models: the per-input
 * spike-count statistics the analytical equations consume. Dense
 * weight streaming needs no compression, so this is the whole artifact
 * — shared by PTB and Stellar (one "systolic" family).
 */
struct SystolicCompiled : CompiledArtifact
{
    std::vector<std::uint64_t> spikes;  // per input: total spikes of A
    std::vector<std::uint64_t> max_spikes_per_t;  // densest timestep
};

/** Shared prepare phase (and config) of both systolic models. */
class SystolicBase : public Accelerator
{
  public:
    explicit SystolicBase(const SystolicConfig& config);
    std::string formatFamily() const override;
    CompiledLayer prepare(const LayerData& layer) const override;
    void reserveWorkers(std::size_t workers) override;

  protected:
    /** Reusable per-worker execute() memory model (see
     *  LoasSim::ExecuteScratch). */
    MemorySystem& scratchMem(std::size_t worker);

    SystolicConfig config_;

  private:
    std::vector<std::optional<MemorySystem>> mem_scratch_;
};

/** PTB: partially temporal-parallel systolic array. */
class PtbSim : public SystolicBase
{
  public:
    explicit PtbSim(const SystolicConfig& config = {});
    std::string name() const override;
    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;
};

/** Stellar: fully temporal-parallel FS-neuron systolic array. */
class StellarSim : public SystolicBase
{
  public:
    explicit StellarSim(const SystolicConfig& config = {});
    std::string name() const override;
    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;
};

} // namespace loas
