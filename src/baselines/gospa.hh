/**
 * @file
 * GoSPA-SNN baseline (Section V): the outer-product spMspM accelerator
 * of Deng et al. (ISCA'21), multipliers removed, naively running the
 * SNN timestep-by-timestep.
 *
 * Per timestep, the intersection unit streams the non-zero spikes of
 * each column of A (stored as per-timestep CSR with multi-bit
 * coordinates - the conventional compression the paper calls out as
 * inefficient for unary spikes) and applies the corresponding
 * compressed row of B, scattering partial sums into a small on-chip
 * psum memory. Partial-sum matrices that do not fit on-chip spill to
 * DRAM and return for merging (Fig. 5); the extra temporal dimension
 * multiplies the partial-sum working set by T.
 */

#pragma once

#include <optional>

#include "accel/accelerator.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/traffic.hh"
#include "snn/lif.hh"

namespace loas {

/** Configuration of the GoSPA baseline. */
struct GospaConfig
{
    int num_pes = 16;

    /** On-chip partial-sum memory (GoSPA keeps this small). */
    std::uint64_t psum_buffer_bytes = 16 * 1024;

    /**
     * Fraction of the overflowing psum working set that actually
     * round-trips to DRAM per layer; the merger catches the rest
     * in-flight.
     */
    double psum_spill_fraction = 0.15;

    /**
     * Effective DRAM bandwidth divisor for spilled-psum read-modify-
     * write round trips (dependent accesses overlap poorly).
     */
    double psum_spill_bw_divisor = 6.0;

    /** Intersection-unit setup cost per active (timestep, column). */
    std::uint64_t col_setup_cycles = 1;

    /** Spikes the intersection unit can dispatch per cycle. */
    std::uint64_t spike_dispatch_per_cycle = 1;

    /** Coordinate width of the per-spike CSR format (bits). */
    int coord_bits = 12;

    CacheConfig cache;
    DramConfig dram;
    LifParams lif;
};

/**
 * Compiled GoSPA-SNN operands: B in row-fiber form plus, per batch
 * input, the decoupled preprocessing unit's view of A — per-(timestep,
 * column) spike counts of the per-timestep CSC streams
 * (timestep-major: column c at timestep t of input b is
 * `col_spikes[b][t * K + c]`).
 */
struct GospaCompiled : CompiledArtifact
{
    CompiledWeightFibers b;  // rows of B (shared by the batch)
    std::vector<std::vector<std::uint32_t>> col_spikes;  // per input
    std::vector<std::uint64_t> total_spikes;             // per input
};

/** GoSPA running SNN workloads timestep-by-timestep. */
class GospaSim : public Accelerator
{
  public:
    explicit GospaSim(const GospaConfig& config = {});

    std::string name() const override;

    std::string formatFamily() const override;

    CompiledLayer prepare(const LayerData& layer) const override;

    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;

    void reserveWorkers(std::size_t workers) override;

    /** Partial-sum DRAM traffic of input 0 of the last layer (Fig. 5). */
    std::uint64_t lastPsumDramBytes() const { return last_psum_dram_; }

  private:
    GospaConfig config_;
    std::uint64_t last_psum_dram_ = 0;

    /** Reusable per-worker execute() working state (see
     *  LoasSim::ExecuteScratch). */
    std::vector<std::optional<MemorySystem>> mem_scratch_;
};

} // namespace loas
