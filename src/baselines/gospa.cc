#include "baselines/gospa.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "mem/memory_system.hh"

namespace loas {

namespace {

constexpr std::uint64_t kBaseBMeta = 0x8000'0000ull;
constexpr std::uint64_t kBaseBValues = 0xc000'0000ull;

} // namespace

GospaSim::GospaSim(const GospaConfig& config) : config_(config) {}

std::string
GospaSim::name() const
{
    return "GoSPA-SNN";
}

std::string
GospaSim::formatFamily() const
{
    return "gospa";
}

CompiledLayer
GospaSim::prepare(const LayerData& layer) const
{
    const int timesteps = layer.spec.t;
    const std::size_t m = layer.spikes.rows();
    const std::size_t k = layer.spikes.cols();

    auto art = std::make_shared<GospaCompiled>();
    art->b = compileWeightRows(layer.weights);

    // A as per-timestep CSC, one stream per batch input: spike counts
    // per (t, k) column. Columns are independent (column c touches
    // only the T slots t*k + c), so the count parallelizes per column;
    // each packed word contributes one ctz per set spike bit.
    art->col_spikes.resize(layer.batchSize());
    art->total_spikes.assign(layer.batchSize(), 0);
    std::size_t bytes = art->b.footprintBytes();
    for (std::size_t b = 0; b < layer.batchSize(); ++b) {
        const SpikeTensor& spikes = layer.input(b);
        auto& col_spikes = art->col_spikes[b];
        col_spikes.assign(static_cast<std::size_t>(timesteps) * k, 0);
        parallelFor(k, prepareParallelism(k), [&](std::size_t c) {
            for (std::size_t r = 0; r < m; ++r) {
                TimeWord w = spikes.word(r, c);
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    ++col_spikes[static_cast<std::size_t>(t) * k + c];
                }
            }
        });
        for (const auto count : col_spikes)
            art->total_spikes[b] += count;
        bytes += col_spikes.size() * sizeof(std::uint32_t);
    }

    return makeCompiledLayer(layer, formatFamily(), std::move(art),
                             bytes);
}

void
GospaSim::reserveWorkers(std::size_t workers)
{
    if (mem_scratch_.size() < workers)
        mem_scratch_.resize(workers);
}

RunResult
GospaSim::executeInput(const CompiledLayer& compiled, std::size_t input,
                       std::size_t worker)
{
    const auto& art = artifactAs<GospaCompiled>(compiled, formatFamily());
    if (input >= art.col_spikes.size())
        fatal("layer '%s': input %zu of a %zu-input batch",
              compiled.spec.name.c_str(), input, art.col_spikes.size());
    const std::vector<std::uint32_t>& col_spikes = art.col_spikes[input];
    const int timesteps = compiled.timesteps;
    const std::size_t m = compiled.m;
    const std::size_t k = compiled.k;
    const std::size_t n = compiled.n;

    const auto& fibers_b = art.b.fibers;
    const auto& b_meta_off = art.b.meta_off;
    const auto& b_val_off = art.b.val_off;

    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= mem_scratch_.size())
        mem_scratch_.resize(worker + 1);
    std::optional<MemorySystem>& mem_scratch = mem_scratch_[worker];
    if (!mem_scratch)
        mem_scratch.emplace(config_.cache, config_.dram);
    else
        mem_scratch->reset();
    MemorySystem& mem = *mem_scratch;

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;

    // --- Input streaming: A as per-timestep CSC with per-spike coords.
    const std::uint64_t total_spikes = art.total_spikes[input];
    const std::uint64_t coord_bytes = ceilDiv<std::uint64_t>(
        total_spikes * static_cast<std::uint64_t>(config_.coord_bits), 8);
    // Column pointers per timestep plus one coordinate per spike. OP
    // dataflow reads the input exactly once.
    mem.streamRead(TensorCategory::Meta,
                   coord_bytes + 4 * (k + 1) *
                                     static_cast<std::uint64_t>(timesteps));

    // --- Main loop: per timestep, per active column.
    std::uint64_t compute_cycles = 0;
    std::uint64_t updates = 0;
    for (int t = 0; t < timesteps; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        for (std::size_t c = 0; c < k; ++c) {
            const std::uint32_t spikes = col_spikes[ts * k + c];
            if (spikes == 0)
                continue;
            const std::size_t nnz_b = fibers_b[c].values.size();
            if (nnz_b == 0)
                continue;
            // Weight row through the shared cache (reused across
            // timesteps when capacity allows).
            mem.read(TensorCategory::Meta, kBaseBMeta + b_meta_off[c],
                     fibers_b[c].metadataBytes());
            mem.read(TensorCategory::Weight, kBaseBValues + b_val_off[c],
                     nnz_b);

            // Each spike applies the full B row; the 16 accumulators
            // retire up to num_pes updates per cycle, and the
            // intersection unit dispatches a few spikes per cycle.
            const std::uint64_t row_updates =
                static_cast<std::uint64_t>(spikes) * nnz_b;
            updates += row_updates;
            const std::uint64_t apply_cycles = std::max<std::uint64_t>(
                ceilDiv<std::uint64_t>(spikes,
                                       config_.spike_dispatch_per_cycle),
                ceilDiv<std::uint64_t>(
                    row_updates,
                    static_cast<std::uint64_t>(config_.num_pes)));
            compute_cycles += apply_cycles + config_.col_setup_cycles;
            result.ops.encode_ops += spikes; // intersection detection
        }
    }
    result.ops.merge_ops += updates;
    result.ops.acc_ops += updates;
    // Updates accumulate in PE-local registers and write through to
    // the psum memory once per update window.
    mem.scratchWrite(TensorCategory::Psum, updates * 4);

    // --- Partial-sum spill model (Fig. 5): the psum working set is
    // M x N x T x 4B; a fraction of whatever exceeds the on-chip psum
    // memory round-trips to DRAM before reduction completes (the
    // merger catches the rest in-flight).
    const std::uint64_t psum_ws =
        static_cast<std::uint64_t>(m) * n *
        static_cast<std::uint64_t>(timesteps) * 4;
    const std::uint64_t overflow =
        psum_ws > config_.psum_buffer_bytes
            ? psum_ws - config_.psum_buffer_bytes
            : 0;
    const auto spill = static_cast<std::uint64_t>(
        config_.psum_spill_fraction * static_cast<double>(overflow));
    mem.streamWrite(TensorCategory::Psum, spill);
    mem.streamRead(TensorCategory::Psum, spill);
    if (input == 0)
        last_psum_dram_ = 2 * spill;

    // Dependent spill round trips overlap poorly with compute.
    const std::uint64_t spill_stall = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(2 * spill) /
                  (config_.dram.bytes_per_cycle /
                   config_.psum_spill_bw_divisor)));

    // --- LIF and output write-back.
    result.ops.lif_ops += static_cast<std::uint64_t>(m) * n *
                          static_cast<std::uint64_t>(timesteps);
    compute_cycles += ceilDiv<std::uint64_t>(
        static_cast<std::uint64_t>(m) * n,
        static_cast<std::uint64_t>(config_.num_pes));
    mem.streamWrite(TensorCategory::Output,
                    ceilDiv<std::uint64_t>(
                        m * n * static_cast<std::size_t>(timesteps), 8));
    mem.flushCache();

    result.compute_cycles = compute_cycles;
    result.dram_cycles = mem.dramCycles();
    result.total_cycles =
        std::max(compute_cycles, mem.dramCycles()) + spill_stall;
    result.traffic = mem.stats();
    // Output-stationary psum accesses always hit the dedicated psum
    // memory; counting them is what gives GoSPA the lowest miss rate
    // in the paper's Fig. 14.
    result.cache_hits = mem.cacheHits() + updates;
    result.cache_misses = mem.cacheMisses();
    return result;
}


namespace {

const RegisterAccelerator register_gospa(
    "gospa",
    {"GoSPA-SNN sequential-timestep streaming baseline",
     {"pes"},
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         GospaConfig config;
         config.num_pes = opts.getInt("pes", config.num_pes);
         opts.finish();
         return std::make_unique<GospaSim>(config);
     }});

} // namespace

} // namespace loas
