/**
 * @file
 * Gamma-SNN baseline (Section V): the Gustavson's-dataflow spMspM
 * accelerator of Zhang et al. (ASPLOS'21) with a FiberCache, naively
 * running the SNN timestep-by-timestep.
 *
 * Per timestep and output row, the scheduler fetches the compressed B
 * rows selected by the non-zero spikes of the A row and merges them
 * with a radix-limited merger; partial output rows live in the shared
 * FiberCache, so every merge round re-reads and re-writes them
 * on-chip. The sequential temporal dimension multiplies both the
 * merge work and the partial-row SRAM traffic by T (the paper's
 * "13.4x more SRAM traffic" effect), while DRAM traffic stays low -
 * Gustavson's strength.
 */

#pragma once

#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/traffic.hh"
#include "snn/lif.hh"

namespace loas {

/** Configuration of the Gamma baseline. */
struct GammaConfig
{
    int num_pes = 16;

    /** Merger radix: fibers merged per round per PE. */
    int merge_radix = 64;

    /**
     * Merger cost per scattered update (cycles): coordinate compare
     * plus the FiberCache read-modify-write of the partial row.
     */
    std::uint64_t merge_cycles_per_update = 2;

    /** Scheduler cost to switch input fibers. */
    std::uint64_t fiber_switch_cycles = 1;

    /**
     * Coordinate width of the input fiber metadata (bits). Gamma's
     * fibers carry delta-encoded coordinates, far denser than GoSPA's
     * absolute per-spike CSR indices.
     */
    int coord_bits = 4;

    CacheConfig cache;
    DramConfig dram;
    LifParams lif;
};

/**
 * Compiled Gamma-SNN operands: B in row-fiber form plus, per batch
 * input, the scheduler's per-(timestep, output-row) task lists in CSR
 * form — the columns whose spike is set *and* whose B row is
 * non-empty, exactly the fibers the merger consumes. Task t*M+r of
 * input b spans `cols[b][ptr[b][t*M+r], ptr[b][t*M+r+1])`.
 */
struct GammaCompiled : CompiledArtifact
{
    CompiledWeightFibers b;  // rows of B (shared by the batch)
    double weight_density = 0.0;
    std::vector<std::uint64_t> total_spikes;  // per input
    std::vector<std::vector<std::uint32_t>> cols;  // per input
    std::vector<std::vector<std::uint64_t>> ptr;   // per input
};

/**
 * Compiled Gamma ANN operands (family "gamma-ann"): B in row-fiber
 * form plus one per-row CSR task list — the columns whose activation
 * is non-zero *and* whose B row is non-empty, ascending, exactly the
 * fibers the merger consumes. `nnz_acts` counts every non-zero
 * activation (the streamed input bytes), including ones whose B row is
 * empty.
 */
struct GammaAnnCompiled : CompiledArtifact
{
    CompiledWeightFibers b;  // rows of B
    double weight_density = 0.0;
    std::uint64_t nnz_acts = 0;
    std::vector<std::uint32_t> cols;
    std::vector<std::uint64_t> ptr;  // rows + 1 entries
};

/** Gamma running SNN workloads timestep-by-timestep. */
class GammaSim : public Accelerator
{
  public:
    explicit GammaSim(const GammaConfig& config = {});

    std::string name() const override;

    std::string formatFamily() const override;

    CompiledLayer prepare(const LayerData& layer) const override;

    RunResult executeInput(const CompiledLayer& compiled,
                           std::size_t input,
                           std::size_t worker) override;

    void reserveWorkers(std::size_t workers) override;

    /** Format family of prepareAnn() artifacts. */
    static constexpr const char* kAnnFamily = "gamma-ann";

    /**
     * Phase 1 of the ANN mode (Fig. 18): compress B into row fibers
     * and the activations into the per-row merge-task CSR. The
     * compiled layer carries the "gamma-ann" family, riding the same
     * CompiledCache / artifact-store machinery as SNN layers;
     * execute() dispatches on the family.
     */
    CompiledLayer prepareAnn(const AnnLayerData& layer) const;

  private:
    GammaConfig config_;

    /** The original Gamma datapath over a prepared ANN layer. */
    RunResult executeAnn(const CompiledLayer& compiled,
                         std::size_t worker);

    /** Reusable per-worker execute() working state (see
     *  LoasSim::ExecuteScratch). */
    struct ExecuteScratch
    {
        std::optional<MemorySystem> mem;
        std::vector<bool> fetched;  // one flag per B row
    };
    std::vector<ExecuteScratch> scratch_;
};

} // namespace loas
