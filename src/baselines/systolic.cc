#include "baselines/systolic.hh"

#include <algorithm>
#include <array>
#include <memory>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "mem/memory_system.hh"

namespace loas {

namespace {

/** Quantities shared by both systolic models. */
struct LayerShape
{
    std::size_t m, k, n;
    int timesteps;
    std::uint64_t n_tiles;
    std::uint64_t spikes;
    std::uint64_t max_spikes_per_t;
};

/** Tile/shape view of one input of a compiled layer for this array
 *  geometry. */
LayerShape
analyze(const CompiledLayer& compiled, const SystolicCompiled& art,
        int rows, std::size_t input)
{
    if (input >= art.spikes.size())
        fatal("layer '%s': input %zu of a %zu-input batch",
              compiled.spec.name.c_str(), input, art.spikes.size());
    LayerShape s;
    s.m = compiled.m;
    s.k = compiled.k;
    s.n = compiled.n;
    s.timesteps = compiled.timesteps;
    s.n_tiles = ceilDiv<std::uint64_t>(
        s.n, static_cast<std::uint64_t>(rows));
    s.spikes = art.spikes[input];
    s.max_spikes_per_t = art.max_spikes_per_t[input];
    return s;
}

/**
 * Traffic common to PTB and Stellar. `element_steps` is the number of
 * element-dispatch steps the array performs (dense stream length for
 * PTB, spike-gated length for Stellar): each step reads one
 * element-addressed input entry and moves a 16-bit partial sum in and
 * out of the column accumulator buffers.
 */
void
chargeCommonTraffic(MemorySystem& mem, const LayerShape& s,
                    std::uint64_t element_steps)
{
    // Dense int8 weights streamed once per output tile set (weights of
    // a tile stay stationary across all M rows).
    mem.streamRead(TensorCategory::Weight, s.k * s.n);
    mem.scratchWrite(TensorCategory::Weight, s.k * s.n); // array load

    // Input spikes enter DRAM once in packed form.
    const std::uint64_t input_bytes = ceilDiv<std::uint64_t>(
        s.m * s.k * static_cast<std::uint64_t>(s.timesteps), 8);
    mem.streamRead(TensorCategory::Input, input_bytes);

    // Per-step buffer activity: element-addressed input entry plus a
    // 16-bit accumulator read-modify-write.
    mem.scratchRead(TensorCategory::Input, element_steps);
    mem.scratchRead(TensorCategory::Psum, element_steps * 2);
    mem.scratchWrite(TensorCategory::Psum, element_steps * 2);

    // Output spike trains.
    const std::uint64_t outputs =
        static_cast<std::uint64_t>(s.m) * s.n *
        static_cast<std::uint64_t>(s.timesteps);
    mem.streamWrite(TensorCategory::Output,
                    ceilDiv<std::uint64_t>(outputs, 8));
}

/** Small arrays without the 256 KB shared cache idle at lower power. */
constexpr double kSystolicStaticScale = 0.2;

} // namespace

SystolicBase::SystolicBase(const SystolicConfig& config)
    : config_(config)
{
}

std::string
SystolicBase::formatFamily() const
{
    return "systolic";
}

void
SystolicBase::reserveWorkers(std::size_t workers)
{
    if (mem_scratch_.size() < workers)
        mem_scratch_.resize(workers);
}

MemorySystem&
SystolicBase::scratchMem(std::size_t worker)
{
    // Serial-context growth only; batch-parallel callers pre-size the
    // pool through reserveWorkers() before fanning out.
    if (worker >= mem_scratch_.size())
        mem_scratch_.resize(worker + 1);
    std::optional<MemorySystem>& mem = mem_scratch_[worker];
    if (!mem)
        mem.emplace(config_.cache, config_.dram);
    else
        mem->reset();
    return *mem;
}

CompiledLayer
SystolicBase::prepare(const LayerData& layer) const
{
    const std::size_t m = layer.spikes.rows();
    const std::size_t k = layer.spikes.cols();
    const int timesteps = layer.spec.t;

    // Per-timestep spike counts in one pass over the packed words (one
    // ctz per spike instead of one bit test per (r, c, t)), once per
    // batch input.
    auto art = std::make_shared<SystolicCompiled>();
    const std::size_t batch = layer.batchSize();
    art->spikes.assign(batch, 0);
    art->max_spikes_per_t.assign(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) {
        const SpikeTensor& spikes = layer.input(b);
        std::array<std::uint64_t, kMaxTimesteps> counts{};
        for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < k; ++c) {
                TimeWord w = spikes.word(r, c);
                while (w) {
                    const int t = lowestSetBit(w);
                    w &= w - 1;
                    ++counts[static_cast<std::size_t>(t)];
                }
            }
        std::uint64_t max_per_t = 0;
        for (int t = 0; t < timesteps; ++t) {
            art->spikes[b] += counts[static_cast<std::size_t>(t)];
            max_per_t =
                std::max(max_per_t, counts[static_cast<std::size_t>(t)]);
        }
        art->max_spikes_per_t[b] = max_per_t;
    }
    return makeCompiledLayer(layer, formatFamily(), std::move(art),
                             sizeof(SystolicCompiled) +
                                 2 * batch * sizeof(std::uint64_t));
}

PtbSim::PtbSim(const SystolicConfig& config) : SystolicBase(config) {}

std::string
PtbSim::name() const
{
    return "PTB";
}

RunResult
PtbSim::executeInput(const CompiledLayer& compiled, std::size_t input,
                     std::size_t worker)
{
    const auto& art =
        artifactAs<SystolicCompiled>(compiled, formatFamily());
    const LayerShape s = analyze(compiled, art, config_.rows, input);
    MemorySystem& mem = scratchMem(worker);
    // Dense dispatch: every (m, k) position, every timestep column.
    const std::uint64_t element_steps =
        s.n_tiles * static_cast<std::uint64_t>(s.m) * s.k *
        static_cast<std::uint64_t>(s.timesteps);
    chargeCommonTraffic(mem, s, element_steps);

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;
    result.static_scale = kSystolicStaticScale;

    // Each output tile: load weights (K deep), then stream all M rows
    // of K dense elements; no spike skipping. The time windows run in
    // the parallel columns, so the T loop does not multiply the
    // streaming term, but zero spikes are streamed like ones.
    const std::uint64_t fill = static_cast<std::uint64_t>(
        config_.rows + config_.cols - 2);
    const std::uint64_t tile_cycles =
        static_cast<std::uint64_t>(s.k) + fill +
        static_cast<std::uint64_t>(s.m) * s.k;
    result.compute_cycles = s.n_tiles * tile_cycles;

    // Accumulates happen only on actual spikes (clock gating), against
    // every weight lane of the tile.
    result.ops.acc_ops = s.spikes * static_cast<std::uint64_t>(s.n);
    result.ops.lif_ops = static_cast<std::uint64_t>(s.m) * s.n *
                         static_cast<std::uint64_t>(s.timesteps);

    result.dram_cycles = mem.dramCycles();
    result.total_cycles = std::max(result.compute_cycles,
                                   result.dram_cycles);
    result.traffic = mem.stats();
    result.cache_hits = mem.cacheHits();
    result.cache_misses = mem.cacheMisses();
    return result;
}

StellarSim::StellarSim(const SystolicConfig& config)
    : SystolicBase(config)
{
}

std::string
StellarSim::name() const
{
    return "Stellar";
}

RunResult
StellarSim::executeInput(const CompiledLayer& compiled,
                         std::size_t input, std::size_t worker)
{
    const auto& art =
        artifactAs<SystolicCompiled>(compiled, formatFamily());
    const LayerShape s = analyze(compiled, art, config_.rows, input);
    MemorySystem& mem = scratchMem(worker);
    // Spike-gated dispatch: only actual spikes enter the array.
    const std::uint64_t element_steps = s.n_tiles * s.spikes;
    chargeCommonTraffic(mem, s, element_steps);

    RunResult result;
    result.accel = name();
    result.workload = compiled.spec.name;
    result.static_scale = kSystolicStaticScale;

    // Stellar skips zero spikes: the streamed length per column is the
    // spike count of its timestep; columns run in parallel, so the
    // slowest (densest) timestep sets the pace.
    const std::uint64_t fill = static_cast<std::uint64_t>(
        config_.rows + config_.cols - 2);
    const std::uint64_t tile_cycles =
        static_cast<std::uint64_t>(s.k) + fill + s.max_spikes_per_t;
    result.compute_cycles = s.n_tiles * tile_cycles;

    result.ops.acc_ops = s.spikes * static_cast<std::uint64_t>(s.n);
    // FS-neuron accumulate/fire stages.
    result.ops.lif_ops = static_cast<std::uint64_t>(s.m) * s.n *
                         static_cast<std::uint64_t>(s.timesteps);

    result.dram_cycles = mem.dramCycles();
    result.total_cycles = std::max(result.compute_cycles,
                                   result.dram_cycles);
    result.traffic = mem.stats();
    result.cache_hits = mem.cacheHits();
    result.cache_misses = mem.cacheMisses();
    return result;
}


namespace {

SystolicConfig
systolicConfigFromSpec(OptionReader& opts)
{
    SystolicConfig config;
    config.rows = opts.getInt("rows", config.rows);
    config.cols = opts.getInt("cols", config.cols);
    return config;
}

const RegisterAccelerator register_ptb(
    "systolic",
    {"PTB partially temporal-parallel systolic array",
     {"rows", "cols"},
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         const SystolicConfig config = systolicConfigFromSpec(opts);
         opts.finish();
         return std::make_unique<PtbSim>(config);
     }});

const RegisterAccelerator register_stellar(
    "stellar",
    {"Stellar fully temporal-parallel FS-neuron systolic array",
     {"rows", "cols"},
     /*ft_workload=*/false, [](const AccelSpec& spec) {
         OptionReader opts(spec);
         const SystolicConfig config = systolicConfigFromSpec(opts);
         opts.finish();
         return std::make_unique<StellarSim>(config);
     }});

} // namespace

} // namespace loas
