/**
 * @file
 * The `loas_cli serve` daemon: a local stream-socket (AF_UNIX) server
 * speaking the NDJSON protocol of protocol.hh, one thread per
 * connection, all simulation work delegated to the shared JobQueue.
 *
 * Lifecycle: construct (binds and listens — throws std::runtime_error
 * if the path is taken), then run() blocks accepting connections until
 * requestStop() is called — from another thread, from a connection's
 * `shutdown` command, or from a signal handler (requestStop is
 * async-signal-safe: it only write()s to an internal wake pipe).
 *
 * Shutdown order matters for the "drain" guarantee: stop accepting,
 * let the queue finish (or cancel) its jobs, then force-close the
 * connections still blocked in read and join their threads. A client
 * waiting on a job therefore gets its reply before its connection
 * drops; a client merely idle gets EOF.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_queue.hh"

namespace loas {
namespace serve {

/** NDJSON simulation server over a unix socket. */
class Server
{
  public:
    struct Config
    {
        /** Filesystem path of the listening socket (unlinked on
         *  close; a stale file from a dead server is replaced). */
        std::string socket_path;

        JobQueue::Config queue;
    };

    /**
     * Bind + listen and start the job queue; `cache` is the shared
     * compiled-artifact cache (see JobQueue). Throws
     * std::runtime_error on socket errors (path too long for
     * sun_path, address in use by a live server, permissions).
     */
    Server(Config config, CompiledCache* cache = nullptr,
           JobQueue::Runner runner = {});

    /** Stops (non-drain) if still running. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Accept/serve until requestStop(); returns after every
     * connection thread is joined and the socket path is unlinked.
     */
    void run();

    /**
     * Ask run() to return. Async-signal-safe. With `drain`, queued
     * jobs finish and waiting clients get replies first; without,
     * everything in flight is cancelled.
     */
    void requestStop(bool drain = true);

    /** The bound socket path (echo of config). */
    const std::string& socketPath() const { return socket_path_; }

    JobQueue& queue() { return *queue_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void connectionLoop(Connection* connection);
    void serveConnection(int fd);
    /** Join and drop connections whose threads have exited, so a
     *  long-lived daemon doesn't accumulate one fd + one unjoined
     *  thread per client that ever connected. */
    void reapFinishedConnections();
    /** One reply per request line; a `shutdown` command reports
     *  itself via the out-params so the caller can write the reply
     *  BEFORE stopping the server (otherwise the force-close of the
     *  connection races the reply write). */
    std::string handleLine(const std::string& line,
                           bool* shutdown_requested,
                           bool* shutdown_drain);
    std::string handleSubmit(const JsonValue& request);
    std::string handlePoll(const JsonValue& request);
    std::string handleCancel(const JsonValue& request);
    std::string handleStats();
    std::string jobReply(const JobQueue::Result& result) const;

    const std::string socket_path_;
    /** Echoed by `stats` (worker-pool sizing alongside the counters). */
    const JobQueue::Config queue_config_;
    std::unique_ptr<JobQueue> queue_;
    CompiledCache* const cache_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> drain_{true};

    std::mutex connections_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

} // namespace serve
} // namespace loas
