#include "serve/job_queue.hh"

#include <algorithm>
#include <chrono>

#include "api/json.hh"

namespace loas {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start, Clock::time_point end)
{
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

} // namespace

const char*
JobQueue::stateName(State state)
{
    switch (state) {
      case State::Queued:
        return "queued";
      case State::Running:
        return "running";
      case State::Done:
        return "done";
      case State::Cancelled:
        return "cancelled";
      case State::TimedOut:
        return "timeout";
      case State::Failed:
        return "failed";
    }
    return "unknown";
}

bool
JobQueue::isTerminal(State state)
{
    return state != State::Queued && state != State::Running;
}

JobQueue::JobQueue(Config config, CompiledCache* cache, Runner runner)
    : config_(config), cache_(cache), runner_(std::move(runner))
{
    const int workers = std::max(1, config_.workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobQueue::~JobQueue()
{
    shutdown(false);
}

JobQueue::Submitted
JobQueue::submit(const RunSpec& spec)
{
    // Resolve outside the lock; std::invalid_argument propagates to
    // the caller as a bad_request before anything is enqueued.
    SimRequest request = toSimRequest(spec);
    request.threads = config_.engine_threads;
    request.compiled_cache = cache_;

    const std::string dedup = dedupKey(spec);
    const auto now = Clock::now();

    std::lock_guard<std::mutex> lock(mutex_);
    Submitted out;
    if (stopping_) {
        ++counters_.rejected;
        out.error = "shutting_down";
        out.message = "server is shutting down";
        return out;
    }
    ++counters_.submitted;

    const double timeout_ms = spec.timeout_ms > 0
                                  ? spec.timeout_ms
                                  : config_.default_timeout_ms;
    const auto deadlineFor = [&](double ms) {
        return now + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
    };

    if (auto it = inflight_.find(dedup); it != inflight_.end()) {
        // Identical request already queued or running: attach to it.
        // The job now answers for one more submitter, so it obeys the
        // LEAST restrictive of their deadlines, and cancel() needs one
        // vote per attachment before it really cancels.
        const std::shared_ptr<Job>& job = it->second;
        job->deduped = true;
        ++job->attached;
        if (timeout_ms <= 0) {
            job->has_deadline = false;
        } else if (job->has_deadline) {
            const auto deadline = deadlineFor(timeout_ms);
            if (deadline > job->deadline)
                job->deadline = deadline;
        }
        ++counters_.deduped;
        out.accepted = true;
        out.deduped = true;
        out.id = job->id;
        return out;
    }

    if (queue_.size() >= config_.max_depth) {
        ++counters_.rejected;
        out.error = "queue_full";
        out.message = "queue depth limit (" +
                      std::to_string(config_.max_depth) + ") reached";
        return out;
    }

    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = spec;
    job->request = std::move(request);
    job->dedup_key = dedup;
    job->coalesce_key = coalesceKey(spec);
    job->enqueued = now;
    if (timeout_ms > 0) {
        job->has_deadline = true;
        job->deadline = deadlineFor(timeout_ms);
    }

    jobs_.emplace(job->id, job);
    inflight_.emplace(job->dedup_key, job);
    queue_.push_back(job);
    work_cv_.notify_one();

    out.accepted = true;
    out.id = job->id;
    return out;
}

std::optional<JobQueue::Result>
JobQueue::poll(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    enforceDeadlineLocked(it->second);
    return snapshotLocked(*it->second);
}

std::optional<JobQueue::Result>
JobQueue::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    std::shared_ptr<Job> job = it->second;
    while (true) {
        enforceDeadlineLocked(job);
        if (isTerminal(job->state))
            return snapshotLocked(*job);
        if (job->has_deadline)
            done_cv_.wait_until(lock, job->deadline);
        else
            done_cv_.wait(lock);
    }
}

bool
JobQueue::cancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || isTerminal(it->second->state))
        return false;
    // A deduped job answers for several submitters who all hold the
    // same id: each cancel detaches one of them, and only the last
    // detachment cancels the job the others no longer want.
    if (it->second->attached > 1) {
        --it->second->attached;
        return true;
    }
    cancelLocked(it->second, State::Cancelled);
    done_cv_.notify_all();
    return true;
}

JobQueue::Counters
JobQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counters out = counters_;
    out.depth = queue_.size();
    return out;
}

void
JobQueue::shutdown(bool drain)
{
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // A non-drain shutdown always escalates; a drain request
        // never un-escalates one already in progress.
        if (!drain) {
            drain_ = false;
            while (!queue_.empty()) {
                std::shared_ptr<Job> job = queue_.front();
                cancelLocked(job, State::Cancelled);
            }
            // Running groups: trip the engine token; the workers
            // observe SimCancelled (or a natural finish, if the run
            // was already past its last checkpoint) and settle the
            // member states themselves.
            for (auto& [id, job] : jobs_) {
                (void)id;
                if (job->state == State::Running && job->group)
                    job->group->cancel.store(
                        true, std::memory_order_relaxed);
            }
        }
        workers.swap(workers_);
        work_cv_.notify_all();
        done_cv_.notify_all();
    }
    for (auto& worker : workers)
        worker.join();
}

void
JobQueue::workerLoop()
{
    SimEngine engine;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        work_cv_.wait(lock, [this] {
            return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        if (stopping_ && !drain_)
            return;

        const auto dequeued = Clock::now();
        std::shared_ptr<Job> first = queue_.front();
        queue_.pop_front();
        enforceDeadlineLocked(first);
        if (isTerminal(first->state)) {
            done_cv_.notify_all();
            continue;
        }

        auto group = std::make_shared<Group>();
        group->members.push_back(first);
        if (config_.coalesce) {
            for (auto it = queue_.begin(); it != queue_.end();) {
                std::shared_ptr<Job> other = *it;
                if (other->coalesce_key != first->coalesce_key) {
                    ++it;
                    continue;
                }
                it = queue_.erase(it);
                enforceDeadlineLocked(other);
                if (!isTerminal(other->state))
                    group->members.push_back(other);
            }
        }
        if (group->members.size() > 1)
            counters_.coalesced +=
                static_cast<std::uint64_t>(group->members.size() - 1);

        // The merged run: union of the members' accelerator lists in
        // first-seen order; networks/seed/energy are identical across
        // the group by construction of the coalesce key.
        SimRequest merged = first->request;
        merged.cancel = &group->cancel;
        for (std::size_t m = 1; m < group->members.size(); ++m) {
            for (const auto& accel :
                 group->members[m]->request.accels) {
                if (std::find(merged.accels.begin(),
                              merged.accels.end(),
                              accel) == merged.accels.end())
                    merged.accels.push_back(accel);
            }
        }

        for (auto& member : group->members) {
            member->state = State::Running;
            member->group = group;
            member->queue_ms = msSince(member->enqueued, dequeued);
            member->coalesced_with =
                static_cast<int>(group->members.size() - 1);
            ++counters_.running;
        }
        done_cv_.notify_all();

        lock.unlock();
        SimReport report;
        bool cancelled = false;
        std::string error;
        const auto started = Clock::now();
        try {
            report = runner_ ? runner_(merged) : engine.run(merged);
        } catch (const SimCancelled&) {
            cancelled = true;
        } catch (const std::exception& e) {
            error = e.what();
        }
        const double run_ms = msSince(started, Clock::now());
        lock.lock();

        for (auto& member : group->members) {
            if (isTerminal(member->state))
                continue;  // cancelled / timed out mid-run
            member->run_ms = run_ms;
            if (cancelled) {
                finishLocked(member, State::Cancelled);
                continue;
            }
            if (!error.empty()) {
                member->error = error;
                finishLocked(member, State::Failed);
                continue;
            }
            // Slice this member's cells back out of the merged
            // matrix, in the accel-major order its solo run would
            // have produced, and render the report document it would
            // have written.
            SimReport sliced;
            sliced.compile_cache = report.compile_cache;
            sliced.prepare_ms = report.prepare_ms;
            sliced.sim_ms = report.sim_ms;
            for (const auto& accel : member->request.accels) {
                for (const auto& network : member->request.networks) {
                    const SimRun* run =
                        report.find(accel, network.name);
                    if (run != nullptr)
                        sliced.runs.push_back(*run);
                }
            }
            member->compile_ms = report.compile_cache.compile_ms;
            member->sim_ms = report.sim_ms;
            // Throughput this job observed: its own inference count
            // (batch x sliced cells) over the shared run's wall time.
            if (run_ms > 0.0)
                member->inferences_per_s =
                    static_cast<double>(member->request.batch *
                                        sliced.runs.size()) /
                    (run_ms / 1000.0);
            member->cache = report.compile_cache;
            member->report_json = std::make_shared<const std::string>(
                json::toJson(sliced));
            finishLocked(member, State::Done);
        }
        for (auto& member : group->members)
            member->group.reset();
        done_cv_.notify_all();
    }
}

JobQueue::Result
JobQueue::snapshotLocked(const Job& job) const
{
    Result out;
    out.id = job.id;
    out.state = job.state;
    out.deduped = job.deduped;
    out.coalesced_with = job.coalesced_with;
    out.queue_ms = job.queue_ms;
    out.run_ms = job.run_ms;
    out.compile_ms = job.compile_ms;
    out.sim_ms = job.sim_ms;
    out.inferences_per_s = job.inferences_per_s;
    out.cache = job.cache;
    out.report_json = job.report_json;
    out.error = job.error;
    return out;
}

void
JobQueue::finishLocked(std::shared_ptr<Job> job, State state)
{
    if (job->state == State::Running)
        --counters_.running;
    job->state = state;
    switch (state) {
      case State::Done:
        ++counters_.done;
        break;
      case State::Cancelled:
        ++counters_.cancelled;
        break;
      case State::TimedOut:
        ++counters_.timed_out;
        break;
      case State::Failed:
        ++counters_.failed;
        break;
      default:
        break;
    }
    if (auto it = inflight_.find(job->dedup_key);
        it != inflight_.end() && it->second == job)
        inflight_.erase(it);
    finished_order_.push_back(job->id);
    while (finished_order_.size() > config_.max_finished) {
        jobs_.erase(finished_order_.front());
        finished_order_.pop_front();
    }
}

void
JobQueue::enforceDeadlineLocked(const std::shared_ptr<Job>& job)
{
    if (isTerminal(job->state) || !job->has_deadline)
        return;
    if (Clock::now() < job->deadline)
        return;
    cancelLocked(job, State::TimedOut);
}

void
JobQueue::cancelLocked(const std::shared_ptr<Job>& job, State state)
{
    if (isTerminal(job->state))
        return;
    if (job->state == State::Queued) {
        removeQueuedLocked(job);
        finishLocked(job, state);
        return;
    }
    // Running: the member's outcome is settled now; the engine run is
    // told to abort only once EVERY member of its group has bowed out,
    // since the others still want its results.
    finishLocked(job, state);
    if (job->group) {
        ++job->group->cancel_votes;
        if (job->group->cancel_votes >= job->group->members.size())
            job->group->cancel.store(true, std::memory_order_relaxed);
    }
}

void
JobQueue::removeQueuedLocked(const std::shared_ptr<Job>& job)
{
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end())
        queue_.erase(it);
}

} // namespace serve
} // namespace loas
