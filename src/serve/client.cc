#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/rng.hh"

namespace loas {
namespace serve {

ServeClient::ServeClient(const std::string& socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("connect(" + socket_path +
                                 "): " + what + " — is the daemon "
                                 "running? (loas_cli serve)");
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
ServeClient::call(const std::string& request_line)
{
    std::string out = request_line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        // MSG_NOSIGNAL: a daemon that dropped the connection surfaces
        // as EPIPE here (retryable by callWithRetry) instead of a
        // SIGPIPE killing a client that never installed a handler.
        const ssize_t n = ::send(fd_, out.data() + off,
                                 out.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("send(): ") +
                                     std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }

    char chunk[4096];
    while (true) {
        const std::size_t newline_at = buffer_.find('\n');
        if (newline_at != std::string::npos) {
            std::string line = buffer_.substr(0, newline_at);
            buffer_.erase(0, newline_at + 1);
            return line;
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            throw std::runtime_error(std::string("read(): ") +
                                     std::strerror(errno));
        if (n == 0)
            throw std::runtime_error(
                "server closed the connection before replying");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

JsonValue
ServeClient::callJson(const std::string& request_line)
{
    return parseJson(call(request_line));
}

std::string
callWithRetry(const std::string& socket_path,
              const std::string& request_line,
              const RetryPolicy& policy)
{
    // One jitter stream per call: attempt n's delay is a pure
    // function of (seed, n), so a given policy always produces the
    // same backoff schedule.
    Rng jitter(policy.jitter_seed);
    double delay_ms = policy.backoff_ms;
    for (int attempt = 0;; ++attempt) {
        try {
            ServeClient client(socket_path);
            return client.call(request_line);
        } catch (const std::runtime_error&) {
            if (attempt >= policy.retries)
                throw;
        }
        // Full jitter over [delay/2, delay): staggers a thundering
        // herd of clients retrying against one recovering daemon.
        const double wait_ms =
            delay_ms * (0.5 + 0.5 * jitter.uniform());
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(wait_ms));
        delay_ms = std::min(delay_ms * 2.0, policy.max_backoff_ms);
    }
}

} // namespace serve
} // namespace loas
