#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace loas {
namespace serve {

ServeClient::ServeClient(const std::string& socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const std::string what = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("connect(" + socket_path +
                                 "): " + what + " — is the daemon "
                                 "running? (loas_cli serve)");
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
ServeClient::call(const std::string& request_line)
{
    std::string out = request_line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd_, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("write(): ") +
                                     std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }

    char chunk[4096];
    while (true) {
        const std::size_t newline_at = buffer_.find('\n');
        if (newline_at != std::string::npos) {
            std::string line = buffer_.substr(0, newline_at);
            buffer_.erase(0, newline_at + 1);
            return line;
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            throw std::runtime_error(std::string("read(): ") +
                                     std::strerror(errno));
        if (n == 0)
            throw std::runtime_error(
                "server closed the connection before replying");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

JsonValue
ServeClient::callJson(const std::string& request_line)
{
    return parseJson(call(request_line));
}

} // namespace serve
} // namespace loas
