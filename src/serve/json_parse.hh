/**
 * @file
 * Minimal JSON reader for the serve protocol. The tree's json.hh is a
 * writer only; the daemon additionally has to *parse* the one-line
 * request objects clients send. This is a small recursive-descent
 * parser into a DOM value — no external dependency, full escape
 * handling (including \uXXXX with surrogate pairs), a recursion-depth
 * cap so a hostile request cannot overflow the stack, and strict
 * trailing-garbage rejection so framing bugs surface as errors
 * instead of silently truncated requests.
 *
 * Numbers are held as double (JSON's own model); protocol fields that
 * carry 64-bit ids stay exact up to 2^53, far beyond any realistic
 * job count, and protocol.hh getUintField rejects anything at or
 * beyond that bound rather than decode a nearby different integer.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace loas {
namespace serve {

/** One parsed JSON value; a tagged tree. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered; duplicate keys keep the last occurrence. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member by key, or nullptr (also for non-objects). */
    const JsonValue* get(const std::string& key) const;

    /** Typed member accessors with defaults; wrong types throw
     *  std::invalid_argument naming the key, so protocol errors read
     *  like validation messages, not crashes. */
    std::string getString(const std::string& key,
                          const std::string& fallback) const;
    double getNumber(const std::string& key, double fallback) const;
    bool getBool(const std::string& key, bool fallback) const;
};

/**
 * Parse one complete JSON document. Throws std::invalid_argument with
 * a byte offset on malformed input, unterminated values, nesting
 * deeper than an internal cap, or trailing non-whitespace.
 */
JsonValue parseJson(const std::string& text);

} // namespace serve
} // namespace loas
