/**
 * @file
 * Asynchronous simulation job queue: the submit/poll/cancel execution
 * model behind `loas_cli serve`. Turns the SimEngine's run-to-
 * completion API into long-lived service machinery:
 *
 *  - a bounded FIFO of submitted jobs drained by a worker pool (each
 *    worker runs one engine job matrix at a time; the engine itself
 *    parallelizes inside the run via common/parallel.hh);
 *  - admission control: submits beyond the queue-depth bound are
 *    rejected synchronously with a structured `queue_full` error —
 *    backpressure, never an unbounded queue or a hang;
 *  - request dedup: a submit exactly identical to an in-flight
 *    (queued or running) job attaches to that job instead of
 *    enqueueing a copy, and all submitters share its one result. The
 *    shared job keeps the least restrictive of the attached
 *    submitters' deadlines, and cancel() is refcounted across them —
 *    one cancel per attached submitter before the job actually dies
 *    (the same vote scheme coalesce groups use);
 *  - job coalescing: when a worker dequeues a job it also takes every
 *    queued job with the same workload identity (networks, seed,
 *    energy — see protocol.hh coalesceKey) and runs the union of
 *    their accelerator lists as ONE engine run, so the workload is
 *    synthesized once and the compiled artifacts stream out of one
 *    warm pass; each job's report is then sliced back out of the
 *    merged matrix, byte-identical to what its solo run would return;
 *  - cancellation and deadlines: a queued job cancels instantly; a
 *    running job's cancel sets the engine's cooperative token (the
 *    run aborts at the next cell boundary). Deadlines are enforced
 *    lazily — at dequeue, poll() and wait() — which covers every
 *    observable path without a timer thread;
 *  - shutdown: draining (finish the queue, reject new submits) or
 *    immediate (cancel everything), both joining the workers.
 *
 * Results are retained for a bounded number of finished jobs so
 * pollers can fetch them; the oldest are dropped beyond that.
 *
 * Thread safety: every public member may be called from any thread
 * (the server's per-connection threads do).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/sim_engine.hh"
#include "serve/protocol.hh"

namespace loas {
namespace serve {

/** Async submit/poll/cancel queue over the SimEngine. */
class JobQueue
{
  public:
    struct Config
    {
        /** Concurrent engine runs (queue workers). */
        int workers = 1;

        /** Threads inside each engine run (0 = one per core). */
        int engine_threads = 0;

        /** Queued (not yet running) jobs admitted before submits are
         *  rejected with `queue_full`. */
        std::size_t max_depth = 64;

        /** Default per-job deadline from submit time; 0 = none.
         *  A RunSpec::timeout_ms overrides it per request. */
        double default_timeout_ms = 0.0;

        /** Merge compatible queued jobs into one engine run. */
        bool coalesce = true;

        /** Finished jobs retained for poll(); oldest dropped. */
        std::size_t max_finished = 256;
    };

    enum class State
    {
        Queued,
        Running,
        Done,
        Cancelled,
        TimedOut,
        Failed
    };

    /** Wire name of a state ("queued", ..., "timeout", "failed"). */
    static const char* stateName(State state);
    static bool isTerminal(State state);

    /** Outcome of a submit: admitted (possibly deduped) or rejected
     *  with a structured error code. */
    struct Submitted
    {
        bool accepted = false;
        std::uint64_t id = 0;
        bool deduped = false;
        std::string error;    // "queue_full" | "shutting_down"
        std::string message;
    };

    /** Snapshot of one job, complete once the state is terminal. */
    struct Result
    {
        std::uint64_t id = 0;
        State state = State::Queued;
        bool deduped = false;

        /** Other jobs this one shared its engine run with. */
        int coalesced_with = 0;

        double queue_ms = 0.0;    // submit -> dequeue
        double run_ms = 0.0;      // dequeue -> terminal (wall)
        double compile_ms = 0.0;  // engine prepare phase
        double sim_ms = 0.0;      // engine execute phase

        /** Served throughput of THIS job: batch x its own cell count
         *  / run wall time; set only in state Done. */
        double inferences_per_s = 0.0;

        /** Exact attributed cache counters of the run that served
         *  this job (shared across coalesced jobs); gauges are the
         *  cache occupancy after it. */
        CompiledCache::Stats cache;

        /** Full report document (the `loas_cli run --json` bytes);
         *  set only in state Done. */
        std::shared_ptr<const std::string> report_json;

        std::string error;  // set in state Failed
    };

    /** Queue-level counters for the `stats` protocol command. */
    struct Counters
    {
        std::uint64_t submitted = 0;
        std::uint64_t deduped = 0;
        std::uint64_t coalesced = 0;
        std::uint64_t rejected = 0;
        std::uint64_t done = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t timed_out = 0;
        std::uint64_t failed = 0;
        std::size_t depth = 0;    // currently queued
        std::size_t running = 0;  // currently running
    };

    /** Executes one engine request; injectable so tests can block,
     *  observe or fake runs. Default: SimEngine().run. */
    using Runner = std::function<SimReport(const SimRequest&)>;

    /**
     * Start `config.workers` worker threads. `cache` is the shared
     * compiled-artifact cache every job run uses (null = each run
     * gets a private cache — tests mostly). The queue does not own
     * or configure the cache.
     */
    explicit JobQueue(Config config, CompiledCache* cache = nullptr,
                      Runner runner = {});

    /** shutdown(false) if still running. */
    ~JobQueue();

    JobQueue(const JobQueue&) = delete;
    JobQueue& operator=(const JobQueue&) = delete;

    /**
     * Admit a job (resolving and validating the spec now — throws
     * std::invalid_argument for unknown accelerators/networks), dedup
     * it against in-flight identical requests, or reject it with
     * backpressure. Never blocks on simulation work.
     */
    Submitted submit(const RunSpec& spec);

    /** Snapshot a job; nullopt for unknown/expired ids. Enforces the
     *  job's deadline as a side effect. */
    std::optional<Result> poll(std::uint64_t id);

    /** Block until the job is terminal (or its deadline passes, which
     *  cancels it as TimedOut); nullopt for unknown ids. */
    std::optional<Result> wait(std::uint64_t id);

    /** Cancel a queued or running job. On a deduped job this detaches
     *  one submitter; the job dies with the last one. False: unknown
     *  or already terminal. */
    bool cancel(std::uint64_t id);

    Counters counters() const;

    /**
     * Stop the queue: reject further submits; with `drain` finish
     * every queued job first, otherwise cancel queued jobs and set
     * every running job's token. Joins the workers; idempotent.
     */
    void shutdown(bool drain);

  private:
    struct Group;

    struct Job
    {
        std::uint64_t id = 0;
        RunSpec spec;
        SimRequest request;  // resolved at submit; cache/cancel unset
        std::string dedup_key;
        std::string coalesce_key;

        State state = State::Queued;
        bool deduped = false;
        int coalesced_with = 0;

        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point deadline;
        bool has_deadline = false;

        /** Submitters sharing this job via dedup; each cancel()
         *  detaches one, the last one's cancel kills the job. */
        std::size_t attached = 1;

        /** Cancel intent of THIS job; the group token aggregates. */
        bool cancel_requested = false;
        std::shared_ptr<Group> group;  // while running

        double queue_ms = 0.0;
        double run_ms = 0.0;
        double compile_ms = 0.0;
        double sim_ms = 0.0;
        double inferences_per_s = 0.0;
        CompiledCache::Stats cache;
        std::shared_ptr<const std::string> report_json;
        std::string error;
    };

    /** One merged engine run: its members and the engine token. The
     *  token trips when every member wants out (each cancel/timeout
     *  is one vote) or on non-drain shutdown. */
    struct Group
    {
        std::vector<std::shared_ptr<Job>> members;
        std::atomic<bool> cancel{false};
        std::size_t cancel_votes = 0;  // guarded by queue mutex
    };

    void workerLoop();
    Result snapshotLocked(const Job& job) const;
    void finishLocked(std::shared_ptr<Job> job, State state);
    /** Deadline check; cancels an expired non-terminal job. */
    void enforceDeadlineLocked(const std::shared_ptr<Job>& job);
    void cancelLocked(const std::shared_ptr<Job>& job, State state);
    void removeQueuedLocked(const std::shared_ptr<Job>& job);

    const Config config_;
    CompiledCache* const cache_;
    const Runner runner_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;  // workers: queue or stop
    std::condition_variable done_cv_;  // waiters: state changes
    std::deque<std::shared_ptr<Job>> queue_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
    /** In-flight (queued/running) job per dedup key. */
    std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
    std::deque<std::uint64_t> finished_order_;
    Counters counters_;
    std::uint64_t next_id_ = 1;
    bool stopping_ = false;
    bool drain_ = true;

    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace loas
