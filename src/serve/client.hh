/**
 * @file
 * Minimal client for the serve protocol: connect to the daemon's
 * socket, send one-line JSON requests, read one-line JSON replies.
 * Backs the `loas_cli request` subcommand and the serve tests; it is
 * transport only — callers build request lines (or use the helpers
 * here) and parse replies with serve/json_parse.hh.
 */

#pragma once

#include <cstdint>
#include <string>

#include "serve/json_parse.hh"

namespace loas {
namespace serve {

/** One connection to a serve daemon. */
class ServeClient
{
  public:
    /** Connect; throws std::runtime_error if the daemon is not
     *  listening on `socket_path`. */
    explicit ServeClient(const std::string& socket_path);

    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /**
     * Send one request line (newline appended here) and block for the
     * reply line. Throws std::runtime_error if the connection drops
     * mid-exchange (e.g. non-drain server shutdown).
     */
    std::string call(const std::string& request_line);

    /** call() + parse; also throws on a malformed reply. */
    JsonValue callJson(const std::string& request_line);

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Exponential-backoff policy for callWithRetry(). */
struct RetryPolicy
{
    /** Additional attempts after the first (0 = one shot). */
    int retries = 0;
    /** First retry delay; each further retry doubles it. */
    double backoff_ms = 100.0;
    /** Longest single delay the doubling may reach. */
    double max_backoff_ms = 2000.0;
    /** Jitter seed: same seed, same delay sequence (determinism is
     *  what makes retry behavior reproducible in tests and CI). */
    std::uint64_t jitter_seed = 0x6c6f6173; // "loas"
};

/**
 * One request over a fresh connection, retried with exponential
 * backoff and deterministic jitter on every transport failure: a
 * daemon not yet listening (connect), a connection reset or EPIPE
 * mid-write, or the server closing before the reply (dropped by an
 * injected socket fault, say). A *reply* is never retried — an error
 * reply like bad_request is an answer, not a transport failure.
 * Throws the last attempt's error once the retry budget is spent.
 */
std::string callWithRetry(const std::string& socket_path,
                          const std::string& request_line,
                          const RetryPolicy& policy);

} // namespace serve
} // namespace loas
