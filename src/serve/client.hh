/**
 * @file
 * Minimal client for the serve protocol: connect to the daemon's
 * socket, send one-line JSON requests, read one-line JSON replies.
 * Backs the `loas_cli request` subcommand and the serve tests; it is
 * transport only — callers build request lines (or use the helpers
 * here) and parse replies with serve/json_parse.hh.
 */

#pragma once

#include <string>

#include "serve/json_parse.hh"

namespace loas {
namespace serve {

/** One connection to a serve daemon. */
class ServeClient
{
  public:
    /** Connect; throws std::runtime_error if the daemon is not
     *  listening on `socket_path`. */
    explicit ServeClient(const std::string& socket_path);

    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /**
     * Send one request line (newline appended here) and block for the
     * reply line. Throws std::runtime_error if the connection drops
     * mid-exchange (e.g. non-drain server shutdown).
     */
    std::string call(const std::string& request_line);

    /** call() + parse; also throws on a malformed reply. */
    JsonValue callJson(const std::string& request_line);

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace serve
} // namespace loas
