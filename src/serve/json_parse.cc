#include "serve/json_parse.hh"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace loas {
namespace serve {

namespace {

constexpr int kMaxDepth = 64;

/** Cursor over the input with offset-carrying error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue(0);
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what) const
    {
        throw std::invalid_argument("JSON parse error at byte " +
                                    std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char* literal)
    {
        const std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth));
        skipSpace();
        const char c = peek();
        JsonValue value;
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            value.type = JsonValue::Type::String;
            value.string = parseString();
            return value;
          case 't':
            if (!consumeLiteral("true"))
                fail("invalid literal");
            value.type = JsonValue::Type::Bool;
            value.boolean = true;
            return value;
          case 'f':
            if (!consumeLiteral("false"))
                fail("invalid literal");
            value.type = JsonValue::Type::Bool;
            value.boolean = false;
            return value;
          case 'n':
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return value;
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject(int depth)
    {
        JsonValue value;
        value.type = JsonValue::Type::Object;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skipSpace();
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            skipSpace();
            expect(':');
            JsonValue member = parseValue(depth + 1);
            // Last occurrence wins; erase an earlier duplicate so
            // get() (first match) honors that rule.
            for (auto it = value.object.begin();
                 it != value.object.end(); ++it) {
                if (it->first == key) {
                    value.object.erase(it);
                    break;
                }
            }
            value.object.emplace_back(std::move(key),
                                      std::move(member));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray(int depth)
    {
        JsonValue value;
        value.type = JsonValue::Type::Array;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.array.push_back(parseValue(depth + 1));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    unsigned
    parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    void
    appendUtf8(std::string& out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned code = parseHex4();
                if (code >= 0xd800 && code <= 0xdbff) {
                    // High surrogate: a \uDC00-\uDFFF must follow.
                    if (!consumeLiteral("\\u"))
                        fail("high surrogate without low surrogate");
                    const unsigned low = parseHex4();
                    if (low < 0xdc00 || low > 0xdfff)
                        fail("invalid low surrogate");
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    fail("lone low surrogate");
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char* end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || token.empty() ||
            errno == ERANGE)
            fail("invalid number '" + token + "'");
        JsonValue value;
        value.type = JsonValue::Type::Number;
        value.number = parsed;
        return value;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue*
JsonValue::get(const std::string& key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto& [name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

std::string
JsonValue::getString(const std::string& key,
                     const std::string& fallback) const
{
    const JsonValue* member = get(key);
    if (member == nullptr || member->isNull())
        return fallback;
    if (!member->isString())
        throw std::invalid_argument("field '" + key +
                                    "' must be a string");
    return member->string;
}

double
JsonValue::getNumber(const std::string& key, double fallback) const
{
    const JsonValue* member = get(key);
    if (member == nullptr || member->isNull())
        return fallback;
    if (!member->isNumber())
        throw std::invalid_argument("field '" + key +
                                    "' must be a number");
    return member->number;
}

bool
JsonValue::getBool(const std::string& key, bool fallback) const
{
    const JsonValue* member = get(key);
    if (member == nullptr || member->isNull())
        return fallback;
    if (!member->isBool())
        throw std::invalid_argument("field '" + key +
                                    "' must be a boolean");
    return member->boolean;
}

JsonValue
parseJson(const std::string& text)
{
    return Parser(text).document();
}

} // namespace serve
} // namespace loas
