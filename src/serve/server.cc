#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "api/json.hh"
#include "api/versions.hh"
#include "common/fault.hh"
#include "common/parallel.hh"
#include "core/kernel_dispatch.hh"
#include "serve/json_parse.hh"

namespace loas {
namespace serve {

namespace {

/** A request line still missing its newline beyond this many bytes
 *  gets a bad_request reply and the connection closed, bounding the
 *  per-connection buffer a hostile client can grow. */
constexpr std::size_t kMaxRequestLineBytes = 1 << 20;

/** write() the whole buffer, riding out EINTR/short writes. */
bool
writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::uint64_t
requireId(const JsonValue& request)
{
    if (request.get("id") == nullptr)
        throw std::invalid_argument("field 'id' is required");
    return getUintField(request, "id", 0);
}

} // namespace

Server::Server(Config config, CompiledCache* cache,
               JobQueue::Runner runner)
    : socket_path_(config.socket_path),
      queue_config_(config.queue),
      queue_(std::make_unique<JobQueue>(config.queue, cache,
                                        std::move(runner))),
      cache_(cache)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path_.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 socket_path_);
    std::memcpy(addr.sun_path, socket_path_.c_str(),
                socket_path_.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));

    const auto tryBind = [&] {
        return ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0;
    };
    if (!tryBind()) {
        // A leftover socket file from a crashed server makes bind
        // fail EADDRINUSE; connect() distinguishes it from a live
        // server, and a dead one's path is safe to reclaim.
        bool recovered = false;
        if (errno == EADDRINUSE) {
            const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            const bool live =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0;
            if (probe >= 0)
                ::close(probe);
            if (!live) {
                ::unlink(socket_path_.c_str());
                recovered = tryBind();
            }
        }
        if (!recovered) {
            const std::string what = std::strerror(errno);
            ::close(listen_fd_);
            throw std::runtime_error("bind(" + socket_path_ +
                                     "): " + what);
        }
    }

    if (::listen(listen_fd_, 64) < 0) {
        const std::string what = std::strerror(errno);
        ::close(listen_fd_);
        throw std::runtime_error("listen(): " + what);
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0) {
        const std::string what = std::strerror(errno);
        ::close(listen_fd_);
        throw std::runtime_error("pipe(): " + what);
    }
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
}

Server::~Server()
{
    requestStop(false);
    if (listen_fd_ >= 0) {
        // run() already joined everything if it ran; this is the
        // never-ran path.
        ::close(listen_fd_);
        ::unlink(socket_path_.c_str());
        listen_fd_ = -1;
    }
    if (wake_read_fd_ >= 0)
        ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0)
        ::close(wake_write_fd_);
}

void
Server::requestStop(bool drain)
{
    if (!drain)
        drain_.store(false, std::memory_order_relaxed);
    stopping_.store(true, std::memory_order_relaxed);
    // Only async-signal-safe calls past this point.
    const char byte = 1;
    if (wake_write_fd_ >= 0)
        (void)!::write(wake_write_fd_, &byte, 1);
}

void
Server::run()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd fds[2];
        fds[0] = {listen_fd_, POLLIN, 0};
        fds[1] = {wake_read_fd_, POLLIN, 0};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break;  // woken by requestStop
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        reapFinishedConnections();
        if (fd < 0)
            continue;
        if (fault::shouldFail(fault::Site::SocketAccept)) {
            // Injected accept failure: this client's connection is
            // dropped (it retries); the accept loop itself lives on.
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(connections_mutex_);
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection* raw = connection.get();
        connection->thread =
            std::thread([this, raw] { connectionLoop(raw); });
        connections_.push_back(std::move(connection));
    }

    // Shutdown. Stop admitting, then settle the queue: with drain the
    // clients blocked in `submit`/`wait` replies get them now.
    ::close(listen_fd_);
    listen_fd_ = -1;
    queue_->shutdown(drain_.load(std::memory_order_relaxed));

    // Unblock connection threads still parked in read(). With drain,
    // only the read side closes: a thread just woken from its job's
    // completion can still flush the reply, then sees EOF and exits.
    {
        const bool drain = drain_.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (auto& connection : connections_)
            if (connection->fd >= 0)
                ::shutdown(connection->fd,
                           drain ? SHUT_RD : SHUT_RDWR);
    }
    for (auto& connection : connections_) {
        if (connection->thread.joinable())
            connection->thread.join();
        if (connection->fd >= 0)
            ::close(connection->fd);
    }
    connections_.clear();
    ::unlink(socket_path_.c_str());
}

void
Server::reapFinishedConnections()
{
    // Collect under the lock, join outside it: a finished connection's
    // thread is past its last touch of shared state and exits
    // immediately, but join() still blocks for that instant.
    std::vector<std::unique_ptr<Connection>> finished;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        const auto alive_end = std::stable_partition(
            connections_.begin(), connections_.end(),
            [](const std::unique_ptr<Connection>& connection) {
                return !connection->done.load(
                    std::memory_order_acquire);
            });
        for (auto it = alive_end; it != connections_.end(); ++it)
            finished.push_back(std::move(*it));
        connections_.erase(alive_end, connections_.end());
    }
    for (auto& connection : finished)
        if (connection->thread.joinable())
            connection->thread.join();
}

void
Server::connectionLoop(Connection* connection)
{
    serveConnection(connection->fd);
    // Close under the mutex and mark the fd gone so run()'s shutdown
    // pass can't ::shutdown()/close() it a second time; `done` makes
    // the entry reapable by the accept loop.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
    }
    connection->done.store(true, std::memory_order_release);
}

void
Server::serveConnection(int fd)
{
    std::string buffer;
    char chunk[4096];
    while (true) {
        const std::size_t newline_at = buffer.find('\n');
        if (newline_at != std::string::npos) {
            std::string line = buffer.substr(0, newline_at);
            buffer.erase(0, newline_at + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            bool shutdown_requested = false;
            bool shutdown_drain = true;
            const std::string reply = handleLine(
                line, &shutdown_requested, &shutdown_drain);
            // An injected write fault is EPIPE: the reply is lost and
            // the connection closes, exactly like a vanished client.
            const bool wrote =
                !fault::shouldFail(fault::Site::SocketWrite) &&
                writeAll(fd, reply + "\n");
            if (shutdown_requested) {
                requestStop(shutdown_drain);
                return;
            }
            if (!wrote)
                return;
            continue;
        }
        // An injected read fault is an EIO/ECONNRESET mid-request:
        // the connection is torn down, the daemon keeps serving.
        if (fault::shouldFail(fault::Site::SocketRead))
            return;
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() > kMaxRequestLineBytes &&
            buffer.find('\n') == std::string::npos) {
            writeAll(fd,
                     errorResponse(
                         "bad_request",
                         "request line exceeds " +
                             std::to_string(kMaxRequestLineBytes) +
                             " bytes") +
                         "\n");
            return;
        }
    }
}

std::string
Server::handleLine(const std::string& line, bool* shutdown_requested,
                   bool* shutdown_drain)
{
    JsonValue request;
    try {
        request = parseJson(line);
        if (!request.isObject())
            throw std::invalid_argument("request must be an object");
        const std::string cmd = request.getString("cmd", "");
        if (cmd == "submit")
            return handleSubmit(request);
        if (cmd == "poll")
            return handlePoll(request);
        if (cmd == "cancel")
            return handleCancel(request);
        if (cmd == "stats")
            return handleStats();
        if (cmd == "version")
            return std::string("{\"schema\": ") +
                   json::quote(kServeSchema) +
                   ", \"ok\": true, \"version\": " + versionJson() +
                   "}";
        if (cmd == "shutdown") {
            const bool drain = request.getBool("drain", true);
            *shutdown_requested = true;
            *shutdown_drain = drain;
            return std::string("{\"schema\": ") +
                   json::quote(kServeSchema) +
                   ", \"ok\": true, \"stopping\": true, \"drain\": " +
                   (drain ? "true" : "false") + "}";
        }
        throw std::invalid_argument("unknown cmd '" + cmd + "'");
    } catch (const std::invalid_argument& e) {
        return errorResponse("bad_request", e.what());
    } catch (const std::exception& e) {
        return errorResponse("bad_request", e.what());
    }
}

std::string
Server::handleSubmit(const JsonValue& request)
{
    const RunSpec spec = parseRunSpec(request);
    const bool wait = request.getBool("wait", true);
    const JobQueue::Submitted submitted = queue_->submit(spec);
    if (!submitted.accepted)
        return errorResponse(submitted.error, submitted.message);
    if (!wait) {
        std::string out = "{\"schema\": ";
        out += json::quote(kServeSchema);
        out += ", \"ok\": true, \"id\": " + json::num(submitted.id);
        out += ", \"state\": \"queued\", \"deduped\": ";
        out += submitted.deduped ? "true" : "false";
        out += "}";
        return out;
    }
    const auto result = queue_->wait(submitted.id);
    if (!result)
        return errorResponse("unknown_id",
                             "job expired before its reply");
    return jobReply(*result);
}

std::string
Server::handlePoll(const JsonValue& request)
{
    const auto result = queue_->poll(requireId(request));
    if (!result)
        return errorResponse("unknown_id", "no such job");
    return jobReply(*result);
}

std::string
Server::handleCancel(const JsonValue& request)
{
    const std::uint64_t id = requireId(request);
    if (!queue_->poll(id))
        return errorResponse("unknown_id", "no such job");
    const bool cancelled = queue_->cancel(id);
    std::string out = "{\"schema\": ";
    out += json::quote(kServeSchema);
    out += ", \"ok\": true, \"id\": " + json::num(id);
    out += ", \"cancelled\": ";
    out += cancelled ? "true" : "false";
    out += "}";
    return out;
}

std::string
Server::handleStats()
{
    const JobQueue::Counters counters = queue_->counters();
    std::string out = "{\"schema\": ";
    out += json::quote(kServeSchema);
    out += ", \"ok\": true, \"queue\": {";
    out += "\"submitted\": " + json::num(counters.submitted);
    out += ", \"deduped\": " + json::num(counters.deduped);
    out += ", \"coalesced\": " + json::num(counters.coalesced);
    out += ", \"rejected\": " + json::num(counters.rejected);
    out += ", \"done\": " + json::num(counters.done);
    out += ", \"cancelled\": " + json::num(counters.cancelled);
    out += ", \"timed_out\": " + json::num(counters.timed_out);
    out += ", \"failed\": " + json::num(counters.failed);
    out += ", \"depth\": " +
           json::num(static_cast<std::uint64_t>(counters.depth));
    out += ", \"running\": " +
           json::num(static_cast<std::uint64_t>(counters.running));
    out += "}";
    out += ", \"isa\": " +
           json::quote(kernels::isaName(kernels::resolvedIsa()));
    out += ", \"workers\": {";
    out += "\"queue\": " + json::num(static_cast<std::uint64_t>(
                               std::max(1, queue_config_.workers)));
    out += ", \"engine_threads\": " +
           json::num(static_cast<std::uint64_t>(
               resolveThreads(queue_config_.engine_threads)));
    out += "}";
    if (cache_ != nullptr)
        out += ", \"cache\": " + cacheStatsJson(cache_->stats());
    out += "}";
    return out;
}

std::string
Server::jobReply(const JobQueue::Result& result) const
{
    std::string out = "{\"schema\": ";
    out += json::quote(kServeSchema);
    out += ", \"ok\": true, \"id\": " + json::num(result.id);
    out += ", \"state\": ";
    out += json::quote(JobQueue::stateName(result.state));
    out += ", \"deduped\": ";
    out += result.deduped ? "true" : "false";
    out += ", \"coalesced_with\": " +
           json::num(static_cast<std::uint64_t>(
               result.coalesced_with < 0 ? 0 : result.coalesced_with));
    if (!result.error.empty()) {
        out += ", \"message\": " + json::quote(result.error);
        // A failed job's exception text is first-class on the wire
        // (loas-serve/3): "error" on an ok:true reply is the job's
        // failure reason, distinct from the error *code* that only
        // ok:false replies carry.
        if (result.state == JobQueue::State::Failed)
            out += ", \"error\": " + json::quote(result.error);
    }
    out += ", \"stats\": {";
    out += "\"queue_ms\": " + json::num(result.queue_ms);
    out += ", \"run_ms\": " + json::num(result.run_ms);
    out += ", \"compile_ms\": " + json::num(result.compile_ms);
    out += ", \"sim_ms\": " + json::num(result.sim_ms);
    out += ", \"inferences_per_s\": " +
           json::num(result.inferences_per_s);
    out += ", \"cache\": " + cacheStatsJson(result.cache);
    out += "}";
    if (result.report_json)
        out += ", \"report\": " + json::quote(*result.report_json);
    out += "}";
    return out;
}

} // namespace serve
} // namespace loas
