/**
 * @file
 * Wire protocol of the `loas_cli serve` daemon: newline-delimited JSON
 * over a local stream socket, schema `loas-serve/4`. Every request is
 * one JSON object on one line, every reply one JSON object on one
 * line; a connection may issue any number of requests sequentially.
 * (serve/2 added the optional "batch" submit field and the
 * "inferences_per_s" stats field; requests that omit "batch" behave
 * exactly like serve/1 clients. serve/3 added the structured "error"
 * field on failed-job replies and the disk circuit-breaker fields —
 * disk_trips, disk_tmp_swept, disk_degraded — in cache stats.
 * serve/4 added the resolved SIMD "isa" and the "workers" pool-sizing
 * object to the version and stats replies. All are additive; older
 * clients keep working unchanged.)
 *
 * Requests ("cmd" selects one):
 *
 *   {"cmd":"submit", "accel":"sparten,loas", "network":"alexnet",
 *    "seed":101, "batch":1, "energy":true, "timeout_ms":0,
 *    "wait":true}
 *       Enqueue one simulation job — the same (accelerator x network)
 *       matrix `loas_cli run` executes, so a served report is
 *       byte-identical to the one-shot run of the same parameters.
 *       "accel" is a comma-separated spec list, "network" a
 *       semicolon-separated list of network names or single-layer
 *       grids (see expandNetworkGrids); "batch" (default 1) simulates
 *       that many independently-seeded inputs per cell. With "wait"
 *       (the default) the reply arrives when the job reaches a
 *       terminal state; with "wait":false the reply acknowledges the
 *       queued job and the client polls.
 *
 *   {"cmd":"poll",   "id":N}     Job state (+ result when terminal).
 *   {"cmd":"cancel", "id":N}     Cancel a queued or running job.
 *   {"cmd":"stats"}              Queue counters + shared cache stats.
 *
 * Dedup sharing: a submit identical to an in-flight request attaches
 * to that job and replies with the SAME id. The shared job then obeys
 * the least restrictive of its submitters' deadlines (a submitter
 * with no timeout lifts the deadline entirely), and cancels are
 * refcounted — each cancel on the id detaches one submitter, and the
 * job is only actually cancelled when the last one has bowed out.
 *   {"cmd":"version"}            The loas_cli version object.
 *   {"cmd":"shutdown", "drain":true}
 *       Stop the daemon; drain=true finishes queued jobs first.
 *
 * Replies always carry "schema" and "ok". Transport/admission errors
 * are {"ok":false, "error":CODE, "message":...} with CODE one of
 * bad_request, queue_full, shutting_down, unknown_id. Job *outcomes*
 * are ok:true with "state" in queued|running|done|cancelled|timeout|
 * failed; a done reply embeds the full report document as the JSON
 * string field "report" — exactly the bytes `loas_cli run --json`
 * would have written — plus per-request "stats" (queue_ms, run_ms,
 * compile_ms, sim_ms, inferences_per_s — batch x runs / run wall
 * time — and the exact attributed cache counters).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/sim_engine.hh"

namespace loas {
namespace serve {

class JsonValue;

/** Default accelerator list, shared with `loas_cli run`. */
inline constexpr char kDefaultAccels[] =
    "sparten,gospa,gamma,loas,loas-ft";

/** One submit request, as named on the wire. */
struct RunSpec
{
    /** Accelerator spec strings, in request order. */
    std::vector<std::string> accels;

    /** Network names / single-layer grid strings, in request order. */
    std::vector<std::string> networks;

    std::uint64_t seed = 101;

    /** Inputs per (accelerator, network) cell (engine passthrough). */
    std::size_t batch = 1;

    bool energy = true;

    /** Per-request deadline; 0 = the server's default (may be none). */
    double timeout_ms = 0.0;
};

/**
 * Parse the wire fields of a submit object ("accel", "network",
 * "seed", "batch", "energy", "timeout_ms") into a RunSpec. Missing
 * fields take the `loas_cli run` defaults so a bare {"cmd":"submit"}
 * serves the default matrix (and serve/1 clients that never send
 * "batch" get batch 1). Throws std::invalid_argument on bad
 * types/values.
 */
RunSpec parseRunSpec(const JsonValue& request);

/**
 * Read an unsigned-integer protocol field ("id", "seed"). JSON
 * numbers are doubles, exact only below 2^53 — anything at or above
 * that bound (or negative / fractional) throws std::invalid_argument
 * rather than silently decoding to a nearby different integer.
 */
std::uint64_t getUintField(const JsonValue& request,
                           const std::string& key,
                           std::uint64_t fallback);

/**
 * Exact-identity key of a request: two submits dedup onto one
 * in-flight job iff their keys are equal (same accel strings in the
 * same order, same networks, seed, batch, energy).
 */
std::string dedupKey(const RunSpec& spec);

/**
 * Compatibility key for job coalescing: requests with equal coalesce
 * keys (same networks, seed, batch, energy — accelerators free) can
 * merge into one engine run over the union of their accelerator
 * lists, sharing one workload synthesis and one compile pass.
 */
std::string coalesceKey(const RunSpec& spec);

/**
 * Lower a RunSpec to an engine request: resolve the network list
 * (throws std::invalid_argument for unknown names/grids) and copy the
 * scalar knobs. Cache wiring, threads and the cancel token stay with
 * the caller — the job queue owns those.
 */
SimRequest toSimRequest(const RunSpec& spec);

/** `{"schema":"loas-version/2", ...}` one-line version object: CLI
 *  version, every artifact schema tag, on-disk artifact format, and
 *  the resolved join-kernel ISA. */
std::string versionJson();

/** One-line error reply. */
std::string errorResponse(const std::string& code,
                          const std::string& message);

/** Compact single-line rendering of cache counters + gauges. */
std::string cacheStatsJson(const CompiledCache::Stats& stats);

} // namespace serve
} // namespace loas
