#include "serve/protocol.hh"

#include <stdexcept>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/sweep.hh"
#include "api/versions.hh"
#include "core/kernel_dispatch.hh"
#include "serve/json_parse.hh"
#include "workload/artifact_store.hh"

namespace loas {
namespace serve {

namespace {

/** Join with a separator no spec string can contain. */
std::string
joinList(const std::vector<std::string>& items)
{
    std::string out;
    for (const auto& item : items) {
        out += item;
        out += '\x1f';
    }
    return out;
}

} // namespace

std::uint64_t
getUintField(const JsonValue& request, const std::string& key,
             std::uint64_t fallback)
{
    // JSON numbers are doubles: integers at or above 2^53 no longer
    // round-trip exactly, so a seed like 2^63+1 would silently parse
    // as a DIFFERENT integer that still passes the integrality check.
    // Reject the whole inexact range instead of guessing. The bound
    // also keeps the uint64 cast below well-defined.
    constexpr double kExactLimit = 9007199254740992.0;  // 2^53
    const double value =
        request.getNumber(key, static_cast<double>(fallback));
    if (value < 0 || value >= kExactLimit ||
        value != static_cast<double>(static_cast<std::uint64_t>(value)))
        throw std::invalid_argument(
            "field '" + key +
            "' must be a non-negative integer below 2^53");
    return static_cast<std::uint64_t>(value);
}

RunSpec
parseRunSpec(const JsonValue& request)
{
    RunSpec spec;
    spec.accels =
        splitSpecList(request.getString("accel", kDefaultAccels));
    // Semicolons, like sweep grids: network grid strings use commas
    // for value lists ("vgg16-l8?ws=0.982,0.25").
    spec.networks =
        splitSpecList(request.getString("network", "all"), ';');
    if (spec.accels.empty())
        throw std::invalid_argument("accel list is empty");
    if (spec.networks.empty())
        throw std::invalid_argument("network list is empty");
    spec.seed = getUintField(request, "seed", spec.seed);
    // serve/1 clients never send "batch"; the default keeps their
    // submits (and replies) exactly as before.
    spec.batch = static_cast<std::size_t>(
        getUintField(request, "batch", spec.batch));
    if (spec.batch == 0)
        throw std::invalid_argument("batch must be >= 1");
    spec.energy = request.getBool("energy", spec.energy);
    spec.timeout_ms = request.getNumber("timeout_ms", 0.0);
    if (spec.timeout_ms < 0)
        throw std::invalid_argument("timeout_ms must be >= 0");
    return spec;
}

std::string
dedupKey(const RunSpec& spec)
{
    return joinList(spec.accels) + "|" + coalesceKey(spec);
}

std::string
coalesceKey(const RunSpec& spec)
{
    return joinList(spec.networks) + "|s" +
           std::to_string(spec.seed) + "|b" +
           std::to_string(spec.batch) +
           (spec.energy ? "|e1" : "|e0");
}

SimRequest
toSimRequest(const RunSpec& spec)
{
    SimRequest request;
    request.accels = spec.accels;
    request.networks = expandNetworkGrids(spec.networks);
    request.seed = spec.seed;
    request.batch = spec.batch;
    request.energy = spec.energy;
    return request;
}

std::string
versionJson()
{
    std::string out = "{";
    out += "\"schema\": " + json::quote(kVersionSchema);
    out += ", \"cli\": " + json::quote(kCliVersion);
    out += ", \"bench_schema\": " + json::quote(kBenchSchema);
    out += ", \"kernels_schema\": " + json::quote(kKernelsSchema);
    out += ", \"list_schema\": " + json::quote(kListSchema);
    out += ", \"serve_schema\": " + json::quote(kServeSchema);
    out += ", \"artifact_format\": " +
           std::to_string(ArtifactStore::kFormatVersion);
    out += ", \"isa\": " +
           json::quote(kernels::isaName(kernels::resolvedIsa()));
    out += "}";
    return out;
}

std::string
errorResponse(const std::string& code, const std::string& message)
{
    return std::string("{\"schema\": ") + json::quote(kServeSchema) +
           ", \"ok\": false, \"error\": " + json::quote(code) +
           ", \"message\": " + json::quote(message) + "}";
}

std::string
cacheStatsJson(const CompiledCache::Stats& stats)
{
    std::string out = "{";
    out += "\"hits\": " + json::num(stats.hits);
    out += ", \"misses\": " + json::num(stats.misses);
    out += ", \"disk_hits\": " + json::num(stats.disk_hits);
    out += ", \"disk_writes\": " + json::num(stats.disk_writes);
    out += ", \"disk_rejects\": " + json::num(stats.disk_rejects);
    out += ", \"evictions\": " + json::num(stats.evictions);
    out += ", \"disk_trips\": " + json::num(stats.disk_trips);
    out += ", \"disk_tmp_swept\": " + json::num(stats.disk_tmp_swept);
    out += ", \"disk_degraded\": " + json::num(stats.disk_degraded);
    out += ", \"entries\": " + json::num(stats.entries);
    out += ", \"bytes\": " + json::num(stats.bytes);
    out += ", \"compile_ms\": " + json::num(stats.compile_ms);
    out += "}";
    return out;
}

} // namespace serve
} // namespace loas
