#include "snn/preprocess.hh"

#include "common/bitutil.hh"

namespace loas {

std::size_t
maskLowActivityNeurons(SpikeTensor& spikes, int max_spikes)
{
    std::size_t masked = 0;
    for (std::size_t r = 0; r < spikes.rows(); ++r) {
        for (std::size_t c = 0; c < spikes.cols(); ++c) {
            const TimeWord w = spikes.word(r, c);
            if (w != 0 && popcount64(w) <= max_spikes) {
                spikes.setWord(r, c, 0);
                ++masked;
            }
        }
    }
    return masked;
}

} // namespace loas
