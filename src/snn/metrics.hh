/**
 * @file
 * Sparsity metrics of dual-sparse SNN workloads, matching the columns of
 * the paper's Table II.
 */

#pragma once

#include <cstddef>

#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/** Sparsity summary for one spike tensor. */
struct SpikeStats
{
    double origin_sparsity;  // AvSpA-origin: zero fraction of all bits
    double silent_ratio;     // AvSpA-packed: silent-neuron fraction
    double single_spike_ratio; // neurons firing exactly once
    std::size_t neurons;     // M * K
    std::uint64_t spikes;    // total 1-bits
};

/** Compute the Table II statistics of a spike tensor. */
SpikeStats computeSpikeStats(const SpikeTensor& spikes);

/** Weight sparsity (AvSpB): zero fraction of B. */
double weightSparsity(const DenseMatrix<std::int8_t>& weights);

} // namespace loas
