#include "snn/lif.hh"

#include "common/logging.hh"

namespace loas {

LifStep
stepLif(std::int32_t o, std::int32_t u_prev, const LifParams& p)
{
    const std::int32_t x = o + u_prev;
    LifStep out;
    out.spike = x > p.v_th;
    // Leak by arithmetic right shift (C++20 defines >> on negative
    // values as arithmetic). Hard reset clears the membrane on spike;
    // soft reset subtracts the threshold and leaks the residual.
    if (!out.spike)
        out.membrane = x >> p.tau_shift;
    else if (p.reset == LifReset::Hard)
        out.membrane = 0;
    else
        out.membrane = (x - p.v_th) >> p.tau_shift;
    return out;
}

TimeWord
lifAcrossTimesteps(const std::vector<std::int32_t>& sums,
                   const LifParams& p)
{
    if (sums.size() > static_cast<std::size_t>(kMaxTimesteps))
        panic("lifAcrossTimesteps: %zu timesteps exceeds %d", sums.size(),
              kMaxTimesteps);
    TimeWord spikes = 0;
    std::int32_t u = 0;
    for (std::size_t t = 0; t < sums.size(); ++t) {
        const LifStep step = stepLif(sums[t], u, p);
        if (step.spike)
            spikes |= (TimeWord{1} << t);
        u = step.membrane;
    }
    return spikes;
}

} // namespace loas
