/**
 * @file
 * Fine-tuned preprocessing (Section V, "Software Configuration"): zero
 * out pre-synaptic neurons with very low firing activity to increase the
 * silent-neuron ratio the FTP compression exploits. The accuracy impact
 * and its recovery by fine-tuning are reproduced by the training
 * substrate (src/train); here we provide the structural transformation
 * applied to inference workloads.
 */

#pragma once

#include <cstddef>

#include "tensor/spike_tensor.hh"

namespace loas {

/**
 * Mask every neuron that fires at most `max_spikes` times across all
 * timesteps (the paper masks neurons with exactly one output spike, i.e.
 * max_spikes = 1). Returns the number of neurons newly silenced.
 */
std::size_t maskLowActivityNeurons(SpikeTensor& spikes, int max_spikes = 1);

} // namespace loas
