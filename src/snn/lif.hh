/**
 * @file
 * Leaky-Integrate-and-Fire neuron dynamics (Section II-A of the paper),
 * in the integer arithmetic the hardware uses: int32 accumulation, an
 * integer firing threshold, a leak factor tau applied as an arithmetic
 * right shift (the "<<"-style datapath of Fig. 7), and hard reset.
 *
 *   X[t] = O[t] + U[t-1]
 *   C[t] = X[t] > v_th
 *   U[t] = tau * X[t] * (1 - C[t])        (hard reset)
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/spike_tensor.hh"

namespace loas {

/** Membrane reset behavior on firing. */
enum class LifReset
{
    /** Membrane cleared to zero on spike (the paper's default). */
    Hard,
    /**
     * Threshold subtracted on spike, residual carries over (footnote
     * 2 of the paper notes other reset schemes lose no generality for
     * the hardware design).
     */
    Soft,
};

/** LIF neuron parameters shared by a layer. */
struct LifParams
{
    /** Firing threshold v_th (fires when X > v_th). */
    std::int32_t v_th = 64;

    /**
     * Leak as a right shift: U = X >> tau_shift, i.e. tau = 2^-shift.
     * tau_shift = 1 gives the common tau = 0.5.
     */
    int tau_shift = 1;

    /** Reset scheme applied when the neuron fires. */
    LifReset reset = LifReset::Hard;
};

/** Result of stepping a LIF neuron for one timestep. */
struct LifStep
{
    bool spike;
    std::int32_t membrane; // U[t] after reset/leak
};

/** One LIF update: input current o, previous membrane u_prev. */
LifStep stepLif(std::int32_t o, std::int32_t u_prev, const LifParams& p);

/**
 * Run the LIF dynamics across all timesteps of one output neuron given
 * its full sums per timestep; returns the packed output spike word.
 * This is exactly what a P-LIF unit computes in one shot (Fig. 7).
 */
TimeWord lifAcrossTimesteps(const std::vector<std::int32_t>& sums,
                            const LifParams& p);

} // namespace loas
