/**
 * @file
 * Functional (dataflow-agnostic) reference of one dual-sparse SNN layer:
 * Step 1 spMspM (Eq. 1), Step 2 LIF firing (Eq. 2), Step 3 membrane
 * update (Eq. 3). Every accelerator simulator's functional output is
 * verified against this model.
 */

#pragma once

#include <cstdint>

#include "snn/lif.hh"
#include "tensor/dense_matrix.hh"
#include "tensor/spike_tensor.hh"

namespace loas {

/**
 * Dense spMspM for one timestep: O[:, :, t] = A[:, :, t] * B.
 * Spikes gate weight accumulation (bitwise-AND + accumulate, Fig. 2).
 */
DenseMatrix<std::int32_t>
referenceMatmulAtT(const SpikeTensor& a,
                   const DenseMatrix<std::int8_t>& b, int t);

/**
 * Full reference layer: returns the output spike tensor
 * C in U^{M x N x T}. If `full_sums` is non-null it receives the
 * pre-LIF accumulations O flattened as (m, n) -> packed per timestep,
 * i.e. full_sums->at(m, n * T + t) = O[m, n, t].
 */
SpikeTensor
referenceSnnLayer(const SpikeTensor& a, const DenseMatrix<std::int8_t>& b,
                  const LifParams& params,
                  DenseMatrix<std::int32_t>* full_sums = nullptr);

/** Number of spike-gated accumulate ops a dense walk would perform. */
std::uint64_t referenceAcOps(const SpikeTensor& a,
                             const DenseMatrix<std::int8_t>& b);

} // namespace loas
