#include "snn/metrics.hh"

namespace loas {

SpikeStats
computeSpikeStats(const SpikeTensor& spikes)
{
    SpikeStats stats;
    stats.origin_sparsity = spikes.originSparsity();
    stats.silent_ratio = spikes.silentRatio();
    stats.neurons = spikes.rows() * spikes.cols();
    stats.spikes = spikes.countSpikes();
    stats.single_spike_ratio =
        stats.neurons == 0
            ? 0.0
            : static_cast<double>(spikes.singleSpikeCount()) /
                  static_cast<double>(stats.neurons);
    return stats;
}

double
weightSparsity(const DenseMatrix<std::int8_t>& weights)
{
    return weights.sparsity();
}

} // namespace loas
