#include "snn/reference.hh"

#include "common/logging.hh"

namespace loas {

DenseMatrix<std::int32_t>
referenceMatmulAtT(const SpikeTensor& a, const DenseMatrix<std::int8_t>& b,
                   int t)
{
    if (a.cols() != b.rows())
        fatal("shape mismatch: A is %zux%zu, B is %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    DenseMatrix<std::int32_t> out(a.rows(), b.cols(), 0);
    for (std::size_t m = 0; m < a.rows(); ++m) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            if (!a.spike(m, k, t))
                continue;
            for (std::size_t n = 0; n < b.cols(); ++n)
                out(m, n) += b(k, n);
        }
    }
    return out;
}

SpikeTensor
referenceSnnLayer(const SpikeTensor& a, const DenseMatrix<std::int8_t>& b,
                  const LifParams& params,
                  DenseMatrix<std::int32_t>* full_sums)
{
    const int timesteps = a.timesteps();
    SpikeTensor c(a.rows(), b.cols(), timesteps);
    if (full_sums)
        *full_sums = DenseMatrix<std::int32_t>(
            a.rows(), b.cols() * static_cast<std::size_t>(timesteps), 0);

    // Accumulate O for every timestep first (Eq. 1), then run the LIF
    // recurrence along t for every output neuron (Eqs. 2-3).
    std::vector<DenseMatrix<std::int32_t>> sums;
    sums.reserve(timesteps);
    for (int t = 0; t < timesteps; ++t)
        sums.push_back(referenceMatmulAtT(a, b, t));

    std::vector<std::int32_t> neuron_sums(timesteps);
    for (std::size_t m = 0; m < a.rows(); ++m) {
        for (std::size_t n = 0; n < b.cols(); ++n) {
            for (int t = 0; t < timesteps; ++t) {
                neuron_sums[t] = sums[t](m, n);
                if (full_sums) {
                    full_sums->at(
                        m, n * static_cast<std::size_t>(timesteps) + t) =
                        neuron_sums[t];
                }
            }
            c.setWord(m, n, lifAcrossTimesteps(neuron_sums, params));
        }
    }
    return c;
}

std::uint64_t
referenceAcOps(const SpikeTensor& a, const DenseMatrix<std::int8_t>& b)
{
    std::uint64_t ops = 0;
    for (std::size_t m = 0; m < a.rows(); ++m) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            std::uint64_t spikes = 0;
            for (int t = 0; t < a.timesteps(); ++t)
                spikes += a.spike(m, k, t) ? 1 : 0;
            if (spikes == 0)
                continue;
            std::uint64_t nz_weights = 0;
            for (std::size_t n = 0; n < b.cols(); ++n)
                if (b(k, n) != 0)
                    ++nz_weights;
            ops += spikes * nz_weights;
        }
    }
    return ops;
}

} // namespace loas
