/**
 * @file
 * Sweep result serialization: CSV for spreadsheet/pandas-style
 * analysis of large design-space grids (one row per cell, one column
 * per swept option, derived columns inline), and JSON carrying the
 * full per-cell detail (traffic categories, op counts, energy
 * breakdown) for plotting scripts and regression checks.
 *
 * Both formats are deterministic functions of the SweepReport, which
 * is itself thread-count invariant — sweep artifacts diff cleanly.
 */

#pragma once

#include <string>

#include "api/sweep.hh"

namespace loas {

namespace csv {

/**
 * RFC 4180 field escaping: values containing a comma, quote, CR or LF
 * are double-quoted with embedded quotes doubled; anything else passes
 * through unchanged.
 */
std::string escape(const std::string& field);

} // namespace csv

/**
 * Whole report as CSV. Header:
 *   accel_spec,accel_key,network,<option columns...>,total_cycles,
 *   compute_cycles,dram_cycles,dram_bytes,sram_bytes,cache_miss_rate,
 *   energy_pj,speedup,energy_gain,edp,pareto,baseline
 * Option columns are the report's option_columns; a design that does
 * not set an option leaves its column empty.
 */
std::string toCsv(const SweepReport& report);

namespace json {

/** Whole report: baseline, option_columns and every cell, pretty. */
std::string toJson(const SweepReport& report);

} // namespace json

} // namespace loas
