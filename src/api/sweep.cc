#include "api/sweep.hh"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/logging.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

/** Append the Table II full networks named by `key` ("all" = every). */
bool
appendFullNetworks(const std::string& key, const AccelSpecGrid& grid,
                   std::vector<NetworkSpec>& out)
{
    const bool known = key == "all" || key == "alexnet" ||
                       key == "vgg16" || key == "resnet19";
    if (!known)
        return false;
    if (!grid.options.empty())
        throw std::invalid_argument(
            "network '" + key +
            "' takes no options (t/ws apply to the single-layer "
            "workloads alexnet-l4, vgg16-l8, resnet19-l19, t-hff)");
    if (key == "all" || key == "alexnet")
        out.push_back(tables::alexnet());
    if (key == "all" || key == "vgg16")
        out.push_back(tables::vgg16());
    if (key == "all" || key == "resnet19")
        out.push_back(tables::resnet19());
    return true;
}

/** Base layer for the single-layer workload keys, or nullptr-like. */
bool
baseLayer(const std::string& key, LayerSpec& out)
{
    if (key == "alexnet-l4")
        out = tables::alexnetL4();
    else if (key == "vgg16-l8")
        out = tables::vgg16L8();
    else if (key == "resnet19-l19")
        out = tables::resnet19L19();
    else if (key == "t-hff")
        out = tables::transformerHff();
    else
        return false;
    return true;
}

} // namespace

std::vector<NetworkSpec>
expandNetworkGrids(const std::vector<std::string>& grids)
{
    std::vector<NetworkSpec> networks;
    std::set<std::string> seen;
    auto push = [&](NetworkSpec net) {
        if (seen.insert(net.name).second)
            networks.push_back(std::move(net));
    };

    for (const auto& grid_string : grids) {
        const AccelSpecGrid grid = parseAccelSpecGrid(grid_string);

        std::vector<NetworkSpec> full;
        if (appendFullNetworks(grid.key, grid, full)) {
            for (auto& net : full)
                push(std::move(net));
            continue;
        }

        LayerSpec base;
        if (!baseLayer(grid.key, base))
            throw std::invalid_argument(
                "unknown network '" + grid.key +
                "' in grid '" + grid_string +
                "' (known: alexnet, vgg16, resnet19, all, alexnet-l4, "
                "vgg16-l8, resnet19-l19, t-hff)");

        if (grid.cells() + networks.size() > kMaxGridCells)
            throw std::invalid_argument(
                "network grids expand to more than " +
                std::to_string(kMaxGridCells) + " networks");
        for (const AccelSpec& cell : grid.expand()) {
            OptionReader opts(cell);
            LayerSpec spec = base;
            // Order matters: ws rewrites the base layer's weight
            // sparsity, then the timestep rescale resolves the
            // temporal statistics of the resulting layer (the Fig. 17
            // construction, see vgg16L8WithWeightSparsity).
            spec.weight_sparsity =
                opts.getDouble("ws", spec.weight_sparsity, 0.0, 0.999);
            const int t = opts.getInt("t", spec.t);
            opts.finish();
            if (t != spec.t)
                spec = tables::withTimesteps(spec, t);
            push(NetworkSpec{cell.str(), {spec}});
        }
    }
    return networks;
}

std::vector<bool>
paretoFront(const std::vector<std::pair<double, double>>& points)
{
    std::vector<bool> flags(points.size(), true);
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (i == j)
                continue;
            const bool leq = points[j].first <= points[i].first &&
                             points[j].second <= points[i].second;
            const bool less = points[j].first < points[i].first ||
                              points[j].second < points[i].second;
            if (leq && less) {
                flags[i] = false;
                break;
            }
        }
    }
    return flags;
}

const SweepCell*
SweepReport::find(const std::string& accel_spec,
                  const std::string& network) const
{
    for (const auto& cell : cells)
        if (cell.accel_spec == accel_spec && cell.network == network)
            return &cell;
    return nullptr;
}

const SweepCell&
SweepReport::at(const std::string& accel_spec,
                const std::string& network) const
{
    const SweepCell* cell = find(accel_spec, network);
    if (cell == nullptr)
        fatal("SweepReport has no cell (%s, %s)", accel_spec.c_str(),
              network.c_str());
    return *cell;
}

SweepReport
SweepEngine::run(const SweepRequest& request) const
{
    if (request.grids.empty())
        throw std::invalid_argument("sweep has no accelerator grids");
    if (request.networks.empty())
        throw std::invalid_argument("sweep has no networks");

    // Expand every accelerator grid; expandSpecGridList dedupes cells
    // that several grids cover and enforces the cell cap.
    std::vector<AccelSpec> designs;
    std::set<std::string> seen;
    for (const auto& spec_string : expandSpecGridList(request.grids)) {
        seen.insert(spec_string);
        designs.push_back(parseAccelSpec(spec_string));
    }
    if (designs.empty())
        throw std::invalid_argument("sweep grids expand to no designs");

    SweepReport report;
    report.baseline = request.baseline.empty()
                          ? designs.front().str()
                          : parseAccelSpec(request.baseline).str();
    if (seen.insert(report.baseline).second)
        designs.push_back(parseAccelSpec(report.baseline));

    std::set<std::string> option_names;
    for (const auto& design : designs)
        for (const auto& [name, value] : design.options)
            option_names.insert(name);
    report.option_columns.assign(option_names.begin(),
                                 option_names.end());

    // One batched job matrix; the SimEngine validates every design
    // against the registry (unknown keys/options throw here, before
    // any simulation) and shares each synthesized workload across all
    // of them.
    SimRequest sim;
    for (const auto& design : designs)
        sim.accels.push_back(design.str());
    sim.networks = expandNetworkGrids(request.networks);
    // The per-axis caps bound each expansion; the matrix itself must
    // also stay bounded or a 4096 x 4096 typo fans out ~16.7M cells.
    if (designs.size() * sim.networks.size() > kMaxGridCells)
        throw std::invalid_argument(
            "sweep matrix expands to " +
            std::to_string(designs.size()) + " designs x " +
            std::to_string(sim.networks.size()) +
            " networks, more than " + std::to_string(kMaxGridCells) +
            " cells");
    sim.seed = request.seed;
    sim.batch = request.batch;
    sim.energy = request.energy;
    sim.energy_params = request.energy_params;
    sim.threads = request.threads;
    sim.compiled_cache = request.compiled_cache;
    sim.cache_budget_bytes = request.cache_budget_bytes;
    sim.cache_dir = request.cache_dir;
    const SimReport sim_report = SimEngine().run(sim);
    report.compile_cache = sim_report.compile_cache;
    report.prepare_ms = sim_report.prepare_ms;
    report.sim_ms = sim_report.sim_ms;

    const std::size_t n_nets = sim.networks.size();
    report.cells.resize(sim_report.runs.size());
    for (std::size_t i = 0; i < sim_report.runs.size(); ++i) {
        const AccelSpec& design = designs[i / n_nets];
        SweepCell& cell = report.cells[i];
        cell.accel_spec = design.str();
        cell.accel_key = design.key;
        cell.accel_options = design.options;
        cell.network = sim_report.runs[i].network;
        cell.is_baseline = cell.accel_spec == report.baseline;
        cell.result = sim_report.runs[i].result;
        cell.energy = sim_report.runs[i].energy;
    }

    // Derived columns, per network: speedup and energy gain against
    // the baseline design's cell, EDP, and the Pareto front over
    // (cycles, energy) — (cycles, DRAM bytes) when energy is off, so
    // the front still trades latency against a cost axis.
    std::size_t base_design = 0;
    for (std::size_t d = 0; d < designs.size(); ++d)
        if (designs[d].str() == report.baseline)
            base_design = d;
    for (std::size_t n = 0; n < n_nets; ++n) {
        const SweepCell& baseline =
            report.cells[base_design * n_nets + n];

        std::vector<std::pair<double, double>> points;
        points.reserve(designs.size());
        for (std::size_t d = 0; d < designs.size(); ++d) {
            SweepCell& cell = report.cells[d * n_nets + n];
            const double cycles =
                static_cast<double>(cell.result.total_cycles);
            cell.speedup =
                static_cast<double>(baseline.result.total_cycles) /
                cycles;
            if (request.energy) {
                cell.energy_gain =
                    baseline.energy.totalPj() / cell.energy.totalPj();
                cell.edp = cell.energy.totalPj() * cycles;
            }
            points.emplace_back(
                cycles, request.energy
                            ? cell.energy.totalPj()
                            : static_cast<double>(
                                  cell.result.traffic.dramBytes()));
        }
        const std::vector<bool> front = paretoFront(points);
        for (std::size_t d = 0; d < designs.size(); ++d)
            report.cells[d * n_nets + n].pareto = front[d];
    }

    return report;
}

} // namespace loas
