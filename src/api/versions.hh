/**
 * @file
 * Single source for every externally visible format/schema version:
 * the CLI's own version, the schema tags stamped into the bench/list
 * JSON artifacts, and the serve protocol revision. `loas_cli version`
 * emits them all in one object so clients (and the serve protocol's
 * `version` command) can check compatibility before submitting work;
 * the on-disk artifact format version lives with its serializer
 * (ArtifactStore::kFormatVersion) and is re-exported by that command.
 *
 * Bump rules: a schema tag changes whenever the corresponding
 * document's field set changes (bench_compare.py refuses mismatched
 * schemas); the serve schema changes whenever a request or response
 * field changes meaning; the CLI version tracks the PR sequence.
 */

#pragma once

namespace loas {

inline constexpr char kCliVersion[] = "0.10.0";

/** loas_cli bench BENCH_sweep.json ("metrics" list; /4 added the
 *  served-throughput metric, /5 the batched-inference metrics, /6 the
 *  fault-hook overhead metric). */
inline constexpr char kBenchSchema[] = "loas-bench/6";

/** loas_cli bench BENCH_kernels.json kernel microbench companion; /2
 *  added the fused temporally-parallel join metrics and the fused
 *  SparTen steady-state allocation gates, /3 the per-ISA scalar join
 *  metrics and the simd_speedup ratio. */
inline constexpr char kKernelsSchema[] = "loas-kernels/3";

/** loas_cli list --json accelerator catalog; /2 added the resolved
 *  SIMD ISA and worker-pool sizing fields. */
inline constexpr char kListSchema[] = "loas-list/2";

/** loas_cli serve newline-delimited JSON protocol (src/serve/); /2
 *  added the "batch" submit field and "inferences_per_s" stats, /3
 *  the structured "error" field on failed-job replies and the disk
 *  circuit-breaker fields in cache stats, /4 the resolved SIMD ISA
 *  and worker-pool fields in the version and stats replies. */
inline constexpr char kServeSchema[] = "loas-serve/4";

/** loas_cli version self-description object; /2 added the resolved
 *  SIMD ISA. */
inline constexpr char kVersionSchema[] = "loas-version/2";

} // namespace loas
