#include "api/registry.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace loas {

AcceleratorRegistry&
AcceleratorRegistry::instance()
{
    static AcceleratorRegistry registry;
    return registry;
}

void
AcceleratorRegistry::add(const std::string& key, Entry entry)
{
    for (const auto& [existing, unused] : entries_)
        if (existing == key)
            panic("accelerator '%s' registered twice", key.c_str());
    if (!entry.factory)
        panic("accelerator '%s' registered without a factory",
              key.c_str());
    entries_.emplace_back(key, std::move(entry));
}

bool
AcceleratorRegistry::contains(const std::string& key) const
{
    for (const auto& [existing, unused] : entries_)
        if (existing == key)
            return true;
    return false;
}

std::vector<std::string>
AcceleratorRegistry::keys() const
{
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, unused] : entries_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

const AcceleratorRegistry::Entry&
AcceleratorRegistry::entry(const std::string& key) const
{
    for (const auto& [existing, entry] : entries_)
        if (existing == key)
            return entry;
    std::string known;
    for (const auto& name : keys())
        known += (known.empty() ? "" : ", ") + name;
    throw std::invalid_argument("unknown accelerator '" + key +
                                "' (known: " + known + ")");
}

std::unique_ptr<Accelerator>
AcceleratorRegistry::make(const AccelSpec& spec) const
{
    return entry(spec.key).factory(spec);
}

std::unique_ptr<Accelerator>
AcceleratorRegistry::make(const std::string& spec) const
{
    return make(parseAccelSpec(spec));
}

} // namespace loas
