/**
 * @file
 * Design-space sweep layer on top of the SimEngine. A SweepRequest
 * names accelerator spec *grids* ("loas?pes=16,32,64&t=4,8") and
 * network grids ("vgg16-l8?ws=0.982,0.684,0.25"); the engine expands
 * their cartesian products into one batched job matrix, runs it on the
 * SimEngine's thread pool (sharing the per-network workload cache
 * across every design), and derives the comparison columns the paper's
 * scaling figures plot: speedup against a named baseline design,
 * energy-delay product, and a Pareto-front flag over the
 * (latency, energy) plane of each network — (latency, DRAM traffic)
 * when the energy model is disabled.
 *
 * Determinism matches the SimEngine's: cells land in fixed expansion
 * order and a run with N worker threads is bit-identical to the serial
 * run, so sweep artifacts (CSV/JSON) diff cleanly across machines.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/accel_spec.hh"
#include "api/sim_engine.hh"

namespace loas {

/** A design-space sweep: accelerator grids x network grids. */
struct SweepRequest
{
    /**
     * Accelerator spec grids ("loas?pes=16,32&t=4,8"); each expands to
     * its cartesian product, duplicates across grids are dropped.
     */
    std::vector<std::string> grids;

    /**
     * Network grids. Keys: the full networks `alexnet`, `vgg16`,
     * `resnet19`, `all`, and the single-layer workloads `alexnet-l4`,
     * `vgg16-l8`, `resnet19-l19`, `t-hff`, which accept `t=` (timestep
     * rescale) and `ws=` (weight-sparsity fraction) value lists.
     */
    std::vector<std::string> networks;

    /**
     * Baseline design for the speedup / energy-gain columns: a concrete
     * spec string, simulated on every network (and appended to the
     * matrix when no grid expands to it). Empty = first expanded design.
     */
    std::string baseline;

    /** Workload-synthesis seed (SimRequest passthrough). */
    std::uint64_t seed = 101;

    /** Inputs per cell (SimRequest passthrough; 1 = unbatched). */
    std::size_t batch = 1;

    /** Evaluate the energy model (enables energy_gain/EDP columns). */
    bool energy = true;

    /** Per-op energies used when `energy` is set. */
    EnergyParams energy_params;

    /** Worker threads (SimRequest passthrough; 0 = one per core). */
    int threads = 0;

    /** Compiled-cache wiring (SimRequest passthrough, see there). */
    CompiledCache* compiled_cache = nullptr;
    std::uint64_t cache_budget_bytes = 0;
    std::string cache_dir;
};

/** One (design, network) cell of a finished sweep, plus derived columns. */
struct SweepCell
{
    std::string accel_spec;  // canonical spec string (AccelSpec::str)
    std::string accel_key;   // registry key
    std::map<std::string, std::string> accel_options;
    std::string network;     // expanded network name
    bool is_baseline = false;

    RunResult result;
    EnergyBreakdown energy;  // zeros when the request disabled energy

    /** baseline_cycles / cycles on the same network. */
    double speedup = 0.0;
    /** baseline_pJ / pJ on the same network (0 when energy is off). */
    double energy_gain = 0.0;
    /** total_pJ x total_cycles (0 when energy is off). */
    double edp = 0.0;
    /**
     * On the per-network Pareto front over (cycles, energy pJ) — or
     * (cycles, DRAM bytes) when the request disabled energy, so the
     * front still trades latency against a cost axis.
     */
    bool pareto = false;
};

/** All cells of a finished sweep, design-major in expansion order. */
struct SweepReport
{
    /** Resolved baseline spec (canonical). */
    std::string baseline;

    /** Union of option names across designs, sorted (CSV columns). */
    std::vector<std::string> option_columns;

    /**
     * Compiled-workload cache accounting (SimReport passthrough): how
     * many prepare-phase compilations the whole sweep actually ran vs
     * how many were served from the shared cache. Not serialized —
     * compile_ms is wall time, and the CSV/JSON artifacts must stay
     * thread-count invariant.
     */
    CompiledCache::Stats compile_cache;

    /** Wall time compiling (prepare) vs executing (sim), summed. */
    double prepare_ms = 0.0;
    double sim_ms = 0.0;

    std::vector<SweepCell> cells;

    const SweepCell* find(const std::string& accel_spec,
                          const std::string& network) const;

    /** Like find(), but a missing cell is fatal. */
    const SweepCell& at(const std::string& accel_spec,
                        const std::string& network) const;
};

/**
 * Pareto front of a point set under minimization of both coordinates:
 * flags[i] is true iff no other point is <= in both coordinates and
 * < in at least one. Duplicated points are all on the front.
 */
std::vector<bool>
paretoFront(const std::vector<std::pair<double, double>>& points);

/**
 * Expand network grid strings (see SweepRequest::networks) into
 * concrete NetworkSpecs. Variant workloads are named by their canonical
 * grid-cell string ("vgg16-l8?t=8&ws=0.25"), so every expanded network
 * has a unique, greppable name. Unknown keys or options throw
 * std::invalid_argument. Duplicate expansions are dropped.
 */
std::vector<NetworkSpec>
expandNetworkGrids(const std::vector<std::string>& grids);

/** Executes SweepRequests. Stateless, like the SimEngine. */
class SweepEngine
{
  public:
    SweepEngine() = default;

    /**
     * Expand, validate and run the sweep matrix. Throws
     * std::invalid_argument for malformed grids, unknown registry or
     * network keys, or bad options before any simulation starts.
     */
    SweepReport run(const SweepRequest& request) const;
};

} // namespace loas
