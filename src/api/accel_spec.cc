#include "api/accel_spec.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace loas {
namespace {

bool
isTokenChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-';
}

void
checkToken(const std::string& token, const char* what,
           const std::string& spec)
{
    if (token.empty())
        throw std::invalid_argument(std::string("empty ") + what +
                                    " in accelerator spec '" + spec +
                                    "'");
    for (const char c : token)
        if (!isTokenChar(c))
            throw std::invalid_argument(
                std::string("bad character '") + c + "' in " + what +
                " of accelerator spec '" + spec + "'");
}

} // namespace

std::string
AccelSpec::str() const
{
    std::string out = key;
    char sep = '?';
    for (const auto& [name, value] : options) {
        out += sep;
        out += name;
        out += '=';
        out += value;
        sep = '&';
    }
    return out;
}

AccelSpec
parseAccelSpec(const std::string& spec)
{
    AccelSpec parsed;
    const auto qmark = spec.find('?');
    parsed.key = spec.substr(0, qmark);
    checkToken(parsed.key, "key", spec);
    if (qmark == std::string::npos)
        return parsed;

    std::string rest = spec.substr(qmark + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        auto amp = rest.find('&', pos);
        if (amp == std::string::npos)
            amp = rest.size();
        const std::string pair = rest.substr(pos, amp - pos);
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "option '" + pair + "' in accelerator spec '" + spec +
                "' is not name=value");
        const std::string name = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        checkToken(name, "option name", spec);
        if (value.empty())
            throw std::invalid_argument("empty value for option '" +
                                        name + "' in accelerator spec '" +
                                        spec + "'");
        if (!parsed.options.emplace(name, value).second)
            throw std::invalid_argument("duplicate option '" + name +
                                        "' in accelerator spec '" + spec +
                                        "'");
        pos = amp + 1;
    }
    return parsed;
}

std::vector<std::string>
splitSpecList(const std::string& list)
{
    std::vector<std::string> specs;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        auto comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(pos, comma - pos);
        if (!item.empty())
            specs.push_back(item);
        pos = comma + 1;
    }
    return specs;
}

const std::string*
OptionReader::find(const std::string& name)
{
    const auto it = spec_.options.find(name);
    if (it == spec_.options.end())
        return nullptr;
    consumed_.insert(name);
    return &it->second;
}

int
OptionReader::getInt(const std::string& name, int def, int min)
{
    const std::string* value = find(name);
    if (value == nullptr)
        return def;
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0')
        throw std::invalid_argument("option '" + name + "=" + *value +
                                    "' of accelerator '" + spec_.key +
                                    "' is not an integer");
    if (errno == ERANGE || parsed < min ||
        parsed > std::numeric_limits<int>::max())
        throw std::invalid_argument(
            "option '" + name + "=" + *value + "' of accelerator '" +
            spec_.key + "' is out of range (min " +
            std::to_string(min) + ")");
    return static_cast<int>(parsed);
}

bool
OptionReader::getBool(const std::string& name, bool def)
{
    const std::string* value = find(name);
    if (value == nullptr)
        return def;
    if (*value == "1" || *value == "true" || *value == "yes")
        return true;
    if (*value == "0" || *value == "false" || *value == "no")
        return false;
    throw std::invalid_argument("option '" + name + "=" + *value +
                                "' of accelerator '" + spec_.key +
                                "' is not a boolean");
}

void
OptionReader::finish() const
{
    for (const auto& [name, value] : spec_.options)
        if (consumed_.count(name) == 0)
            throw std::invalid_argument("accelerator '" + spec_.key +
                                        "' does not understand option '" +
                                        name + "'");
}

} // namespace loas
