#include "api/accel_spec.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <stdexcept>

namespace loas {
namespace {

bool
isTokenChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-';
}

void
checkToken(const std::string& token, const char* what,
           const std::string& spec)
{
    if (token.empty())
        throw std::invalid_argument(std::string("empty ") + what +
                                    " in accelerator spec '" + spec +
                                    "'");
    for (const char c : token)
        if (!isTokenChar(c))
            throw std::invalid_argument(
                std::string("bad character '") + c + "' in " + what +
                " of accelerator spec '" + spec + "'");
}

} // namespace

std::string
AccelSpec::str() const
{
    std::string out = key;
    char sep = '?';
    for (const auto& [name, value] : options) {
        out += sep;
        out += name;
        out += '=';
        out += value;
        sep = '&';
    }
    return out;
}

AccelSpec
parseAccelSpec(const std::string& spec)
{
    AccelSpec parsed;
    const auto qmark = spec.find('?');
    parsed.key = spec.substr(0, qmark);
    checkToken(parsed.key, "key", spec);
    if (qmark == std::string::npos)
        return parsed;

    std::string rest = spec.substr(qmark + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        auto amp = rest.find('&', pos);
        if (amp == std::string::npos)
            amp = rest.size();
        const std::string pair = rest.substr(pos, amp - pos);
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "option '" + pair + "' in accelerator spec '" + spec +
                "' is not name=value");
        const std::string name = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        checkToken(name, "option name", spec);
        if (value.empty())
            throw std::invalid_argument("empty value for option '" +
                                        name + "' in accelerator spec '" +
                                        spec + "'");
        if (!parsed.options.emplace(name, value).second)
            throw std::invalid_argument("duplicate option '" + name +
                                        "' in accelerator spec '" + spec +
                                        "'");
        pos = amp + 1;
    }
    return parsed;
}

std::vector<std::string>
splitSpecList(const std::string& list, char sep)
{
    std::vector<std::string> specs;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        auto next = list.find(sep, pos);
        if (next == std::string::npos)
            next = list.size();
        const std::string item = list.substr(pos, next - pos);
        if (!item.empty())
            specs.push_back(item);
        pos = next + 1;
    }
    return specs;
}

std::size_t
AccelSpecGrid::cells() const
{
    // Saturate just past the expansion cap so a pathological grid
    // cannot overflow the product before the limit check rejects it.
    std::size_t n = 1;
    for (const auto& [name, values] : options) {
        n *= values.size();
        if (n > kMaxGridCells)
            return kMaxGridCells + 1;
    }
    return n;
}

std::vector<AccelSpec>
AccelSpecGrid::expand() const
{
    std::vector<AccelSpec> specs;
    specs.reserve(cells());

    // Odometer over the (sorted) option axes; digits[i] indexes into
    // the i-th option's value list and the last axis varies fastest.
    std::vector<std::size_t> digits(options.size(), 0);
    bool done = false;
    while (!done) {
        AccelSpec spec;
        spec.key = key;
        std::size_t axis = 0;
        for (const auto& [name, values] : options)
            spec.options.emplace(name, values[digits[axis++]]);
        specs.push_back(std::move(spec));

        done = true;
        for (std::size_t i = digits.size(); i-- > 0;) {
            const auto& values = std::next(options.begin(),
                                           static_cast<std::ptrdiff_t>(i))
                                     ->second;
            if (++digits[i] < values.size()) {
                done = false;
                break;
            }
            digits[i] = 0;
        }
    }
    return specs;
}

AccelSpecGrid
parseAccelSpecGrid(const std::string& grid)
{
    const AccelSpec flat = parseAccelSpec(grid);
    AccelSpecGrid parsed;
    parsed.key = flat.key;
    for (const auto& [name, list] : flat.options) {
        std::vector<std::string> values;
        std::size_t pos = 0;
        while (pos <= list.size()) {
            auto comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            std::string value = list.substr(pos, comma - pos);
            if (value.empty())
                throw std::invalid_argument(
                    "empty value in list '" + name + "=" + list +
                    "' of spec grid '" + grid + "'");
            if (std::find(values.begin(), values.end(), value) !=
                values.end())
                throw std::invalid_argument(
                    "duplicate value '" + value + "' in list '" + name +
                    "=" + list + "' of spec grid '" + grid + "'");
            values.push_back(std::move(value));
            pos = comma + 1;
        }
        parsed.options.emplace(name, std::move(values));
    }
    // cells() saturates past the cap, so report the limit rather than
    // a (possibly clamped) count.
    if (parsed.cells() > kMaxGridCells)
        throw std::invalid_argument(
            "spec grid '" + grid + "' expands to more than " +
            std::to_string(kMaxGridCells) + " cells");
    return parsed;
}

std::vector<std::string>
expandSpecGrid(const std::string& grid)
{
    std::vector<std::string> specs;
    for (const auto& spec : parseAccelSpecGrid(grid).expand())
        specs.push_back(spec.str());
    return specs;
}

std::vector<std::string>
expandSpecGridList(const std::vector<std::string>& grids)
{
    std::vector<std::string> specs;
    std::set<std::string> seen;
    for (const auto& grid : grids) {
        for (auto& spec : expandSpecGrid(grid))
            if (seen.insert(spec).second)
                specs.push_back(std::move(spec));
        if (specs.size() > kMaxGridCells)
            throw std::invalid_argument(
                "spec grid list expands to more than " +
                std::to_string(kMaxGridCells) + " cells");
    }
    return specs;
}

std::vector<std::string>
expandSpecGridList(const std::string& list)
{
    return expandSpecGridList(splitSpecList(list, ';'));
}

const std::string*
OptionReader::find(const std::string& name)
{
    const auto it = spec_.options.find(name);
    if (it == spec_.options.end())
        return nullptr;
    consumed_.insert(name);
    return &it->second;
}

int
OptionReader::getInt(const std::string& name, int def, int min)
{
    const std::string* value = find(name);
    if (value == nullptr)
        return def;
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0')
        throw std::invalid_argument("option '" + name + "=" + *value +
                                    "' of spec '" + spec_.key +
                                    "' is not an integer");
    if (errno == ERANGE || parsed < min ||
        parsed > std::numeric_limits<int>::max())
        throw std::invalid_argument(
            "option '" + name + "=" + *value + "' of spec '" +
            spec_.key + "' is out of range (min " +
            std::to_string(min) + ")");
    return static_cast<int>(parsed);
}

bool
OptionReader::getBool(const std::string& name, bool def)
{
    const std::string* value = find(name);
    if (value == nullptr)
        return def;
    if (*value == "1" || *value == "true" || *value == "yes")
        return true;
    if (*value == "0" || *value == "false" || *value == "no")
        return false;
    throw std::invalid_argument("option '" + name + "=" + *value +
                                "' of spec '" + spec_.key +
                                "' is not a boolean");
}

double
OptionReader::getDouble(const std::string& name, double def, double min,
                        double max)
{
    const std::string* value = find(name);
    if (value == nullptr)
        return def;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value->c_str(), &end);
    if (end == value->c_str() || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument("option '" + name + "=" + *value +
                                    "' of spec '" + spec_.key +
                                    "' is not a number");
    if (!(parsed >= min && parsed <= max)) {
        char range[48];
        std::snprintf(range, sizeof(range), "[%g, %g]", min, max);
        throw std::invalid_argument(
            "option '" + name + "=" + *value + "' of spec '" +
            spec_.key + "' is outside " + range);
    }
    return parsed;
}

void
OptionReader::finish() const
{
    for (const auto& [name, value] : spec_.options)
        if (consumed_.count(name) == 0)
            throw std::invalid_argument("spec '" + spec_.key +
                                        "' does not understand option '" +
                                        name + "'");
}

} // namespace loas
