/**
 * @file
 * String-keyed registry of accelerator factories. Each backend
 * self-registers at load time (a file-local RegisterAccelerator object
 * at the bottom of its .cc), so the harnesses, the SimEngine and
 * loas_cli can build any design from a spec string like
 * `"loas?t=8&pes=32"` without naming a concrete class.
 *
 * The build links the library as a CMake OBJECT library precisely so
 * these registration objects survive static linking.
 *
 * The registry is populated by static initializers before main() and
 * read-only afterwards; concurrent make() calls from the SimEngine's
 * worker threads are safe.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "api/accel_spec.hh"

namespace loas {

/** Global name -> factory map of every accelerator model. */
class AcceleratorRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Accelerator>(const AccelSpec&)>;

    /** What a backend registers. */
    struct Entry
    {
        /** One-line description (for `loas_cli list`). */
        std::string description;

        /**
         * Spec option names the factory accepts ("pes", "t", ...), in
         * the backend's documented order — the machine-readable
         * counterpart of the description, emitted by
         * `loas_cli list --json` for tooling/CI discovery.
         */
        std::vector<std::string> options;

        /**
         * The design expects the fine-tuned-preprocessing workload
         * variant (generateNetwork with ft=true); the SimEngine feeds
         * it the matching cached workload.
         */
        bool ft_workload = false;

        Factory factory;
    };

    /** The process-wide registry. */
    static AcceleratorRegistry& instance();

    /** Register a key (panics on duplicates: that is a code bug). */
    void add(const std::string& key, Entry entry);

    bool contains(const std::string& key) const;

    /** All registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** Entry for a key; throws std::invalid_argument when unknown. */
    const Entry& entry(const std::string& key) const;

    /** Build an accelerator from a parsed spec. */
    std::unique_ptr<Accelerator> make(const AccelSpec& spec) const;

    /** Build an accelerator from a spec string ("gamma?pes=32"). */
    std::unique_ptr<Accelerator> make(const std::string& spec) const;

  private:
    AcceleratorRegistry() = default;

    std::vector<std::pair<std::string, Entry>> entries_;
};

/** File-local self-registration helper for backend .cc files. */
struct RegisterAccelerator
{
    RegisterAccelerator(const std::string& key,
                        AcceleratorRegistry::Entry entry)
    {
        AcceleratorRegistry::instance().add(key, std::move(entry));
    }
};

} // namespace loas
