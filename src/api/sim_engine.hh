/**
 * @file
 * Batched, multi-threaded simulation engine. A SimRequest names a job
 * matrix — accelerator spec strings x network specs — and the engine
 * executes every (accelerator, network) cell on a thread pool,
 * returning a SimReport of RunResult + EnergyBreakdown rows.
 *
 * Workload generation (the expensive synthesis of calibrated spike and
 * weight tensors) runs once per (network, ft-variant) and the cached
 * layers are shared read-only by every accelerator, so adding a design
 * to a sweep costs only its simulation time.
 *
 * Simulation itself is two-phase (see accel/accelerator.hh): each
 * layer is lowered by prepare() into compiled operand formats exactly
 * once per (network, layer, ft-variant, format family, timesteps) key
 * in a shared CompiledCache, and every design variant of that family
 * executes the same read-only artifact — a `loas?pes=16,32,64` sweep
 * compresses its tensors once, not once per cell.
 *
 * Results are deterministic: each cell is simulated on a private
 * accelerator instance from seeded inputs and written to its fixed
 * slot, so a run with N worker threads is bit-identical to the serial
 * run of the same request.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/run_result.hh"
#include "energy/energy_model.hh"
#include "workload/compiled_cache.hh"
#include "workload/layer_spec.hh"

namespace loas {

/** One batch of simulation jobs: every accelerator on every network. */
struct SimRequest
{
    /** Accelerator spec strings ("loas", "gamma?pes=32", ...). */
    std::vector<std::string> accels;

    /** Workloads; single-layer networks express layer studies. */
    std::vector<NetworkSpec> networks;

    /** Workload-synthesis seed (per-layer diversified downstream). */
    std::uint64_t seed = 101;

    /**
     * Inputs simulated per (accelerator, network) cell: each gets an
     * independently-seeded spike tensor per layer (weights are shared),
     * compiled into ONE artifact per cache key and executed over a
     * batch-level parallel loop. 1 (the default) is byte-identical to
     * the unbatched engine. Must be >= 1.
     */
    std::size_t batch = 1;

    /** Also evaluate the energy model on every result. */
    bool energy = true;

    /** Per-op energies used when `energy` is set. */
    EnergyParams energy_params;

    /**
     * Worker threads: 1 = serial in the calling thread, 0 = one per
     * hardware thread (capped by the job count).
     */
    int threads = 0;

    /**
     * External compiled-workload cache, typically
     * &CompiledCache::process() so artifacts persist across engine
     * runs. Null (the default) gives the run a private cache, scoped
     * and configured by the two fields below. The caller owns an
     * external cache's configuration; the engine only uses it.
     */
    CompiledCache* compiled_cache = nullptr;

    /** Private cache's in-memory byte budget (0 = unlimited). */
    std::uint64_t cache_budget_bytes = 0;

    /** Private cache's on-disk level directory ("" = none). */
    std::string cache_dir;

    /**
     * Cooperative cancellation token, owned by the caller and shared
     * with whoever may cancel the run (the serve job queue sets it on
     * cancel/timeout). The engine checks it between workload
     * syntheses and between job-matrix cells — never mid-cell — and
     * aborts by throwing SimCancelled. Null = not cancellable.
     */
    const std::atomic<bool>* cancel = nullptr;
};

/** Thrown by SimEngine::run when the request's cancel token is set. */
class SimCancelled : public std::runtime_error
{
  public:
    SimCancelled() : std::runtime_error("simulation run cancelled") {}
};

/** One (accelerator, network) cell of a finished job matrix. */
struct SimRun
{
    std::string accel_spec;   // spec string as requested
    std::string network;      // NetworkSpec::name

    /** Batch aggregate (== the single input's result at batch 1). */
    RunResult result;
    EnergyBreakdown energy;   // zeros when the request disabled energy

    /**
     * Per-input network totals, in input order; empty at batch 1 so
     * unbatched reports (and their JSON) are unchanged.
     */
    std::vector<RunResult> per_input;
};

/** All cells of a finished SimRequest, in accel-major request order. */
struct SimReport
{
    std::vector<SimRun> runs;

    /**
     * Compiled-workload cache accounting of this run: counters are
     * this run's own lookups, attributed exactly at the cache mutex
     * (thread-count invariant, and exact even when several engine
     * runs share one cache concurrently — each run tallies only the
     * hits/misses/disk traffic its own getOrCompile calls caused);
     * entries/bytes are the shared cache's occupancy after the run.
     * compile_ms is wall time and varies run to run.
     */
    CompiledCache::Stats compile_cache;

    /** Wall time spent compiling layers (prepare phase), summed. */
    double prepare_ms = 0.0;

    /** Wall time spent executing compiled layers, summed over workers. */
    double sim_ms = 0.0;

    /** Cell lookup by request spec string + network name. */
    const SimRun* find(const std::string& accel_spec,
                       const std::string& network) const;

    /** Like find(), but a missing cell is fatal (harness convenience). */
    const SimRun& at(const std::string& accel_spec,
                     const std::string& network) const;
};

/** Executes SimRequests. Stateless; one instance can serve any number
 *  of requests from any thread. */
class SimEngine
{
  public:
    SimEngine() = default;

    /**
     * Run the full job matrix. Throws std::invalid_argument for
     * malformed specs, unknown registry keys or bad options before any
     * simulation starts.
     */
    SimReport run(const SimRequest& request) const;
};

} // namespace loas
