#include "api/sweep_io.hh"

#include <cstdio>

#include "api/json.hh"

namespace loas {

namespace csv {

std::string
escape(const std::string& field)
{
    if (field.find_first_of(",\"\r\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (const char c : field) {
        out += c;
        if (c == '"')
            out += '"';
    }
    out += '"';
    return out;
}

} // namespace csv

std::string
toCsv(const SweepReport& report)
{
    std::string out = "accel_spec,accel_key,network";
    for (const auto& name : report.option_columns) {
        out += ',';
        out += csv::escape(name);
    }
    out += ",total_cycles,compute_cycles,dram_cycles,dram_bytes,"
           "sram_bytes,cache_miss_rate,energy_pj,speedup,energy_gain,"
           "edp,pareto,baseline\n";

    for (const auto& cell : report.cells) {
        out += csv::escape(cell.accel_spec);
        for (const std::string& field :
             {csv::escape(cell.accel_key), csv::escape(cell.network)}) {
            out += ',';
            out += field;
        }
        for (const auto& name : report.option_columns) {
            const auto it = cell.accel_options.find(name);
            out += ',';
            if (it != cell.accel_options.end())
                out += csv::escape(it->second);
        }
        for (const std::string& field :
             {json::num(cell.result.total_cycles),
              json::num(cell.result.compute_cycles),
              json::num(cell.result.dram_cycles),
              json::num(cell.result.traffic.dramBytes()),
              json::num(cell.result.traffic.sramBytes()),
              json::num(cell.result.cacheMissRate()),
              json::num(cell.energy.totalPj()),
              json::num(cell.speedup), json::num(cell.energy_gain),
              json::num(cell.edp)}) {
            out += ',';
            out += field;
        }
        out += cell.pareto ? ",1" : ",0";
        out += cell.is_baseline ? ",1\n" : ",0\n";
    }
    return out;
}

namespace json {

namespace {

std::string
cellToJson(const SweepCell& cell)
{
    std::string out = "{\n";
    out += "  \"accel_spec\": " + quote(cell.accel_spec) + ",\n";
    out += "  \"accel_key\": " + quote(cell.accel_key) + ",\n";
    out += "  \"options\": {";
    bool first = true;
    for (const auto& [name, value] : cell.accel_options) {
        out += first ? "" : ", ";
        out += quote(name) + ": " + quote(value);
        first = false;
    }
    out += "},\n";
    out += "  \"network\": " + quote(cell.network) + ",\n";
    out += "  \"speedup\": " + num(cell.speedup) + ",\n";
    out += "  \"energy_gain\": " + num(cell.energy_gain) + ",\n";
    out += "  \"edp\": " + num(cell.edp) + ",\n";
    out += std::string("  \"pareto\": ") +
           (cell.pareto ? "true" : "false") + ",\n";
    out += std::string("  \"baseline\": ") +
           (cell.is_baseline ? "true" : "false") + ",\n";
    out += "  \"result\": " + shift(toJson(cell.result)) + ",\n";
    out += "  \"energy\": " + shift(toJson(cell.energy)) + "\n";
    out += "}";
    return out;
}

} // namespace

std::string
toJson(const SweepReport& report)
{
    std::string out = "{\n";
    out += "  \"baseline\": " + quote(report.baseline) + ",\n";
    out += "  \"option_columns\": [";
    for (std::size_t i = 0; i < report.option_columns.size(); ++i) {
        out += i == 0 ? "" : ", ";
        out += quote(report.option_columns[i]);
    }
    out += "],\n";
    out += "  \"cells\": [\n";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        out += "    " + shift(shift(cellToJson(report.cells[i])));
        out += i + 1 < report.cells.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace json
} // namespace loas
