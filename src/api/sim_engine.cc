#include "api/sim_engine.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>

#include "api/registry.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "workload/generator.hh"

namespace loas {

const SimRun*
SimReport::find(const std::string& accel_spec,
                const std::string& network) const
{
    for (const auto& run : runs)
        if (run.accel_spec == accel_spec && run.network == network)
            return &run;
    return nullptr;
}

const SimRun&
SimReport::at(const std::string& accel_spec,
              const std::string& network) const
{
    const SimRun* run = find(accel_spec, network);
    if (run == nullptr)
        fatal("SimReport has no cell (%s, %s)", accel_spec.c_str(),
              network.c_str());
    return *run;
}

SimReport
SimEngine::run(const SimRequest& request) const
{
    // Injected engine fault: an exception like any other run-time
    // failure, so it exercises the same surfaces — a structured
    // `failed` job in the daemon, an error exit in the CLI.
    fault::maybeThrow(fault::Site::EngineExecute);

    const auto& registry = AcceleratorRegistry::instance();

    // Validate the whole request up front: parse every spec, resolve
    // every registry key, and build (but discard) one instance so bad
    // options surface before any simulation time is spent.
    struct AccelJob
    {
        std::string spec_string;
        AccelSpec spec;
        bool ft_workload = false;
    };
    std::vector<AccelJob> accels;
    accels.reserve(request.accels.size());
    for (const auto& spec_string : request.accels) {
        AccelJob job;
        job.spec_string = spec_string;
        job.spec = parseAccelSpec(spec_string);
        job.ft_workload = registry.entry(job.spec.key).ft_workload;
        registry.make(job.spec);
        accels.push_back(std::move(job));
    }

    // Network names must be unique: they key both the report's cell
    // lookup and the compiled-workload cache, so a duplicate would
    // silently serve one network's compiled operands to the other.
    std::set<std::string> net_names;
    for (const auto& net : request.networks)
        if (!net_names.insert(net.name).second)
            throw std::invalid_argument(
                "duplicate network name '" + net.name +
                "' in SimRequest");

    if (request.batch < 1)
        throw std::invalid_argument("SimRequest batch must be >= 1");

    const int threads = resolveThreads(request.threads);

    // Cancellation is cooperative and cell-granular: the token is
    // polled before each unit of work, so a cancelled run stops
    // within one workload synthesis / one cell simulation.
    const auto check_cancelled = [&] {
        if (request.cancel &&
            request.cancel->load(std::memory_order_relaxed))
            throw SimCancelled();
    };
    check_cancelled();

    // Phase 1: synthesize each needed (network, ft-variant) workload
    // once; the cached layers are shared read-only by every backend.
    const std::size_t n_nets = request.networks.size();
    bool want_plain = false, want_ft = false;
    for (const auto& accel : accels)
        (accel.ft_workload ? want_ft : want_plain) = true;

    std::vector<std::vector<LayerData>> plain(n_nets), ft(n_nets);
    parallelFor(n_nets, threads, [&](std::size_t i) {
        check_cancelled();
        const NetworkSpec& net = request.networks[i];
        if (want_plain)
            plain[i] = generateNetwork(net, request.seed, /*ft=*/false,
                                       request.batch);
        if (want_ft)
            ft[i] = generateNetwork(net, request.seed, /*ft=*/true,
                                    request.batch);
    });

    // Phase 2: lower each layer through the shared compiled-workload
    // cache and execute the (accelerator x network) job matrix. Each
    // job owns a private accelerator instance and writes its fixed
    // report slot, which keeps multi-threaded runs bit-identical to
    // serial ones; compiled artifacts are shared read-only across all
    // design variants of a format family (one compilation per key,
    // whatever the thread count).
    SimReport report;
    report.runs.resize(accels.size() * n_nets);
    const EnergyModel energy_model(request.energy_params);

    // A request-supplied cache outlives (and is shared across) engine
    // runs; otherwise the run gets a private cache configured from the
    // request. Either way the report carries this run's stat deltas.
    CompiledCache local_cache;
    CompiledCache* cache = request.compiled_cache;
    if (cache == nullptr) {
        cache = &local_cache;
        local_cache.setByteBudget(request.cache_budget_bytes);
        local_cache.setDiskDir(request.cache_dir);
    }
    // This run's own cache counters, attributed exactly under the
    // cache mutex — not a before/after snapshot subtraction, so the
    // tally stays correct when concurrent runs share the cache.
    CompiledCache::Stats attributed;
    std::atomic<std::uint64_t> sim_ns{0};
    using Clock = std::chrono::steady_clock;

    // Cells parallelize *inside* a cell too — batched cells along the
    // input axis, single-input cells across each large layer's output
    // rows (intra-layer phase A/B; results stay byte-identical at any
    // split). Splitting the thread budget across the cell jobs keeps
    // total concurrency at the requested level.
    const int per_cell_threads = std::max<int>(
        1,
        threads /
            static_cast<int>(std::max<std::size_t>(
                1, report.runs.size())));
    const int batch_threads = request.batch > 1 ? per_cell_threads : 1;

    parallelFor(report.runs.size(), threads, [&](std::size_t i) {
        check_cancelled();
        const std::size_t a = i / n_nets;
        const std::size_t n = i % n_nets;
        const AccelJob& accel = accels[a];
        const NetworkSpec& net = request.networks[n];
        const auto& layers = accel.ft_workload ? ft[n] : plain[n];

        SimRun& run = report.runs[i];
        run.accel_spec = accel.spec_string;
        run.network = net.name;

        const auto instance = registry.make(accel.spec);
        if (request.batch == 1 && per_cell_threads > 1)
            instance->setLayerThreads(per_cell_threads);
        const std::string family = instance->formatFamily();
        std::vector<std::shared_ptr<const CompiledLayer>> compiled;
        compiled.reserve(layers.size());
        for (std::size_t l = 0; l < layers.size(); ++l)
            compiled.push_back(cache->getOrCompile(
                compiledLayerKey(net.name, l, accel.ft_workload,
                                 family, layers[l].spec.t,
                                 request.seed, request.batch),
                [&] { return instance->prepare(layers[l]); },
                &attributed));

        const auto t_exec = Clock::now();
        if (request.batch > 1)
            run.result = instance->runNetworkBatch(
                compiled, net.name, batch_threads, &run.per_input);
        else
            run.result = instance->runNetwork(compiled, net.name);
        sim_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t_exec)
                .count());
    });

    // Energy is a pure function of each cell's RunResult, so it is
    // derived post-hoc while assembling the report instead of inside
    // the simulation job loop — it neither occupies worker threads nor
    // pollutes the sim_ms timing split.
    if (request.energy)
        for (auto& run : report.runs)
            run.energy = energy_model.evaluate(run.result);

    // The run is over: its networks' artifacts move to the evict-first
    // pool of a persistent cache, so the next run's compilations push
    // them out before anything still live.
    for (const auto& net : request.networks)
        cache->finishNetwork(net.name);

    report.compile_cache = attributed;
    const CompiledCache::Stats occupancy = cache->stats();
    report.compile_cache.entries = occupancy.entries;
    report.compile_cache.bytes = occupancy.bytes;
    report.prepare_ms = report.compile_cache.compile_ms;
    report.sim_ms =
        static_cast<double>(sim_ns.load()) / 1e6;
    return report;
}

} // namespace loas
