/**
 * @file
 * JSON serialization of simulation results, so loas_cli and external
 * tooling (plotting scripts, dashboards, regression checks) can consume
 * a SimReport without parsing ASCII tables. Hand-rolled writer — the
 * tree has no JSON dependency and the schema is small.
 */

#pragma once

#include <cstdint>
#include <string>

#include "accel/op_counts.hh"
#include "accel/run_result.hh"
#include "api/sim_engine.hh"
#include "energy/energy_model.hh"
#include "mem/traffic.hh"

namespace loas {
namespace json {

/** JSON string literal with escaping, including the quotes. */
std::string quote(const std::string& s);

/** Decimal integer rendering. */
std::string num(std::uint64_t v);

/** Round-trip-exact (%.17g) double rendering. */
std::string num(double v);

/** Shift an already-rendered multi-line value two spaces deeper. */
std::string shift(const std::string& rendered);

std::string toJson(const CompiledCache::Stats& stats);
std::string toJson(const OpCounts& ops);
std::string toJson(const TrafficStats& traffic);
std::string toJson(const EnergyBreakdown& energy);
std::string toJson(const RunResult& result);
std::string toJson(const SimRun& run);

/** Whole report: `{"runs": [...]}`, pretty-printed. */
std::string toJson(const SimReport& report);

} // namespace json
} // namespace loas
