#include "api/json.hh"

#include <cstdio>
#include <utility>
#include <vector>

namespace loas {
namespace json {

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
shift(const std::string& rendered)
{
    std::string out;
    for (const char c : rendered) {
        out += c;
        if (c == '\n')
            out += "  ";
    }
    return out;
}

namespace {

/** Accumulates `"key": value` pairs and renders one JSON object. */
class Obj
{
  public:
    Obj&
    field(const char* key, std::string value)
    {
        fields_.emplace_back(key, std::move(value));
        return *this;
    }

    Obj& field(const char* key, std::uint64_t v)
    {
        return field(key, num(v));
    }

    Obj& field(const char* key, double v) { return field(key, num(v)); }

    Obj& str(const char* key, const std::string& v)
    {
        return field(key, quote(v));
    }

    std::string render() const;

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Render `{...}`; nested values are re-indented so levels compose. */
std::string
Obj::render() const
{
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += "  \"" + fields_[i].first +
               "\": " + shift(fields_[i].second);
        out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}";
    return out;
}

std::string
categoryBytes(const std::array<std::uint64_t, kNumCategories>& bytes)
{
    Obj obj;
    for (int c = 0; c < kNumCategories; ++c)
        obj.field(tensorCategoryName(static_cast<TensorCategory>(c)),
                  bytes[static_cast<std::size_t>(c)]);
    return obj.render();
}

} // namespace

std::string
quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
toJson(const CompiledCache::Stats& stats)
{
    return Obj()
        .field("hits", stats.hits)
        .field("misses", stats.misses)
        .field("disk_hits", stats.disk_hits)
        .field("disk_writes", stats.disk_writes)
        .field("disk_rejects", stats.disk_rejects)
        .field("evictions", stats.evictions)
        .field("disk_trips", stats.disk_trips)
        .field("disk_tmp_swept", stats.disk_tmp_swept)
        .field("disk_degraded", stats.disk_degraded)
        .field("entries", stats.entries)
        .field("bytes", stats.bytes)
        .field("compile_ms", stats.compile_ms)
        .render();
}

std::string
toJson(const OpCounts& ops)
{
    return Obj()
        .field("acc", ops.acc_ops)
        .field("correction", ops.correction_ops)
        .field("mac", ops.mac_ops)
        .field("fast_prefix", ops.fast_prefix_ops)
        .field("laggy_prefix", ops.laggy_prefix_ops)
        .field("fifo", ops.fifo_ops)
        .field("lif", ops.lif_ops)
        .field("mask_and", ops.mask_and_ops)
        .field("merge", ops.merge_ops)
        .field("encode", ops.encode_ops)
        .field("total", ops.total())
        .render();
}

std::string
toJson(const TrafficStats& traffic)
{
    return Obj()
        .field("dram_read_bytes", categoryBytes(traffic.dram_read))
        .field("dram_write_bytes", categoryBytes(traffic.dram_write))
        .field("sram_read_bytes", categoryBytes(traffic.sram_read))
        .field("sram_write_bytes", categoryBytes(traffic.sram_write))
        .field("dram_total_bytes", traffic.dramBytes())
        .field("sram_total_bytes", traffic.sramBytes())
        .render();
}

std::string
toJson(const EnergyBreakdown& energy)
{
    return Obj()
        .field("compute_pj", energy.compute_pj)
        .field("sram_pj", energy.sram_pj)
        .field("dram_pj", energy.dram_pj)
        .field("static_pj", energy.static_pj)
        .field("total_pj", energy.totalPj())
        .render();
}

std::string
toJson(const RunResult& result)
{
    return Obj()
        .str("accel", result.accel)
        .str("workload", result.workload)
        .field("compute_cycles", result.compute_cycles)
        .field("dram_cycles", result.dram_cycles)
        .field("total_cycles", result.total_cycles)
        .field("cache_hits", result.cache_hits)
        .field("cache_misses", result.cache_misses)
        .field("cache_miss_rate", result.cacheMissRate())
        .field("static_scale", result.static_scale)
        .field("traffic", toJson(result.traffic))
        .field("ops", toJson(result.ops))
        .render();
}

std::string
toJson(const SimRun& run)
{
    Obj obj;
    obj.str("accel_spec", run.accel_spec)
        .str("network", run.network)
        .field("result", toJson(run.result))
        .field("energy", toJson(run.energy));
    // Batched cells carry their per-input results; unbatched cells
    // leave per_input empty, keeping batch-1 reports byte-identical to
    // the pre-batching schema.
    if (!run.per_input.empty()) {
        std::string inputs = "[\n";
        for (std::size_t b = 0; b < run.per_input.size(); ++b) {
            inputs += "  " + shift(toJson(run.per_input[b]));
            inputs += b + 1 < run.per_input.size() ? ",\n" : "\n";
        }
        inputs += "]";
        obj.field("inputs", inputs);
    }
    return obj.render();
}

std::string
toJson(const SimReport& report)
{
    // Deliberately runs-only: cache counters and compile wall time
    // vary cold vs warm and run to run, and the report artifact must
    // stay cache-agnostic (byte-identical however it was produced) —
    // the serve daemon's golden-identity contract and the CI cmp
    // checks both depend on it. Accounting travels separately, via
    // --cache-stats and the serve response's stats object.
    std::string runs = "[\n";
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        runs += "  " + shift(toJson(report.runs[i]));
        runs += i + 1 < report.runs.size() ? ",\n" : "\n";
    }
    runs += "]";
    return Obj().field("runs", runs).render() + "\n";
}

} // namespace json
} // namespace loas
