/**
 * @file
 * Accelerator spec strings: a registry key plus an options map, written
 * `"loas?t=8&pes=32"`. Spec strings are how benchmark harnesses, the
 * CLI and SimRequests name design variants without touching C++
 * configuration structs.
 *
 * Parse and option errors throw std::invalid_argument (the API layer is
 * the user-facing surface, and callers like loas_cli want to report the
 * bad spec rather than exit deep inside the library).
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace loas {

/** A parsed accelerator spec: registry key + key=value options. */
struct AccelSpec
{
    std::string key;
    std::map<std::string, std::string> options;

    /** Canonical spec string ("key" or "key?a=1&b=2", keys sorted). */
    std::string str() const;
};

/**
 * Parse `"key?opt=val&opt2=val2"`. The key and option names must be
 * non-empty `[a-z0-9_-]` tokens; duplicate option names are an error.
 */
AccelSpec parseAccelSpec(const std::string& spec);

/** Split a comma-separated list of spec strings ("loas,gamma?pes=8"). */
std::vector<std::string> splitSpecList(const std::string& list);

/**
 * Typed, checked access to an AccelSpec's options. Factories read the
 * options they understand and then call finish(), which rejects any
 * option the factory never consumed — a misspelled key fails loudly
 * instead of silently running the default configuration.
 */
class OptionReader
{
  public:
    explicit OptionReader(const AccelSpec& spec) : spec_(spec) {}

    /**
     * Integer option. Throws if present but not an integer, or below
     * `min` — every current option is a positive hardware quantity
     * (PEs, timesteps, bits), so the default floor is 1.
     */
    int getInt(const std::string& name, int def, int min = 1);

    /** Boolean option: 1/0/true/false/yes/no. */
    bool getBool(const std::string& name, bool def);

    /** Throws listing any option key no get*() call consumed. */
    void finish() const;

  private:
    const std::string* find(const std::string& name);

    const AccelSpec& spec_;
    std::set<std::string> consumed_;
};

} // namespace loas
