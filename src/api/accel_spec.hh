/**
 * @file
 * Accelerator spec strings: a registry key plus an options map, written
 * `"loas?t=8&pes=32"`. Spec strings are how benchmark harnesses, the
 * CLI and SimRequests name design variants without touching C++
 * configuration structs.
 *
 * Parse and option errors throw std::invalid_argument (the API layer is
 * the user-facing surface, and callers like loas_cli want to report the
 * bad spec rather than exit deep inside the library).
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace loas {

/** A parsed accelerator spec: registry key + key=value options. */
struct AccelSpec
{
    std::string key;
    std::map<std::string, std::string> options;

    /** Canonical spec string ("key" or "key?a=1&b=2", keys sorted). */
    std::string str() const;
};

/**
 * Parse `"key?opt=val&opt2=val2"`. The key and option names must be
 * non-empty `[a-z0-9_-]` tokens; duplicate option names are an error.
 */
AccelSpec parseAccelSpec(const std::string& spec);

/**
 * Split a separated list of spec strings, dropping empty items.
 * Spec lists use the default ',' ("loas,gamma?pes=8"); grid lists use
 * ';' because commas separate the values inside a grid.
 */
std::vector<std::string> splitSpecList(const std::string& list,
                                       char sep = ',');

/**
 * A spec *grid*: a registry key plus multi-valued options, written
 * `"loas?pes=16,32,64&t=4,8"`. Expanding a grid yields the cartesian
 * product of its option values as concrete AccelSpecs — the example is
 * the six LoAS designs (pes, t) in {16,32,64} x {4,8}.
 */
struct AccelSpecGrid
{
    std::string key;

    /** Option name -> candidate values, in listed value order. */
    std::map<std::string, std::vector<std::string>> options;

    /** Number of cells the grid expands to (product of value counts). */
    std::size_t cells() const;

    /**
     * Cartesian expansion in odometer order: options iterate in sorted
     * name order and the last option varies fastest, so expansion order
     * is a deterministic function of the grid alone.
     */
    std::vector<AccelSpec> expand() const;
};

/**
 * Parse a grid string. Grammar is parseAccelSpec's with comma-separated
 * value lists; empty or duplicate values in one list are errors, as are
 * grids expanding to more than kMaxGridCells cells (a typo like
 * `pes=1,2,...` fanning out a million simulations should fail loudly).
 */
AccelSpecGrid parseAccelSpecGrid(const std::string& grid);

/** Expansion cap for one grid (and for one grid list). */
inline constexpr std::size_t kMaxGridCells = 4096;

/** Parse + expand, returning canonical spec strings (AccelSpec::str). */
std::vector<std::string> expandSpecGrid(const std::string& grid);

/**
 * Expand each grid in turn, deduplicating canonical specs across grids
 * (first occurrence wins the position). The combined expansion is
 * capped at kMaxGridCells like a single grid.
 */
std::vector<std::string>
expandSpecGridList(const std::vector<std::string>& grids);

/**
 * Split a semicolon-separated list of grid strings and expand as
 * above. Semicolons, not commas, because commas separate the values
 * inside a grid.
 */
std::vector<std::string> expandSpecGridList(const std::string& list);

/**
 * Typed, checked access to an AccelSpec's options. Factories read the
 * options they understand and then call finish(), which rejects any
 * option the factory never consumed — a misspelled key fails loudly
 * instead of silently running the default configuration.
 */
class OptionReader
{
  public:
    /**
     * Holds a copy of the spec (a key and a small option map), so a
     * reader over a temporary — `OptionReader(parseAccelSpec(...))` —
     * is safe.
     */
    explicit OptionReader(AccelSpec spec) : spec_(std::move(spec)) {}

    /**
     * Integer option. Throws if present but not an integer, or below
     * `min` — every current option is a positive hardware quantity
     * (PEs, timesteps, bits), so the default floor is 1.
     */
    int getInt(const std::string& name, int def, int min = 1);

    /** Boolean option: 1/0/true/false/yes/no. */
    bool getBool(const std::string& name, bool def);

    /**
     * Floating-point option. Throws if present but not a finite number
     * or outside [min, max] — used for fractions like weight sparsity.
     */
    double getDouble(const std::string& name, double def, double min,
                     double max);

    /** Throws listing any option key no get*() call consumed. */
    void finish() const;

  private:
    const std::string* find(const std::string& name);

    const AccelSpec spec_;
    std::set<std::string> consumed_;
};

} // namespace loas
