#include "dataflow/loop_nest.hh"

#include "common/logging.hh"

namespace loas {

const char*
baseDataflowName(BaseDataflow dataflow)
{
    switch (dataflow) {
      case BaseDataflow::InnerProduct:
        return "IP";
      case BaseDataflow::OuterProduct:
        return "OP";
      case BaseDataflow::Gustavson:
        return "Gust";
      default:
        return "?";
    }
}

const char*
temporalPlacementName(TemporalPlacement placement)
{
    switch (placement) {
      case TemporalPlacement::Outermost:
        return "t outermost";
      case TemporalPlacement::AboveMiddle:
        return "t above middle loop";
      case TemporalPlacement::AboveInner:
        return "t above inner loop";
      case TemporalPlacement::Innermost:
        return "t innermost (sequential)";
      case TemporalPlacement::InnerUnrolled:
        return "t innermost (unrolled)";
      default:
        return "?";
    }
}

std::string
DataflowCandidate::name() const
{
    // Spatial loop letters of each base dataflow, outer to inner.
    const char* spatial = nullptr;
    switch (base) {
      case BaseDataflow::InnerProduct:
        spatial = "mnk";
        break;
      case BaseDataflow::OuterProduct:
        spatial = "kmn";
        break;
      case BaseDataflow::Gustavson:
        spatial = "mkn";
        break;
    }
    std::string loops;
    auto append = [&](char c) {
        if (!loops.empty())
            loops.push_back(',');
        loops.push_back(c);
    };
    const int t_depth = placement == TemporalPlacement::Outermost ? 0
                        : placement == TemporalPlacement::AboveMiddle
                            ? 1
                        : placement == TemporalPlacement::AboveInner
                            ? 2
                            : 3;
    for (int i = 0; i <= 3; ++i) {
        if (i == t_depth) {
            if (!loops.empty())
                loops.push_back(',');
            loops += placement == TemporalPlacement::InnerUnrolled
                         ? "T"
                         : "t";
        }
        if (i < 3)
            append(spatial[i]);
    }
    return std::string(baseDataflowName(base)) + "(" + loops + ")";
}

DataflowMetrics
evaluateCandidate(const DataflowCandidate& candidate,
                  const LayerSpec& spec)
{
    const double timesteps = static_cast<double>(spec.t);
    DataflowMetrics metrics;

    // Observation 1 (Section III): unless t is the innermost loop,
    // every operand-traversing loop below it re-runs T times, so the
    // operands below are refetched T times more.
    const bool t_inner =
        candidate.placement == TemporalPlacement::Innermost ||
        candidate.placement == TemporalPlacement::InnerUnrolled;
    metrics.input_refetch_factor = t_inner ? 1.0 : timesteps;

    // Observation 2: OP always produces T times more partial-sum
    // matrices; Gustavson either produces T times more partial rows
    // (t at or below the k loop) or pays the refetch instead. IP is
    // output-stationary: its per-neuron partial sums live in
    // accumulator registers, which merely duplicate with T.
    switch (candidate.base) {
      case BaseDataflow::InnerProduct:
        metrics.psum_factor = 1.0;
        break;
      case BaseDataflow::OuterProduct:
        metrics.psum_factor = timesteps;
        break;
      case BaseDataflow::Gustavson:
        metrics.psum_factor =
            (candidate.placement == TemporalPlacement::Outermost ||
             candidate.placement == TemporalPlacement::AboveMiddle)
                ? 1.0
                : timesteps;
        break;
    }

    // Observation 3: processing t sequentially, anywhere, costs T
    // times more latency; only spatial unrolling removes it.
    metrics.latency_factor =
        candidate.placement == TemporalPlacement::InnerUnrolled
            ? 1.0
            : timesteps;
    return metrics;
}

std::vector<DataflowCandidate>
allCandidates()
{
    std::vector<DataflowCandidate> candidates;
    for (const auto base :
         {BaseDataflow::InnerProduct, BaseDataflow::OuterProduct,
          BaseDataflow::Gustavson}) {
        for (const auto placement :
             {TemporalPlacement::Outermost,
              TemporalPlacement::AboveMiddle,
              TemporalPlacement::AboveInner,
              TemporalPlacement::Innermost,
              TemporalPlacement::InnerUnrolled}) {
            candidates.push_back(DataflowCandidate{base, placement});
        }
    }
    return candidates;
}

std::vector<DataflowCandidate>
optimalCandidates(const LayerSpec& spec)
{
    std::vector<DataflowCandidate> winners;
    for (const auto& candidate : allCandidates())
        if (evaluateCandidate(candidate, spec).meetsAllGoals())
            winners.push_back(candidate);
    return winners;
}

} // namespace loas
