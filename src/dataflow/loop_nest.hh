/**
 * @file
 * Executable form of Section III's dataflow design-space argument.
 *
 * An SNN spMspM is a quadruple loop nest over (m, n, k, t). The three
 * base spMspM dataflows fix the relative order of (m, n, k):
 * inner-product (m, n, k), outer-product (k, m, n) and Gustavson's
 * (m, k, n); inserting the temporal dimension at any of the four
 * depths yields the 12 sequential orderings plus, for the innermost
 * position, the option of unrolling t spatially - the paper's FTP.
 *
 * For each candidate this module derives the paper's three decision
 * metrics analytically from the workload statistics:
 *  (1) input refetch factor - how many extra times A/B cross the
 *      memory hierarchy because t sits above a reuse loop;
 *  (2) temporal partial-sum factor - how many live partial sums the
 *      t placement multiplies (OP/Gust already buffer partial
 *      outputs; a non-innermost t multiplies them by T);
 *  (3) latency factor - T when timesteps serialize, 1 when unrolled.
 *
 * The paper's conclusion - inner-product order with t innermost and
 * spatially unrolled is the unique candidate meeting all three goals
 * - falls out of evaluateAllCandidates().
 */

#pragma once

#include <string>
#include <vector>

#include "workload/layer_spec.hh"

namespace loas {

/** Base spatial dataflow (relative order of m, n, k). */
enum class BaseDataflow
{
    InnerProduct, // for m, for n, for k
    OuterProduct, // for k, for m, for n
    Gustavson,    // for m, for k, for n
};

const char* baseDataflowName(BaseDataflow dataflow);

/** Where the temporal loop sits relative to the three spatial loops. */
enum class TemporalPlacement
{
    Outermost,    // t above all spatial loops
    AboveMiddle,  // between the 1st and 2nd spatial loop
    AboveInner,   // between the 2nd and 3rd spatial loop
    Innermost,    // below all spatial loops (sequential)
    InnerUnrolled // innermost and spatially unrolled (parallel-for)
};

const char* temporalPlacementName(TemporalPlacement placement);

/** One candidate SNN spMspM dataflow. */
struct DataflowCandidate
{
    BaseDataflow base;
    TemporalPlacement placement;

    /** e.g. "IP(m,n,t,k)". */
    std::string name() const;
};

/** Section III's three decision metrics for one candidate. */
struct DataflowMetrics
{
    /** Extra traversals of the input operands caused by t (>= 1). */
    double input_refetch_factor = 1.0;

    /** Live partial-sum multiplier caused by t (>= 1). */
    double psum_factor = 1.0;

    /** Serialization of the temporal dimension (T or 1). */
    double latency_factor = 1.0;

    /** Goal (1): no extra data movement across timesteps. */
    bool meetsGoal1() const { return input_refetch_factor <= 1.0; }

    /** Goal (2): no extra temporal partial sums. */
    bool meetsGoal2() const { return psum_factor <= 1.0; }

    /** Goal (3): no serialized-timestep latency. */
    bool meetsGoal3() const { return latency_factor <= 1.0; }

    bool
    meetsAllGoals() const
    {
        return meetsGoal1() && meetsGoal2() && meetsGoal3();
    }
};

/** Evaluate one candidate on a layer's shape statistics. */
DataflowMetrics evaluateCandidate(const DataflowCandidate& candidate,
                                  const LayerSpec& spec);

/** All candidates: 3 base dataflows x 5 temporal placements. */
std::vector<DataflowCandidate> allCandidates();

/** Candidates meeting all three goals (the paper's FTP). */
std::vector<DataflowCandidate> optimalCandidates(const LayerSpec& spec);

} // namespace loas
