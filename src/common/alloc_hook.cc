#include "common/alloc_hook.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void*
countedAlloc(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void*
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

namespace loas::allochook {

std::uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

bool
active()
{
    return true;
}

} // namespace loas::allochook

// Replaceable global allocation functions (all forms that allocate
// funnel through the counters above; sanitizers still intercept the
// underlying malloc/free).
void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
