/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harnesses to
 * print paper-style result rows.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace loas {

/** Column-aligned ASCII table. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (headers, rule, rows). */
    std::string str() const;

    /** Convenience: render to a stream. */
    void print(std::ostream& os) const;

    /** Format a double with fixed precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format a value followed by a multiplier sign, e.g. "4.08x". */
    static std::string fmtX(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string fmtInt(std::uint64_t v);

    /** Format a percentage, e.g. "81.2%". */
    static std::string fmtPct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Minimal CSV emitter (one writer per output file). */
class CsvWriter
{
  public:
    /** Open the file and emit the header row. Fails fatally on error. */
    CsvWriter(const std::string& path, std::vector<std::string> headers);
    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    /** Append one row. */
    void addRow(const std::vector<std::string>& cells);

  private:
    void* file_; // std::FILE*, kept opaque to avoid <cstdio> in the header
};

} // namespace loas
