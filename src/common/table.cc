#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace loas {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("TextTable row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print(std::ostream& os) const
{
    os << str();
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::fmtX(double v, int precision)
{
    return fmt(v, precision) + "x";
}

std::string
TextTable::fmtInt(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

std::string
TextTable::fmtPct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open CSV output file '%s'", path.c_str());
    file_ = f;
    addRow(headers);
}

CsvWriter::~CsvWriter()
{
    std::fclose(static_cast<std::FILE*>(file_));
}

void
CsvWriter::addRow(const std::vector<std::string>& cells)
{
    auto* f = static_cast<std::FILE*>(file_);
    for (std::size_t i = 0; i < cells.size(); ++i)
        std::fprintf(f, "%s%s", i ? "," : "", cells[i].c_str());
    std::fprintf(f, "\n");
}

} // namespace loas
