/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All stochastic components of the library (workload synthesis, training
 * substrate, tests) draw from this generator so that every experiment is
 * reproducible from a single 64-bit seed.
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace loas {

/** Small, fast, seedable PRNG with convenience distributions. */
class Rng
{
  public:
    /** Seed the state via splitmix64 so any seed (even 0) is usable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit sample. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        return next() % n;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Gaussian sample via Box-Muller. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        if (have_cached_) {
            have_cached_ = false;
            return mean + stddev * cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return mean + stddev * r * std::cos(theta);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double cached_ = 0.0;
    bool have_cached_ = false;
};

} // namespace loas
