/**
 * @file
 * Deterministic, seeded fault-injection registry.
 *
 * Robustness paths — a full disk, an EIO mid-read, a dropped socket, a
 * job that throws mid-run — are unreachable in a healthy test
 * environment, so they rot. This registry makes them reachable on
 * demand: each injectable failure point in the codebase is a named
 * *site* (see Site), and a spec string assigns each site an
 * independent failure probability plus one global seed:
 *
 *     disk.write=0.02,engine.execute=0.01@seed=7
 *
 * `loas_cli --fault-spec` (run/sweep/bench/serve/request) and the
 * LOAS_FAULT_SPEC environment variable (picked up at CLI start, for
 * tests and CI) both feed configure().
 *
 * Decisions are deterministic: the verdict of the n-th check of a
 * site is a pure function of (seed, site, n), so two runs with the
 * same spec and the same per-site call sequence inject the same
 * faults. Under concurrency the *assignment* of verdicts to callers
 * can vary with interleaving, but the number of injections per N
 * checks cannot.
 *
 * Cost contract: when no spec is configured (the production state),
 * shouldFail() is one relaxed atomic load and a branch — no locks, no
 * allocation, nothing on any profile. The slow path only exists once
 * configure() has armed the registry.
 *
 * Degradation policy (who handles an injected fault): disk sites
 * degrade to reject-and-recompile inside ArtifactStore/CompiledCache,
 * socket sites degrade to a dropped connection the client retries,
 * engine.execute surfaces as a structured `failed` job, cache.insert
 * degrades to "artifact not retained". No site may crash the process
 * or serve stale bytes — that is what tests/test_fault.cc and the
 * chaos-soak CI job enforce.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace loas {
namespace fault {

/** Every injectable failure point, by layer. */
enum class Site : int
{
    DiskWrite,     ///< ArtifactStore::store body write
    DiskRead,      ///< ArtifactStore::load of an existing file
    DiskRename,    ///< ArtifactStore::store publish rename
    SocketAccept,  ///< Server accept loop
    SocketRead,    ///< Server per-connection read
    SocketWrite,   ///< Server per-connection reply write
    EngineExecute, ///< SimEngine::run entry
    CacheInsert,   ///< CompiledCache in-memory insert
};

inline constexpr int kSiteCount = 8;

/** The spec-string name of `site` ("disk.write", ...). */
const char* siteName(Site site);

namespace detail {

/** Armed flag: the only state the disabled fast path touches. */
extern std::atomic<bool> g_armed;

/** Seeded per-site decision; counts the check. Armed registry only. */
bool shouldFailSlow(Site site);

} // namespace detail

/**
 * True when this site should fail now. Disabled registry: exactly one
 * relaxed atomic load (never allocates, never locks) — cheap enough
 * for every I/O call site to check unconditionally.
 */
inline bool
shouldFail(Site site)
{
    return detail::g_armed.load(std::memory_order_relaxed) &&
           detail::shouldFailSlow(site);
}

/** shouldFail(), but throws std::runtime_error naming the site. */
void maybeThrow(Site site);

/**
 * Arm the registry from a spec string:
 *
 *     site=rate[,site=rate...][@seed=N]
 *
 * Rates are in [0, 1]; unnamed sites stay at 0. An empty spec is
 * reset(). Throws std::invalid_argument on an unknown site name, a
 * malformed pair, or a rate outside [0, 1]. Not meant to race live
 * shouldFail() traffic beyond tests: configure before serving.
 */
void configure(const std::string& spec);

/**
 * configure() from $LOAS_FAULT_SPEC; returns true when the variable
 * was set (even to an invalid spec, which still throws).
 */
bool configureFromEnv();

/** Disarm every site and zero the counters. */
void reset();

/** True when a spec is configured (even one with all-zero rates). */
bool enabled();

/** Faults injected at `site` since the last configure()/reset(). */
std::uint64_t injectedCount(Site site);

/** Total faults injected across all sites. */
std::uint64_t injectedTotal();

} // namespace fault
} // namespace loas
