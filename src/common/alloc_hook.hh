/**
 * @file
 * Heap-allocation counter for the kernel benchmarks: a replacement
 * global operator new/delete pair that counts every allocation. The
 * defining translation unit (alloc_hook.cc) is linked ONLY into the
 * binaries that measure allocations (loas_cli, micro_kernels) — it is
 * deliberately excluded from loas_core so library consumers and tests
 * keep the toolchain allocator untouched.
 */

#pragma once

#include <cstdint>

namespace loas::allochook {

/**
 * Heap allocations observed in this process so far (0 when only the
 * weak fallback from alloc_hook_default.cc is linked).
 */
std::uint64_t allocationCount();

/**
 * True in binaries that link the counting operator-new replacement;
 * false under the weak fallback. Callers measuring allocations must
 * check this — a zero count is only meaningful when the hook is live.
 */
bool active();

} // namespace loas::allochook
