/**
 * @file
 * Weak fallback for the allocation-counter interface: linked into
 * loas_core so any binary can query the hook, reporting inactive (and
 * a zero count) unless alloc_hook.cc's strong definitions — and with
 * them the counting operator-new replacement — are linked in. This is
 * what makes the bench's `alloc_hook_active` metric a real signal: a
 * mis-linked measuring binary reports 0 and fails the CI gate instead
 * of silently reporting vacuous zero-allocation counts.
 */

#include "common/alloc_hook.hh"

namespace loas::allochook {

__attribute__((weak)) std::uint64_t
allocationCount()
{
    return 0;
}

__attribute__((weak)) bool
active()
{
    return false;
}

} // namespace loas::allochook
