#include "common/fault.hh"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace loas {
namespace fault {

namespace detail {

std::atomic<bool> g_armed{false};

} // namespace detail

namespace {

/** Per-site rate, call counter and injection counter. Rates are
 *  atomics so a test reconfiguring beside a live daemon thread is a
 *  benign race, not UB; all ordering is relaxed on purpose — the
 *  verdict sequence is per-site, not cross-site. */
std::atomic<double> g_rates[kSiteCount] = {};
std::atomic<std::uint64_t> g_checks[kSiteCount] = {};
std::atomic<std::uint64_t> g_injected[kSiteCount] = {};
std::atomic<std::uint64_t> g_seed{0};

constexpr const char* kSiteNames[kSiteCount] = {
    "disk.write",    "disk.read",    "disk.rename",
    "socket.accept", "socket.read",  "socket.write",
    "engine.execute", "cache.insert",
};

/** splitmix64 finalizer: the uniform hash behind every verdict. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

int
siteIndex(const std::string& name)
{
    for (int i = 0; i < kSiteCount; ++i)
        if (name == kSiteNames[i])
            return i;
    return -1;
}

double
parseRate(const std::string& spec, const std::string& text)
{
    char* end = nullptr;
    const double rate = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(rate >= 0.0) ||
        rate > 1.0)
        throw std::invalid_argument("fault spec '" + spec +
                                    "': rate '" + text +
                                    "' is not in [0, 1]");
    return rate;
}

} // namespace

const char*
siteName(Site site)
{
    return kSiteNames[static_cast<int>(site)];
}

namespace detail {

bool
shouldFailSlow(Site site)
{
    const int i = static_cast<int>(site);
    const double rate = g_rates[i].load(std::memory_order_relaxed);
    if (rate <= 0.0)
        return false;
    // The n-th check of a site has a fixed verdict for a given seed:
    // hash (seed, site, n) to a uniform in [0, 1) and compare.
    const std::uint64_t n =
        g_checks[i].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h =
        mix(g_seed.load(std::memory_order_relaxed) +
            mix(static_cast<std::uint64_t>(i) + 1) + n);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= rate)
        return false;
    g_injected[i].fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace detail

void
maybeThrow(Site site)
{
    if (shouldFail(site))
        throw std::runtime_error(std::string("injected fault at ") +
                                 siteName(site));
}

void
configure(const std::string& spec)
{
    reset();
    if (spec.empty())
        return;

    // Split off the one optional "@seed=N" suffix first.
    std::string pairs = spec;
    const std::size_t at = spec.find('@');
    if (at != std::string::npos) {
        pairs = spec.substr(0, at);
        const std::string suffix = spec.substr(at + 1);
        if (suffix.rfind("seed=", 0) != 0)
            throw std::invalid_argument(
                "fault spec '" + spec +
                "': expected '@seed=N' after '@'");
        const std::string digits = suffix.substr(5);
        char* end = nullptr;
        errno = 0;
        const unsigned long long seed =
            std::strtoull(digits.c_str(), &end, 10);
        if (end == digits.c_str() || *end != '\0' || errno == ERANGE)
            throw std::invalid_argument("fault spec '" + spec +
                                        "': bad seed '" + digits +
                                        "'");
        g_seed.store(seed, std::memory_order_relaxed);
    }

    bool any = false;
    std::size_t start = 0;
    while (start <= pairs.size()) {
        std::size_t comma = pairs.find(',', start);
        if (comma == std::string::npos)
            comma = pairs.size();
        const std::string pair = pairs.substr(start, comma - start);
        start = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault spec '" + spec + "': '" + pair +
                "' is not a site=rate pair");
        const int site = siteIndex(pair.substr(0, eq));
        if (site < 0)
            throw std::invalid_argument("fault spec '" + spec +
                                        "': unknown site '" +
                                        pair.substr(0, eq) + "'");
        g_rates[site].store(parseRate(spec, pair.substr(eq + 1)),
                            std::memory_order_relaxed);
        any = true;
    }
    if (!any)
        throw std::invalid_argument("fault spec '" + spec +
                                    "' names no sites");
    detail::g_armed.store(true, std::memory_order_relaxed);
}

bool
configureFromEnv()
{
    const char* spec = std::getenv("LOAS_FAULT_SPEC");
    if (spec == nullptr)
        return false;
    configure(spec);
    return true;
}

void
reset()
{
    detail::g_armed.store(false, std::memory_order_relaxed);
    for (int i = 0; i < kSiteCount; ++i) {
        g_rates[i].store(0.0, std::memory_order_relaxed);
        g_checks[i].store(0, std::memory_order_relaxed);
        g_injected[i].store(0, std::memory_order_relaxed);
    }
    g_seed.store(0, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

std::uint64_t
injectedCount(Site site)
{
    return g_injected[static_cast<int>(site)].load(
        std::memory_order_relaxed);
}

std::uint64_t
injectedTotal()
{
    std::uint64_t total = 0;
    for (const auto& count : g_injected)
        total += count.load(std::memory_order_relaxed);
    return total;
}

} // namespace fault
} // namespace loas
