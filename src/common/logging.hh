/**
 * @file
 * Status/error reporting helpers, modeled after gem5's logging idiom.
 *
 * panic() is for internal invariant violations (simulator bugs); it aborts.
 * fatal() is for unrecoverable user/configuration errors; it exits(1).
 * warn() / inform() report conditions without stopping the simulation.
 */

#pragma once

#include <cstdarg>

namespace loas {

/** Abort with a message: an internal invariant was violated (a bug). */
[[noreturn]] __attribute__((format(printf, 1, 2)))
void panic(const char* fmt, ...);

/** Exit with a message: the user asked for something unsupported. */
[[noreturn]] __attribute__((format(printf, 1, 2)))
void fatal(const char* fmt, ...);

/** Report a suspicious-but-survivable condition to stderr. */
__attribute__((format(printf, 1, 2)))
void warn(const char* fmt, ...);

/** Report a status message to stderr. */
__attribute__((format(printf, 1, 2)))
void inform(const char* fmt, ...);

} // namespace loas
