/**
 * @file
 * Small bit-manipulation and integer helpers shared across modules.
 */

#pragma once

#include <bit>
#include <cstdint>

namespace loas {

/** Number of set bits in a 64-bit word. */
inline int popcount64(std::uint64_t x) { return std::popcount(x); }

/** Ceiling division for unsigned integers. Requires d > 0. */
template <typename T>
constexpr T
ceilDiv(T n, T d)
{
    return (n + d - 1) / d;
}

/** Round n up to the next multiple of m. Requires m > 0. */
template <typename T>
constexpr T
roundUp(T n, T m)
{
    return ceilDiv(n, m) * m;
}

/** True iff x is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
constexpr int
floorLog2(std::uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** Index of lowest set bit; undefined for x == 0. */
inline int lowestSetBit(std::uint64_t x) { return std::countr_zero(x); }

/** Mask with the low n bits set (n in [0, 64]). */
constexpr std::uint64_t
lowMask64(int n)
{
    return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

} // namespace loas
