/**
 * @file
 * Shared fork-join helper. The SimEngine uses it for the job matrix and
 * the prepare()-phase compilers use it for per-fiber compression, which
 * is embarrassingly parallel: every worker writes a disjoint,
 * preallocated slot, so results are bit-identical whatever the thread
 * count.
 */

#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace loas {

/**
 * Run `jobs` instances of `body(job_index)` across `threads` workers.
 * Exceptions escaping a job are rethrown in the caller (first one
 * wins); remaining jobs still drain so the workers join cleanly.
 */
template <typename Body>
void
parallelFor(std::size_t jobs, int threads, Body&& body)
{
    if (threads <= 1 || jobs <= 1) {
        for (std::size_t i = 0; i < jobs; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs)
                return;
            if (failed.load())
                continue; // drain without doing more work
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true);
            }
        }
    };

    const std::size_t n_workers =
        std::min<std::size_t>(static_cast<std::size_t>(threads), jobs);
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

/**
 * Like parallelFor, but each worker has a stable identity: `body` is
 * called as body(worker, job) with `worker` in [0, workers) where
 * `workers = min(threads, jobs)` (or 0 when the loop runs serially).
 * Jobs are still pulled off one atomic counter, so the job->worker
 * assignment is nondeterministic — callers must write results into
 * per-JOB slots and use the worker index only for scratch reuse.
 * The batch execute path uses it for per-worker ExecuteScratch pools.
 */
template <typename Body>
void
parallelForWorkers(std::size_t jobs, int threads, Body&& body)
{
    if (threads <= 1 || jobs <= 1) {
        for (std::size_t i = 0; i < jobs; ++i)
            body(std::size_t{0}, i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&](std::size_t w) {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs)
                return;
            if (failed.load())
                continue; // drain without doing more work
            try {
                body(w, i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true);
            }
        }
    };

    const std::size_t n_workers =
        std::min<std::size_t>(static_cast<std::size_t>(threads), jobs);
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        pool.emplace_back(worker, w);
    for (auto& t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

/** Requested thread count resolved: 0 = one per hardware thread. */
inline int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/**
 * Threads worth spawning for `jobs` per-fiber compression tasks inside
 * one prepare() call. Small layers stay serial — thread startup would
 * dwarf the work — and large ones fan out with enough fibers per worker
 * to amortize it. prepare() may itself be running on an engine worker
 * thread; the CompiledCache compiles each key exactly once, so the
 * transient oversubscription is bounded by the number of distinct
 * format families compiling at that instant.
 */
inline int
prepareParallelism(std::size_t jobs)
{
    constexpr std::size_t kMinJobsPerThread = 128;
    if (jobs < 2 * kMinJobsPerThread)
        return 1;
    const auto want = static_cast<int>(jobs / kMinJobsPerThread);
    return std::min(want, resolveThreads(0));
}

} // namespace loas
