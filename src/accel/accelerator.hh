/**
 * @file
 * Common interface of all accelerator simulators (LoAS and the
 * SparTen/GoSPA/Gamma/PTB/Stellar baselines).
 *
 * Simulation is a two-phase pipeline. prepare() lowers a layer's
 * operands into the design's compressed formats (fibers, per-timestep
 * views, cumulative address-offset tables) — expensive, and a function
 * of the layer alone. execute() streams the compiled layer through the
 * modeled datapath — a function of the layer *and* the hardware
 * configuration. Because prepare() output never depends on hardware
 * options, design variants of one format family (`loas?pes=16` vs
 * `loas?pes=64`) share compiled artifacts; the SimEngine memoizes them
 * in a CompiledCache across sweep cells.
 *
 * runLayer() remains as the one-shot convenience (prepare + execute)
 * for harnesses and tests that simulate a layer once.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/compiled_layer.hh"
#include "accel/run_result.hh"
#include "workload/generator.hh"

namespace loas {

/**
 * Intra-layer parallel execute engages only on layers with at least
 * this many output neurons — below it, fanning threads out costs more
 * than the joins themselves.
 */
inline constexpr std::size_t kIntraMinItems = 256;

/**
 * Work items gathered per intra-layer phase-A block. A block spans
 * several scheduler waves so each thread fan-out amortizes across
 * hundreds of joins; the size is a fixed constant (never derived from
 * the thread count) so block boundaries — and therefore results — are
 * identical at any thread count.
 */
inline constexpr std::size_t kIntraBlockItems = 1024;

/** An accelerator model that can run dual-sparse SNN layers. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Short display name ("LoAS", "SparTen-SNN", ...). */
    virtual std::string name() const = 0;

    /**
     * Format-family key of this design's compiled artifacts. Two
     * accelerator instances with the same family produce identical
     * prepare() output for the same layer, whatever their hardware
     * options — the contract that lets the CompiledCache share
     * artifacts across design variants.
     */
    virtual std::string formatFamily() const = 0;

    /**
     * Phase 1: lower one layer into this design's compiled operand
     * formats. Depends only on the layer (never on hardware options).
     */
    virtual CompiledLayer prepare(const LayerData& layer) const = 0;

    /**
     * Phase 2: simulate the datapath over a compiled layer — input 0
     * of its batch on worker slot 0. Sugar for
     * executeInput(compiled, 0, 0); every backend implements the one
     * entry point.
     */
    RunResult execute(const CompiledLayer& compiled)
    {
        return executeInput(compiled, 0, 0);
    }

    /**
     * Phase 2 over one input of a batched compiled layer. `worker`
     * selects the scratch pool slot and nothing else — two concurrent
     * calls are safe iff their worker indices differ and
     * reserveWorkers() pre-sized the pool. The layer must come from
     * this design's format family (fatal otherwise).
     */
    virtual RunResult executeInput(const CompiledLayer& compiled,
                                   std::size_t input,
                                   std::size_t worker) = 0;

    /**
     * Pre-size per-worker execute scratch so a batch-level parallel
     * section never grows the pool concurrently. Called serially by
     * executeBatch(); default no-op for designs without pools.
     */
    virtual void reserveWorkers(std::size_t workers) { (void)workers; }

    /**
     * Ask for intra-layer parallelism: backends that support it (LoAS,
     * SparTen) run each block of wave items' pure join work across up
     * to `threads` transient workers, then replay every memory-system
     * access and cycle/ops accounting step serially in the original
     * wave order — so RunResults stay byte-identical to the serial
     * path at any setting. Backends without support ignore the hint.
     * 1 (the default) keeps the untouched serial path.
     */
    void setLayerThreads(int threads)
    {
        layer_threads_ = threads < 1 ? 1 : threads;
    }

    /** The intra-layer thread request (1 = serial). */
    int layerThreads() const { return layer_threads_; }

    /**
     * Phase 2 over EVERY input of a batched compiled layer: a
     * batch-level parallel loop over per-input fibers with per-worker
     * scratch, reduced into one aggregate in input order (bit-identical
     * at any thread count; each input's result lands in a fixed slot).
     * With `per_input` the per-input results are copied out (resized to
     * the batch). threads <= 1 runs serially on worker slot 0.
     */
    RunResult executeBatch(const CompiledLayer& compiled, int threads,
                           std::vector<RunResult>* per_input = nullptr);

    /** One-shot convenience: prepare + execute. */
    RunResult runLayer(const LayerData& layer);

    /** Simulate a whole network; layer results are summed. */
    RunResult runNetwork(const std::vector<LayerData>& layers,
                         const std::string& workload_name);

    /** Simulate a network from pre-compiled (possibly shared) layers. */
    RunResult
    runNetwork(const std::vector<std::shared_ptr<const CompiledLayer>>&
                   layers,
               const std::string& workload_name);

    /**
     * Simulate a network over every input of its batch. Layer results
     * are summed per input; `per_input` (optional) receives the B
     * per-input network totals and the returned aggregate sums them in
     * input order.
     */
    RunResult runNetworkBatch(
        const std::vector<std::shared_ptr<const CompiledLayer>>& layers,
        const std::string& workload_name, int threads,
        std::vector<RunResult>* per_input = nullptr);

  private:
    /** Reused per-input result slots of executeBatch (steady-state
     *  batched execution stays allocation-free once warm). */
    std::vector<RunResult> batch_slots_;

    /** Intra-layer thread request (setLayerThreads; 1 = serial). */
    int layer_threads_ = 1;
};

} // namespace loas
