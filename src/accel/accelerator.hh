/**
 * @file
 * Common interface of all accelerator simulators (LoAS and the
 * SparTen/GoSPA/Gamma/PTB/Stellar baselines).
 */

#pragma once

#include <string>
#include <vector>

#include "accel/run_result.hh"
#include "workload/generator.hh"

namespace loas {

/** An accelerator model that can run dual-sparse SNN layers. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Short display name ("LoAS", "SparTen-SNN", ...). */
    virtual std::string name() const = 0;

    /** Simulate one layer. */
    virtual RunResult runLayer(const LayerData& layer) = 0;

    /** Simulate a whole network; layer results are summed. */
    RunResult runNetwork(const std::vector<LayerData>& layers,
                         const std::string& workload_name);
};

} // namespace loas
