#include "accel/accelerator.hh"

namespace loas {

RunResult
Accelerator::runNetwork(const std::vector<LayerData>& layers,
                        const std::string& workload_name)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    for (const auto& layer : layers)
        total += runLayer(layer);
    total.accel = name();
    total.workload = workload_name;
    return total;
}

} // namespace loas
