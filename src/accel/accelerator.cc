#include "accel/accelerator.hh"

#include "common/logging.hh"
#include "common/parallel.hh"

namespace loas {

RunResult
Accelerator::executeBatch(const CompiledLayer& compiled, int threads,
                          std::vector<RunResult>* per_input)
{
    const std::size_t batch = compiled.batch == 0 ? 1 : compiled.batch;
    std::vector<RunResult>& slots =
        per_input != nullptr ? *per_input : batch_slots_;
    slots.resize(batch);

    // Pre-size every per-worker scratch pool before the parallel
    // section; the loop body may then only index, never grow.
    const std::size_t workers =
        (threads <= 1 || batch <= 1)
            ? 1
            : std::min<std::size_t>(static_cast<std::size_t>(threads),
                                    batch);
    reserveWorkers(workers);

    parallelForWorkers(batch, threads,
                       [&](std::size_t worker, std::size_t input) {
                           slots[input] =
                               executeInput(compiled, input, worker);
                       });

    // Deterministic reduction: fixed per-input slots, summed in input
    // order — the aggregate is bit-identical at any thread count.
    RunResult total;
    total.accel = name();
    total.workload = compiled.spec.name;
    for (const auto& slot : slots)
        total += slot;
    return total;
}

RunResult
Accelerator::runLayer(const LayerData& layer)
{
    return execute(prepare(layer));
}

RunResult
Accelerator::runNetwork(const std::vector<LayerData>& layers,
                        const std::string& workload_name)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    for (const auto& layer : layers)
        total += runLayer(layer);
    return total;
}

RunResult
Accelerator::runNetwork(
    const std::vector<std::shared_ptr<const CompiledLayer>>& layers,
    const std::string& workload_name)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    for (const auto& compiled : layers)
        total += execute(*compiled);
    return total;
}

RunResult
Accelerator::runNetworkBatch(
    const std::vector<std::shared_ptr<const CompiledLayer>>& layers,
    const std::string& workload_name, int threads,
    std::vector<RunResult>* per_input)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    if (per_input != nullptr)
        per_input->clear();

    std::vector<RunResult> layer_inputs;
    for (const auto& compiled : layers) {
        total += executeBatch(*compiled, threads,
                              per_input != nullptr ? &layer_inputs
                                                   : nullptr);
        if (per_input == nullptr)
            continue;
        if (per_input->empty()) {
            per_input->resize(layer_inputs.size());
            for (auto& r : *per_input) {
                r.accel = name();
                r.workload = workload_name;
            }
        }
        if (per_input->size() != layer_inputs.size())
            fatal("network '%s': layer batch sizes disagree "
                  "(%zu vs %zu)",
                  workload_name.c_str(), per_input->size(),
                  layer_inputs.size());
        for (std::size_t b = 0; b < layer_inputs.size(); ++b)
            (*per_input)[b] += layer_inputs[b];
    }
    return total;
}

} // namespace loas
