#include "accel/accelerator.hh"

namespace loas {

RunResult
Accelerator::runLayer(const LayerData& layer)
{
    return execute(prepare(layer));
}

RunResult
Accelerator::runNetwork(const std::vector<LayerData>& layers,
                        const std::string& workload_name)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    for (const auto& layer : layers)
        total += runLayer(layer);
    return total;
}

RunResult
Accelerator::runNetwork(
    const std::vector<std::shared_ptr<const CompiledLayer>>& layers,
    const std::string& workload_name)
{
    RunResult total;
    total.accel = name();
    total.workload = workload_name;
    for (const auto& compiled : layers)
        total += execute(*compiled);
    return total;
}

} // namespace loas
