/**
 * @file
 * The outcome of simulating a workload on an accelerator model: cycles,
 * traffic, op counts and cache behavior. Network-level results are the
 * sum of layer results.
 */

#pragma once

#include <cstdint>
#include <string>

#include "accel/op_counts.hh"
#include "common/logging.hh"
#include "mem/traffic.hh"

namespace loas {

/** Aggregated simulation outcome. */
struct RunResult
{
    std::string accel;
    std::string workload;

    /** Cycles the datapath needed assuming memory never stalls it. */
    std::uint64_t compute_cycles = 0;
    /** Cycles DRAM needed for all off-chip bytes at peak bandwidth. */
    std::uint64_t dram_cycles = 0;
    /** End-to-end cycles with compute/memory overlap per phase. */
    std::uint64_t total_cycles = 0;

    TrafficStats traffic;
    OpCounts ops;

    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;

    /**
     * Background-power scale relative to the LoAS-class designs with a
     * 256 KB shared cache (1.0). Small systolic arrays set this lower.
     */
    double static_scale = 1.0;

    double
    cacheMissRate() const
    {
        const std::uint64_t total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_misses) /
                                static_cast<double>(total);
    }

    /** True when this result carries any simulated work. */
    bool
    hasWork() const
    {
        return compute_cycles != 0 || total_cycles != 0 ||
               ops.total() != 0;
    }

    /**
     * Layer-wise aggregation: cycles add, traffic and counters add.
     *
     * static_scale is a property of the hardware, not of a layer, so
     * summing makes no sense: the accumulator adopts the scale of the
     * first work-bearing summand, and every later work-bearing summand
     * must agree — mixing results from differently-scaled hardware in
     * one aggregate is a harness bug and panics, instead of silently
     * keeping whichever layer happened to come last. Zero-work
     * summands contribute no background-power cycles, so their scale
     * is immaterial and ignored.
     */
    RunResult&
    operator+=(const RunResult& o)
    {
        if (o.hasWork()) {
            if (!hasWork())
                static_scale = o.static_scale;
            else if (static_scale != o.static_scale)
                panic("aggregating RunResults with different "
                      "static_scale (%g vs %g)",
                      static_scale, o.static_scale);
        }
        compute_cycles += o.compute_cycles;
        dram_cycles += o.dram_cycles;
        total_cycles += o.total_cycles;
        traffic += o.traffic;
        ops += o.ops;
        cache_hits += o.cache_hits;
        cache_misses += o.cache_misses;
        return *this;
    }
};

} // namespace loas
