/**
 * @file
 * The outcome of simulating a workload on an accelerator model: cycles,
 * traffic, op counts and cache behavior. Network-level results are the
 * sum of layer results.
 */

#pragma once

#include <cstdint>
#include <string>

#include "accel/op_counts.hh"
#include "mem/traffic.hh"

namespace loas {

/** Aggregated simulation outcome. */
struct RunResult
{
    std::string accel;
    std::string workload;

    /** Cycles the datapath needed assuming memory never stalls it. */
    std::uint64_t compute_cycles = 0;
    /** Cycles DRAM needed for all off-chip bytes at peak bandwidth. */
    std::uint64_t dram_cycles = 0;
    /** End-to-end cycles with compute/memory overlap per phase. */
    std::uint64_t total_cycles = 0;

    TrafficStats traffic;
    OpCounts ops;

    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;

    /**
     * Background-power scale relative to the LoAS-class designs with a
     * 256 KB shared cache (1.0). Small systolic arrays set this lower.
     */
    double static_scale = 1.0;

    double
    cacheMissRate() const
    {
        const std::uint64_t total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_misses) /
                                static_cast<double>(total);
    }

    /** Layer-wise aggregation: cycles add, traffic and counters add. */
    RunResult&
    operator+=(const RunResult& o)
    {
        compute_cycles += o.compute_cycles;
        dram_cycles += o.dram_cycles;
        total_cycles += o.total_cycles;
        traffic += o.traffic;
        ops += o.ops;
        cache_hits += o.cache_hits;
        cache_misses += o.cache_misses;
        static_scale = o.static_scale;
        return *this;
    }
};

} // namespace loas
