/**
 * @file
 * Compiled-workload artifacts: what an accelerator's prepare phase
 * produces and its execute phase consumes.
 *
 * The LoAS pipeline (and every baseline it is compared against)
 * preprocesses its operands exactly once — compressed fibers, CSR-like
 * views, cumulative address-offset tables — and then streams them
 * through the datapath. The prepare/execute split mirrors that:
 * prepare() lowers a LayerData into a format-family-specific
 * CompiledLayer, and execute() simulates the datapath over the compiled
 * form. Artifacts depend only on the layer contents (never on hardware
 * options like PE count or cache size), so every design variant of a
 * family shares one compilation — the CompiledCache in
 * workload/compiled_cache.hh memoizes them across sweep cells.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "tensor/dense_matrix.hh"
#include "tensor/fiber.hh"
#include "tensor/ranked_bitmask.hh"
#include "tensor/spike_tensor.hh"
#include "workload/layer_spec.hh"

namespace loas {

struct LayerData;

/** Base of the per-format-family compiled artifacts. */
struct CompiledArtifact
{
    virtual ~CompiledArtifact() = default;
};

/**
 * One layer after the prepare phase: the source shape and spec plus a
 * shared, immutable family artifact. CompiledLayers are value types;
 * copies share the artifact, so caching and cross-thread reuse are
 * cheap and read-only by construction.
 */
struct CompiledLayer
{
    LayerSpec spec;      // copy of the source layer's spec
    std::string family;  // format family that produced the artifact

    /** Operand shapes observed at prepare time. */
    std::size_t m = 0, k = 0, n = 0;
    int timesteps = 0;

    /** Input tensors compiled into the artifact (the batch axis);
     *  the weight-side operand is compiled exactly once per layer. */
    std::size_t batch = 1;

    /** Artifact footprint estimate in bytes (cache accounting). */
    std::size_t bytes = 0;

    std::shared_ptr<const CompiledArtifact> artifact;
};

/**
 * Family-checked artifact access for execute() implementations. Handing
 * an accelerator a foreign family's compiled layer is an unrecoverable
 * harness error, reported via fatal() rather than undefined behavior.
 */
template <typename T>
const T&
artifactAs(const CompiledLayer& compiled, const std::string& family)
{
    if (compiled.family != family)
        fatal("cannot execute a '%s'-family compiled layer on a "
              "'%s'-family accelerator (layer '%s')",
              compiled.family.c_str(), family.c_str(),
              compiled.spec.name.c_str());
    if (!compiled.artifact)
        fatal("compiled layer '%s' carries no artifact",
              compiled.spec.name.c_str());
    return static_cast<const T&>(*compiled.artifact);
}

/** Cumulative byte offsets of per-fiber storage (offsets[0] = 0). */
template <typename FiberVec, typename SizeFn>
std::vector<std::uint64_t>
cumulativeOffsets(const FiberVec& fibers, SizeFn&& size_of)
{
    std::vector<std::uint64_t> offsets(fibers.size() + 1, 0);
    for (std::size_t i = 0; i < fibers.size(); ++i)
        offsets[i + 1] = offsets[i] + size_of(fibers[i]);
    return offsets;
}

/**
 * Weight fibers plus their cumulative metadata/value address offsets —
 * the compiled form of one B operand (columns for inner-product
 * designs, rows for the Gustavson baselines). `ranked[i]` is the O(1)
 * rank view of `fibers[i].mask`, built once here so every execute()
 * resolves value offsets in constant time.
 *
 * Move-only: the rank views point into `fibers`, which stays valid
 * under a move of the whole struct (the vector's storage transfers)
 * but not under a copy.
 */
struct CompiledWeightFibers
{
    CompiledWeightFibers() = default;
    CompiledWeightFibers(const CompiledWeightFibers&) = delete;
    CompiledWeightFibers& operator=(const CompiledWeightFibers&) = delete;
    CompiledWeightFibers(CompiledWeightFibers&&) = default;
    CompiledWeightFibers& operator=(CompiledWeightFibers&&) = default;

    std::vector<WeightFiber> fibers;
    std::vector<RankedBitmask> ranked;    // fibers.size() entries
    std::vector<std::uint64_t> meta_off;  // fibers.size() + 1 entries
    std::vector<std::uint64_t> val_off;   // fibers.size() + 1 entries

    /** Approximate in-memory footprint of the compiled operand. */
    std::size_t footprintBytes() const;
};

/** Compile every column of B (inner-product dataflows). */
CompiledWeightFibers
compileWeightColumns(const DenseMatrix<std::int8_t>& weights);

/** Compile every row of B (Gustavson dataflows). */
CompiledWeightFibers
compileWeightRows(const DenseMatrix<std::int8_t>& weights);

/** Wrap already-built fibers (the SparTen ANN activation operand). */
CompiledWeightFibers compileWeightFibers(std::vector<WeightFiber> fibers);

/**
 * Spike fibers plus their cumulative offsets — the compiled form of the
 * A operand under the FTP-friendly format. Value offsets are byte
 * addresses of the packed T-bit temporal words (per-row regions are
 * byte-aligned, values pack within a row, Fig. 8). `ranked[i]` is the
 * O(1) rank view of `fibers[i].mask`; move-only for the same reason as
 * CompiledWeightFibers.
 */
struct CompiledSpikeFibers
{
    CompiledSpikeFibers() = default;
    CompiledSpikeFibers(const CompiledSpikeFibers&) = delete;
    CompiledSpikeFibers& operator=(const CompiledSpikeFibers&) = delete;
    CompiledSpikeFibers(CompiledSpikeFibers&&) = default;
    CompiledSpikeFibers& operator=(CompiledSpikeFibers&&) = default;

    std::vector<SpikeFiber> fibers;
    std::vector<RankedBitmask> ranked;    // fibers.size() entries
    std::vector<std::uint64_t> meta_off;  // fibers.size() + 1 entries
    std::vector<std::uint64_t> val_off;   // fibers.size() + 1 entries

    /** Approximate in-memory footprint of the compiled operand. */
    std::size_t footprintBytes(int timesteps) const;
};

/** Compile every row of A, packing values at the tensor's timestep width. */
CompiledSpikeFibers compileSpikeRows(const SpikeTensor& spikes);

/**
 * Per-fiber count of stored temporal words that are all ones across
 * `timesteps` — the data-dependent density signal the fused join's
 * collapse policy keys on. Precomputed at prepare time so execute()
 * picks a datapath per row in O(1).
 */
std::vector<std::uint32_t>
denseTimewordCounts(const CompiledSpikeFibers& compiled, int timesteps);

/**
 * Assemble a CompiledLayer around a family artifact: copies the spec,
 * records the operand shapes and timestep count, and takes ownership of
 * the artifact. Every prepare() implementation funnels through this so
 * the bookkeeping fields cannot drift apart.
 */
CompiledLayer
makeCompiledLayer(const LayerData& layer, std::string family,
                  std::shared_ptr<const CompiledArtifact> artifact,
                  std::size_t artifact_bytes);

} // namespace loas
