/**
 * @file
 * Micro-architectural operation counters shared by all accelerator
 * simulators; the energy model charges per-op energies against these.
 */

#pragma once

#include <cstdint>

namespace loas {

/** Counts of datapath events during a simulated run. */
struct OpCounts
{
    std::uint64_t acc_ops = 0;         // accumulate (AC) additions
    std::uint64_t correction_ops = 0;  // correction-accumulator additions
    std::uint64_t mac_ops = 0;         // int8 multiply-accumulates (ANN)
    std::uint64_t fast_prefix_ops = 0; // fast prefix-sum activations
    std::uint64_t laggy_prefix_ops = 0; // laggy prefix-sum adder steps
    std::uint64_t fifo_ops = 0;        // FIFO pushes + pops
    std::uint64_t lif_ops = 0;         // LIF updates (one per neuron-step)
    std::uint64_t mask_and_ops = 0;    // bitmask AND + encode chunk ops
    std::uint64_t merge_ops = 0;       // merger / psum update operations
    std::uint64_t encode_ops = 0;      // output-compressor symbol ops

    OpCounts&
    operator+=(const OpCounts& o)
    {
        acc_ops += o.acc_ops;
        correction_ops += o.correction_ops;
        mac_ops += o.mac_ops;
        fast_prefix_ops += o.fast_prefix_ops;
        laggy_prefix_ops += o.laggy_prefix_ops;
        fifo_ops += o.fifo_ops;
        lif_ops += o.lif_ops;
        mask_and_ops += o.mask_and_ops;
        merge_ops += o.merge_ops;
        encode_ops += o.encode_ops;
        return *this;
    }

    std::uint64_t
    total() const
    {
        return acc_ops + correction_ops + mac_ops + fast_prefix_ops +
               laggy_prefix_ops + fifo_ops + lif_ops + mask_and_ops +
               merge_ops + encode_ops;
    }
};

} // namespace loas
