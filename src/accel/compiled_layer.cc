#include "accel/compiled_layer.hh"

#include "common/bitutil.hh"
#include "tensor/compress.hh"
#include "workload/generator.hh"

namespace loas {

namespace {

/** Offsets shared by every compiled weight operand. */
CompiledWeightFibers
withOffsets(std::vector<WeightFiber> fibers)
{
    CompiledWeightFibers compiled;
    compiled.fibers = std::move(fibers);
    compiled.meta_off = cumulativeOffsets(
        compiled.fibers,
        [](const WeightFiber& f) { return f.metadataBytes(); });
    compiled.val_off = cumulativeOffsets(
        compiled.fibers,
        [](const WeightFiber& f) { return f.values.size(); });
    return compiled;
}

} // namespace

std::size_t
CompiledWeightFibers::footprintBytes() const
{
    std::size_t bytes =
        (meta_off.size() + val_off.size()) * sizeof(std::uint64_t);
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes();
    return bytes;
}

CompiledWeightFibers
compileWeightColumns(const DenseMatrix<std::int8_t>& weights)
{
    return withOffsets(compressWeightColumns(weights));
}

CompiledWeightFibers
compileWeightRows(const DenseMatrix<std::int8_t>& weights)
{
    return withOffsets(compressWeightRows(weights));
}

CompiledWeightFibers
compileWeightFibers(std::vector<WeightFiber> fibers)
{
    return withOffsets(std::move(fibers));
}

std::size_t
CompiledSpikeFibers::footprintBytes(int timesteps) const
{
    std::size_t bytes =
        (meta_off.size() + val_off.size()) * sizeof(std::uint64_t);
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes(timesteps);
    return bytes;
}

CompiledSpikeFibers
compileSpikeRows(const SpikeTensor& spikes)
{
    const int timesteps = spikes.timesteps();
    CompiledSpikeFibers compiled;
    compiled.fibers = compressSpikeRows(spikes);
    compiled.meta_off = cumulativeOffsets(
        compiled.fibers,
        [](const SpikeFiber& f) { return f.metadataBytes(); });
    compiled.val_off = cumulativeOffsets(
        compiled.fibers, [&](const SpikeFiber& f) {
            return ceilDiv<std::size_t>(
                f.values.size() * static_cast<std::size_t>(timesteps),
                8);
        });
    return compiled;
}

CompiledLayer
makeCompiledLayer(const LayerData& layer, std::string family,
                  std::shared_ptr<const CompiledArtifact> artifact,
                  std::size_t artifact_bytes)
{
    CompiledLayer compiled;
    compiled.spec = layer.spec;
    compiled.family = std::move(family);
    compiled.m = layer.spikes.rows();
    compiled.k = layer.spikes.cols();
    compiled.n = layer.weights.cols();
    compiled.timesteps = layer.spec.t;
    compiled.bytes = artifact_bytes;
    compiled.artifact = std::move(artifact);
    return compiled;
}

} // namespace loas
