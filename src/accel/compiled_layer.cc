#include "accel/compiled_layer.hh"

#include "common/bitutil.hh"
#include "common/parallel.hh"
#include "tensor/compress.hh"
#include "workload/generator.hh"

namespace loas {

namespace {

/**
 * Build `count` weight fibers with `build(i)` in one parallel pass —
 * each worker fills a disjoint, preallocated slot and immediately
 * derives its rank table (slot addresses are stable: the vector is
 * presized) — then attach the cumulative offsets. One thread fork per
 * compiled operand, bit-identical at any thread count.
 */
template <typename BuildFn>
CompiledWeightFibers
buildWeightFibers(std::size_t count, BuildFn&& build)
{
    CompiledWeightFibers compiled;
    compiled.fibers.resize(count);
    compiled.ranked.resize(count);
    parallelFor(count, prepareParallelism(count), [&](std::size_t i) {
        compiled.fibers[i] = build(i);
        compiled.ranked[i] = RankedBitmask(compiled.fibers[i].mask);
    });
    compiled.meta_off = cumulativeOffsets(
        compiled.fibers,
        [](const WeightFiber& f) { return f.metadataBytes(); });
    compiled.val_off = cumulativeOffsets(
        compiled.fibers,
        [](const WeightFiber& f) { return f.values.size(); });
    return compiled;
}

} // namespace

std::size_t
CompiledWeightFibers::footprintBytes() const
{
    std::size_t bytes =
        (meta_off.size() + val_off.size()) * sizeof(std::uint64_t);
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes();
    return bytes;
}

CompiledWeightFibers
compileWeightColumns(const DenseMatrix<std::int8_t>& weights)
{
    return buildWeightFibers(weights.cols(), [&](std::size_t c) {
        return compressWeightColumn(weights, c);
    });
}

CompiledWeightFibers
compileWeightRows(const DenseMatrix<std::int8_t>& weights)
{
    return buildWeightFibers(weights.rows(), [&](std::size_t r) {
        return compressWeightRow(weights, r);
    });
}

CompiledWeightFibers
compileWeightFibers(std::vector<WeightFiber> fibers)
{
    auto* const raw = fibers.data();
    return buildWeightFibers(fibers.size(), [raw](std::size_t i) {
        return std::move(raw[i]);
    });
}

std::size_t
CompiledSpikeFibers::footprintBytes(int timesteps) const
{
    std::size_t bytes =
        (meta_off.size() + val_off.size()) * sizeof(std::uint64_t);
    for (const auto& fiber : fibers)
        bytes += fiber.storageBytes(timesteps);
    return bytes;
}

CompiledSpikeFibers
compileSpikeRows(const SpikeTensor& spikes)
{
    const int timesteps = spikes.timesteps();
    CompiledSpikeFibers compiled;
    compiled.fibers.resize(spikes.rows());
    compiled.ranked.resize(spikes.rows());
    // One parallel pass: compress the row, then derive its rank table
    // in place (slot addresses are stable: the vectors are presized).
    parallelFor(compiled.fibers.size(),
                prepareParallelism(compiled.fibers.size()),
                [&](std::size_t r) {
                    compiled.fibers[r] = compressSpikeRow(spikes, r);
                    compiled.ranked[r] =
                        RankedBitmask(compiled.fibers[r].mask);
                });
    compiled.meta_off = cumulativeOffsets(
        compiled.fibers,
        [](const SpikeFiber& f) { return f.metadataBytes(); });
    compiled.val_off = cumulativeOffsets(
        compiled.fibers, [&](const SpikeFiber& f) {
            return ceilDiv<std::size_t>(
                f.values.size() * static_cast<std::size_t>(timesteps),
                8);
        });
    return compiled;
}

std::vector<std::uint32_t>
denseTimewordCounts(const CompiledSpikeFibers& compiled, int timesteps)
{
    const TimeWord all_ones =
        timesteps >= kMaxTimesteps
            ? ~TimeWord(0)
            : static_cast<TimeWord>((TimeWord(1) << timesteps) - 1);
    std::vector<std::uint32_t> counts(compiled.fibers.size(), 0);
    for (std::size_t i = 0; i < compiled.fibers.size(); ++i)
        for (const TimeWord w : compiled.fibers[i].values)
            counts[i] += (w & all_ones) == all_ones ? 1u : 0u;
    return counts;
}

CompiledLayer
makeCompiledLayer(const LayerData& layer, std::string family,
                  std::shared_ptr<const CompiledArtifact> artifact,
                  std::size_t artifact_bytes)
{
    CompiledLayer compiled;
    compiled.spec = layer.spec;
    compiled.family = std::move(family);
    compiled.m = layer.spikes.rows();
    compiled.k = layer.spikes.cols();
    compiled.n = layer.weights.cols();
    compiled.timesteps = layer.spec.t;
    compiled.batch = layer.batchSize();
    compiled.bytes = artifact_bytes;
    compiled.artifact = std::move(artifact);
    return compiled;
}

} // namespace loas
