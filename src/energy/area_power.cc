#include "energy/area_power.hh"

namespace loas {

namespace {

// Per-unit constants, calibrated so the published T=4 configuration
// reproduces Table IV exactly (see the header comment).

// One accumulator (the pseudo-accumulator and each correction
// accumulator are costed equally; a TPPE has 1 + T of them).
constexpr double kAccArea = 4.0e-4;   // mm^2
constexpr double kAccPower = 0.032;   // mW

// 128-wide single-cycle prefix-sum circuit.
constexpr double kFastPrefixArea = 0.04;
constexpr double kFastPrefixPower = 1.46;

// Laggy prefix-sum (16 adders + 128-bit buffer).
constexpr double kLaggyPrefixArea = 5.0e-3;
constexpr double kLaggyPrefixPower = 0.32;

// Remaining TPPE logic: a T-agnostic part (bitmask buffers, FIFOs,
// control) plus a per-timestep part (packed spike-data buffer slice).
constexpr double kOtherFixedArea = 0.0072;
constexpr double kOtherPerTArea = 0.00145;
constexpr double kOtherFixedPower = 0.773;
constexpr double kOtherPerTPower = 0.0268;

// One P-LIF lane (a P-LIF unit has one lane per timestep).
constexpr double kPlifLaneArea = 0.02 / (16.0 * 4.0);
constexpr double kPlifLanePower = 1.2 / (16.0 * 4.0);

// System-level blocks (Table III configuration).
constexpr double kGlobalCacheArea = 0.80;
constexpr double kGlobalCachePower = 124.5;
constexpr double kSystemOtherArea = 0.30;
constexpr double kSystemOtherPower = 18.1;

} // namespace

TppeAreaPower::TppeAreaPower(int timesteps) : timesteps_(timesteps) {}

std::vector<HwComponent>
TppeAreaPower::components() const
{
    const double t = static_cast<double>(timesteps_);
    const double acc_count = 1.0 + t; // pseudo + T corrections
    return {
        {"Accumulators", kAccArea * acc_count, kAccPower * acc_count},
        {"Fast Prefix", kFastPrefixArea, kFastPrefixPower},
        {"Laggy Prefix", kLaggyPrefixArea, kLaggyPrefixPower},
        {"Others", kOtherFixedArea + kOtherPerTArea * t,
         kOtherFixedPower + kOtherPerTPower * t},
    };
}

HwComponent
TppeAreaPower::total() const
{
    HwComponent sum{"TPPE total", 0.0, 0.0};
    for (const auto& c : components()) {
        sum.area_mm2 += c.area_mm2;
        sum.power_mw += c.power_mw;
    }
    return sum;
}

double
TppeAreaPower::growingAreaFraction() const
{
    const double t = static_cast<double>(timesteps_);
    const double growing =
        kAccArea * (1.0 + t) + kOtherPerTArea * t;
    return growing / total().area_mm2;
}

double
TppeAreaPower::growingPowerFraction() const
{
    const double t = static_cast<double>(timesteps_);
    const double growing =
        kAccPower * (1.0 + t) + kOtherPerTPower * t;
    return growing / total().power_mw;
}

LoasAreaPower::LoasAreaPower(int num_tppes, int timesteps)
    : num_tppes_(num_tppes), timesteps_(timesteps)
{
}

std::vector<HwComponent>
LoasAreaPower::components() const
{
    const TppeAreaPower tppe(timesteps_);
    const auto tppe_total = tppe.total();
    const double pes = static_cast<double>(num_tppes_);
    const double lanes = pes * static_cast<double>(timesteps_);
    return {
        {"TPPEs", tppe_total.area_mm2 * pes, tppe_total.power_mw * pes},
        {"P-LIFs", kPlifLaneArea * lanes, kPlifLanePower * lanes},
        {"Global cache", kGlobalCacheArea, kGlobalCachePower},
        {"Others", kSystemOtherArea, kSystemOtherPower},
    };
}

HwComponent
LoasAreaPower::total() const
{
    HwComponent sum{"Total", 0.0, 0.0};
    for (const auto& c : components()) {
        sum.area_mm2 += c.area_mm2;
        sum.power_mw += c.power_mw;
    }
    return sum;
}

std::vector<std::pair<std::string, double>>
LoasAreaPower::powerFractions() const
{
    const double total_power = total().power_mw;
    std::vector<std::pair<std::string, double>> fractions;
    for (const auto& c : components())
        fractions.emplace_back(c.name, c.power_mw / total_power);
    return fractions;
}

} // namespace loas
