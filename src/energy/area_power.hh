/**
 * @file
 * Structural area/power model of LoAS (Table IV, Figs. 15-16a).
 *
 * Components are parameterized by the architecture configuration; the
 * per-unit constants are calibrated so the T=4, 16-TPPE configuration
 * reproduces the paper's published synthesis results (32 nm, 800 MHz).
 * Scaling behavior with the timestep count then follows from which
 * components replicate per timestep (accumulators, the packed-spike
 * data buffer and the P-LIF lanes) and which are T-agnostic (prefix-sum
 * circuits, bitmask buffers, cache).
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace loas {

/** One named hardware component with area and power. */
struct HwComponent
{
    std::string name;
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};

/** Area/power of one Temporal-Parallel Processing Element. */
class TppeAreaPower
{
  public:
    explicit TppeAreaPower(int timesteps = 4);

    /** Accumulators / Fast Prefix / Laggy Prefix / Others. */
    std::vector<HwComponent> components() const;

    /** Sum over components. */
    HwComponent total() const;

    /** Fraction of TPPE area in components that grow with T. */
    double growingAreaFraction() const;

    /** Fraction of TPPE power in components that grow with T. */
    double growingPowerFraction() const;

    int timesteps() const { return timesteps_; }

  private:
    int timesteps_;
};

/** Area/power of the full LoAS system. */
class LoasAreaPower
{
  public:
    explicit LoasAreaPower(int num_tppes = 16, int timesteps = 4);

    /** TPPEs / P-LIFs / Global cache / Others. */
    std::vector<HwComponent> components() const;

    HwComponent total() const;

    /** On-chip power fraction per component (Fig. 15 pie chart). */
    std::vector<std::pair<std::string, double>> powerFractions() const;

  private:
    int num_tppes_;
    int timesteps_;
};

} // namespace loas
