/**
 * @file
 * Energy model: converts a RunResult's op counts and traffic into pJ.
 * Per-op constants play the role of the paper's RTL-synthesis numbers
 * and the SRAM/DRAM per-byte constants the role of CACTI 7.0 (32 nm,
 * 800 MHz); see DESIGN.md's substitution table. What the experiments
 * consume are energy *ratios* between designs, which depend on the
 * relative magnitudes below, not their absolute calibration.
 */

#pragma once

#include "accel/run_result.hh"

namespace loas {

/** Per-event energies in pJ. */
struct EnergyParams
{
    double acc_pj = 0.10;          // 12-bit accumulate + register
    double correction_pj = 0.08;   // 10-bit correction accumulate
    double mac_pj = 0.60;          // int8 multiply-accumulate (ANN)
    double fast_prefix_pj = 1.20;  // 128-wide single-cycle prefix sum
    double laggy_prefix_pj = 0.15; // laggy prefix-sum adder step
    double fifo_pj = 0.05;         // FIFO push or pop
    double lif_pj = 0.12;          // LIF compare + leak + reset
    double mask_and_pj = 0.20;     // 128-bit AND + priority encode
    double merge_pj = 0.25;        // merger / psum read-modify-write
    double encode_pj = 0.10;       // output compressor symbol

    double sram_pj_per_byte = 0.7; // 256 KB banked SRAM
    double dram_pj_per_byte = 30.0; // HBM

    /**
     * Background (clock tree, control, cache leakage and idle-bank)
     * energy charged per occupied cycle. At 800 MHz this corresponds
     * to ~130 mW of the ~190 mW system power (Table IV), which is why
     * slow designs lose energy efficiency roughly with latency in the
     * paper's Fig. 12.
     */
    double static_pj_per_cycle = 160.0;
};

/** Energy split used in the result tables. */
struct EnergyBreakdown
{
    double compute_pj = 0.0;
    double sram_pj = 0.0;
    double dram_pj = 0.0;
    double static_pj = 0.0;

    double
    totalPj() const
    {
        return compute_pj + sram_pj + dram_pj + static_pj;
    }

    /** Fraction of energy spent moving data (SRAM + DRAM). */
    double
    dataMovementFraction() const
    {
        const double total = totalPj();
        return total <= 0.0 ? 0.0 : (sram_pj + dram_pj) / total;
    }
};

/** Evaluates run results against a set of per-op energies. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams& params = {});

    /** Energy of one simulated run. */
    EnergyBreakdown evaluate(const RunResult& result) const;

    const EnergyParams& params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace loas
