#include "energy/energy_model.hh"

namespace loas {

EnergyModel::EnergyModel(const EnergyParams& params) : params_(params) {}

EnergyBreakdown
EnergyModel::evaluate(const RunResult& result) const
{
    const OpCounts& ops = result.ops;
    EnergyBreakdown out;
    out.compute_pj =
        ops.acc_ops * params_.acc_pj +
        ops.correction_ops * params_.correction_pj +
        ops.mac_ops * params_.mac_pj +
        ops.fast_prefix_ops * params_.fast_prefix_pj +
        ops.laggy_prefix_ops * params_.laggy_prefix_pj +
        ops.fifo_ops * params_.fifo_pj + ops.lif_ops * params_.lif_pj +
        ops.mask_and_ops * params_.mask_and_pj +
        ops.merge_ops * params_.merge_pj +
        ops.encode_ops * params_.encode_pj;
    out.sram_pj = static_cast<double>(result.traffic.sramBytes()) *
                  params_.sram_pj_per_byte;
    out.dram_pj = static_cast<double>(result.traffic.dramBytes()) *
                  params_.dram_pj_per_byte;
    out.static_pj = static_cast<double>(result.total_cycles) *
                    params_.static_pj_per_cycle * result.static_scale;
    return out;
}

} // namespace loas
