/**
 * @file
 * Set-associative write-back cache model for the shared global buffer
 * (Table III: 256 KB, 16 banks, 16-way). Used to derive hit/miss rates
 * and the resulting off-chip traffic; latency is folded into the
 * bandwidth overlap model by the simulators.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/traffic.hh"

namespace loas {

/** Geometry of the shared on-chip cache. */
struct CacheConfig
{
    std::uint64_t size_bytes = 256 * 1024;
    std::uint32_t ways = 16;
    std::uint32_t line_bytes = 64;
    std::uint32_t banks = 16;
};

/** LRU set-associative cache with per-line dirty/category state. */
class Cache
{
  public:
    explicit Cache(const CacheConfig& config);

    /** Result of looking up one cache line. */
    struct LineResult
    {
        bool hit;
        /** Dirty line evicted: its size and category must be written. */
        bool writeback;
        TensorCategory writeback_cat;
    };

    /**
     * Access the line containing `addr`; allocate on miss (evicting
     * LRU). `write` marks the line dirty.
     */
    LineResult accessLine(std::uint64_t addr, bool write,
                          TensorCategory cat);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(misses_) /
                                static_cast<double>(total);
    }

    const CacheConfig& config() const { return config_; }

    /**
     * Drop all contents, returning dirty bytes per category that must
     * be written back (end-of-layer flush).
     */
    std::array<std::uint64_t, kNumCategories> flush();

    /**
     * Return to the just-constructed state (cold lines, zero counters)
     * without touching the line storage — the reuse path that lets an
     * accelerator's execute() scratch keep one Cache across layers.
     */
    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t last_use = 0;
        TensorCategory cat = TensorCategory::Input;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    std::uint64_t num_sets_;
    std::vector<Line> lines_; // num_sets * ways
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace loas
