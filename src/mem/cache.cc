#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace loas {

Cache::Cache(const CacheConfig& config) : config_(config)
{
    if (!isPow2(config.line_bytes))
        fatal("cache line size %u is not a power of two",
              config.line_bytes);
    const std::uint64_t lines = config.size_bytes / config.line_bytes;
    if (lines == 0 || lines % config.ways != 0)
        fatal("cache geometry invalid: %llu lines, %u ways",
              static_cast<unsigned long long>(lines), config.ways);
    num_sets_ = lines / config.ways;
    lines_.resize(lines);
}

Cache::LineResult
Cache::accessLine(std::uint64_t addr, bool write, TensorCategory cat)
{
    const std::uint64_t line_addr = addr / config_.line_bytes;
    const std::uint64_t set = line_addr % num_sets_;
    Line* const set_base = &lines_[set * config_.ways];
    ++tick_;

    LineResult result{false, false, TensorCategory::Input};

    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Line& line = set_base[w];
        if (line.valid && line.tag == line_addr) {
            line.last_use = tick_;
            line.dirty = line.dirty || write;
            ++hits_;
            result.hit = true;
            return result;
        }
        if (!victim || !line.valid ||
            (victim->valid && line.last_use < victim->last_use)) {
            if (!victim || victim->valid)
                victim = &line;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writeback_cat = victim->cat;
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = line_addr;
    victim->last_use = tick_;
    victim->cat = cat;
    return result;
}

std::array<std::uint64_t, kNumCategories>
Cache::flush()
{
    std::array<std::uint64_t, kNumCategories> dirty_bytes{};
    for (auto& line : lines_) {
        if (line.valid && line.dirty)
            dirty_bytes[static_cast<int>(line.cat)] += config_.line_bytes;
        line.valid = false;
        line.dirty = false;
    }
    return dirty_bytes;
}

void
Cache::reset()
{
    for (auto& line : lines_)
        line = Line{};
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace loas
