/**
 * @file
 * Byte-accurate memory traffic accounting, split by memory level (SRAM
 * vs off-chip DRAM), direction, and tensor category. The per-category
 * breakdown is what Fig. 14 of the paper reports.
 */

#pragma once

#include <array>
#include <cstdint>

namespace loas {

/** What a memory access is carrying. */
enum class TensorCategory : int
{
    Input = 0,  // spike tensor A (or ANN activations)
    Weight,     // weight matrix B
    Psum,       // partial sums / membrane state
    Output,     // output spikes C
    Meta,       // compressed-format metadata (bitmasks, pointers, coords)
    NumCategories,
};

constexpr int kNumCategories =
    static_cast<int>(TensorCategory::NumCategories);

/** Human-readable category name. */
const char* tensorCategoryName(TensorCategory cat);

/** Traffic counters in bytes. */
struct TrafficStats
{
    std::array<std::uint64_t, kNumCategories> dram_read{};
    std::array<std::uint64_t, kNumCategories> dram_write{};
    std::array<std::uint64_t, kNumCategories> sram_read{};
    std::array<std::uint64_t, kNumCategories> sram_write{};

    std::uint64_t
    dramReadBytes() const
    {
        std::uint64_t sum = 0;
        for (const auto v : dram_read)
            sum += v;
        return sum;
    }

    std::uint64_t
    dramWriteBytes() const
    {
        std::uint64_t sum = 0;
        for (const auto v : dram_write)
            sum += v;
        return sum;
    }

    std::uint64_t dramBytes() const
    {
        return dramReadBytes() + dramWriteBytes();
    }

    std::uint64_t
    sramBytes() const
    {
        std::uint64_t sum = 0;
        for (int c = 0; c < kNumCategories; ++c)
            sum += sram_read[c] + sram_write[c];
        return sum;
    }

    /** Off-chip bytes (both directions) for one category. */
    std::uint64_t
    dramBytes(TensorCategory cat) const
    {
        const auto c = static_cast<int>(cat);
        return dram_read[c] + dram_write[c];
    }

    /** On-chip bytes (both directions) for one category. */
    std::uint64_t
    sramBytes(TensorCategory cat) const
    {
        const auto c = static_cast<int>(cat);
        return sram_read[c] + sram_write[c];
    }

    TrafficStats&
    operator+=(const TrafficStats& other)
    {
        for (int c = 0; c < kNumCategories; ++c) {
            dram_read[c] += other.dram_read[c];
            dram_write[c] += other.dram_write[c];
            sram_read[c] += other.sram_read[c];
            sram_write[c] += other.sram_write[c];
        }
        return *this;
    }
};

/** Off-chip memory bandwidth model (Table III: 128 GB/s HBM, 800 MHz). */
struct DramConfig
{
    /** Peak bytes per accelerator clock: 128 GB/s / 800 MHz = 160 B. */
    double bytes_per_cycle = 160.0;
};

} // namespace loas
