/**
 * @file
 * The memory hierarchy every accelerator simulator drives: a shared
 * banked SRAM cache backed by an HBM bandwidth model. All accesses are
 * recorded per category so the evaluation can reproduce the paper's
 * traffic breakdowns (Figs. 13/14).
 */

#pragma once

#include <cstdint>

#include "mem/cache.hh"
#include "mem/traffic.hh"

namespace loas {

/** Shared cache + DRAM pair with byte-level accounting. */
class MemorySystem
{
  public:
    MemorySystem(const CacheConfig& cache_config,
                 const DramConfig& dram_config);

    /**
     * Cached read of `bytes` starting at `addr`: SRAM read traffic is
     * recorded for every byte; missing lines are filled from DRAM.
     */
    void read(TensorCategory cat, std::uint64_t addr, std::uint64_t bytes);

    /**
     * Cached read of a coalesced run: `payload_bytes` of SRAM read
     * traffic are recorded (the bytes the datapath actually consumes),
     * while the cache walks the whole [addr, addr + bytes) line range
     * exactly once. Batching N adjacent read() calls whose spans tile
     * the run into one readRun() keeps misses, evictions, and DRAM
     * traffic identical and drops only the duplicate boundary-line
     * lookups — the address-walk fast path of the LoAS memory model.
     */
    void readRun(TensorCategory cat, std::uint64_t addr,
                 std::uint64_t bytes, std::uint64_t payload_bytes);

    /** Cached write (write-allocate, write-back). */
    void write(TensorCategory cat, std::uint64_t addr,
               std::uint64_t bytes);

    /** DMA-style DRAM read that bypasses the cache. */
    void streamRead(TensorCategory cat, std::uint64_t bytes);

    /** DMA-style DRAM write that bypasses the cache. */
    void streamWrite(TensorCategory cat, std::uint64_t bytes);

    /** Scratchpad (SRAM-only) read: private PE buffers, psum memories. */
    void scratchRead(TensorCategory cat, std::uint64_t bytes);

    /** Scratchpad (SRAM-only) write. */
    void scratchWrite(TensorCategory cat, std::uint64_t bytes);

    /** Write back all dirty cache lines (end of layer). */
    void flushCache();

    /**
     * Return to the just-constructed state (cold cache, zero traffic)
     * without reallocating: execute() scratch buffers keep one
     * MemorySystem per accelerator instance and reset it per layer.
     */
    void reset();

    const TrafficStats& stats() const { return stats_; }
    std::uint64_t cacheHits() const { return cache_.hits(); }
    std::uint64_t cacheMisses() const { return cache_.misses(); }
    double cacheMissRate() const { return cache_.missRate(); }

    /** Total DRAM bytes moved so far (both directions). */
    std::uint64_t dramBytes() const { return stats_.dramBytes(); }

    /** Cycles DRAM needs for the bytes moved so far. */
    std::uint64_t dramCycles() const;

    /** Cycles DRAM needs for a byte delta (phase overlap accounting). */
    std::uint64_t dramCyclesFor(std::uint64_t bytes) const;

  private:
    Cache cache_;
    DramConfig dram_;
    TrafficStats stats_;
};

} // namespace loas
