#include "mem/memory_system.hh"

#include <cmath>

namespace loas {

const char*
tensorCategoryName(TensorCategory cat)
{
    switch (cat) {
      case TensorCategory::Input:
        return "input";
      case TensorCategory::Weight:
        return "weight";
      case TensorCategory::Psum:
        return "psum";
      case TensorCategory::Output:
        return "output";
      case TensorCategory::Meta:
        return "meta";
      default:
        return "?";
    }
}

MemorySystem::MemorySystem(const CacheConfig& cache_config,
                           const DramConfig& dram_config)
    : cache_(cache_config), dram_(dram_config)
{
}

void
MemorySystem::read(TensorCategory cat, std::uint64_t addr,
                   std::uint64_t bytes)
{
    readRun(cat, addr, bytes, bytes);
}

void
MemorySystem::readRun(TensorCategory cat, std::uint64_t addr,
                      std::uint64_t bytes, std::uint64_t payload_bytes)
{
    const int c = static_cast<int>(cat);
    stats_.sram_read[c] += payload_bytes;
    const std::uint32_t line = cache_.config().line_bytes;
    const std::uint64_t first = addr / line;
    const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
        const auto result = cache_.accessLine(l * line, false, cat);
        if (!result.hit)
            stats_.dram_read[c] += line;
        if (result.writeback) {
            stats_.dram_write[static_cast<int>(result.writeback_cat)] +=
                line;
        }
    }
}

void
MemorySystem::write(TensorCategory cat, std::uint64_t addr,
                    std::uint64_t bytes)
{
    const int c = static_cast<int>(cat);
    stats_.sram_write[c] += bytes;
    const std::uint32_t line = cache_.config().line_bytes;
    const std::uint64_t first = addr / line;
    const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
        const auto result = cache_.accessLine(l * line, true, cat);
        if (!result.hit)
            stats_.dram_read[c] += line; // write-allocate fill
        if (result.writeback) {
            stats_.dram_write[static_cast<int>(result.writeback_cat)] +=
                line;
        }
    }
}

void
MemorySystem::streamRead(TensorCategory cat, std::uint64_t bytes)
{
    stats_.dram_read[static_cast<int>(cat)] += bytes;
}

void
MemorySystem::streamWrite(TensorCategory cat, std::uint64_t bytes)
{
    stats_.dram_write[static_cast<int>(cat)] += bytes;
}

void
MemorySystem::scratchRead(TensorCategory cat, std::uint64_t bytes)
{
    stats_.sram_read[static_cast<int>(cat)] += bytes;
}

void
MemorySystem::scratchWrite(TensorCategory cat, std::uint64_t bytes)
{
    stats_.sram_write[static_cast<int>(cat)] += bytes;
}

void
MemorySystem::flushCache()
{
    const auto dirty = cache_.flush();
    for (int c = 0; c < kNumCategories; ++c)
        stats_.dram_write[c] += dirty[static_cast<std::size_t>(c)];
}

void
MemorySystem::reset()
{
    cache_.reset();
    stats_ = TrafficStats{};
}

std::uint64_t
MemorySystem::dramCycles() const
{
    return dramCyclesFor(dramBytes());
}

std::uint64_t
MemorySystem::dramCyclesFor(std::uint64_t bytes) const
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / dram_.bytes_per_cycle));
}

} // namespace loas
