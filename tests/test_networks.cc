/** @file Tests for the reconstructed Table II network tables. */

#include <gtest/gtest.h>

#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Tables, PinnedLayersMatchTable2)
{
    const LayerSpec a = tables::alexnetL4();
    EXPECT_EQ(a.m, 64u);
    EXPECT_EQ(a.n, 256u);
    EXPECT_EQ(a.k, 3456u);
    EXPECT_DOUBLE_EQ(a.spike_sparsity, 0.758);
    EXPECT_DOUBLE_EQ(a.silent_ratio, 0.632);
    EXPECT_DOUBLE_EQ(a.silent_ratio_ft, 0.697);
    EXPECT_DOUBLE_EQ(a.weight_sparsity, 0.989);

    const LayerSpec v = tables::vgg16L8();
    EXPECT_EQ(v.m, 16u);
    EXPECT_EQ(v.n, 512u);
    EXPECT_EQ(v.k, 2304u);
    EXPECT_DOUBLE_EQ(v.spike_sparsity, 0.881);

    const LayerSpec r = tables::resnet19L19();
    EXPECT_EQ(r.k, 2304u);
    EXPECT_DOUBLE_EQ(r.weight_sparsity, 0.991);

    const LayerSpec t = tables::transformerHff();
    EXPECT_EQ(t.m, 784u);
    EXPECT_EQ(t.n, 3072u);
    EXPECT_EQ(t.k, 3072u);
    EXPECT_DOUBLE_EQ(t.silent_ratio_ft, 0.868);
}

TEST(Tables, LayerCountsMatchTable2)
{
    EXPECT_EQ(tables::alexnet().layers.size(), 7u);
    EXPECT_EQ(tables::vgg16().layers.size(), 14u);
    EXPECT_EQ(tables::resnet19().layers.size(), 19u);
}

TEST(Tables, NetworkAveragesReproduceTable2)
{
    const NetworkSpec alex = tables::alexnet();
    EXPECT_NEAR(alex.avgSpikeSparsity(), 0.812, 0.002);
    EXPECT_NEAR(alex.avgSilentRatio(), 0.713, 0.002);
    EXPECT_NEAR(alex.avgSilentRatioFt(), 0.767, 0.002);
    EXPECT_NEAR(alex.avgWeightSparsity(), 0.982, 0.002);

    const NetworkSpec vgg = tables::vgg16();
    EXPECT_NEAR(vgg.avgSpikeSparsity(), 0.823, 0.002);
    EXPECT_NEAR(vgg.avgSilentRatio(), 0.741, 0.002);
    EXPECT_NEAR(vgg.avgSilentRatioFt(), 0.796, 0.002);
    EXPECT_NEAR(vgg.avgWeightSparsity(), 0.982, 0.002);

    const NetworkSpec res = tables::resnet19();
    EXPECT_NEAR(res.avgSpikeSparsity(), 0.686, 0.002);
    EXPECT_NEAR(res.avgSilentRatio(), 0.596, 0.002);
    EXPECT_NEAR(res.avgSilentRatioFt(), 0.661, 0.002);
    EXPECT_NEAR(res.avgWeightSparsity(), 0.968, 0.002);
}

TEST(Tables, PinnedLayersEmbeddedInNetworks)
{
    const NetworkSpec alex = tables::alexnet();
    EXPECT_EQ(alex.layers[3].name, "A-L4");
    EXPECT_EQ(alex.layers[3].k, 3456u);
    const NetworkSpec vgg = tables::vgg16();
    EXPECT_EQ(vgg.layers[7].name, "V-L8");
    const NetworkSpec res = tables::resnet19();
    EXPECT_EQ(res.layers[17].name, "R-L19");
}

TEST(Tables, EveryLayerIsFeasible)
{
    for (const auto& net : tables::allNetworks()) {
        for (const auto& layer : net.layers) {
            EXPECT_GT(layer.m, 0u);
            EXPECT_GT(layer.n, 0u);
            EXPECT_GT(layer.k, 0u);
            EXPECT_GT(layer.spike_sparsity, 0.0);
            EXPECT_LT(layer.spike_sparsity, 1.0);
            EXPECT_GT(layer.silent_ratio, 0.0);
            EXPECT_LT(layer.silent_ratio, 1.0);
            EXPECT_GE(layer.silent_ratio_ft, layer.silent_ratio);
            // Mean spikes per active neuron within [1, T].
            const double d0 = 1.0 - layer.spike_sparsity;
            const double mu =
                d0 * layer.t / (1.0 - layer.silent_ratio);
            EXPECT_GE(mu, 1.0) << net.name << " " << layer.name;
            EXPECT_LE(mu, layer.t) << net.name << " " << layer.name;
            const double mu_ft =
                d0 * layer.t / (1.0 - layer.silent_ratio_ft);
            EXPECT_GE(mu_ft, 2.0) << net.name << " " << layer.name;
            EXPECT_LE(mu_ft, layer.t) << net.name << " " << layer.name;
        }
    }
}

TEST(Tables, SparsityRampsWithDepth)
{
    // Deeper layers are on average sparser than early layers (the
    // pinned published layer may locally break monotonicity).
    for (const auto& net : tables::allNetworks()) {
        const auto& layers = net.layers;
        double head = 0.0, tail = 0.0;
        for (std::size_t i = 0; i < 3; ++i) {
            head += layers[i].spike_sparsity;
            tail += layers[layers.size() - 1 - i].spike_sparsity;
        }
        EXPECT_GT(tail, head) << net.name;
    }
}

TEST(Tables, WithTimestepsScalesSilentRatio)
{
    const LayerSpec base = tables::vgg16L8();
    const LayerSpec t8 = tables::withTimesteps(base, 8);
    const LayerSpec t16 = tables::withTimesteps(base, 16);
    EXPECT_EQ(t8.t, 8);
    // Origin bit sparsity is held; silent ratio decays with T.
    EXPECT_DOUBLE_EQ(t8.spike_sparsity, base.spike_sparsity);
    EXPECT_LT(t8.silent_ratio, base.silent_ratio);
    EXPECT_LT(t16.silent_ratio, t8.silent_ratio);
    // FT silent ratio decays more slowly (Fig. 16b).
    const double drop8 = base.silent_ratio - t8.silent_ratio;
    const double drop8_ft = base.silent_ratio_ft - t8.silent_ratio_ft;
    EXPECT_LT(drop8_ft, drop8);
}

TEST(Tables, WeightSparsityVariant)
{
    const LayerSpec low = tables::vgg16L8WithWeightSparsity(0.25, 4);
    EXPECT_DOUBLE_EQ(low.weight_sparsity, 0.25);
    EXPECT_EQ(low.t, 4);
    const LayerSpec t8 = tables::vgg16L8WithWeightSparsity(0.982, 8);
    EXPECT_EQ(t8.t, 8);
}

} // namespace
} // namespace loas
