/** @file Tests for the Table IV area/power model and its T-scaling. */

#include <gtest/gtest.h>

#include "energy/area_power.hh"

namespace loas {
namespace {

TEST(TppeAreaPower, ReproducesTable4AtT4)
{
    const TppeAreaPower tppe(4);
    const auto total = tppe.total();
    EXPECT_NEAR(total.area_mm2, 0.06, 0.002);
    EXPECT_NEAR(total.power_mw, 2.82, 0.05);

    // Per-component values of Table IV (right).
    for (const auto& c : tppe.components()) {
        if (c.name == "Accumulators") {
            EXPECT_NEAR(c.area_mm2, 2e-3, 2e-4);
            EXPECT_NEAR(c.power_mw, 0.16, 0.01);
        } else if (c.name == "Fast Prefix") {
            EXPECT_NEAR(c.area_mm2, 0.04, 1e-3);
            EXPECT_NEAR(c.power_mw, 1.46, 0.01);
        } else if (c.name == "Laggy Prefix") {
            EXPECT_NEAR(c.area_mm2, 5e-3, 5e-4);
            EXPECT_NEAR(c.power_mw, 0.32, 0.01);
        }
    }
}

TEST(TppeAreaPower, Fig16aScaling)
{
    const TppeAreaPower t4(4);
    const TppeAreaPower t16(16);
    // Paper: at T=16 the TPPE grows 1.37x in area and 1.25x in power
    // versus T=4.
    EXPECT_NEAR(t16.total().area_mm2 / t4.total().area_mm2, 1.37, 0.03);
    EXPECT_NEAR(t16.total().power_mw / t4.total().power_mw, 1.25, 0.03);
}

TEST(TppeAreaPower, GrowingFractions)
{
    // Fig. 16a: the T-dependent portion is 12.5/22.2/36.3 % of area
    // and 8.4/15.5/26.8 % of power at T = 4/8/16.
    EXPECT_NEAR(TppeAreaPower(4).growingAreaFraction(), 0.125, 0.02);
    EXPECT_NEAR(TppeAreaPower(8).growingAreaFraction(), 0.222, 0.025);
    EXPECT_NEAR(TppeAreaPower(16).growingAreaFraction(), 0.363, 0.03);
    EXPECT_NEAR(TppeAreaPower(4).growingPowerFraction(), 0.084, 0.02);
    EXPECT_NEAR(TppeAreaPower(8).growingPowerFraction(), 0.155, 0.025);
    EXPECT_NEAR(TppeAreaPower(16).growingPowerFraction(), 0.268, 0.03);
}

TEST(LoasAreaPower, ReproducesTable4System)
{
    const LoasAreaPower system(16, 4);
    const auto total = system.total();
    EXPECT_NEAR(total.area_mm2, 2.08, 0.03);
    EXPECT_NEAR(total.power_mw, 188.9, 2.0);
    for (const auto& c : system.components()) {
        if (c.name == "TPPEs") {
            EXPECT_NEAR(c.area_mm2, 0.96, 0.02);
            EXPECT_NEAR(c.power_mw, 45.1, 0.5);
        } else if (c.name == "P-LIFs") {
            EXPECT_NEAR(c.area_mm2, 0.02, 0.005);
            EXPECT_NEAR(c.power_mw, 1.2, 0.05);
        } else if (c.name == "Global cache") {
            EXPECT_NEAR(c.area_mm2, 0.80, 0.01);
            EXPECT_NEAR(c.power_mw, 124.5, 0.5);
        }
    }
}

TEST(LoasAreaPower, Fig15PowerFractions)
{
    // Fig. 15: global cache ~65.9%, TPPEs ~23.9%, others ~10.2%.
    const LoasAreaPower system(16, 4);
    for (const auto& [name, fraction] : system.powerFractions()) {
        if (name == "Global cache") {
            EXPECT_NEAR(fraction, 0.659, 0.02);
        } else if (name == "TPPEs") {
            EXPECT_NEAR(fraction, 0.239, 0.02);
        }
    }
}

TEST(TppeAreaPower, MonotoneInT)
{
    double prev_area = 0.0, prev_power = 0.0;
    for (const int t : {2, 4, 8, 16, 32}) {
        const TppeAreaPower tppe(t);
        EXPECT_GT(tppe.total().area_mm2, prev_area);
        EXPECT_GT(tppe.total().power_mw, prev_power);
        prev_area = tppe.total().area_mm2;
        prev_power = tppe.total().power_mw;
    }
}

TEST(TppeAreaPower, FastPrefixDominates)
{
    // Fig. 15 right: the fast prefix-sum is ~51.8% of TPPE power.
    const TppeAreaPower tppe(4);
    double fast = 0.0;
    for (const auto& c : tppe.components())
        if (c.name == "Fast Prefix")
            fast = c.power_mw;
    EXPECT_NEAR(fast / tppe.total().power_mw, 0.518, 0.02);
}

} // namespace
} // namespace loas
