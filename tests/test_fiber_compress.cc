/** @file Tests for the FTP-friendly fiber compression (Fig. 8). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/compress.hh"

namespace loas {
namespace {

SpikeTensor
randomSpikes(std::size_t rows, std::size_t cols, int timesteps,
             double density, std::uint64_t seed)
{
    Rng rng(seed);
    SpikeTensor a(rows, cols, timesteps);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            for (int t = 0; t < timesteps; ++t)
                if (rng.bernoulli(density))
                    a.setSpike(r, c, t);
    return a;
}

TEST(SpikeFiber, Fig8WalkThrough)
{
    // The exact example of Fig. 8: row 0 = [1010-ish...] with silent
    // neurons at positions 1 and 2.
    SpikeTensor a(1, 4, 4);
    a.setWord(0, 0, 0b0101); // fires at t0, t2
    a.setWord(0, 3, 0b1110); // fires at t1, t2, t3
    const SpikeFiber fiber = compressSpikeRow(a, 0);
    EXPECT_EQ(fiber.mask.size(), 4u);
    EXPECT_TRUE(fiber.mask.test(0));
    EXPECT_FALSE(fiber.mask.test(1));
    EXPECT_FALSE(fiber.mask.test(2));
    EXPECT_TRUE(fiber.mask.test(3));
    ASSERT_EQ(fiber.values.size(), 2u);
    EXPECT_EQ(fiber.values[0], 0b0101u);
    EXPECT_EQ(fiber.values[1], 0b1110u);
    // 5 spikes carried by 4 bitmask bits: 125% efficiency (Fig. 8).
    EXPECT_DOUBLE_EQ(compressionEfficiency(a), 1.25);
}

TEST(SpikeFiber, StorageBytes)
{
    SpikeFiber fiber;
    fiber.mask = Bitmask(128);
    fiber.mask.set(0);
    fiber.mask.set(5);
    fiber.values = {1, 2};
    // 16 B mask + 4 B pointer + 2 values x 4 bits = 1 B.
    EXPECT_EQ(fiber.storageBytes(4), 16u + 4 + 1);
    EXPECT_EQ(fiber.metadataBytes(), 20u);
}

TEST(SpikeFiber, RoundTrip)
{
    const SpikeTensor a = randomSpikes(13, 77, 4, 0.2, 42);
    const auto fibers = compressSpikeRows(a);
    const SpikeTensor back = decompressSpikeRows(fibers, 77, 4);
    EXPECT_EQ(a, back);
}

TEST(WeightFiber, ColumnRoundTrip)
{
    Rng rng(3);
    DenseMatrix<std::int8_t> b(50, 20, 0);
    for (std::size_t r = 0; r < b.rows(); ++r)
        for (std::size_t c = 0; c < b.cols(); ++c)
            if (rng.bernoulli(0.1))
                b(r, c) = static_cast<std::int8_t>(
                    1 + rng.uniformInt(100));
    const auto fibers = compressWeightColumns(b);
    ASSERT_EQ(fibers.size(), 20u);
    const auto back = decompressWeightColumns(fibers, 50);
    EXPECT_EQ(b, back);
}

TEST(WeightFiber, RowCompressionMatchesColumnOfTranspose)
{
    DenseMatrix<std::int8_t> b(3, 4, 0);
    b(0, 1) = 5;
    b(2, 3) = -7;
    b(2, 0) = 1;
    const WeightFiber row2 = compressWeightRow(b, 2);
    EXPECT_EQ(row2.nnz(), 2u);
    EXPECT_TRUE(row2.mask.test(0));
    EXPECT_TRUE(row2.mask.test(3));
    EXPECT_EQ(row2.values[0], 1);
    EXPECT_EQ(row2.values[1], -7);
}

TEST(WeightFiber, EmptyColumn)
{
    DenseMatrix<std::int8_t> b(10, 2, 0);
    b(3, 0) = 9;
    const auto fibers = compressWeightColumns(b);
    EXPECT_EQ(fibers[0].nnz(), 1u);
    EXPECT_EQ(fibers[1].nnz(), 0u);
    EXPECT_FALSE(fibers[1].mask.any());
}

TEST(Compress, AggregateBytes)
{
    const SpikeTensor a = randomSpikes(4, 100, 4, 0.3, 9);
    const auto fibers = compressSpikeRows(a);
    std::size_t expected = 0;
    for (const auto& f : fibers)
        expected += f.storageBytes(4);
    EXPECT_EQ(spikeFiberBytes(fibers, 4), expected);
}

TEST(Compress, EfficiencyScalesWithDensity)
{
    const SpikeTensor sparse = randomSpikes(10, 200, 4, 0.05, 1);
    const SpikeTensor dense = randomSpikes(10, 200, 4, 0.5, 1);
    EXPECT_LT(compressionEfficiency(sparse),
              compressionEfficiency(dense));
}

/** Property: compression round-trips for arbitrary shapes/densities. */
class CompressProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CompressProperty, RoundTrip)
{
    Rng rng(GetParam() * 77 + 1);
    const std::size_t rows = 1 + rng.uniformInt(24);
    const std::size_t cols = 1 + rng.uniformInt(300);
    const int timesteps = 1 + static_cast<int>(rng.uniformInt(8));
    const double density = rng.uniform(0.0, 0.6);
    const SpikeTensor a =
        randomSpikes(rows, cols, timesteps, density, GetParam());
    const SpikeTensor back =
        decompressSpikeRows(compressSpikeRows(a), cols, timesteps);
    EXPECT_EQ(a, back);

    // Stored values never include silent neurons.
    for (const auto& fiber : compressSpikeRows(a))
        for (const auto v : fiber.values)
            EXPECT_NE(v, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace loas
