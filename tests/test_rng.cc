/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace loas {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(99);
    const double p = 0.3;
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(42);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    bool nonzero = false;
    for (int i = 0; i < 10; ++i)
        nonzero = nonzero || rng.next() != 0;
    EXPECT_TRUE(nonzero);
}

} // namespace
} // namespace loas
