/**
 * @file
 * Fused temporally-parallel join kernel: bit-identity of the fan-out
 * and collapse datapaths against a naive per-timestep reference, the
 * data-dependent collapse policy, datapath event counts, and the
 * full-range two-rank forEachMatch overload the kernel rides on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitutil.hh"
#include "common/rng.hh"
#include "core/fused_join.hh"
#include "tensor/fiber.hh"
#include "tensor/ranked_bitmask.hh"
#include "tensor/spike_tensor.hh"

namespace loas {
namespace {

/** Random spike fiber: `density` non-silent, `fire_p` per timestep
 *  bit (fire_p 1.0 = fully dense temporal words). Non-silent rows
 *  always fire at least once. */
SpikeFiber
randomSpikeFiber(std::size_t k, int timesteps, double density,
                 double fire_p, std::uint64_t seed)
{
    Rng rng(seed);
    SpikeFiber fiber;
    fiber.mask = Bitmask(k);
    for (std::size_t i = 0; i < k; ++i) {
        if (!rng.bernoulli(density))
            continue;
        TimeWord word = 0;
        for (int t = 0; t < timesteps; ++t)
            if (rng.bernoulli(fire_p))
                word |= static_cast<TimeWord>(TimeWord(1) << t);
        if (word == 0)
            word = static_cast<TimeWord>(
                TimeWord(1)
                << rng.uniformInt(
                       static_cast<std::uint64_t>(timesteps)));
        fiber.mask.set(i);
        fiber.values.push_back(word);
    }
    return fiber;
}

WeightFiber
randomWeightFiber(std::size_t k, double density, std::uint64_t seed)
{
    Rng rng(seed);
    WeightFiber fiber;
    fiber.mask = Bitmask(k);
    for (std::size_t i = 0; i < k; ++i) {
        if (!rng.bernoulli(density))
            continue;
        fiber.mask.set(i);
        fiber.values.push_back(
            static_cast<std::int32_t>(rng.uniformInt(255)) - 127);
    }
    return fiber;
}

/** Naive reference: walk every position, one timestep at a time. */
std::vector<std::int32_t>
referenceSums(const SpikeFiber& fa, const WeightFiber& fb,
              int timesteps)
{
    std::vector<std::int32_t> sums(
        static_cast<std::size_t>(timesteps), 0);
    std::size_t a_off = 0;
    for (std::size_t i = 0; i < fa.mask.size(); ++i) {
        if (!fa.mask.test(i))
            continue;
        const TimeWord word = fa.values[a_off++];
        if (!fb.mask.test(i))
            continue;
        const std::int32_t weight =
            fb.values[fb.mask.rank(i + 1) - 1];
        for (int t = 0; t < timesteps; ++t)
            if ((word >> t) & 1u)
                sums[static_cast<std::size_t>(t)] += weight;
    }
    return sums;
}

/** Run one fused join (both datapaths share this harness). */
std::vector<std::int32_t>
runFused(const SpikeFiber& fa, const WeightFiber& fb, int timesteps,
         bool collapse, FusedJoinStats* stats_out = nullptr)
{
    const RankedBitmask ra(fa.mask), rb(fb.mask);
    std::vector<std::int32_t> sums(
        static_cast<std::size_t>(timesteps), -1); // overwritten
    std::vector<std::int64_t> corr(
        static_cast<std::size_t>(timesteps), 0);
    const FusedJoinStats stats = fusedTemporalJoin(
        fa, ra, fb, rb, timesteps, collapse, sums.data(), corr.data());
    if (stats_out != nullptr)
        *stats_out = stats;
    return sums;
}

TEST(FusedJoin, FanoutMatchesNaiveReference)
{
    // k deliberately spans partial-word tails (k % 64 != 0) and the
    // single-word case; T spans 1 to the packing limit.
    for (const std::size_t k : {1ul, 63ul, 64ul, 65ul, 130ul, 512ul}) {
        for (const int t : {1, 4, 8, kMaxTimesteps}) {
            const SpikeFiber fa =
                randomSpikeFiber(k, t, 0.4, 0.3, k * 31 + t);
            const WeightFiber fb = randomWeightFiber(k, 0.3, k + t);
            EXPECT_EQ(runFused(fa, fb, t, false),
                      referenceSums(fa, fb, t))
                << "k=" << k << " t=" << t;
        }
    }
}

TEST(FusedJoin, CollapseIsBitIdenticalToFanout)
{
    // The datapath choice is purely a performance decision: exact
    // integer arithmetic on both sides, so the sums must agree bit
    // for bit across temporal densities from nearly-silent to dense.
    for (const double fire_p : {0.1, 0.5, 0.9, 1.0}) {
        for (const int t : {1, 3, 8, 16}) {
            const std::size_t k = 300;
            const SpikeFiber fa = randomSpikeFiber(
                k, t, 0.5, fire_p,
                static_cast<std::uint64_t>(fire_p * 100) + t);
            const WeightFiber fb = randomWeightFiber(k, 0.4, 77 + t);
            FusedJoinStats fanout_stats, collapse_stats;
            const auto fanout =
                runFused(fa, fb, t, false, &fanout_stats);
            const auto collapsed =
                runFused(fa, fb, t, true, &collapse_stats);
            EXPECT_EQ(fanout, collapsed)
                << "fire_p=" << fire_p << " t=" << t;
            EXPECT_EQ(fanout, referenceSums(fa, fb, t));
            EXPECT_FALSE(fanout_stats.collapsed);
            EXPECT_TRUE(collapse_stats.collapsed);
            EXPECT_EQ(fanout_stats.matches, collapse_stats.matches);
        }
    }
}

TEST(FusedJoin, AllDenseRowCollapsesWithZeroBitCorrections)
{
    // Fully dense temporal words: the collapse path needs no per-match
    // corrections at all — one pseudo-add per match plus the final T
    // materializing subtracts. The fan-out path pays matches x T adds.
    const std::size_t k = 256;
    const int t = 8;
    const SpikeFiber fa = randomSpikeFiber(k, t, 0.5, 1.0, 5);
    const WeightFiber fb = randomWeightFiber(k, 0.5, 6);
    FusedJoinStats fanout_stats, collapse_stats;
    const auto fanout = runFused(fa, fb, t, false, &fanout_stats);
    const auto collapsed = runFused(fa, fb, t, true, &collapse_stats);
    EXPECT_EQ(fanout, collapsed);
    ASSERT_GT(collapse_stats.matches, 0u);
    EXPECT_EQ(fanout_stats.acc_ops,
              fanout_stats.matches * static_cast<std::uint64_t>(t));
    EXPECT_EQ(collapse_stats.acc_ops, collapse_stats.matches);
    EXPECT_EQ(collapse_stats.correction_ops,
              static_cast<std::uint64_t>(t));
    EXPECT_LT(collapse_stats.updates(), fanout_stats.updates());
}

TEST(FusedJoin, StatsCountDatapathEvents)
{
    const std::size_t k = 400;
    const int t = 8;
    const SpikeFiber fa = randomSpikeFiber(k, t, 0.4, 0.4, 11);
    const WeightFiber fb = randomWeightFiber(k, 0.3, 12);

    // Expected counts from the naive walk.
    std::uint64_t matches = 0, firing_bits = 0, zero_bits = 0;
    std::size_t a_off = 0;
    for (std::size_t i = 0; i < k; ++i) {
        if (!fa.mask.test(i))
            continue;
        const TimeWord word = fa.values[a_off++];
        if (!fb.mask.test(i))
            continue;
        ++matches;
        const auto fired =
            static_cast<std::uint64_t>(popcount64(word));
        firing_bits += fired;
        zero_bits += static_cast<std::uint64_t>(t) - fired;
    }

    FusedJoinStats fanout_stats, collapse_stats;
    runFused(fa, fb, t, false, &fanout_stats);
    runFused(fa, fb, t, true, &collapse_stats);
    EXPECT_EQ(fanout_stats.matches, matches);
    EXPECT_EQ(fanout_stats.acc_ops, firing_bits);
    EXPECT_EQ(fanout_stats.correction_ops, 0u);
    EXPECT_EQ(collapse_stats.matches, matches);
    EXPECT_EQ(collapse_stats.acc_ops, matches);
    EXPECT_EQ(collapse_stats.correction_ops,
              zero_bits + static_cast<std::uint64_t>(t));
}

TEST(FusedJoin, EmptyOperandsYieldZeroSums)
{
    const std::size_t k = 128;
    const int t = 4;
    SpikeFiber fa;
    fa.mask = Bitmask(k); // all silent
    const WeightFiber fb = randomWeightFiber(k, 0.5, 9);
    FusedJoinStats stats;
    const auto sums = runFused(fa, fb, t, false, &stats);
    EXPECT_EQ(sums, std::vector<std::int32_t>(4, 0));
    EXPECT_EQ(stats.matches, 0u);
    EXPECT_EQ(stats.acc_ops, 0u);
    // The collapse path still materializes zero sums.
    EXPECT_EQ(runFused(fa, fb, t, true), sums);
}

TEST(FusedJoin, SingleTimestepDegeneratesToPlainJoin)
{
    const std::size_t k = 200;
    const SpikeFiber fa = randomSpikeFiber(k, 1, 0.5, 1.0, 21);
    const WeightFiber fb = randomWeightFiber(k, 0.5, 22);
    const auto fanout = runFused(fa, fb, 1, false);
    EXPECT_EQ(fanout, referenceSums(fa, fb, 1));
    EXPECT_EQ(runFused(fa, fb, 1, true), fanout);
}

TEST(FusedJoin, ShouldCollapsePolicyEdges)
{
    // Empty rows never collapse, whatever the threshold.
    EXPECT_FALSE(shouldCollapse(0, 0, 0.0));
    EXPECT_FALSE(shouldCollapse(0, 0, 1.0));
    // Threshold 0 collapses every non-empty row...
    EXPECT_TRUE(shouldCollapse(0, 10, 0.0));
    // ...threshold 1 only fully dense ones.
    EXPECT_FALSE(shouldCollapse(9, 10, 1.0));
    EXPECT_TRUE(shouldCollapse(10, 10, 1.0));
    // Fractional threshold: >= comparison on the dense fraction.
    EXPECT_TRUE(shouldCollapse(3, 4, 0.75));
    EXPECT_FALSE(shouldCollapse(2, 4, 0.75));
}

TEST(FusedJoinDeathTest, RejectsBadArguments)
{
    const std::size_t k = 64;
    const SpikeFiber fa = randomSpikeFiber(k, 4, 0.5, 0.5, 31);
    const WeightFiber fb = randomWeightFiber(k, 0.5, 32);
    const RankedBitmask ra(fa.mask), rb(fb.mask);
    std::vector<std::int32_t> sums(kMaxTimesteps + 1, 0);
    EXPECT_DEATH(
        fusedTemporalJoin(fa, ra, fb, rb, 0, false, sums.data()),
        "timesteps outside");
    EXPECT_DEATH(fusedTemporalJoin(fa, ra, fb, rb, kMaxTimesteps + 1,
                                   false, sums.data()),
                 "timesteps outside");
    EXPECT_DEATH(
        fusedTemporalJoin(fa, ra, fb, rb, 4, true, sums.data(),
                          nullptr),
        "correction");
}

TEST(ForEachMatch, FullRangeTwoRankOverloadAgreesWithRanged)
{
    // The fused kernel's overload must visit exactly the matches of
    // the ranged overload over [0, k), with identical rank pairs —
    // including partial trailing words.
    for (const std::size_t k : {1ul, 64ul, 65ul, 130ul, 511ul}) {
        Rng rng(k * 13 + 1);
        Bitmask a(k), b(k);
        for (std::size_t i = 0; i < k; ++i) {
            if (rng.bernoulli(0.5))
                a.set(i);
            if (rng.bernoulli(0.4))
                b.set(i);
        }
        const RankedBitmask ra(a), rb(b);
        std::vector<std::size_t> want, got;
        forEachMatch(ra, rb, 0, k,
                     [&](std::size_t pos, std::size_t rank_a,
                         std::size_t rank_b) {
                         want.push_back(pos);
                         want.push_back(rank_a);
                         want.push_back(rank_b);
                     });
        forEachMatch(ra, rb,
                     [&](std::size_t pos, std::size_t rank_a,
                         std::size_t rank_b) {
                         got.push_back(pos);
                         got.push_back(rank_a);
                         got.push_back(rank_b);
                     });
        EXPECT_EQ(got, want) << "k=" << k;
    }
}

} // namespace
} // namespace loas
