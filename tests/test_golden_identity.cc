/**
 * @file
 * Bit-identity guarantees of the allocation-free, word-parallel
 * simulation kernels:
 *
 *  1. Golden RunResults: every registered design on the seed
 *     single-layer networks must reproduce the exact cycle, traffic,
 *     cache and op counts captured before the kernel rewrite (PR 3
 *     code), field for field.
 *  2. The word-parallel inner join must agree with a scalar reference
 *     reimplementation of the original kernel (per-position rank
 *     scans, std::deque FIFO) on every JoinResult field.
 *  3. Scratch reuse must be stateless: re-running execute() on a warm
 *     instance reproduces the cold run exactly.
 *
 * Re-capturing the golden table (only when the *modeled hardware*
 * legitimately changes): the DISABLED_PrintGoldenTable test below
 * prints both tables in source form — paste its output over the
 * kGolden* arrays. One-liner:
 *
 *   ./build/test_golden_identity --gtest_also_run_disabled_tests \
 *       --gtest_filter='*PrintGoldenTable*'
 *
 * Each row is, in order: total_cycles, compute_cycles, dram_cycles,
 * traffic.dramBytes(), traffic.sramBytes(), cache_hits,
 * cache_misses, ops.total() of
 * `registry.make(key)->runNetwork(generateNetwork(net, 101, ft), ...)`.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <deque>

#include "api/registry.hh"
#include "common/bitutil.hh"
#include "common/rng.hh"
#include "core/inner_join.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

// ---------------------------------------------------------------------
// 1. Golden RunResults captured from the pre-rewrite simulators
//    (seed 101, the values every later change must keep reproducing).
// ---------------------------------------------------------------------

struct GoldenRun
{
    const char* key;
    std::uint64_t total_cycles, compute_cycles, dram_cycles;
    std::uint64_t dram_bytes, sram_bytes;
    std::uint64_t cache_hits, cache_misses, total_ops;
};

const GoldenRun kGoldenAlexnetL4[] = {
    {"gamma", 138135ull, 138135ull, 1525ull, 243968ull, 19010114ull,
     200113ull, 3259ull, 2055940ull},
    {"gospa", 220197ull, 217432ull, 3716ull, 594448ull, 2927816ull,
     635835ull, 2095ull, 1478768ull},
    {"loas", 49031ull, 48807ull, 1232ull, 197097ull, 7864368ull,
     260312ull, 2972ull, 3719868ull},
    {"loas-ft", 46068ull, 45881ull, 1179ull, 188501ull, 7823001ull,
     237770ull, 2858ull, 3100510ull},
    {"sparten", 316984ull, 316932ull, 1501ull, 240128ull, 28796816ull,
     497440ull, 3624ull, 3044868ull},
    {"stellar", 919536ull, 919536ull, 6272ull, 1003520ull, 18118656ull,
     0ull, 0ull, 55214080ull},
    {"systolic", 3594528ull, 3594528ull, 6272ull, 1003520ull,
     71663616ull, 0ull, 0ull, 55214080ull},
};

const GoldenRun kGoldenVgg16L8[] = {
    {"gamma", 45461ull, 45461ull, 1286ull, 205671ull, 4796221ull,
     15311ull, 2284ull, 734354ull},
    {"gospa", 31608ull, 30317ull, 1849ull, 295695ull, 1828600ull,
     310590ull, 3030ull, 625485ull},
    {"loas", 22408ull, 22393ull, 1249ull, 199715ull, 2720697ull,
     83824ull, 3064ull, 2079933ull},
    {"loas-ft", 17914ull, 17898ull, 1232ull, 196989ull, 2661075ull,
     69937ull, 3035ull, 1230960ull},
    {"sparten", 120593ull, 120567ull, 1310ull, 209600ull, 9624229ull,
     164536ull, 3211ull, 1197714ull},
    {"stellar", 215488ull, 215488ull, 7514ull, 1202176ull, 3994848ull,
     0ull, 0ull, 9041408ull},
    {"systolic", 1253952ull, 1253952ull, 7514ull, 1202176ull,
     24772608ull, 0ull, 0ull, 9041408ull},
};

void
expectGolden(const NetworkSpec& net, const GoldenRun* golden,
             std::size_t count)
{
    const auto& registry = AcceleratorRegistry::instance();
    // The golden table must cover every registered design: a new
    // backend needs a captured row before it ships.
    EXPECT_EQ(registry.keys().size(), count);
    for (std::size_t i = 0; i < count; ++i) {
        const GoldenRun& want = golden[i];
        SCOPED_TRACE(net.name + " / " + want.key);
        const bool ft = registry.entry(want.key).ft_workload;
        const auto layers = generateNetwork(net, 101, ft);
        const RunResult r =
            registry.make(want.key)->runNetwork(layers, net.name);
        EXPECT_EQ(r.total_cycles, want.total_cycles);
        EXPECT_EQ(r.compute_cycles, want.compute_cycles);
        EXPECT_EQ(r.dram_cycles, want.dram_cycles);
        EXPECT_EQ(r.traffic.dramBytes(), want.dram_bytes);
        EXPECT_EQ(r.traffic.sramBytes(), want.sram_bytes);
        EXPECT_EQ(r.cache_hits, want.cache_hits);
        EXPECT_EQ(r.cache_misses, want.cache_misses);
        EXPECT_EQ(r.ops.total(), want.total_ops);
    }
}

TEST(GoldenIdentity, AlexnetL4AllDesigns)
{
    expectGolden(NetworkSpec{"alexnet-l4", {tables::alexnetL4()}},
                 kGoldenAlexnetL4, std::size(kGoldenAlexnetL4));
}

TEST(GoldenIdentity, Vgg16L8AllDesigns)
{
    expectGolden(NetworkSpec{"vgg16-l8", {tables::vgg16L8()}},
                 kGoldenVgg16L8, std::size(kGoldenVgg16L8));
}

// Re-capture helper (see the file header): prints both golden tables
// in source form. Disabled so it never runs in CI; invoke it with
// --gtest_also_run_disabled_tests when the modeled hardware changes.
TEST(GoldenIdentity, DISABLED_PrintGoldenTable)
{
    const auto& registry = AcceleratorRegistry::instance();
    const NetworkSpec nets[] = {
        {"alexnet-l4", {tables::alexnetL4()}},
        {"vgg16-l8", {tables::vgg16L8()}},
    };
    for (const auto& net : nets) {
        std::printf("// %s (seed 101)\n", net.name.c_str());
        for (const auto& key : registry.keys()) {
            const bool ft = registry.entry(key).ft_workload;
            const auto layers = generateNetwork(net, 101, ft);
            const RunResult r =
                registry.make(key)->runNetwork(layers, net.name);
            std::printf("    {\"%s\", %lluull, %lluull, %lluull, "
                        "%lluull, %lluull, %lluull, %lluull, "
                        "%lluull},\n",
                        key.c_str(),
                        static_cast<unsigned long long>(r.total_cycles),
                        static_cast<unsigned long long>(
                            r.compute_cycles),
                        static_cast<unsigned long long>(r.dram_cycles),
                        static_cast<unsigned long long>(
                            r.traffic.dramBytes()),
                        static_cast<unsigned long long>(
                            r.traffic.sramBytes()),
                        static_cast<unsigned long long>(r.cache_hits),
                        static_cast<unsigned long long>(r.cache_misses),
                        static_cast<unsigned long long>(r.ops.total()));
        }
    }
}

// ---------------------------------------------------------------------
// 2. Scalar reference join: the original kernel, kept verbatim as the
//    semantic specification of the word-parallel rewrite.
// ---------------------------------------------------------------------

JoinResult
referenceScalarJoin(const InnerJoinConfig& config, int timesteps,
                    const SpikeFiber& fiber_a, const WeightFiber& fiber_b)
{
    const std::size_t k = fiber_a.mask.size();
    const std::size_t chunk_bits = config.chunk_bits;
    const std::uint64_t laggy_latency = config.laggyLatency();
    const TimeWord all_ones =
        timesteps >= kMaxTimesteps
            ? ~TimeWord{0}
            : static_cast<TimeWord>((TimeWord{1} << timesteps) - 1);

    JoinResult result;
    result.sums.assign(static_cast<std::size_t>(timesteps), 0);

    std::int64_t pseudo = 0;
    std::vector<std::int64_t> correction(
        static_cast<std::size_t>(timesteps), 0);

    std::uint64_t now = config.setup_cycles;
    std::uint64_t prev_check = 0;
    std::uint64_t last_event = now;
    std::deque<std::uint64_t> inflight_checks;

    const std::size_t value_bytes =
        static_cast<std::size_t>(ceilDiv(timesteps, 8));

    for (std::size_t chunk_lo = 0; chunk_lo < k; chunk_lo += chunk_bits) {
        const std::size_t chunk_hi = std::min(chunk_lo + chunk_bits, k);

        const std::uint64_t and_done = now + 1;
        result.ops.mask_and_ops += 1;
        now = and_done;
        last_event = std::max(last_event, and_done);

        std::vector<std::uint32_t> matched;
        for (const auto pos :
             fiber_a.mask.setBitsInRange(chunk_lo, chunk_hi))
            if (fiber_b.mask.test(pos))
                matched.push_back(pos);
        if (matched.empty())
            continue;

        const std::uint64_t laggy_ready = and_done + laggy_latency;
        result.ops.laggy_prefix_ops += laggy_latency;

        for (const auto pos : matched) {
            std::uint64_t emit = now + 1;
            while (inflight_checks.size() >= config.fifo_depth) {
                emit = std::max(emit, inflight_checks.front() + 1);
                inflight_checks.pop_front();
            }
            now = emit;
            result.ops.fast_prefix_ops += 1;
            result.ops.fifo_ops += 2;

            const std::size_t b_off = fiber_b.mask.rank(pos);
            const std::int32_t weight = fiber_b.values[b_off];
            pseudo += weight;
            result.ops.acc_ops += 1;

            const std::uint64_t check =
                std::max({prev_check + 1, laggy_ready, emit + 1});
            prev_check = check;
            inflight_checks.push_back(check);
            result.ops.fifo_ops += 2;

            const std::size_t a_off = fiber_a.mask.rank(pos);
            const TimeWord spike_word = fiber_a.values[a_off];
            result.spike_value_bytes += value_bytes;
            result.matched_offsets_a.push_back(
                static_cast<std::uint32_t>(a_off));
            if (spike_word != all_ones) {
                result.corrections += 1;
                for (int t = 0; t < timesteps; ++t) {
                    if (!((spike_word >> t) & 1u)) {
                        correction[static_cast<std::size_t>(t)] += weight;
                        result.ops.correction_ops += 1;
                    }
                }
            }
            result.matches += 1;
            last_event = std::max(last_event, check);
        }
    }

    for (int t = 0; t < timesteps; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        result.sums[ts] = static_cast<std::int32_t>(
            pseudo - correction[ts]);
        result.ops.correction_ops += 1;
    }

    result.cycles = last_event + config.drain_cycles;
    return result;
}

std::pair<SpikeFiber, WeightFiber>
makeFibers(std::size_t k, double da, double db, int timesteps,
           std::uint64_t seed)
{
    Rng rng(seed);
    SpikeFiber fa;
    fa.mask = Bitmask(k);
    WeightFiber fb;
    fb.mask = Bitmask(k);
    const TimeWord word_mask =
        timesteps >= kMaxTimesteps
            ? ~TimeWord{0}
            : static_cast<TimeWord>((TimeWord{1} << timesteps) - 1);
    for (std::size_t i = 0; i < k; ++i) {
        if (rng.bernoulli(da)) {
            fa.mask.set(i);
            fa.values.push_back(static_cast<TimeWord>(
                1 + rng.uniformInt(static_cast<int>(word_mask) - 1)));
        }
        if (rng.bernoulli(db)) {
            fb.mask.set(i);
            fb.values.push_back(
                static_cast<std::int32_t>(rng.uniformInt(255)) - 127);
        }
    }
    return {fa, fb};
}

void
expectJoinResultsEqual(const JoinResult& got, const JoinResult& want)
{
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.sums, want.sums);
    EXPECT_EQ(got.matches, want.matches);
    EXPECT_EQ(got.corrections, want.corrections);
    EXPECT_EQ(got.spike_value_bytes, want.spike_value_bytes);
    EXPECT_EQ(got.matched_offsets_a, want.matched_offsets_a);
    EXPECT_EQ(got.ops.total(), want.ops.total());
    EXPECT_EQ(got.ops.acc_ops, want.ops.acc_ops);
    EXPECT_EQ(got.ops.correction_ops, want.ops.correction_ops);
    EXPECT_EQ(got.ops.fast_prefix_ops, want.ops.fast_prefix_ops);
    EXPECT_EQ(got.ops.laggy_prefix_ops, want.ops.laggy_prefix_ops);
    EXPECT_EQ(got.ops.fifo_ops, want.ops.fifo_ops);
    EXPECT_EQ(got.ops.mask_and_ops, want.ops.mask_and_ops);
}

TEST(WordParallelJoin, MatchesScalarReferenceAcrossShapes)
{
    // k values straddle word boundaries; chunk widths include one that
    // is not a multiple of 64, exercising the masked range words.
    const std::size_t ks[] = {1, 63, 64, 65, 130, 512, 2304};
    const std::size_t chunks[] = {32, 100, 128};
    const double densities[][2] = {{0.25, 0.03}, {0.9, 0.9}, {0.05, 0.5}};
    for (const auto k : ks) {
        for (const auto chunk : chunks) {
            for (const auto& d : densities) {
                InnerJoinConfig config;
                config.chunk_bits = chunk;
                const int timesteps = 4;
                const InnerJoinUnit unit(config, timesteps);
                const auto [fa, fb] =
                    makeFibers(k, d[0], d[1], timesteps, k * 31 + chunk);
                SCOPED_TRACE("k=" + std::to_string(k) + " chunk=" +
                             std::to_string(chunk));
                expectJoinResultsEqual(
                    unit.join(fa, fb),
                    referenceScalarJoin(config, timesteps, fa, fb));
            }
        }
    }
}

TEST(WordParallelJoin, MatchesScalarReferenceDeepTimesteps)
{
    // T = kMaxTimesteps exercises the all-ones word with every bit set.
    InnerJoinConfig config;
    const int timesteps = kMaxTimesteps;
    const InnerJoinUnit unit(config, timesteps);
    const auto [fa, fb] = makeFibers(777, 0.5, 0.4, timesteps, 99);
    expectJoinResultsEqual(
        unit.join(fa, fb),
        referenceScalarJoin(config, timesteps, fa, fb));
}

TEST(WordParallelJoin, ScratchReuseIsStateless)
{
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const auto [fa1, fb1] = makeFibers(520, 0.4, 0.2, 4, 1);
    const auto [fa2, fb2] = makeFibers(520, 0.1, 0.8, 4, 2);
    const RankedBitmask ra1(fa1.mask), rb1(fb1.mask);
    const RankedBitmask ra2(fa2.mask), rb2(fb2.mask);

    // One scratch reused across different fiber pairs must reproduce
    // the fresh-scratch (convenience API) results exactly.
    JoinScratch scratch;
    const JoinResult first =
        unit.join(fa1, ra1, fb1, rb1, scratch); // copy out of scratch
    const JoinResult second = unit.join(fa2, ra2, fb2, rb2, scratch);
    expectJoinResultsEqual(first, unit.join(fa1, fb1));
    expectJoinResultsEqual(second, unit.join(fa2, fb2));
}

// ---------------------------------------------------------------------
// 3. Warm-instance determinism: execute() scratch must carry no state
//    between layers.
// ---------------------------------------------------------------------

TEST(GoldenIdentity, WarmExecuteReproducesColdRun)
{
    const auto& registry = AcceleratorRegistry::instance();
    const NetworkSpec net{"alexnet-l4", {tables::alexnetL4()}};
    for (const auto& key : registry.keys()) {
        SCOPED_TRACE(key);
        const bool ft = registry.entry(key).ft_workload;
        const auto layers = generateNetwork(net, 101, ft);
        const auto instance = registry.make(key);
        const CompiledLayer compiled = instance->prepare(layers[0]);
        const RunResult cold = instance->execute(compiled);
        const RunResult warm = instance->execute(compiled);
        EXPECT_EQ(cold.total_cycles, warm.total_cycles);
        EXPECT_EQ(cold.compute_cycles, warm.compute_cycles);
        EXPECT_EQ(cold.dram_cycles, warm.dram_cycles);
        EXPECT_EQ(cold.traffic.dramBytes(), warm.traffic.dramBytes());
        EXPECT_EQ(cold.traffic.sramBytes(), warm.traffic.sramBytes());
        EXPECT_EQ(cold.cache_hits, warm.cache_hits);
        EXPECT_EQ(cold.cache_misses, warm.cache_misses);
        EXPECT_EQ(cold.ops.total(), warm.ops.total());
    }
}

} // namespace
} // namespace loas
