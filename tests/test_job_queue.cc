/**
 * @file
 * Tests for the serve job queue: dedup, coalescing, backpressure,
 * cancellation, deadlines and shutdown semantics. Most tests inject a
 * controllable Runner so the concurrency is deterministic — a job
 * "runs" until the test releases it; the last tests use the real
 * SimEngine to pin the once-only-compile and cancellation contracts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/json.hh"
#include "common/fault.hh"
#include "serve/job_queue.hh"
#include "serve/protocol.hh"

namespace loas {
namespace serve {
namespace {

/** Shared state of a runner the test can hold and release. */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool released = false;
    int started = 0;
    std::vector<SimRequest> requests;

    void
    waitStarted(int n)
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started >= n; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
        cv.notify_all();
    }
};

/** A fabricated report with one cell per (accel, network) of the
 *  request — enough structure for the queue's slicing to work on. */
SimReport
fakeReport(const SimRequest& request)
{
    SimReport report;
    for (const auto& accel : request.accels) {
        for (const auto& net : request.networks) {
            SimRun run;
            run.accel_spec = accel;
            run.network = net.name;
            run.result.total_cycles = 1 + run.accel_spec.size();
            report.runs.push_back(std::move(run));
        }
    }
    return report;
}

/** Runner blocking each run until the gate releases. */
JobQueue::Runner
gatedRunner(std::shared_ptr<Gate> gate)
{
    return [gate](const SimRequest& request) {
        std::unique_lock<std::mutex> lock(gate->mutex);
        ++gate->started;
        gate->requests.push_back(request);
        gate->cv.notify_all();
        gate->cv.wait(lock, [&] { return gate->released; });
        return fakeReport(request);
    };
}

/** Runner that spins until its cancel token trips, like the engine's
 *  cooperative checkpoints do, then aborts. */
JobQueue::Runner
cancellableRunner(std::shared_ptr<Gate> gate)
{
    return [gate](const SimRequest& request) -> SimReport {
        {
            std::lock_guard<std::mutex> lock(gate->mutex);
            ++gate->started;
            gate->cv.notify_all();
        }
        while (request.cancel == nullptr ||
               !request.cancel->load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw SimCancelled();
    };
}

/** Network names must resolve at submit time, so even fake-runner
 *  tests use real ones; accel strings are free-form until a real
 *  engine touches them. */
RunSpec
spec(const std::string& accel,
     const std::string& network = "alexnet-l4")
{
    RunSpec out;
    out.accels = {accel};
    out.networks = {network};
    return out;
}

/** Queue config for the deterministic tests: one worker, small. */
JobQueue::Config
testConfig()
{
    JobQueue::Config config;
    config.workers = 1;
    config.engine_threads = 1;
    return config;
}

TEST(JobQueue, SubmitValidatesSpecUpFront)
{
    JobQueue queue(testConfig());
    RunSpec bad;
    bad.accels = {"loas"};
    bad.networks = {"no-such-network"};
    EXPECT_THROW(queue.submit(bad), std::invalid_argument);
    EXPECT_EQ(queue.counters().submitted, 0u);
}

TEST(JobQueue, IdenticalInFlightSubmitsDedupOntoOneJob)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    const auto first = queue.submit(spec("loas", "alexnet-l4"));
    ASSERT_TRUE(first.accepted);
    EXPECT_FALSE(first.deduped);
    gate->waitStarted(1); // the job is RUNNING, still in-flight

    const auto second = queue.submit(spec("loas", "alexnet-l4"));
    ASSERT_TRUE(second.accepted);
    EXPECT_TRUE(second.deduped);
    EXPECT_EQ(second.id, first.id);

    gate->release();
    const auto result = queue.wait(first.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Done);
    EXPECT_TRUE(result->deduped);
    ASSERT_NE(result->report_json, nullptr);

    const auto counters = queue.counters();
    EXPECT_EQ(counters.submitted, 2u);
    EXPECT_EQ(counters.deduped, 1u);
    EXPECT_EQ(counters.done, 1u);
    // One engine run served both submits.
    EXPECT_EQ(gate->started, 1);
}

TEST(JobQueue, DedupedCancelsAreRefcountedAcrossSubmitters)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    const auto first = queue.submit(spec("loas"));
    ASSERT_TRUE(first.accepted);
    gate->waitStarted(1);
    const auto second = queue.submit(spec("loas"));
    ASSERT_TRUE(second.deduped);
    ASSERT_EQ(second.id, first.id);

    // One of the two submitters bows out: the shared job must keep
    // running for the other, not die with the first cancel.
    EXPECT_TRUE(queue.cancel(first.id));
    const auto polled = queue.poll(first.id);
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(polled->state, JobQueue::State::Running);

    gate->release();
    const auto result = queue.wait(first.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Done);
    ASSERT_NE(result->report_json, nullptr);
}

TEST(JobQueue, LastDedupedCancelActuallyCancelsTheJob)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, cancellableRunner(gate));

    const auto first = queue.submit(spec("loas"));
    ASSERT_TRUE(first.accepted);
    gate->waitStarted(1);
    const auto second = queue.submit(spec("loas"));
    ASSERT_TRUE(second.deduped);

    EXPECT_TRUE(queue.cancel(first.id)); // detaches one submitter
    EXPECT_TRUE(queue.cancel(first.id)); // last one: real cancel
    const auto result = queue.wait(first.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Cancelled);
    EXPECT_EQ(queue.counters().cancelled, 1u);
}

TEST(JobQueue, DedupedSubmitWithoutTimeoutLiftsTheSharedDeadline)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    RunSpec timed = spec("loas");
    timed.timeout_ms = 150;
    const auto first = queue.submit(timed);
    ASSERT_TRUE(first.accepted);
    gate->waitStarted(1);

    // Second submitter has no deadline; the shared job obeys the
    // least restrictive one, so the 150 ms deadline is lifted.
    const auto second = queue.submit(spec("loas"));
    ASSERT_TRUE(second.deduped);

    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto polled = queue.poll(first.id);
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(polled->state, JobQueue::State::Running);

    gate->release();
    const auto result = queue.wait(first.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Done);
}

TEST(JobQueue, QueueFullSubmitsGetStructuredBackpressure)
{
    auto gate = std::make_shared<Gate>();
    JobQueue::Config config = testConfig();
    config.max_depth = 1;
    config.coalesce = false;
    JobQueue queue(config, nullptr, gatedRunner(gate));

    const auto running = queue.submit(spec("a"));
    ASSERT_TRUE(running.accepted);
    gate->waitStarted(1); // occupies the worker, not the queue

    const auto queued = queue.submit(spec("b"));
    ASSERT_TRUE(queued.accepted);

    const auto rejected = queue.submit(spec("c"));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.error, "queue_full");
    EXPECT_FALSE(rejected.message.empty());
    EXPECT_EQ(queue.counters().rejected, 1u);

    // Backpressure is not sticky: draining the queue readmits.
    gate->release();
    ASSERT_TRUE(queue.wait(queued.id).has_value());
    const auto readmitted = queue.submit(spec("c"));
    EXPECT_TRUE(readmitted.accepted);
    queue.shutdown(true);
}

TEST(JobQueue, CancelQueuedJobIsImmediate)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    const auto running = queue.submit(spec("a"));
    gate->waitStarted(1);
    const auto queued = queue.submit(spec("b"));

    EXPECT_TRUE(queue.cancel(queued.id));
    const auto result = queue.poll(queued.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Cancelled);
    EXPECT_FALSE(queue.cancel(queued.id)); // already terminal

    gate->release();
    const auto done = queue.wait(running.id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobQueue::State::Done);
    EXPECT_EQ(queue.counters().cancelled, 1u);
    // The cancelled job never reached the runner.
    EXPECT_EQ(gate->started, 1);
}

TEST(JobQueue, CancelRunningJobTripsTheEngineToken)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, cancellableRunner(gate));

    const auto submitted = queue.submit(spec("a"));
    gate->waitStarted(1);

    EXPECT_TRUE(queue.cancel(submitted.id));
    const auto result = queue.wait(submitted.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Cancelled);
    EXPECT_EQ(result->report_json, nullptr);
    queue.shutdown(true); // worker observed SimCancelled and is idle
    EXPECT_EQ(queue.counters().cancelled, 1u);
}

TEST(JobQueue, DeadlineExpiresQueuedJobAsTimeout)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    const auto running = queue.submit(spec("a"));
    gate->waitStarted(1);

    RunSpec delayed = spec("b");
    delayed.timeout_ms = 20;
    const auto queued = queue.submit(delayed);
    ASSERT_TRUE(queued.accepted);

    // wait() enforces the deadline itself — no timer thread needed.
    const auto result = queue.wait(queued.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::TimedOut);
    EXPECT_EQ(queue.counters().timed_out, 1u);
    gate->release();
    queue.wait(running.id);
}

TEST(JobQueue, CompatibleQueuedJobsCoalesceIntoOneRun)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, gatedRunner(gate));

    // Hold the worker on an unrelated job while two compatible jobs
    // (same network/seed/energy, different accels) queue up.
    const auto blocker = queue.submit(spec("sparten", "vgg16-l8"));
    gate->waitStarted(1);
    const auto left = queue.submit(spec("loas", "alexnet-l4"));
    const auto right = queue.submit(spec("gamma", "alexnet-l4"));
    ASSERT_NE(left.id, right.id);

    gate->release();
    const auto left_result = queue.wait(left.id);
    const auto right_result = queue.wait(right.id);
    queue.wait(blocker.id);

    ASSERT_TRUE(left_result.has_value() && right_result.has_value());
    EXPECT_EQ(left_result->state, JobQueue::State::Done);
    EXPECT_EQ(right_result->state, JobQueue::State::Done);
    EXPECT_EQ(left_result->coalesced_with, 1);
    EXPECT_EQ(right_result->coalesced_with, 1);
    EXPECT_EQ(queue.counters().coalesced, 1u);

    // Two engine runs total: the blocker, then one merged run whose
    // accel list is the union in submit order.
    ASSERT_EQ(gate->started, 2);
    const std::vector<std::string> merged = {"loas", "gamma"};
    EXPECT_EQ(gate->requests[1].accels, merged);

    // Each job's report holds only its own cells.
    ASSERT_NE(left_result->report_json, nullptr);
    ASSERT_NE(right_result->report_json, nullptr);
    EXPECT_NE(left_result->report_json->find("\"loas\""),
              std::string::npos);
    EXPECT_EQ(left_result->report_json->find("\"gamma\""),
              std::string::npos);
    EXPECT_NE(right_result->report_json->find("\"gamma\""),
              std::string::npos);
    EXPECT_EQ(right_result->report_json->find("\"loas\""),
              std::string::npos);
}

TEST(JobQueue, DrainShutdownFinishesQueuedJobsAndRejectsNew)
{
    JobQueue queue(testConfig(), nullptr,
                   [](const SimRequest& request) {
                       return fakeReport(request);
                   });
    std::vector<std::uint64_t> ids;
    const char* accels[] = {"a", "b", "c", "d"};
    for (const char* accel : accels) {
        const auto submitted = queue.submit(spec(accel));
        ASSERT_TRUE(submitted.accepted);
        ids.push_back(submitted.id);
    }
    queue.shutdown(true);
    for (const auto id : ids) {
        const auto result = queue.poll(id);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->state, JobQueue::State::Done);
    }
    const auto late = queue.submit(spec("e"));
    EXPECT_FALSE(late.accepted);
    EXPECT_EQ(late.error, "shutting_down");
}

TEST(JobQueue, ImmediateShutdownCancelsQueuedAndRunningJobs)
{
    auto gate = std::make_shared<Gate>();
    JobQueue queue(testConfig(), nullptr, cancellableRunner(gate));

    const auto running = queue.submit(spec("a"));
    gate->waitStarted(1);
    const auto queued = queue.submit(spec("b"));

    queue.shutdown(false);
    const auto running_result = queue.poll(running.id);
    const auto queued_result = queue.poll(queued.id);
    ASSERT_TRUE(running_result.has_value());
    ASSERT_TRUE(queued_result.has_value());
    EXPECT_EQ(running_result->state, JobQueue::State::Cancelled);
    EXPECT_EQ(queued_result->state, JobQueue::State::Cancelled);
}

// --- Real-engine integration -------------------------------------

TEST(JobQueue, ConcurrentIdenticalRequestsCompileExactlyOnce)
{
    CompiledCache cache;
    JobQueue::Config config = testConfig();
    config.workers = 2;
    JobQueue queue(config, &cache);

    // alexnet-l4 x loas: exactly one compiled-artifact key.
    RunSpec request = spec("loas", "alexnet-l4");
    const auto first = queue.submit(request);
    const auto second = queue.submit(request);
    ASSERT_TRUE(first.accepted && second.accepted);

    const auto first_result = queue.wait(first.id);
    const auto second_result = queue.wait(second.id);
    ASSERT_TRUE(first_result.has_value() &&
                second_result.has_value());
    EXPECT_EQ(first_result->state, JobQueue::State::Done);
    EXPECT_EQ(second_result->state, JobQueue::State::Done);

    // Whether the second submit deduped onto the first job or ran
    // after it, the shared cache compiled the artifact exactly once.
    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);

    // A warm repeat attributes zero compiles to its own run.
    const auto warm = queue.submit(request);
    ASSERT_TRUE(warm.accepted);
    const auto warm_result = queue.wait(warm.id);
    ASSERT_TRUE(warm_result.has_value());
    EXPECT_EQ(warm_result->state, JobQueue::State::Done);
    EXPECT_EQ(warm_result->cache.misses, 0u);
    EXPECT_EQ(warm_result->cache.hits, 1u);
}

TEST(JobQueue, ServedReportMatchesOneShotEngineRunByteForByte)
{
    CompiledCache cache;
    JobQueue queue(testConfig(), &cache);

    RunSpec request;
    request.accels = {"loas", "sparten"};
    request.networks = {"alexnet-l4"};
    request.seed = 7;

    const auto submitted = queue.submit(request);
    ASSERT_TRUE(submitted.accepted);
    const auto served = queue.wait(submitted.id);
    ASSERT_TRUE(served.has_value());
    ASSERT_EQ(served->state, JobQueue::State::Done);
    ASSERT_NE(served->report_json, nullptr);

    const SimReport one_shot = SimEngine().run(toSimRequest(request));
    EXPECT_EQ(*served->report_json, json::toJson(one_shot));
}

TEST(JobQueue, InjectedEngineFaultLandsInFailedWithItsMessage)
{
    fault::reset();
    fault::configure("engine.execute=1");
    CompiledCache cache;
    JobQueue queue(testConfig(), &cache); // real SimEngine runner

    const auto submitted = queue.submit(spec("loas"));
    ASSERT_TRUE(submitted.accepted);
    const auto result = queue.wait(submitted.id);
    fault::reset();

    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, JobQueue::State::Failed);
    EXPECT_EQ(result->error, "injected fault at engine.execute");
    EXPECT_EQ(queue.counters().failed, 1u);

    // The queue keeps working after a failed job: the same submit,
    // disarmed, runs to completion.
    const auto retried = queue.submit(spec("loas"));
    ASSERT_TRUE(retried.accepted);
    const auto done = queue.wait(retried.id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobQueue::State::Done);
}

TEST(SimEngineCancel, PreCancelledTokenAbortsTheRun)
{
    SimRequest request = toSimRequest(
        [] {
            RunSpec out;
            out.accels = {"loas"};
            out.networks = {"alexnet-l4"};
            return out;
        }());
    std::atomic<bool> token{true};
    request.cancel = &token;
    EXPECT_THROW(SimEngine().run(request), SimCancelled);
}

} // namespace
} // namespace serve
} // namespace loas
