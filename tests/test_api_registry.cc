/** @file Tests for the accelerator registry and spec-string parsing. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/registry.hh"

namespace loas {
namespace {

TEST(AccelSpec, ParsesBareKey)
{
    const AccelSpec spec = parseAccelSpec("loas");
    EXPECT_EQ(spec.key, "loas");
    EXPECT_TRUE(spec.options.empty());
    EXPECT_EQ(spec.str(), "loas");
}

TEST(AccelSpec, ParsesOptions)
{
    const AccelSpec spec = parseAccelSpec("loas?t=8&pes=32");
    EXPECT_EQ(spec.key, "loas");
    ASSERT_EQ(spec.options.size(), 2u);
    EXPECT_EQ(spec.options.at("t"), "8");
    EXPECT_EQ(spec.options.at("pes"), "32");
    EXPECT_EQ(spec.str(), "loas?pes=32&t=8"); // canonical: sorted keys
}

TEST(AccelSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseAccelSpec(""), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("?t=4"), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("loas?t"), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("loas?t="), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("loas?=4"), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("loas?t=4&t=8"), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("LoAS"), std::invalid_argument);
    EXPECT_THROW(parseAccelSpec("lo as"), std::invalid_argument);
}

TEST(AccelSpec, SplitsSpecLists)
{
    const auto specs = splitSpecList("loas,gamma?pes=8,sparten");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "loas");
    EXPECT_EQ(specs[1], "gamma?pes=8");
    EXPECT_EQ(specs[2], "sparten");
    EXPECT_TRUE(splitSpecList("").empty());
}

TEST(OptionReader, ReadsTypedValuesAndRejectsBadOnes)
{
    const AccelSpec spec = parseAccelSpec("loas?t=8&pipelined=false");
    OptionReader opts(spec);
    EXPECT_EQ(opts.getInt("t", 4), 8);
    EXPECT_EQ(opts.getInt("pes", 16), 16); // absent: default
    EXPECT_FALSE(opts.getBool("pipelined", true));
    EXPECT_NO_THROW(opts.finish());

    OptionReader bad_int(parseAccelSpec("loas?t=four"));
    EXPECT_THROW(bad_int.getInt("t", 4), std::invalid_argument);
    OptionReader bad_bool(parseAccelSpec("loas?pipelined=maybe"));
    EXPECT_THROW(bad_bool.getBool("pipelined", true),
                 std::invalid_argument);
}

TEST(OptionReader, RejectsOutOfRangeIntegers)
{
    // Below the positive-quantity floor, and past int range (would
    // silently truncate through a bare static_cast).
    OptionReader zero(parseAccelSpec("loas?pes=0"));
    EXPECT_THROW(zero.getInt("pes", 16), std::invalid_argument);
    OptionReader negative(parseAccelSpec("loas?pes=-4"));
    EXPECT_THROW(negative.getInt("pes", 16), std::invalid_argument);
    OptionReader huge(parseAccelSpec("loas?pes=4294967296"));
    EXPECT_THROW(huge.getInt("pes", 16), std::invalid_argument);
}

TEST(Registry, EveryRegisteredKeyConstructs)
{
    const auto& registry = AcceleratorRegistry::instance();
    const auto keys = registry.keys();
    ASSERT_GE(keys.size(), 7u);
    for (const auto& key : keys) {
        SCOPED_TRACE(key);
        EXPECT_TRUE(registry.contains(key));
        const auto accel = registry.make(key);
        ASSERT_NE(accel, nullptr);
        EXPECT_FALSE(accel->name().empty());
        EXPECT_FALSE(registry.entry(key).description.empty());
    }
}

TEST(Registry, RoundTripsKnownDisplayNames)
{
    const auto& registry = AcceleratorRegistry::instance();
    EXPECT_EQ(registry.make("loas")->name(), "LoAS");
    EXPECT_EQ(registry.make("loas-ft")->name(), "LoAS-FT");
    EXPECT_EQ(registry.make("sparten")->name(), "SparTen-SNN");
    EXPECT_EQ(registry.make("gospa")->name(), "GoSPA-SNN");
    EXPECT_EQ(registry.make("gamma")->name(), "Gamma-SNN");
    EXPECT_EQ(registry.make("systolic")->name(), "PTB");
    EXPECT_EQ(registry.make("stellar")->name(), "Stellar");
    // The fused datapath is a spec option on the sparten key, not a
    // registry key of its own (it shares the sparten-snn artifacts).
    EXPECT_EQ(registry.make("sparten?fused=1")->name(),
              "SparTen-SNN(f)");
    EXPECT_EQ(registry.make("sparten?fused=0")->name(), "SparTen-SNN");
}

TEST(Registry, OnlyFtVariantsWantFtWorkloads)
{
    const auto& registry = AcceleratorRegistry::instance();
    EXPECT_TRUE(registry.entry("loas-ft").ft_workload);
    EXPECT_FALSE(registry.entry("loas").ft_workload);
    EXPECT_FALSE(registry.entry("sparten").ft_workload);
}

TEST(Registry, UnknownKeyAndBadOptionsThrow)
{
    const auto& registry = AcceleratorRegistry::instance();
    EXPECT_THROW(registry.make("does-not-exist"),
                 std::invalid_argument);
    // A well-formed option the factory does not understand must be
    // rejected, not silently ignored.
    EXPECT_THROW(registry.make("loas?bogus=1"), std::invalid_argument);
    EXPECT_THROW(registry.make("gamma?rows=4"), std::invalid_argument);
    // ...while options the factory does consume are fine.
    EXPECT_NO_THROW(registry.make("loas?t=8&pes=32"));
    EXPECT_NO_THROW(registry.make("systolic?rows=8&cols=2"));
    EXPECT_NO_THROW(registry.make("sparten?fused=1&collapse=0.5"));
    // collapse is a fraction: values outside [0, 1] are rejected.
    EXPECT_THROW(registry.make("sparten?collapse=1.5"),
                 std::invalid_argument);
}

} // namespace
} // namespace loas
