/** @file Tests for the TPPE work scheduler. */

#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.hh"

namespace loas {
namespace {

TEST(Scheduler, CoversEveryOutputExactlyOnce)
{
    const Scheduler sched(7, 5, 16);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::size_t w = 0; w < sched.waveCount(); ++w)
        for (const auto& item : sched.wave(w))
            EXPECT_TRUE(seen.insert({item.m, item.n}).second);
    EXPECT_EQ(seen.size(), 35u);
}

TEST(Scheduler, WaveCount)
{
    EXPECT_EQ(Scheduler(16, 512, 16).waveCount(), 512u);
    EXPECT_EQ(Scheduler(64, 256, 16).waveCount(), 1024u);
    EXPECT_EQ(Scheduler(1, 10, 16).waveCount(), 1u);
    EXPECT_EQ(Scheduler(17, 1, 16).waveCount(), 2u);
}

TEST(Scheduler, WavesShareColumnWhenMCoversPes)
{
    // M = 16 with 16 PEs: every wave is one column (the broadcast
    // pattern of Section IV-D).
    const Scheduler sched(16, 4, 16);
    for (std::size_t w = 0; w < sched.waveCount(); ++w) {
        const auto items = sched.wave(w);
        ASSERT_EQ(items.size(), 16u);
        for (const auto& item : items)
            EXPECT_EQ(item.n, items.front().n);
    }
}

TEST(Scheduler, SmallMSpansColumns)
{
    // M = 4: a 16-PE wave covers 4 columns, keeping the array busy.
    const Scheduler sched(4, 8, 16);
    const auto items = sched.wave(0);
    ASSERT_EQ(items.size(), 16u);
    std::set<std::size_t> cols;
    for (const auto& item : items)
        cols.insert(item.n);
    EXPECT_EQ(cols.size(), 4u);
}

TEST(Scheduler, LastWaveMayBePartial)
{
    const Scheduler sched(3, 3, 16);
    EXPECT_EQ(sched.waveCount(), 1u);
    EXPECT_EQ(sched.wave(0).size(), 9u);
}

TEST(Scheduler, OutOfRangeWaveIsEmpty)
{
    const Scheduler sched(4, 4, 16);
    EXPECT_EQ(sched.waveCount(), 1u);
    EXPECT_TRUE(sched.wave(1).empty());
    EXPECT_TRUE(sched.wave(100).empty());
}

TEST(Scheduler, RowTileStaysResidentAcrossColumns)
{
    // With M a multiple of the PE count, consecutive waves inside a
    // tile reuse the same 16 rows of A (the input-reuse property the
    // walk is designed for).
    const Scheduler sched(32, 8, 16);
    const auto w0 = sched.wave(0);
    const auto w1 = sched.wave(1);
    for (std::size_t i = 0; i < w0.size(); ++i) {
        EXPECT_EQ(w0[i].m, w1[i].m);
        EXPECT_NE(w0[i].n, w1[i].n);
    }
}

} // namespace
} // namespace loas
