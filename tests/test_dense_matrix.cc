/** @file Unit tests for DenseMatrix. */

#include <gtest/gtest.h>

#include "tensor/dense_matrix.hh"

namespace loas {
namespace {

TEST(DenseMatrix, ConstructAndFill)
{
    DenseMatrix<int> m(3, 4, 7);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m.at(r, c), 7);
}

TEST(DenseMatrix, DefaultIsEmpty)
{
    DenseMatrix<int> m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.0);
}

TEST(DenseMatrix, RowMajorLayout)
{
    DenseMatrix<int> m(2, 3, 0);
    m(0, 0) = 1;
    m(0, 2) = 3;
    m(1, 0) = 4;
    EXPECT_EQ(m.data()[0], 1);
    EXPECT_EQ(m.data()[2], 3);
    EXPECT_EQ(m.data()[3], 4);
}

TEST(DenseMatrix, ZeroCountAndSparsity)
{
    DenseMatrix<std::int8_t> m(2, 2, 0);
    m(0, 0) = 5;
    EXPECT_EQ(m.zeroCount(), 3u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.75);
}

TEST(DenseMatrix, Equality)
{
    DenseMatrix<int> a(2, 2, 1);
    DenseMatrix<int> b(2, 2, 1);
    EXPECT_EQ(a, b);
    b(1, 1) = 2;
    EXPECT_FALSE(a == b);
}

TEST(DenseMatrixDeath, BoundsChecked)
{
    DenseMatrix<int> m(2, 2, 0);
    EXPECT_DEATH(m.at(2, 0), "out of");
    EXPECT_DEATH(m.at(0, 2), "out of");
}

} // namespace
} // namespace loas
