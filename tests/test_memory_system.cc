/** @file Tests for the MemorySystem traffic accounting. */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace loas {
namespace {

TEST(MemorySystem, CachedReadChargesSramAlways)
{
    MemorySystem mem(CacheConfig{}, DramConfig{});
    mem.read(TensorCategory::Input, 0, 100);
    mem.read(TensorCategory::Input, 0, 100);
    const auto& stats = mem.stats();
    EXPECT_EQ(stats.sram_read[static_cast<int>(TensorCategory::Input)],
              200u);
    // Only the first read misses (2 lines for 100 B at offset 0).
    EXPECT_EQ(stats.dram_read[static_cast<int>(TensorCategory::Input)],
              128u);
}

TEST(MemorySystem, WriteAllocateAndWriteback)
{
    CacheConfig small;
    small.size_bytes = 512; // 8 lines
    small.ways = 2;
    MemorySystem mem(small, DramConfig{});
    mem.write(TensorCategory::Psum, 0, 64);
    // Evict it by filling the set (4 sets here; stride to collide).
    const std::uint64_t stride = 4 * 64;
    mem.read(TensorCategory::Input, stride, 64);
    mem.read(TensorCategory::Input, 2 * stride, 64);
    const auto& stats = mem.stats();
    EXPECT_EQ(stats.dram_write[static_cast<int>(TensorCategory::Psum)],
              64u);
}

TEST(MemorySystem, StreamBypassesCache)
{
    MemorySystem mem(CacheConfig{}, DramConfig{});
    mem.streamRead(TensorCategory::Weight, 1000);
    mem.streamWrite(TensorCategory::Output, 500);
    EXPECT_EQ(mem.stats().dramReadBytes(), 1000u);
    EXPECT_EQ(mem.stats().dramWriteBytes(), 500u);
    EXPECT_EQ(mem.stats().sramBytes(), 0u);
    EXPECT_EQ(mem.cacheMisses(), 0u);
}

TEST(MemorySystem, ScratchIsSramOnly)
{
    MemorySystem mem(CacheConfig{}, DramConfig{});
    mem.scratchRead(TensorCategory::Psum, 256);
    mem.scratchWrite(TensorCategory::Psum, 128);
    EXPECT_EQ(mem.stats().sramBytes(), 384u);
    EXPECT_EQ(mem.stats().dramBytes(), 0u);
}

TEST(MemorySystem, FlushWritesDirtyLines)
{
    MemorySystem mem(CacheConfig{}, DramConfig{});
    mem.write(TensorCategory::Output, 0, 64);
    mem.flushCache();
    EXPECT_EQ(
        mem.stats().dram_write[static_cast<int>(TensorCategory::Output)],
        64u);
}

TEST(MemorySystem, DramCyclesFromBandwidth)
{
    DramConfig dram;
    dram.bytes_per_cycle = 160.0; // Table III
    MemorySystem mem(CacheConfig{}, dram);
    EXPECT_EQ(mem.dramCyclesFor(0), 0u);
    EXPECT_EQ(mem.dramCyclesFor(160), 1u);
    EXPECT_EQ(mem.dramCyclesFor(161), 2u);
    mem.streamRead(TensorCategory::Input, 1600);
    EXPECT_EQ(mem.dramCycles(), 10u);
}

TEST(MemorySystem, CategoryBreakdown)
{
    MemorySystem mem(CacheConfig{}, DramConfig{});
    mem.streamRead(TensorCategory::Input, 10);
    mem.streamRead(TensorCategory::Weight, 20);
    mem.streamWrite(TensorCategory::Psum, 30);
    EXPECT_EQ(mem.stats().dramBytes(TensorCategory::Input), 10u);
    EXPECT_EQ(mem.stats().dramBytes(TensorCategory::Weight), 20u);
    EXPECT_EQ(mem.stats().dramBytes(TensorCategory::Psum), 30u);
    EXPECT_EQ(mem.stats().dramBytes(), 60u);
}

TEST(TrafficStats, Accumulate)
{
    TrafficStats a, b;
    a.dram_read[0] = 5;
    a.sram_write[2] = 7;
    b.dram_read[0] = 3;
    b.sram_write[2] = 1;
    a += b;
    EXPECT_EQ(a.dram_read[0], 8u);
    EXPECT_EQ(a.sram_write[2], 8u);
}

TEST(TrafficStats, CategoryNames)
{
    EXPECT_STREQ(tensorCategoryName(TensorCategory::Input), "input");
    EXPECT_STREQ(tensorCategoryName(TensorCategory::Weight), "weight");
    EXPECT_STREQ(tensorCategoryName(TensorCategory::Psum), "psum");
    EXPECT_STREQ(tensorCategoryName(TensorCategory::Output), "output");
    EXPECT_STREQ(tensorCategoryName(TensorCategory::Meta), "meta");
}

} // namespace
} // namespace loas
