/** @file Tests for the Gamma-SNN / Gamma-ANN baseline. */

#include <gtest/gtest.h>

#include "baselines/gamma.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Gamma, SramTrafficMultipliedByT)
{
    // The sequential t-dim multiplies Gamma's partial-row SRAM
    // traffic (the paper's "13.4x more SRAM traffic than LoAS").
    const LayerSpec spec4 = tables::vgg16L8();
    const LayerSpec spec1 = tables::withTimesteps(spec4, 1);
    GammaSim sim;
    const RunResult r4 = sim.runLayer(generateLayer(spec4, 1));
    const RunResult r1 = sim.runLayer(generateLayer(spec1, 1));
    EXPECT_GT(r4.traffic.sramBytes(TensorCategory::Psum),
              2 * r1.traffic.sramBytes(TensorCategory::Psum));
}

TEST(Gamma, LowDramTraffic)
{
    // Gustavson's strength: B rows are fetched through the FiberCache
    // and partial rows never leave the chip.
    const LayerData layer = generateLayer(tables::vgg16L8(), 2);
    GammaSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_EQ(r.traffic.dramBytes(TensorCategory::Psum), 0u);
    // DRAM weight traffic stays near the compressed footprint
    // (cache-resident rows are reused across timesteps and rows).
    const std::uint64_t weight_dram =
        r.traffic.dram_read[static_cast<int>(TensorCategory::Weight)];
    const std::uint64_t weight_nnz = layer.spec.k * layer.spec.n / 25;
    EXPECT_LT(weight_dram, 8 * weight_nnz + (1 << 20));
}

TEST(Gamma, MergeWorkMatchesUpdates)
{
    LayerSpec spec;
    spec.name = "tiny";
    spec.t = 2;
    spec.m = 4;
    spec.n = 8;
    spec.k = 16;
    spec.spike_sparsity = 0.5;
    spec.silent_ratio = 0.3;
    spec.silent_ratio_ft = 0.3;
    spec.weight_sparsity = 0.5;
    const LayerData layer = generateLayer(spec, 5);
    GammaSim sim;
    const RunResult r = sim.runLayer(layer);

    std::uint64_t expected = 0;
    for (int t = 0; t < spec.t; ++t)
        for (std::size_t m = 0; m < spec.m; ++m)
            for (std::size_t k = 0; k < spec.k; ++k) {
                if (!layer.spikes.spike(m, k, t))
                    continue;
                for (std::size_t n = 0; n < spec.n; ++n)
                    expected += layer.weights(k, n) != 0 ? 1 : 0;
            }
    EXPECT_EQ(r.ops.acc_ops, expected);
    EXPECT_GE(r.ops.merge_ops, expected); // + re-pass elements
}

TEST(Gamma, RadixLimitsTriggersRepasses)
{
    // With a tiny merge radix, rows with many active inputs need
    // multiple merge rounds, inflating merge ops and psum traffic.
    const LayerData layer = generateLayer(tables::resnet19L19(), 6);
    GammaConfig wide;
    wide.merge_radix = 4096;
    GammaConfig narrow;
    narrow.merge_radix = 8;
    GammaSim sim_wide(wide), sim_narrow(narrow);
    const RunResult r_wide = sim_wide.runLayer(layer);
    const RunResult r_narrow = sim_narrow.runLayer(layer);
    EXPECT_GT(r_narrow.ops.merge_ops, r_wide.ops.merge_ops);
    EXPECT_GT(r_narrow.traffic.sramBytes(TensorCategory::Psum),
              r_wide.traffic.sramBytes(TensorCategory::Psum));
}

TEST(Gamma, AnnModeCountsMacsAndActivationBytes)
{
    LayerSpec spec = tables::vgg16L8();
    spec.spike_sparsity = 0.439;
    const AnnLayerData ann = generateAnnLayer(spec, 7);
    GammaSim sim;
    const RunResult r = sim.execute(sim.prepareAnn(ann));
    EXPECT_EQ(r.accel, "Gamma-ANN");
    EXPECT_GT(r.ops.mac_ops, 0u);
    // int8 activations stream in: one byte per non-zero.
    std::uint64_t nnz = 0;
    for (const auto v : ann.acts.data())
        nnz += v != 0;
    EXPECT_EQ(r.traffic.dram_read[static_cast<int>(
                  TensorCategory::Input)],
              nnz);
}

} // namespace
} // namespace loas
