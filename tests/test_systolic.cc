/** @file Tests for the PTB / Stellar systolic baselines (Fig. 19). */

#include <gtest/gtest.h>

#include "baselines/systolic.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Systolic, PtbCyclesAreDense)
{
    // PTB streams every input position: cycles track M*K*ceil(N/16)
    // regardless of sparsity.
    const LayerData layer = generateLayer(tables::vgg16L8(), 1);
    PtbSim sim;
    const RunResult r = sim.runLayer(layer);
    const std::uint64_t tiles = (512 + 15) / 16;
    const std::uint64_t stream = 16ull * 2304;
    EXPECT_GE(r.compute_cycles, tiles * stream);
    EXPECT_LE(r.compute_cycles, tiles * (stream + 2304 + 64));
}

TEST(Systolic, StellarSkipsZeroSpikes)
{
    // Stellar's spike-skipping makes it far faster than PTB on the
    // same sparse workload (Fig. 19: Stellar outperforms PTB).
    const LayerData layer = generateLayer(tables::vgg16L8(), 2);
    PtbSim ptb;
    StellarSim stellar;
    const RunResult r_ptb = ptb.runLayer(layer);
    const RunResult r_stellar = stellar.runLayer(layer);
    EXPECT_LT(r_stellar.compute_cycles, r_ptb.compute_cycles / 2);
}

TEST(Systolic, DenseWeightTraffic)
{
    // Neither design exploits weight sparsity: the full dense K*N
    // int8 weights cross DRAM.
    const LayerData layer = generateLayer(tables::vgg16L8(), 3);
    PtbSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_GE(r.traffic.dram_read[static_cast<int>(
                  TensorCategory::Weight)],
              layer.spec.k * layer.spec.n);
}

TEST(Systolic, StellarDenseWorkloadEqualsPtb)
{
    // On a fully dense workload spike skipping buys nothing.
    LayerSpec spec;
    spec.name = "dense";
    spec.t = 4;
    spec.m = 8;
    spec.n = 32;
    spec.k = 128;
    spec.spike_sparsity = 0.0;
    spec.silent_ratio = 0.0;
    spec.silent_ratio_ft = 0.0;
    spec.weight_sparsity = 0.0;
    const LayerData layer = generateLayer(spec, 4);
    PtbSim ptb;
    StellarSim stellar;
    EXPECT_EQ(ptb.runLayer(layer).compute_cycles,
              stellar.runLayer(layer).compute_cycles);
}

TEST(Systolic, AccOpsGatedBySpikes)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 5);
    PtbSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_EQ(r.ops.acc_ops,
              layer.spikes.countSpikes() * layer.spec.n);
}

TEST(Systolic, LifOpsPerOutputTimestep)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 6);
    StellarSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_EQ(r.ops.lif_ops,
              static_cast<std::uint64_t>(layer.spec.m) * layer.spec.n *
                  static_cast<std::uint64_t>(layer.spec.t));
}

} // namespace
} // namespace loas
