/** @file Tests for the output spike compressor. */

#include <gtest/gtest.h>

#include "core/compressor.hh"

namespace loas {
namespace {

TEST(Compressor, DropsSilentNeurons)
{
    const OutputCompressor comp(16);
    const CompressResult r = comp.compress({0b0101, 0, 0b0001, 0});
    EXPECT_EQ(r.fiber.nnz(), 2u);
    EXPECT_TRUE(r.fiber.mask.test(0));
    EXPECT_FALSE(r.fiber.mask.test(1));
    EXPECT_TRUE(r.fiber.mask.test(2));
    EXPECT_EQ(r.fiber.values[0], 0b0101u);
    EXPECT_EQ(r.fiber.values[1], 0b0001u);
}

TEST(Compressor, FtModeAlsoDropsSingles)
{
    // Section V: with preprocessing, the compressor discards output
    // neurons with 0 or 1 spikes.
    const OutputCompressor comp(16, /*discard_single=*/true);
    const CompressResult r = comp.compress({0b0101, 0, 0b0001, 0b1110});
    EXPECT_EQ(r.fiber.nnz(), 2u);
    EXPECT_TRUE(r.fiber.mask.test(0));
    EXPECT_FALSE(r.fiber.mask.test(2)); // single spike dropped
    EXPECT_TRUE(r.fiber.mask.test(3));
}

TEST(Compressor, CyclesFromLaggySweep)
{
    const OutputCompressor comp(16);
    EXPECT_EQ(comp.compress(std::vector<TimeWord>(512, 0)).cycles,
              32u);
    EXPECT_EQ(comp.compress(std::vector<TimeWord>(100, 0)).cycles, 7u);
}

TEST(Compressor, OneEncodeOpPerNeuron)
{
    const OutputCompressor comp(16);
    EXPECT_EQ(comp.compress(std::vector<TimeWord>(77, 1)).ops.encode_ops,
              77u);
}

TEST(Compressor, EmptyRow)
{
    const OutputCompressor comp(16);
    const CompressResult r = comp.compress({});
    EXPECT_EQ(r.fiber.nnz(), 0u);
    EXPECT_EQ(r.cycles, 0u);
}

} // namespace
} // namespace loas
