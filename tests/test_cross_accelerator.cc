/** @file Cross-accelerator invariants: the paper's headline orderings. */

#include <gtest/gtest.h>

#include "baselines/gamma.hh"
#include "baselines/gospa.hh"
#include "baselines/sparten.hh"
#include "baselines/systolic.hh"
#include "core/loas_sim.hh"
#include "energy/energy_model.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

struct AllResults
{
    RunResult loas, sparten, gospa, gamma;
};

AllResults
runAll(const LayerData& layer)
{
    AllResults r;
    LoasSim loas;
    SpartenSim sparten;
    GospaSim gospa;
    GammaSim gamma;
    r.loas = loas.runLayer(layer);
    r.sparten = sparten.runLayer(layer);
    r.gospa = gospa.runLayer(layer);
    r.gamma = gamma.runLayer(layer);
    return r;
}

/** Fig. 12's core claim, layer-level: LoAS beats every baseline. */
class LoasWinsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LoasWinsProperty, FasterAndMoreEfficientThanAllBaselines)
{
    const std::vector<LayerSpec> specs = {
        tables::alexnetL4(), tables::vgg16L8(), tables::resnet19L19()};
    const LayerData layer =
        generateLayer(specs[static_cast<std::size_t>(GetParam())], 3);
    const AllResults r = runAll(layer);

    EXPECT_LT(r.loas.total_cycles, r.sparten.total_cycles);
    EXPECT_LT(r.loas.total_cycles, r.gospa.total_cycles);
    EXPECT_LT(r.loas.total_cycles, r.gamma.total_cycles);

    const EnergyModel model;
    const double e_loas = model.evaluate(r.loas).totalPj();
    EXPECT_LT(e_loas, model.evaluate(r.sparten).totalPj());
    EXPECT_LT(e_loas, model.evaluate(r.gospa).totalPj());
    EXPECT_LT(e_loas, model.evaluate(r.gamma).totalPj());
}

INSTANTIATE_TEST_SUITE_P(PublishedLayers, LoasWinsProperty,
                         ::testing::Values(0, 1, 2));

TEST(CrossAccelerator, LoasHasLeastSramTraffic)
{
    // Fig. 13: LoAS has the least on-chip traffic; Gamma pays the
    // partial-row SRAM penalty.
    const LayerData layer = generateLayer(tables::resnet19L19(), 5);
    const AllResults r = runAll(layer);
    EXPECT_LT(r.loas.traffic.sramBytes(), r.sparten.traffic.sramBytes());
    EXPECT_LT(r.loas.traffic.sramBytes(), r.gamma.traffic.sramBytes());
}

TEST(CrossAccelerator, GospaHasLargestPsumDram)
{
    // Fig. 14: GoSPA-SNN has the largest psum off-chip traffic.
    const LayerData layer = generateLayer(tables::vgg16L8(), 7);
    const AllResults r = runAll(layer);
    const auto psum = [](const RunResult& result) {
        return result.traffic.dramBytes(TensorCategory::Psum);
    };
    EXPECT_GT(psum(r.gospa), psum(r.sparten));
    EXPECT_GT(psum(r.gospa), psum(r.gamma));
    EXPECT_GT(psum(r.gospa), psum(r.loas));
}

TEST(CrossAccelerator, SpartenHasLargestInputSram)
{
    // SparTen re-fetches the dense spike train every timestep.
    const LayerData layer = generateLayer(tables::vgg16L8(), 9);
    const AllResults r = runAll(layer);
    EXPECT_GT(r.sparten.traffic.sramBytes(TensorCategory::Input),
              r.loas.traffic.sramBytes(TensorCategory::Input));
}

TEST(CrossAccelerator, SpeedupGrowsAsSpikesDensify)
{
    // Fig. 12's second observation: LoAS's edge over SparTen-SNN is
    // larger on the denser-spike workload (ResNet19 vs VGG16).
    const LayerData vgg = generateLayer(tables::vgg16L8(), 11);
    const LayerData res = generateLayer(tables::resnet19L19(), 11);
    LoasSim loas;
    SpartenSim sparten;
    const double speedup_vgg =
        static_cast<double>(sparten.runLayer(vgg).total_cycles) /
        static_cast<double>(loas.runLayer(vgg).total_cycles);
    const double speedup_res =
        static_cast<double>(sparten.runLayer(res).total_cycles) /
        static_cast<double>(loas.runLayer(res).total_cycles);
    EXPECT_GT(speedup_res, speedup_vgg);
}

TEST(CrossAccelerator, DenseSnnBaselinesAreSlower)
{
    // Fig. 19: on the dual-sparse workload, LoAS is far faster than
    // both dense-SNN systolic designs, and Stellar beats PTB.
    const LayerData layer = generateLayer(tables::vgg16L8(), 13);
    LoasSim loas;
    PtbSim ptb;
    StellarSim stellar;
    const auto r_loas = loas.runLayer(layer);
    const auto r_ptb = ptb.runLayer(layer);
    const auto r_stellar = stellar.runLayer(layer);
    EXPECT_GT(r_ptb.total_cycles, 10 * r_loas.total_cycles);
    EXPECT_GT(r_stellar.total_cycles, r_loas.total_cycles);
    EXPECT_GT(r_ptb.total_cycles, r_stellar.total_cycles);
}

TEST(CrossAccelerator, AllSimulatorsAgreeFunctionally)
{
    // LoAS and SparTen both compute real spikes: they must agree.
    const LayerData layer = generateLayer(tables::alexnetL4(), 15);
    LoasSim loas;
    SpartenSim sparten;
    loas.runLayer(layer);
    sparten.runLayer(layer);
    EXPECT_EQ(loas.lastOutput(), sparten.lastOutput());
}

} // namespace
} // namespace loas
