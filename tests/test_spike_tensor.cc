/** @file Unit tests for the temporally packed SpikeTensor. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/spike_tensor.hh"

namespace loas {
namespace {

TEST(SpikeTensor, StartsSilent)
{
    SpikeTensor a(4, 8, 4);
    EXPECT_EQ(a.countSpikes(), 0u);
    EXPECT_EQ(a.silentCount(), 32u);
    EXPECT_DOUBLE_EQ(a.silentRatio(), 1.0);
    EXPECT_DOUBLE_EQ(a.originSparsity(), 1.0);
}

TEST(SpikeTensor, SetAndReadSpikes)
{
    SpikeTensor a(2, 3, 4);
    a.setSpike(0, 0, 0);
    a.setSpike(0, 0, 2);
    a.setSpike(1, 2, 3);
    EXPECT_TRUE(a.spike(0, 0, 0));
    EXPECT_FALSE(a.spike(0, 0, 1));
    EXPECT_TRUE(a.spike(0, 0, 2));
    EXPECT_TRUE(a.spike(1, 2, 3));
    EXPECT_EQ(a.word(0, 0), 0b0101u);
    EXPECT_EQ(a.word(1, 2), 0b1000u);
    EXPECT_EQ(a.countSpikes(), 3u);
    a.setSpike(0, 0, 2, false);
    EXPECT_EQ(a.word(0, 0), 0b0001u);
}

TEST(SpikeTensor, Fig8Example)
{
    // Fig. 8 of the paper: neuron a00 fires at t0 and t2 -> packed
    // word 0101 (bit t = spike at timestep t); a03 fires at t1,t2,t3.
    SpikeTensor a(1, 4, 4);
    a.setWord(0, 0, 0b0101);
    a.setWord(0, 3, 0b1110);
    EXPECT_TRUE(a.spike(0, 0, 0));
    EXPECT_FALSE(a.spike(0, 0, 1));
    EXPECT_TRUE(a.spike(0, 0, 2));
    EXPECT_EQ(a.silentCount(), 2u); // a01 and a02 are silent
    EXPECT_DOUBLE_EQ(a.silentRatio(), 0.5);
    EXPECT_EQ(a.countSpikes(), 5u);
}

TEST(SpikeTensor, Statistics)
{
    SpikeTensor a(2, 2, 4);
    a.setWord(0, 0, 0b1111);
    a.setWord(0, 1, 0b0001);
    // (1,0) and (1,1) stay silent.
    EXPECT_EQ(a.countSpikes(), 5u);
    EXPECT_DOUBLE_EQ(a.originSparsity(), 1.0 - 5.0 / 16.0);
    EXPECT_EQ(a.silentCount(), 2u);
    EXPECT_EQ(a.singleSpikeCount(), 1u);
}

TEST(SpikeTensor, DenseBytes)
{
    SpikeTensor a(16, 2304, 4);
    EXPECT_EQ(a.denseBytes(), 16u * 2304 * 4 / 8);
    EXPECT_EQ(a.denseBytesPerTimestep(), 16u * 2304 / 8);
}

TEST(SpikeTensorDeath, RejectsBadTimestep)
{
    SpikeTensor a(1, 1, 4);
    EXPECT_DEATH(a.spike(0, 0, 4), "timestep");
    EXPECT_DEATH(a.setSpike(0, 0, -1, true), "timestep");
}

TEST(SpikeTensorDeath, RejectsWordAboveTimesteps)
{
    SpikeTensor a(1, 1, 4);
    EXPECT_DEATH(a.setWord(0, 0, 0x10), "bits above");
}

/** Property: statistics agree with a per-bit recount. */
class SpikeTensorProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpikeTensorProperty, StatsMatchRecount)
{
    Rng rng(GetParam());
    const std::size_t rows = 1 + rng.uniformInt(20);
    const std::size_t cols = 1 + rng.uniformInt(40);
    const int timesteps = 1 + static_cast<int>(rng.uniformInt(8));
    SpikeTensor a(rows, cols, timesteps);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            for (int t = 0; t < timesteps; ++t)
                if (rng.bernoulli(0.25))
                    a.setSpike(r, c, t);

    std::uint64_t spikes = 0;
    std::size_t silent = 0, single = 0;
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
            int count = 0;
            for (int t = 0; t < timesteps; ++t)
                count += a.spike(r, c, t) ? 1 : 0;
            spikes += static_cast<std::uint64_t>(count);
            silent += count == 0;
            single += count == 1;
        }
    EXPECT_EQ(a.countSpikes(), spikes);
    EXPECT_EQ(a.silentCount(), silent);
    EXPECT_EQ(a.singleSpikeCount(), single);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpikeTensorProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace loas
