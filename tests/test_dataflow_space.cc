/** @file Tests for the Section III dataflow design-space module. */

#include <gtest/gtest.h>

#include "dataflow/loop_nest.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(DataflowSpace, SixteenSequentialOrderingsPlusUnrolled)
{
    // Section II-C: 16 possible permutations of the sequential SNN
    // spMspM loop nest (the paper counts 4 t-positions per base + the
    // spatially-unrolled variant we expose explicitly).
    const auto candidates = allCandidates();
    EXPECT_EQ(candidates.size(), 15u); // 3 bases x 5 placements
    std::size_t sequential = 0;
    for (const auto& c : candidates)
        if (c.placement != TemporalPlacement::InnerUnrolled)
            ++sequential;
    EXPECT_EQ(sequential, 12u);
}

TEST(DataflowSpace, FtpIsTheUniqueWinner)
{
    const auto winners = optimalCandidates(tables::vgg16L8());
    ASSERT_EQ(winners.size(), 1u);
    EXPECT_EQ(winners[0].base, BaseDataflow::InnerProduct);
    EXPECT_EQ(winners[0].placement, TemporalPlacement::InnerUnrolled);
}

TEST(DataflowSpace, Observation1RefetchUnlessInnermost)
{
    const LayerSpec spec = tables::vgg16L8();
    for (const auto& c : allCandidates()) {
        const auto m = evaluateCandidate(c, spec);
        const bool inner =
            c.placement == TemporalPlacement::Innermost ||
            c.placement == TemporalPlacement::InnerUnrolled;
        if (inner)
            EXPECT_DOUBLE_EQ(m.input_refetch_factor, 1.0);
        else
            EXPECT_DOUBLE_EQ(m.input_refetch_factor, 4.0);
    }
}

TEST(DataflowSpace, Observation2OuterProductAlwaysPaysPsums)
{
    const LayerSpec spec = tables::vgg16L8();
    for (const auto& c : allCandidates()) {
        if (c.base != BaseDataflow::OuterProduct)
            continue;
        EXPECT_DOUBLE_EQ(evaluateCandidate(c, spec).psum_factor, 4.0)
            << c.name();
    }
}

TEST(DataflowSpace, Observation2GustavsonTradesPsumsForRefetch)
{
    const LayerSpec spec = tables::vgg16L8();
    for (const auto& c : allCandidates()) {
        if (c.base != BaseDataflow::Gustavson)
            continue;
        const auto m = evaluateCandidate(c, spec);
        // Either T times more partial rows or T times more refetch.
        EXPECT_TRUE(m.psum_factor >= 4.0 ||
                    m.input_refetch_factor >= 4.0)
            << c.name();
    }
}

TEST(DataflowSpace, Observation3OnlyUnrollingRemovesLatency)
{
    const LayerSpec spec = tables::vgg16L8();
    for (const auto& c : allCandidates()) {
        const auto m = evaluateCandidate(c, spec);
        if (c.placement == TemporalPlacement::InnerUnrolled)
            EXPECT_DOUBLE_EQ(m.latency_factor, 1.0);
        else
            EXPECT_DOUBLE_EQ(m.latency_factor, 4.0);
    }
}

TEST(DataflowSpace, MetricsScaleWithTimesteps)
{
    LayerSpec spec = tables::vgg16L8();
    spec.t = 8;
    const DataflowCandidate op_outer{BaseDataflow::OuterProduct,
                                     TemporalPlacement::Outermost};
    const auto m = evaluateCandidate(op_outer, spec);
    EXPECT_DOUBLE_EQ(m.input_refetch_factor, 8.0);
    EXPECT_DOUBLE_EQ(m.psum_factor, 8.0);
    EXPECT_DOUBLE_EQ(m.latency_factor, 8.0);
}

TEST(DataflowSpace, Names)
{
    const DataflowCandidate ftp{BaseDataflow::InnerProduct,
                                TemporalPlacement::InnerUnrolled};
    EXPECT_EQ(ftp.name(), "IP(m,n,k,T)");
    const DataflowCandidate ip_mid{BaseDataflow::InnerProduct,
                                   TemporalPlacement::AboveMiddle};
    EXPECT_EQ(ip_mid.name(), "IP(m,t,n,k)");
    const DataflowCandidate op_out{BaseDataflow::OuterProduct,
                                   TemporalPlacement::Outermost};
    EXPECT_EQ(op_out.name(), "OP(t,k,m,n)");
    EXPECT_STREQ(baseDataflowName(BaseDataflow::Gustavson), "Gust");
}

} // namespace
} // namespace loas
