/**
 * @file
 * Tests for the on-disk compiled-artifact level: round-trip equality of
 * every format family (including rank tables over k % 64 != 0 masks),
 * header validation (magic / version / checksum / key), corruption
 * fallback, and golden-identity of engine runs with the cache cold,
 * warm in memory, and warm on disk.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/json.hh"
#include "common/fault.hh"
#include "api/registry.hh"
#include "api/sweep.hh"
#include "api/sweep_io.hh"
#include "workload/artifact_io.hh"
#include "workload/artifact_store.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

namespace fs = std::filesystem;

/** Fresh, empty cache directory unique to the calling test. */
std::string
tempCacheDir(const std::string& name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("loas-cache-" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/**
 * A small layer whose reduction dimension is deliberately not a
 * multiple of 64, so serialized bitmask tails and rank tables cover
 * the partial-word path.
 */
LayerSpec
oddLayer()
{
    LayerSpec spec = tables::alexnetL4();
    spec.name = "odd-layer";
    spec.m = 48;
    spec.n = 40;
    spec.k = 130; // k % 64 != 0
    return spec;
}

TEST(ArtifactStore, RoundTripsEveryFamilyBitIdentically)
{
    const std::string dir = tempCacheDir("roundtrip");
    const ArtifactStore store(dir);
    const auto& registry = AcceleratorRegistry::instance();

    // One design per format family; loas-ft exercises the ft-workload
    // variant of the loas family on its own key.
    const std::vector<std::string> designs = {
        "loas", "loas-ft", "sparten", "gospa", "gamma", "systolic"};
    for (const auto& design : designs) {
        SCOPED_TRACE(design);
        const bool ft = registry.entry(design).ft_workload;
        const LayerData layer = generateLayer(oddLayer(), 19, ft);
        const auto compiler = registry.make(design);
        const CompiledLayer compiled = compiler->prepare(layer);
        const std::string key = compiledLayerKey(
            "net", 0, ft, compiler->formatFamily(), layer.spec.t, 19);

        ASSERT_TRUE(store.store(key, compiled));
        const ArtifactStore::LoadResult loaded = store.load(key);
        EXPECT_FALSE(loaded.rejected);
        ASSERT_NE(loaded.layer, nullptr);

        EXPECT_EQ(loaded.layer->family, compiled.family);
        EXPECT_EQ(loaded.layer->spec.name, compiled.spec.name);
        EXPECT_EQ(loaded.layer->m, compiled.m);
        EXPECT_EQ(loaded.layer->k, compiled.k);
        EXPECT_EQ(loaded.layer->n, compiled.n);
        EXPECT_EQ(loaded.layer->timesteps, compiled.timesteps);
        EXPECT_EQ(loaded.layer->bytes, compiled.bytes);

        // The decisive check: the simulated datapath cannot tell the
        // reconstructed artifact from the freshly compiled one.
        const RunResult from_fresh =
            registry.make(design)->execute(compiled);
        const RunResult from_disk =
            registry.make(design)->execute(*loaded.layer);
        EXPECT_EQ(json::toJson(from_fresh), json::toJson(from_disk));
    }

    EXPECT_EQ(store.stats().files, designs.size());
    EXPECT_GT(store.stats().bytes, 0u);
    EXPECT_EQ(store.clear(), designs.size());
    EXPECT_EQ(store.stats().files, 0u);
}

TEST(ArtifactStore, FusedSpartenExecutesIdenticallyFromDisk)
{
    // The fused=0/1 design variants share one sparten-snn artifact, so
    // the v3 temporally-packed operands must survive the disk round
    // trip well enough that the fused datapath cannot tell either: the
    // same artifact must serve both variants byte-identically.
    const std::string dir = tempCacheDir("fused");
    const ArtifactStore store(dir);
    const auto& registry = AcceleratorRegistry::instance();
    const LayerData layer = generateLayer(oddLayer(), 43);
    const auto compiler = registry.make("sparten");
    const CompiledLayer compiled = compiler->prepare(layer);
    const std::string key = compiledLayerKey(
        "net", 0, false, compiler->formatFamily(), layer.spec.t, 43);
    ASSERT_TRUE(store.store(key, compiled));
    const ArtifactStore::LoadResult loaded = store.load(key);
    ASSERT_NE(loaded.layer, nullptr);

    for (const std::string spec :
         {"sparten?fused=1", "sparten?fused=1&collapse=0"}) {
        SCOPED_TRACE(spec);
        const RunResult from_fresh =
            registry.make(spec)->execute(compiled);
        const RunResult from_disk =
            registry.make(spec)->execute(*loaded.layer);
        EXPECT_EQ(json::toJson(from_fresh), json::toJson(from_disk));
    }
}

TEST(ArtifactStore, MissingFileIsAMissNotARejection)
{
    const ArtifactStore store(tempCacheDir("missing"));
    const ArtifactStore::LoadResult result = store.load("no-such-key");
    EXPECT_EQ(result.layer, nullptr);
    EXPECT_FALSE(result.rejected);
}

TEST(ArtifactStore, ChecksumRejectsCorruptedFiles)
{
    const std::string dir = tempCacheDir("corrupt");
    const ArtifactStore store(dir);
    const LayerData layer = generateLayer(oddLayer(), 23);
    const auto compiler = AcceleratorRegistry::instance().make("loas");
    const std::string key =
        compiledLayerKey("net", 0, false, "loas", layer.spec.t, 23);
    ASSERT_TRUE(store.store(key, compiler->prepare(layer)));

    // Flip one payload byte in place: the checksum must catch it.
    const std::string path = store.path(key);
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file.good());
        file.seekg(100);
        const char flipped = static_cast<char>(file.get() ^ 0xff);
        file.seekp(100);
        file.put(flipped);
    }
    const ArtifactStore::LoadResult result = store.load(key);
    EXPECT_EQ(result.layer, nullptr);
    EXPECT_TRUE(result.rejected);
}

TEST(ArtifactStore, FormatVersionMismatchRejects)
{
    const std::string dir = tempCacheDir("version");
    const ArtifactStore store(dir);
    const LayerData layer = generateLayer(oddLayer(), 29);
    const auto compiler = AcceleratorRegistry::instance().make("gamma");
    const std::string key =
        compiledLayerKey("net", 0, false, "gamma", layer.spec.t, 29);
    ASSERT_TRUE(store.store(key, compiler->prepare(layer)));

    // Patch the version stamp (bytes 8..11, after the 8-byte magic).
    const std::string path = store.path(key);
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file.good());
        file.seekp(8);
        const std::uint32_t bumped = ArtifactStore::kFormatVersion + 1;
        file.write(reinterpret_cast<const char*>(&bumped),
                   sizeof(bumped));
    }
    const ArtifactStore::LoadResult result = store.load(key);
    EXPECT_EQ(result.layer, nullptr);
    EXPECT_TRUE(result.rejected);
}

TEST(ArtifactStore, TruncatedFileRejects)
{
    const std::string dir = tempCacheDir("truncate");
    const ArtifactStore store(dir);
    const LayerData layer = generateLayer(oddLayer(), 31);
    const auto compiler = AcceleratorRegistry::instance().make("gospa");
    const std::string key =
        compiledLayerKey("net", 0, false, "gospa", layer.spec.t, 31);
    ASSERT_TRUE(store.store(key, compiler->prepare(layer)));

    const std::string path = store.path(key);
    fs::resize_file(path, fs::file_size(path) / 2);
    const ArtifactStore::LoadResult result = store.load(key);
    EXPECT_EQ(result.layer, nullptr);
    EXPECT_TRUE(result.rejected);
}

TEST(DiskCache, ColdWarmMemoryAndWarmDiskRunsAreByteIdentical)
{
    const std::string dir = tempCacheDir("golden");
    SweepRequest request;
    request.grids = {"loas?pes=8,16", "sparten"};
    request.networks = {"alexnet-l4"};
    request.seed = 37;
    request.threads = 2;

    // Cold: no cache directory, private in-memory cache only.
    const SweepReport cold = SweepEngine().run(request);

    // Cold-disk: same request, now writing through to disk.
    request.cache_dir = dir;
    const SweepReport cold_disk = SweepEngine().run(request);
    EXPECT_EQ(toCsv(cold), toCsv(cold_disk));
    EXPECT_EQ(json::toJson(cold), json::toJson(cold_disk));
    EXPECT_EQ(cold_disk.compile_cache.disk_hits, 0u);
    EXPECT_GT(cold_disk.compile_cache.disk_writes, 0u);

    // Warm-disk: a fresh private cache (a "new process") loads every
    // artifact from disk and compiles nothing.
    const SweepReport warm_disk = SweepEngine().run(request);
    EXPECT_EQ(toCsv(cold), toCsv(warm_disk));
    EXPECT_EQ(json::toJson(cold), json::toJson(warm_disk));
    EXPECT_EQ(warm_disk.compile_cache.misses, 0u);
    EXPECT_EQ(warm_disk.compile_cache.compile_ms, 0.0);
    EXPECT_EQ(warm_disk.compile_cache.disk_hits,
              cold_disk.compile_cache.disk_writes);

    // Warm-memory: a shared cache across two runs serves pure hits.
    CompiledCache shared;
    request.cache_dir.clear();
    request.compiled_cache = &shared;
    SweepEngine().run(request);
    const SweepReport warm_mem = SweepEngine().run(request);
    EXPECT_EQ(toCsv(cold), toCsv(warm_mem));
    EXPECT_EQ(warm_mem.compile_cache.misses, 0u);
    EXPECT_EQ(warm_mem.compile_cache.hits,
              cold.compile_cache.hits + cold.compile_cache.misses);
}

TEST(DiskCache, CorruptedEntryFallsBackToRecompile)
{
    const std::string dir = tempCacheDir("fallback");
    SimRequest request;
    request.accels = {"loas"};
    request.networks = {NetworkSpec{"layer", {oddLayer()}}};
    request.seed = 41;
    request.cache_dir = dir;

    const SimReport cold = SimEngine().run(request);
    EXPECT_EQ(cold.compile_cache.disk_writes, 1u);

    // Corrupt the single stored artifact (bit-flip, never a no-op).
    for (const auto& entry : fs::directory_iterator(dir)) {
        std::fstream file(entry.path(), std::ios::in | std::ios::out |
                                            std::ios::binary);
        file.seekg(64);
        const char flipped = static_cast<char>(file.get() ^ 0xff);
        file.seekp(64);
        file.put(flipped);
    }

    const SimReport warm = SimEngine().run(request);
    EXPECT_EQ(warm.compile_cache.disk_hits, 0u);
    EXPECT_EQ(warm.compile_cache.disk_rejects, 1u);
    EXPECT_EQ(warm.compile_cache.misses, 1u);
    // The rejected file was overwritten with a good copy...
    EXPECT_EQ(warm.compile_cache.disk_writes, 1u);
    EXPECT_EQ(json::toJson(cold.runs[0].result),
              json::toJson(warm.runs[0].result));

    // ...so a third run is a clean disk hit again.
    const SimReport healed = SimEngine().run(request);
    EXPECT_EQ(healed.compile_cache.disk_hits, 1u);
    EXPECT_EQ(healed.compile_cache.misses, 0u);
}

/** Tests below arm the process-global fault registry; disarm after. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

TEST(FaultedStore, InjectedFaultsDegradeCleanlyOnEveryFamily)
{
    FaultGuard guard;
    const std::string dir = tempCacheDir("faulted");
    const ArtifactStore store(dir);
    const auto& registry = AcceleratorRegistry::instance();

    const std::vector<std::string> designs = {
        "loas", "loas-ft", "sparten", "gospa", "gamma", "systolic"};
    for (const auto& design : designs) {
        SCOPED_TRACE(design);
        const bool ft = registry.entry(design).ft_workload;
        const LayerData layer = generateLayer(oddLayer(), 53, ft);
        const auto compiler = registry.make(design);
        const CompiledLayer compiled = compiler->prepare(layer);
        const std::string key = compiledLayerKey(
            "net", 0, ft, compiler->formatFamily(), layer.spec.t, 53);

        // A write fault fails the store without publishing anything —
        // no artifact, no leaked temp.
        fault::configure("disk.write=1");
        EXPECT_FALSE(store.store(key, compiled));
        EXPECT_EQ(store.load(key).layer, nullptr);
        EXPECT_EQ(store.stats().tmp_files, 0u);

        // A rename fault fails after the payload was written; the
        // temp must still be cleaned up.
        fault::configure("disk.rename=1");
        EXPECT_FALSE(store.store(key, compiled));
        EXPECT_EQ(store.stats().tmp_files, 0u);

        // Disarmed, the same store succeeds; a read fault then
        // rejects the valid file as an I/O error...
        fault::reset();
        ASSERT_TRUE(store.store(key, compiled));
        fault::configure("disk.read=1");
        const ArtifactStore::LoadResult faulted = store.load(key);
        EXPECT_EQ(faulted.layer, nullptr);
        EXPECT_TRUE(faulted.rejected);
        EXPECT_TRUE(faulted.io_error);

        // ...and once the fault clears, the artifact loads intact and
        // executes identically to the fresh compile.
        fault::reset();
        const ArtifactStore::LoadResult loaded = store.load(key);
        ASSERT_NE(loaded.layer, nullptr);
        EXPECT_FALSE(loaded.rejected);
        const RunResult from_fresh =
            registry.make(design)->execute(compiled);
        const RunResult from_disk =
            registry.make(design)->execute(*loaded.layer);
        EXPECT_EQ(json::toJson(from_fresh), json::toJson(from_disk));
    }
    EXPECT_EQ(store.stats().files, designs.size());
}

TEST(StaleTemps, AreCountedSweptByAgeAndClearedUnconditionally)
{
    const std::string dir = tempCacheDir("tmps");
    const ArtifactStore store(dir);
    const LayerData layer = generateLayer(oddLayer(), 59);
    const auto compiler = AcceleratorRegistry::instance().make("loas");
    const std::string key =
        compiledLayerKey("net", 0, false, "loas", layer.spec.t, 59);
    ASSERT_TRUE(store.store(key, compiler->prepare(layer)));

    // Fabricate the orphans a writer killed between open and rename
    // would leave behind.
    const auto orphan = [&](const std::string& name) {
        std::ofstream(fs::path(dir) /
                      (name + ArtifactStore::kFileSuffix + ".tmp.1.2"))
            << "torn";
    };
    orphan("dead-writer-a");
    orphan("dead-writer-b");

    ArtifactStore::DiskStats stats = store.stats();
    EXPECT_EQ(stats.files, 1u); // temps never count as artifacts
    EXPECT_EQ(stats.tmp_files, 2u);

    // Young temps survive an age-bounded sweep (a live writer's temp
    // must never be reaped), age 0 sweeps them all.
    EXPECT_EQ(store.sweepStaleTemps(3600.0), 0u);
    EXPECT_EQ(store.stats().tmp_files, 2u);
    EXPECT_EQ(store.sweepStaleTemps(0.0), 2u);
    EXPECT_EQ(store.stats().tmp_files, 0u);

    // clear() removes temps regardless of age, artifacts included.
    orphan("dead-writer-c");
    EXPECT_EQ(store.clear(), 2u); // 1 artifact + 1 temp
    EXPECT_EQ(store.stats().files, 0u);
    EXPECT_EQ(store.stats().tmp_files, 0u);

    // Attaching a cache to the directory sweeps stale temps and
    // reports them in the cache's own counters.
    orphan("dead-writer-d");
    const fs::path orphan_path =
        fs::path(dir) / (std::string("dead-writer-d") +
                         ArtifactStore::kFileSuffix + ".tmp.1.2");
    const fs::file_time_type old_stamp =
        fs::file_time_type::clock::now() - std::chrono::hours(2);
    fs::last_write_time(orphan_path, old_stamp);
    CompiledCache cache;
    cache.setDiskDir(dir);
    EXPECT_EQ(cache.stats().disk_tmp_swept, 1u);
    EXPECT_EQ(store.stats().tmp_files, 0u);
}

} // namespace
} // namespace loas
