/** @file Integration and property tests for the LoAS simulator. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "core/loas_sim.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

LayerSpec
smallSpec(std::size_t m, std::size_t n, std::size_t k, int t,
          double spike_sparsity, double silent, double weight_sparsity)
{
    LayerSpec spec;
    spec.name = "small";
    spec.t = t;
    spec.m = m;
    spec.n = n;
    spec.k = k;
    spec.spike_sparsity = spike_sparsity;
    spec.silent_ratio = silent;
    spec.silent_ratio_ft = silent;
    spec.weight_sparsity = weight_sparsity;
    return spec;
}

TEST(LoasSim, OutputMatchesReferenceOnPublishedLayer)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 1);
    LoasSim sim;
    sim.runLayer(layer);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, sim.config().lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

TEST(LoasSim, CyclesScaleWithWork)
{
    const LayerData small =
        generateLayer(smallSpec(8, 32, 256, 4, 0.8, 0.6, 0.9), 2);
    const LayerData large =
        generateLayer(smallSpec(16, 128, 512, 4, 0.8, 0.6, 0.9), 2);
    LoasSim sim;
    const auto r_small = sim.runLayer(small);
    const auto r_large = sim.runLayer(large);
    EXPECT_GT(r_large.total_cycles, r_small.total_cycles);
}

TEST(LoasSim, DenserSpikesCostMore)
{
    const LayerData sparse =
        generateLayer(smallSpec(16, 64, 512, 4, 0.9, 0.8, 0.9), 3);
    const LayerData dense =
        generateLayer(smallSpec(16, 64, 512, 4, 0.3, 0.1, 0.9), 3);
    LoasSim sim;
    EXPECT_LT(sim.runLayer(sparse).total_cycles,
              sim.runLayer(dense).total_cycles);
}

TEST(LoasSim, NoPsumTraffic)
{
    // The FTP dataflow keeps all partial sums in PE-local
    // accumulators: goal (2) of Section III.
    const LayerData layer = generateLayer(tables::vgg16L8(), 3);
    LoasSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_EQ(r.traffic.dramBytes(TensorCategory::Psum), 0u);
    EXPECT_EQ(r.traffic.sramBytes(TensorCategory::Psum), 0u);
}

TEST(LoasSim, InputDramIsCompressedFootprint)
{
    // Off-chip input traffic is compulsory (fits in cache): the
    // compressed fiber footprint, far below the dense spike train.
    const LayerData layer = generateLayer(tables::vgg16L8(), 4);
    LoasSim sim;
    const RunResult r = sim.runLayer(layer);
    const std::uint64_t dense_bytes = layer.spikes.denseBytes();
    const std::uint64_t input_dram =
        r.traffic.dramBytes(TensorCategory::Input);
    EXPECT_LT(input_dram, dense_bytes);
}

TEST(LoasSim, TotalCyclesCoverComputeAndDram)
{
    const LayerData layer = generateLayer(tables::alexnetL4(), 5);
    LoasSim sim;
    const RunResult r = sim.runLayer(layer);
    EXPECT_GE(r.total_cycles, r.compute_cycles);
    EXPECT_GE(r.total_cycles,
              std::min(r.compute_cycles, r.dram_cycles));
    EXPECT_LE(r.total_cycles, r.compute_cycles + r.dram_cycles + 64);
}

TEST(LoasSim, FtVariantReducesWork)
{
    const LayerSpec spec = tables::vgg16L8();
    const LayerData origin = generateLayer(spec, 6, false);
    const LayerData ft = generateLayer(spec, 6, true);
    LoasSim sim_origin;
    LoasSim sim_ft(LoasConfig{}, /*ft_compress=*/true);
    const auto r_origin = sim_origin.runLayer(origin);
    const auto r_ft = sim_ft.runLayer(ft);
    // Preprocessing raises the silent ratio, which cuts matches and
    // cycles (the ~20% gain of Fig. 12).
    EXPECT_LT(r_ft.total_cycles, r_origin.total_cycles);
    EXPECT_LT(r_ft.traffic.dramBytes(TensorCategory::Input),
              r_origin.traffic.dramBytes(TensorCategory::Input));
}

TEST(LoasSim, RunNetworkSumsLayers)
{
    NetworkSpec net;
    net.name = "tiny";
    net.layers.push_back(smallSpec(8, 16, 128, 4, 0.8, 0.6, 0.9));
    net.layers.push_back(smallSpec(8, 16, 128, 4, 0.8, 0.6, 0.9));
    const auto layers = generateNetwork(net, 8);
    LoasSim sim;
    const RunResult total = sim.runNetwork(layers, net.name);
    const RunResult l0 = sim.runLayer(layers[0]);
    const RunResult l1 = sim.runLayer(layers[1]);
    EXPECT_EQ(total.total_cycles, l0.total_cycles + l1.total_cycles);
    EXPECT_EQ(total.traffic.dramBytes(),
              l0.traffic.dramBytes() + l1.traffic.dramBytes());
    EXPECT_EQ(total.workload, "tiny");
}

TEST(LoasSimDeath, RejectsTooManyTimesteps)
{
    LoasConfig config;
    config.timesteps = 4;
    LoasSim sim(config);
    LayerData layer = generateLayer(smallSpec(2, 2, 32, 8, 0.5, 0.3,
                                              0.5),
                                    1);
    EXPECT_DEATH(sim.runLayer(layer), "timesteps");
}

/**
 * The headline property: for arbitrary shapes, sparsities and
 * timesteps, the cycle-level simulator's spike output is bit-exact
 * against the functional reference.
 */
class LoasSimProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LoasSimProperty, BitExactAgainstReference)
{
    Rng rng(GetParam() * 13 + 3);
    const std::size_t m = 1 + rng.uniformInt(24);
    const std::size_t n = 1 + rng.uniformInt(40);
    const std::size_t k = 1 + rng.uniformInt(600);
    const int t = 1 + static_cast<int>(rng.uniformInt(4));
    const double sparsity = rng.uniform(0.2, 0.95);
    const double silent = sparsity * rng.uniform(0.5, 0.9);
    const double wsp = rng.uniform(0.2, 0.98);

    LayerSpec spec = smallSpec(m, n, k, t, sparsity, silent, wsp);
    LoasConfig config;
    config.timesteps = t;
    const LayerData layer = generateLayer(spec, GetParam());
    LoasSim sim(config);
    sim.runLayer(layer);
    const SpikeTensor expected =
        referenceSnnLayer(layer.spikes, layer.weights, config.lif);
    EXPECT_EQ(sim.lastOutput(), expected)
        << "m=" << m << " n=" << n << " k=" << k << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoasSimProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

} // namespace
} // namespace loas
