/** @file Tests for the conventional CSR format used by baselines. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/csr.hh"

namespace loas {
namespace {

TEST(Csr, FromDenseRoundTrip)
{
    DenseMatrix<std::int32_t> dense(3, 4, 0);
    dense(0, 1) = 5;
    dense(1, 0) = -2;
    dense(2, 3) = 7;
    const CsrMatrix csr = CsrMatrix::fromDense(dense);
    EXPECT_EQ(csr.nnz(), 3u);
    EXPECT_EQ(csr.row_ptr.size(), 4u);
    EXPECT_EQ(csr.toDense(), dense);
}

TEST(Csr, FromSpikesPerTimestep)
{
    SpikeTensor a(2, 3, 2);
    a.setSpike(0, 1, 0);
    a.setSpike(1, 2, 0);
    a.setSpike(1, 2, 1);
    const CsrMatrix t0 = CsrMatrix::fromSpikes(a, 0);
    const CsrMatrix t1 = CsrMatrix::fromSpikes(a, 1);
    EXPECT_EQ(t0.nnz(), 2u);
    EXPECT_EQ(t1.nnz(), 1u);
    EXPECT_EQ(t1.col_idx[0], 2u);
    EXPECT_EQ(t0.values[0], 1);
}

TEST(Csr, StorageBytes)
{
    DenseMatrix<std::int32_t> dense(2, 128, 0);
    dense(0, 0) = 1;
    dense(1, 127) = 1;
    const CsrMatrix csr = CsrMatrix::fromDense(dense);
    // 2 nnz x (7 coord + 1 value) bits = 2 B, + 3 row pointers x 4 B.
    EXPECT_EQ(csr.storageBytes(7, 1), 2u + 12u);
}

TEST(Csr, CoordinateOverheadVsPackedFormat)
{
    // Section IV-A's motivating arithmetic: CSR spends multiple bits
    // of coordinates per 1-bit spike; the packed format spends one
    // bitmask bit per neuron. For any non-degenerate spike tensor the
    // CSR metadata exceeds the FTP bitmask bytes once neurons fire
    // more than once.
    Rng rng(5);
    SpikeTensor a(8, 128, 4);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 128; ++c)
            if (rng.bernoulli(0.4))
                a.setWord(r, c, 0b0110);

    std::size_t csr_bytes = 0;
    for (int t = 0; t < 4; ++t)
        csr_bytes += CsrMatrix::fromSpikes(a, t).storageBytes(7, 0);
    const std::size_t mask_bytes = 8 * 128 / 8;
    EXPECT_GT(csr_bytes, mask_bytes);
}

/** Property: round trip across random matrices. */
class CsrProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CsrProperty, RoundTrip)
{
    Rng rng(GetParam() + 17);
    const std::size_t rows = 1 + rng.uniformInt(30);
    const std::size_t cols = 1 + rng.uniformInt(60);
    DenseMatrix<std::int32_t> dense(rows, cols, 0);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(0.2))
                dense(r, c) =
                    static_cast<std::int32_t>(rng.uniformInt(200)) - 100;
    const CsrMatrix csr = CsrMatrix::fromDense(dense);
    EXPECT_EQ(csr.toDense(), dense);
    // Row pointers are monotone and end at nnz.
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_LE(csr.row_ptr[r], csr.row_ptr[r + 1]);
    EXPECT_EQ(csr.row_ptr.back(), csr.nnz());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace loas
