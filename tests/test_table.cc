/** @file Unit tests for the ASCII table / CSV emitters. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hh"

namespace loas {
namespace {

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"beta", "22"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable table({"a", "b"});
    table.addRow({"xxxxxx", "y"});
    const std::string out = table.str();
    std::istringstream is(out);
    std::string line1, line2;
    std::getline(is, line1);
    std::getline(is, line2);
    std::string line3;
    std::getline(is, line3);
    EXPECT_EQ(line1.size(), line3.size());
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmtX(4.081, 2), "4.08x");
    EXPECT_EQ(TextTable::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(TextTable::fmtInt(12), "12");
    EXPECT_EQ(TextTable::fmtPct(0.812, 1), "81.2%");
}

TEST(CsvWriter, WritesRows)
{
    const std::string path = "/tmp/loas_test_csv.csv";
    {
        CsvWriter csv(path, {"x", "y"});
        csv.addRow({"1", "2"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

} // namespace
} // namespace loas
