/** @file Unit and property tests for the Bitmask. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/bitmask.hh"

namespace loas {
namespace {

TEST(Bitmask, StartsEmpty)
{
    Bitmask mask(100);
    EXPECT_EQ(mask.size(), 100u);
    EXPECT_EQ(mask.popcount(), 0u);
    EXPECT_FALSE(mask.any());
}

TEST(Bitmask, SetAndTest)
{
    Bitmask mask(130);
    mask.set(0);
    mask.set(63);
    mask.set(64);
    mask.set(129);
    EXPECT_TRUE(mask.test(0));
    EXPECT_TRUE(mask.test(63));
    EXPECT_TRUE(mask.test(64));
    EXPECT_TRUE(mask.test(129));
    EXPECT_FALSE(mask.test(1));
    EXPECT_EQ(mask.popcount(), 4u);
    mask.set(63, false);
    EXPECT_FALSE(mask.test(63));
    EXPECT_EQ(mask.popcount(), 3u);
}

TEST(Bitmask, RankIsExclusivePrefixCount)
{
    Bitmask mask(200);
    mask.set(3);
    mask.set(64);
    mask.set(150);
    EXPECT_EQ(mask.rank(0), 0u);
    EXPECT_EQ(mask.rank(3), 0u);
    EXPECT_EQ(mask.rank(4), 1u);
    EXPECT_EQ(mask.rank(64), 1u);
    EXPECT_EQ(mask.rank(65), 2u);
    EXPECT_EQ(mask.rank(200), 3u);
}

TEST(Bitmask, AndIntersects)
{
    Bitmask a(70), b(70);
    a.set(1);
    a.set(65);
    a.set(33);
    b.set(65);
    b.set(2);
    b.set(33);
    const Bitmask c = a & b;
    EXPECT_EQ(c.popcount(), 2u);
    EXPECT_TRUE(c.test(65));
    EXPECT_TRUE(c.test(33));
    EXPECT_FALSE(c.test(1));
    EXPECT_FALSE(c.test(2));
}

TEST(Bitmask, ForEachSetVisitsInOrder)
{
    Bitmask mask(128);
    mask.set(5);
    mask.set(77);
    mask.set(127);
    std::vector<std::size_t> seen;
    mask.forEachSet([&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 5u);
    EXPECT_EQ(seen[1], 77u);
    EXPECT_EQ(seen[2], 127u);
}

TEST(Bitmask, SetBitsInRange)
{
    Bitmask mask(256);
    mask.set(10);
    mask.set(128);
    mask.set(129);
    mask.set(255);
    const auto bits = mask.setBitsInRange(11, 255);
    ASSERT_EQ(bits.size(), 2u);
    EXPECT_EQ(bits[0], 128u);
    EXPECT_EQ(bits[1], 129u);
    EXPECT_EQ(mask.setBitsInRange(0, 256).size(), 4u);
    EXPECT_TRUE(mask.setBitsInRange(11, 128).empty());
}

TEST(Bitmask, PopcountRange)
{
    Bitmask mask(256);
    mask.set(0);
    mask.set(100);
    mask.set(200);
    EXPECT_EQ(mask.popcountRange(0, 256), 3u);
    EXPECT_EQ(mask.popcountRange(1, 200), 1u);
    EXPECT_EQ(mask.popcountRange(1, 201), 2u);
    EXPECT_EQ(mask.popcountRange(150, 150), 0u);
}

TEST(Bitmask, StorageBytes)
{
    EXPECT_EQ(Bitmask(0).storageBytes(), 0u);
    EXPECT_EQ(Bitmask(1).storageBytes(), 1u);
    EXPECT_EQ(Bitmask(8).storageBytes(), 1u);
    EXPECT_EQ(Bitmask(9).storageBytes(), 2u);
    EXPECT_EQ(Bitmask(2304).storageBytes(), 288u);
}

/** Property sweep: rank/popcount/iteration agree on random masks. */
class BitmaskProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitmaskProperty, RandomConsistency)
{
    Rng rng(GetParam());
    const std::size_t size = 1 + rng.uniformInt(500);
    Bitmask mask(size);
    std::vector<bool> model(size, false);
    for (std::size_t i = 0; i < size; ++i) {
        if (rng.bernoulli(0.3)) {
            mask.set(i);
            model[i] = true;
        }
    }

    std::size_t running = 0;
    for (std::size_t i = 0; i < size; ++i) {
        EXPECT_EQ(mask.rank(i), running);
        EXPECT_EQ(mask.test(i), model[i]);
        running += model[i] ? 1 : 0;
    }
    EXPECT_EQ(mask.popcount(), running);

    std::size_t visited = 0;
    mask.forEachSet([&](std::size_t i) {
        EXPECT_TRUE(model[i]);
        ++visited;
    });
    EXPECT_EQ(visited, running);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmaskProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace loas
