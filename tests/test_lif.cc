/** @file Tests for the integer LIF dynamics (Eqs. 2-3). */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "snn/lif.hh"

namespace loas {
namespace {

TEST(Lif, FiresAboveThreshold)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    const LifStep step = stepLif(100, 0, p);
    EXPECT_TRUE(step.spike);
    EXPECT_EQ(step.membrane, 0); // hard reset
}

TEST(Lif, ThresholdIsStrict)
{
    LifParams p;
    p.v_th = 64;
    EXPECT_FALSE(stepLif(64, 0, p).spike);
    EXPECT_TRUE(stepLif(65, 0, p).spike);
}

TEST(Lif, LeaksWhenSilent)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    const LifStep step = stepLif(30, 10, p);
    EXPECT_FALSE(step.spike);
    EXPECT_EQ(step.membrane, 20); // (30 + 10) >> 1
}

TEST(Lif, MembraneCarriesAcrossTimesteps)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    // 40 then 40: first step leaks to 20, second reaches 60 -> no
    // spike; third step input 10 reaches 40 -> no spike.
    LifStep s1 = stepLif(40, 0, p);
    EXPECT_FALSE(s1.spike);
    EXPECT_EQ(s1.membrane, 20);
    LifStep s2 = stepLif(40, s1.membrane, p);
    EXPECT_FALSE(s2.spike);
    EXPECT_EQ(s2.membrane, 30);
    LifStep s3 = stepLif(40, s2.membrane, p);
    EXPECT_TRUE(s3.spike); // 70 > 64
    EXPECT_EQ(s3.membrane, 0);
}

TEST(Lif, NegativeInputsLeakArithmetically)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    const LifStep step = stepLif(-10, 0, p);
    EXPECT_FALSE(step.spike);
    EXPECT_EQ(step.membrane, -5);
}

TEST(Lif, AcrossTimestepsPacksSpikes)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    // t0: 100 -> spike, reset. t1: 50 -> no. t2: 40 (U=25) -> 65 ->
    // spike. t3: 0 -> no.
    const TimeWord spikes = lifAcrossTimesteps({100, 50, 40, 0}, p);
    EXPECT_EQ(spikes, 0b0101u);
}

TEST(Lif, AcrossTimestepsAllSilent)
{
    LifParams p;
    p.v_th = 1000;
    EXPECT_EQ(lifAcrossTimesteps({1, 2, 3, 4}, p), 0u);
}

TEST(Lif, TauShiftTwoQuartersTheMembrane)
{
    LifParams p;
    p.v_th = 100;
    p.tau_shift = 2;
    EXPECT_EQ(stepLif(80, 0, p).membrane, 20);
}

TEST(Lif, SoftResetCarriesResidual)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    p.reset = LifReset::Soft;
    const LifStep step = stepLif(100, 0, p);
    EXPECT_TRUE(step.spike);
    EXPECT_EQ(step.membrane, (100 - 64) >> 1);
}

TEST(Lif, SoftResetFiresMoreThanHard)
{
    LifParams hard;
    hard.v_th = 64;
    LifParams soft = hard;
    soft.reset = LifReset::Soft;
    // A strong constant drive: soft reset preserves the excess and
    // fires at least as often.
    const std::vector<std::int32_t> sums = {150, 30, 30, 30, 30, 30};
    const int hard_spikes = popcount64(lifAcrossTimesteps(sums, hard));
    const int soft_spikes = popcount64(lifAcrossTimesteps(sums, soft));
    EXPECT_GE(soft_spikes, hard_spikes);
}

/** Property sweep: packed result equals step-by-step recurrence. */
class LifProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LifProperty, PackedMatchesStepwise)
{
    const int v_th = std::get<0>(GetParam());
    const int shift = std::get<1>(GetParam());
    LifParams p;
    p.v_th = v_th;
    p.tau_shift = shift;

    std::vector<std::int32_t> sums;
    for (int i = 0; i < 8; ++i)
        sums.push_back((i * 37) % 150 - 20);

    TimeWord expected = 0;
    std::int32_t u = 0;
    for (std::size_t t = 0; t < sums.size(); ++t) {
        const LifStep step = stepLif(sums[t], u, p);
        if (step.spike)
            expected |= TimeWord{1} << t;
        u = step.membrane;
    }
    EXPECT_EQ(lifAcrossTimesteps(sums, p), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Params, LifProperty,
    ::testing::Combine(::testing::Values(16, 64, 90),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace loas
