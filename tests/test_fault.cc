/**
 * @file
 * Tests for the deterministic fault-injection registry (spec parsing,
 * seeded verdict determinism, env configuration, counters) and for
 * the disk circuit breaker it exercises: trip into memory-only mode
 * after consecutive disk I/O failures, timed half-open probe, full
 * recovery, and the rule that *data* rejections never feed the
 * breaker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hh"
#include "common/fault.hh"
#include "workload/artifact_store.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

namespace fs = std::filesystem;

/** Every test leaves the process-global registry disarmed. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

std::string
tempDir(const std::string& name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("loas-fault-" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A tiny real layer the artifact store can serialize. */
LayerData
tinyLayer(std::uint64_t seed)
{
    LayerSpec spec = tables::alexnetL4();
    spec.name = "fault-tiny";
    spec.m = 8;
    spec.n = 8;
    spec.k = 64;
    return generateLayer(spec, seed);
}

/** Compiles the tiny layer in the "loas" family. */
CompiledLayer
compileTiny(std::uint64_t seed)
{
    return AcceleratorRegistry::instance().make("loas")->prepare(
        tinyLayer(seed));
}

TEST(FaultSpec, ParsesSitesRatesAndSeed)
{
    FaultGuard guard;
    EXPECT_FALSE(fault::enabled());
    fault::configure("disk.write=0.5,engine.execute=1@seed=7");
    EXPECT_TRUE(fault::enabled());
    EXPECT_TRUE(fault::shouldFail(fault::Site::EngineExecute));
    EXPECT_EQ(fault::injectedCount(fault::Site::EngineExecute), 1u);
    // Unnamed sites stay at rate 0.
    EXPECT_FALSE(fault::shouldFail(fault::Site::SocketRead));
    EXPECT_EQ(fault::injectedCount(fault::Site::SocketRead), 0u);
}

TEST(FaultSpec, EmptySpecResetsAndZeroRateStillArms)
{
    FaultGuard guard;
    // A zero-rate spec arms the registry (the bench's overhead probe
    // measures exactly this state) but never injects.
    fault::configure("disk.write=0@seed=1");
    EXPECT_TRUE(fault::enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fault::shouldFail(fault::Site::DiskWrite));
    EXPECT_EQ(fault::injectedTotal(), 0u);
    fault::configure("");
    EXPECT_FALSE(fault::enabled());
}

TEST(FaultSpec, MalformedSpecsThrow)
{
    FaultGuard guard;
    EXPECT_THROW(fault::configure("disk.wrong=0.5"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("disk.write"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("disk.write=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("disk.write=-0.1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("disk.write=0.5@seed=x"),
                 std::invalid_argument);
    EXPECT_THROW(fault::configure("@seed=5"), std::invalid_argument);
    // A throwing configure leaves the registry disarmed.
    EXPECT_FALSE(fault::enabled());
}

TEST(FaultSpec, VerdictSequenceIsAPureFunctionOfTheSeed)
{
    FaultGuard guard;
    const auto sample = [](const std::string& spec) {
        fault::configure(spec);
        std::vector<bool> verdicts;
        for (int i = 0; i < 200; ++i)
            verdicts.push_back(
                fault::shouldFail(fault::Site::DiskWrite));
        return verdicts;
    };
    const std::vector<bool> a = sample("disk.write=0.3@seed=42");
    const std::vector<bool> b = sample("disk.write=0.3@seed=42");
    const std::vector<bool> c = sample("disk.write=0.3@seed=43");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // The rate is honored statistically: ~60 of 200 at 0.3.
    const std::size_t hits =
        static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(hits, 30u);
    EXPECT_LT(hits, 90u);
}

TEST(FaultSpec, MaybeThrowNamesTheSite)
{
    FaultGuard guard;
    fault::configure("engine.execute=1");
    try {
        fault::maybeThrow(fault::Site::EngineExecute);
        FAIL() << "expected an injected fault";
    } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()),
                  "injected fault at engine.execute");
    }
    fault::reset();
    fault::maybeThrow(fault::Site::EngineExecute); // disarmed: no-op
}

TEST(FaultSpec, ConfiguresFromEnvironment)
{
    FaultGuard guard;
    ASSERT_EQ(::unsetenv("LOAS_FAULT_SPEC"), 0);
    EXPECT_FALSE(fault::configureFromEnv());
    EXPECT_FALSE(fault::enabled());

    ASSERT_EQ(::setenv("LOAS_FAULT_SPEC", "socket.read=1", 1), 0);
    EXPECT_TRUE(fault::configureFromEnv());
    EXPECT_TRUE(fault::shouldFail(fault::Site::SocketRead));
    ASSERT_EQ(::unsetenv("LOAS_FAULT_SPEC"), 0);
}

TEST(DiskBreaker, ConsecutiveWriteFailuresTripIntoMemoryOnlyMode)
{
    FaultGuard guard;
    const std::string dir = tempDir("trip");
    CompiledCache cache;
    cache.setDiskBreaker(3, 1e6); // effectively no half-open retry
    cache.setDiskDir(dir);

    fault::configure("disk.write=1");
    for (int i = 0; i < 3; ++i)
        cache.getOrCompile("trip-key-" + std::to_string(i),
                           [] { return compileTiny(11); });
    CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.disk_trips, 1u);
    EXPECT_EQ(stats.disk_degraded, 1u);
    EXPECT_EQ(stats.disk_writes, 0u);
    EXPECT_EQ(ArtifactStore(dir).stats().files, 0u);

    // Open breaker: the next compile never touches the disk site, so
    // its injection counter stands still while the cache still serves.
    const std::uint64_t injected_before =
        fault::injectedCount(fault::Site::DiskWrite);
    const auto layer = cache.getOrCompile(
        "trip-key-3", [] { return compileTiny(11); });
    ASSERT_NE(layer, nullptr);
    EXPECT_EQ(fault::injectedCount(fault::Site::DiskWrite),
              injected_before);
    EXPECT_EQ(cache.stats().disk_trips, 1u); // no double count
}

TEST(DiskBreaker, HalfOpenProbeRecoversOrReArmsTheCooldown)
{
    FaultGuard guard;
    const std::string dir = tempDir("halfopen");
    CompiledCache cache;
    cache.setDiskBreaker(2, 40.0);
    cache.setDiskDir(dir);

    fault::configure("disk.write=1");
    for (int i = 0; i < 2; ++i)
        cache.getOrCompile("ho-key-" + std::to_string(i),
                           [] { return compileTiny(13); });
    ASSERT_EQ(cache.stats().disk_degraded, 1u);

    // Probe while the fault persists: still degraded, no second trip.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cache.getOrCompile("ho-key-2", [] { return compileTiny(13); });
    EXPECT_EQ(cache.stats().disk_degraded, 1u);
    EXPECT_EQ(cache.stats().disk_trips, 1u);

    // Disk heals; the next probe after the cooldown closes the
    // breaker and the store starts persisting again.
    fault::reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cache.getOrCompile("ho-key-3", [] { return compileTiny(13); });
    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.disk_degraded, 0u);
    EXPECT_EQ(stats.disk_writes, 1u);
    EXPECT_EQ(ArtifactStore(dir).stats().files, 1u);
}

TEST(DiskBreaker, DataRejectionsRecompileWithoutFeedingTheBreaker)
{
    FaultGuard guard;
    const std::string dir = tempDir("reject");
    CompiledCache cache;
    cache.setDiskBreaker(1, 1e6); // hair trigger: one I/O failure
    cache.setDiskDir(dir);

    const std::string key = "reject-key";
    cache.getOrCompile(key, [] { return compileTiny(17); });
    ASSERT_EQ(cache.stats().disk_writes, 1u);

    // Corrupt the stored payload, then force a reload: the rejection
    // must recompile-and-overwrite, not trip a breaker armed to trip
    // on a single I/O failure.
    const std::string path = ArtifactStore(dir).path(key);
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file.is_open());
        file.seekg(-1, std::ios::end);
        const int last = file.get();
        file.seekp(-1, std::ios::end);
        file.put(static_cast<char>(last ^ 1));
    }
    cache.clear(); // drop the memory level, keep the disk level
    cache.getOrCompile(key, [] { return compileTiny(17); });
    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.disk_rejects, 1u);
    EXPECT_EQ(stats.disk_trips, 0u);
    EXPECT_EQ(stats.disk_degraded, 0u);
    EXPECT_EQ(stats.disk_writes, 1u); // the overwrite, post-clear

    // An injected *read* I/O error, by contrast, counts: one is
    // enough at threshold 1 (the write fault keeps the recompile's
    // store from immediately closing the breaker again).
    cache.clear();
    fault::configure("disk.read=1,disk.write=1");
    cache.getOrCompile(key, [] { return compileTiny(17); });
    EXPECT_EQ(cache.stats().disk_trips, 1u);
    EXPECT_EQ(cache.stats().disk_degraded, 1u);
}

TEST(DiskBreaker, InsertFaultServesTheArtifactWithoutRetainingIt)
{
    FaultGuard guard;
    fault::configure("cache.insert=1");
    CompiledCache cache;
    int compiles = 0;
    const auto compile = [&] {
        ++compiles;
        return compileTiny(19);
    };
    const auto first = cache.getOrCompile("insert-key", compile);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.stats().entries, 0u); // not retained
    const auto second = cache.getOrCompile("insert-key", compile);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(compiles, 2); // recompiled, served, still not retained
    EXPECT_EQ(cache.stats().misses, 2u);
}

} // namespace
} // namespace loas
