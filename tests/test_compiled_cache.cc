/**
 * @file
 * Tests for the two-phase prepare/execute pipeline and the shared
 * compiled-workload cache: hit/miss accounting, once-only concurrent
 * compilation, cross-variant (non-)sharing rules, the 9-cell sweep
 * acceptance criterion, and thread-count-invariant sweep output with
 * the cache in the loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/json.hh"
#include "api/sim_engine.hh"
#include "api/sweep.hh"
#include "api/sweep_io.hh"
#include "baselines/sparten.hh"
#include "core/loas_sim.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

/** A compiled layer stub carrying only a footprint. */
CompiledLayer
stubLayer(std::size_t bytes)
{
    CompiledLayer compiled;
    compiled.family = "stub";
    compiled.bytes = bytes;
    return compiled;
}

TEST(CompiledCache, CountsHitsMissesEntriesAndBytes)
{
    CompiledCache cache;
    int compiles = 0;
    const auto compile_a = [&] {
        ++compiles;
        return stubLayer(100);
    };
    const auto compile_b = [&] {
        ++compiles;
        return stubLayer(40);
    };

    const auto a1 = cache.getOrCompile("a", compile_a);
    const auto a2 = cache.getOrCompile("a", compile_a);
    const auto b1 = cache.getOrCompile("b", compile_b);
    EXPECT_EQ(compiles, 2);
    EXPECT_EQ(a1.get(), a2.get()); // shared, not recompiled
    EXPECT_NE(a1.get(), b1.get());

    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 140u);
    EXPECT_GE(stats.compile_ms, 0.0);
}

TEST(CompiledCache, ClearDropsEntriesAndStats)
{
    CompiledCache cache;
    cache.getOrCompile("a", [] { return stubLayer(8); });
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);

    int compiles = 0;
    cache.getOrCompile("a", [&] {
        ++compiles;
        return stubLayer(8);
    });
    EXPECT_EQ(compiles, 1); // really gone, compiled again
}

TEST(CompiledCache, ConcurrentRequestsCompileExactlyOnce)
{
    CompiledCache cache;
    std::atomic<int> compiles{0};
    constexpr int kThreads = 8;

    std::vector<std::thread> pool;
    std::vector<std::shared_ptr<const CompiledLayer>> got(kThreads);
    pool.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        pool.emplace_back([&, i] {
            got[i] = cache.getOrCompile("key", [&] {
                ++compiles;
                return stubLayer(16);
            });
        });
    for (auto& t : pool)
        t.join();

    EXPECT_EQ(compiles.load(), 1);
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[i].get(), got[0].get());
    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CompiledCache, KeySeparatesEveryComponent)
{
    const std::string base =
        compiledLayerKey("net", 0, false, "loas", 4, 101);
    EXPECT_NE(base, compiledLayerKey("net2", 0, false, "loas", 4, 101));
    EXPECT_NE(base, compiledLayerKey("net", 1, false, "loas", 4, 101));
    EXPECT_NE(base, compiledLayerKey("net", 0, true, "loas", 4, 101));
    EXPECT_NE(base, compiledLayerKey("net", 0, false, "gamma", 4, 101));
    EXPECT_NE(base, compiledLayerKey("net", 0, false, "loas", 8, 101));
    EXPECT_NE(base, compiledLayerKey("net", 0, false, "loas", 4, 102));
}

TEST(CompiledCacheEviction, ByteBudgetEvictsLeastRecentlyUsed)
{
    CompiledCache cache;
    cache.setByteBudget(150);
    cache.getOrCompile("netA#l0", [] { return stubLayer(60); });
    cache.getOrCompile("netB#l0", [] { return stubLayer(60); });
    // Touch A: B becomes the least recently used entry.
    cache.getOrCompile("netA#l0", [] { return stubLayer(60); });
    cache.getOrCompile("netC#l0", [] { return stubLayer(60); });

    CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, 120u);

    // A and C survived; B was evicted and recompiles.
    int compiles = 0;
    const auto count = [&] {
        ++compiles;
        return stubLayer(60);
    };
    cache.getOrCompile("netA#l0", count);
    EXPECT_EQ(compiles, 0);
    cache.setByteBudget(0); // lift the budget: no further eviction
    cache.getOrCompile("netB#l0", count);
    EXPECT_EQ(compiles, 1);
    cache.getOrCompile("netC#l0", count);
    EXPECT_EQ(compiles, 1);
}

TEST(CompiledCacheEviction, FinishedNetworkEntriesGoFirst)
{
    CompiledCache cache;
    cache.setByteBudget(150);
    cache.getOrCompile("netA#l0", [] { return stubLayer(60); });
    cache.getOrCompile("netB#l0", [] { return stubLayer(60); });
    // Plain LRU would evict A (the older entry); finishing B demotes
    // it below everything still live.
    cache.finishNetwork("netB");
    cache.getOrCompile("netC#l0", [] { return stubLayer(60); });

    EXPECT_EQ(cache.stats().evictions, 1u);
    int compiles = 0;
    const auto count = [&] {
        ++compiles;
        return stubLayer(60);
    };
    cache.setByteBudget(0);
    cache.getOrCompile("netA#l0", count);
    cache.getOrCompile("netC#l0", count);
    EXPECT_EQ(compiles, 0); // both survivors still resident
    cache.getOrCompile("netB#l0", count);
    EXPECT_EQ(compiles, 1); // the finished network was the victim
}

TEST(CompiledCacheEviction, HitPromotesFinishedEntryBackToLive)
{
    CompiledCache cache;
    cache.setByteBudget(150);
    cache.getOrCompile("netA#l0", [] { return stubLayer(60); });
    cache.getOrCompile("netB#l0", [] { return stubLayer(60); });
    cache.finishNetwork("netA");
    // A is hit again: it rejoins the live pool, so the budget squeeze
    // falls back to plain LRU and evicts B.
    cache.getOrCompile("netA#l0", [] { return stubLayer(60); });
    cache.getOrCompile("netC#l0", [] { return stubLayer(60); });

    int compiles = 0;
    const auto count = [&] {
        ++compiles;
        return stubLayer(60);
    };
    cache.setByteBudget(0);
    cache.getOrCompile("netA#l0", count);
    EXPECT_EQ(compiles, 0);
    cache.getOrCompile("netB#l0", count);
    EXPECT_EQ(compiles, 1);
}

TEST(CompiledCacheEviction, OversizedEntryStaysResident)
{
    // A single artifact larger than the whole budget must still cache
    // (evicting it would thrash); everything else is pushed out.
    CompiledCache cache;
    cache.setByteBudget(50);
    cache.getOrCompile("small#l0", [] { return stubLayer(10); });
    cache.getOrCompile("huge#l0", [] { return stubLayer(400); });

    const CompiledCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, 400u);
    EXPECT_EQ(stats.evictions, 1u);

    int compiles = 0;
    cache.getOrCompile("huge#l0", [&] {
        ++compiles;
        return stubLayer(400);
    });
    EXPECT_EQ(compiles, 0);
}

TEST(CompiledCacheEviction, ClearThenReuseKeepsByteAccountingExact)
{
    // clear() resets gauges and counters through the same accounting
    // path as eviction, so `bytes` always equals the resident sum.
    CompiledCache cache;
    cache.setByteBudget(1000);
    cache.getOrCompile("a", [] { return stubLayer(100); });
    cache.getOrCompile("b", [] { return stubLayer(200); });
    EXPECT_EQ(cache.stats().bytes, 300u);
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    cache.getOrCompile("c", [] { return stubLayer(40); });
    EXPECT_EQ(cache.stats().bytes, 40u);
    cache.clear();
    EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(PrepareExecute, RunLayerEqualsPreparePlusExecute)
{
    const LayerData layer = generateLayer(tables::alexnetL4(), 17);
    LoasSim one_shot;
    LoasSim two_phase;
    const RunResult direct = one_shot.runLayer(layer);
    const RunResult split = two_phase.execute(two_phase.prepare(layer));
    EXPECT_EQ(json::toJson(direct), json::toJson(split));
    EXPECT_EQ(one_shot.lastOutput(), two_phase.lastOutput());
}

TEST(PrepareExecute, ArtifactsAreSharedAcrossDesignVariants)
{
    // A layer compiled by one LoAS variant executes bit-identically on
    // another: prepare() output is hardware-option independent.
    const LayerData layer = generateLayer(tables::vgg16L8(), 23);
    LoasConfig narrow;
    narrow.num_pes = 8;
    LoasConfig wide;
    wide.num_pes = 64;
    LoasSim compiler(narrow);
    LoasSim runner(wide);

    const CompiledLayer compiled = compiler.prepare(layer);
    const RunResult shared = runner.execute(compiled);
    const RunResult direct = LoasSim(wide).runLayer(layer);
    EXPECT_EQ(json::toJson(shared), json::toJson(direct));
}

TEST(PrepareExecuteDeathTest, ExecuteRejectsForeignFamilies)
{
    const LayerData layer = generateLayer(tables::alexnetL4(), 3);
    SpartenSim sparten;
    const CompiledLayer foreign = sparten.prepare(layer);
    LoasSim loas;
    EXPECT_DEATH(loas.execute(foreign), "family");
}

TEST(SimEngineCache, SameFamilyDesignsCompileOnce)
{
    SimRequest request;
    request.accels = {"loas?pes=8", "loas?pes=16", "loas?pes=32"};
    request.networks = {NetworkSpec{"layer", {tables::alexnetL4()}}};
    request.seed = 7;
    const SimReport report = SimEngine().run(request);

    EXPECT_EQ(report.compile_cache.misses, 1u);
    EXPECT_EQ(report.compile_cache.hits, 2u);
    EXPECT_GT(report.compile_cache.bytes, 0u);
    EXPECT_GE(report.prepare_ms, 0.0);
    EXPECT_GT(report.sim_ms, 0.0);
}

TEST(SimEngineCache, FtVariantDoesNotShareWithPlain)
{
    // loas and loas-ft run differently-preprocessed workloads, so the
    // cache must keep their artifacts apart (one miss each, no hits).
    SimRequest request;
    request.accels = {"loas", "loas-ft"};
    request.networks = {NetworkSpec{"layer", {tables::vgg16L8()}}};
    request.seed = 7;
    const SimReport report = SimEngine().run(request);

    EXPECT_EQ(report.compile_cache.misses, 2u);
    EXPECT_EQ(report.compile_cache.hits, 0u);
}

TEST(SimEngineCache, DifferentFamiliesDoNotShare)
{
    SimRequest request;
    request.accels = {"loas", "sparten", "gamma"};
    request.networks = {NetworkSpec{"layer", {tables::alexnetL4()}}};
    request.seed = 7;
    const SimReport report = SimEngine().run(request);

    EXPECT_EQ(report.compile_cache.misses, 3u);
    EXPECT_EQ(report.compile_cache.hits, 0u);
}

TEST(SimEngineCache, SharedArtifactsKeepResultsBitIdentical)
{
    // The cached path must not change any simulated number relative to
    // direct one-shot invocation of each design.
    SimRequest request;
    request.accels = {"loas?pes=8", "loas?pes=64"};
    request.networks = {NetworkSpec{"layer", {tables::alexnetL4()}}};
    request.seed = 31;
    const SimReport report = SimEngine().run(request);

    const std::vector<LayerData> layers =
        generateNetwork(request.networks[0], 31);
    LoasConfig narrow;
    narrow.num_pes = 8;
    LoasConfig wide;
    wide.num_pes = 64;
    EXPECT_EQ(json::toJson(report.at("loas?pes=8", "layer").result),
              json::toJson(
                  LoasSim(narrow).runNetwork(layers, "layer")));
    EXPECT_EQ(json::toJson(report.at("loas?pes=64", "layer").result),
              json::toJson(LoasSim(wide).runNetwork(layers, "layer")));
}

/** The ISSUE acceptance sweep: 3 designs x 3 networks, one family. */
SweepRequest
nineCellSweep()
{
    SweepRequest request;
    request.grids = {"loas?pes=16,32,64&t=4"};
    request.networks = {"alexnet-l4", "vgg16-l8", "resnet19-l19"};
    request.seed = 11;
    return request;
}

TEST(SweepEngineCache, NineCellSweepCompilesOncePerLayerKey)
{
    const SweepReport report = SweepEngine().run(nineCellSweep());
    ASSERT_EQ(report.cells.size(), 9u);

    // One compilation per (network, layer, family, timesteps) key —
    // three networks of one layer each — not one per cell.
    EXPECT_EQ(report.compile_cache.misses, 3u);
    EXPECT_EQ(report.compile_cache.hits, 6u);
    EXPECT_EQ(report.compile_cache.entries, 3u);
    for (const auto& cell : report.cells)
        EXPECT_GT(cell.result.total_cycles, 0u);
}

TEST(SweepEngineCache, ThreadedSweepIsBitIdenticalToSerial)
{
    SweepRequest request = nineCellSweep();
    request.threads = 1;
    const SweepReport serial = SweepEngine().run(request);
    request.threads = 8;
    const SweepReport threaded = SweepEngine().run(request);

    EXPECT_EQ(toCsv(serial), toCsv(threaded));
    EXPECT_EQ(json::toJson(serial), json::toJson(threaded));
    // Cache accounting is thread-count invariant too: the per-slot
    // mutex makes compilation once-only under any schedule.
    EXPECT_EQ(serial.compile_cache.misses,
              threaded.compile_cache.misses);
    EXPECT_EQ(serial.compile_cache.hits, threaded.compile_cache.hits);
    EXPECT_EQ(serial.compile_cache.bytes,
              threaded.compile_cache.bytes);
}

TEST(ProcessCache, PersistsArtifactsAcrossEngineRuns)
{
    // The request-supplied cache outlives SimEngine::run: the second
    // run recompiles nothing and reports pure hits, with per-run
    // counters delta'd against the shared cache's history.
    CompiledCache shared;
    SimRequest request;
    request.accels = {"loas?pes=8", "loas?pes=16"};
    request.networks = {NetworkSpec{"layer", {tables::alexnetL4()}}};
    request.seed = 7;
    request.compiled_cache = &shared;

    const SimReport first = SimEngine().run(request);
    EXPECT_EQ(first.compile_cache.misses, 1u);
    EXPECT_EQ(first.compile_cache.hits, 1u);

    const SimReport second = SimEngine().run(request);
    EXPECT_EQ(second.compile_cache.misses, 0u);
    EXPECT_EQ(second.compile_cache.hits, 2u);
    EXPECT_EQ(second.compile_cache.compile_ms, 0.0);
    EXPECT_EQ(json::toJson(first.runs[0].result),
              json::toJson(second.runs[0].result));

    // A different seed is a different workload: no false sharing.
    request.seed = 8;
    const SimReport reseeded = SimEngine().run(request);
    EXPECT_EQ(reseeded.compile_cache.misses, 1u);
}

TEST(ProcessCache, ConcurrentEnginesShareOneCache)
{
    // Two engine runs race on one process-lifetime cache: compilation
    // stays once-only per key across both, and each run's results are
    // bit-identical to a private-cache run.
    SimRequest request;
    request.accels = {"loas?pes=8", "loas?pes=16"};
    request.networks = {NetworkSpec{"layer", {tables::vgg16L8()}}};
    request.seed = 13;
    request.threads = 2;
    const SimReport reference = SimEngine().run(request);

    CompiledCache shared;
    request.compiled_cache = &shared;
    SimReport a, b;
    std::thread ta([&] { a = SimEngine().run(request); });
    std::thread tb([&] { b = SimEngine().run(request); });
    ta.join();
    tb.join();

    const CompiledCache::Stats stats = shared.stats();
    EXPECT_EQ(stats.misses, 1u); // one key, compiled exactly once
    EXPECT_EQ(stats.hits, 3u);   // the other three requests shared it
    EXPECT_EQ(stats.entries, 1u);
    for (const SimReport* report : {&a, &b})
        for (std::size_t i = 0; i < reference.runs.size(); ++i)
            EXPECT_EQ(json::toJson(report->runs[i].result),
                      json::toJson(reference.runs[i].result));
}

} // namespace
} // namespace loas
