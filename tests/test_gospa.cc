/** @file Tests for the GoSPA-SNN baseline (psum traffic, Fig. 5). */

#include <gtest/gtest.h>

#include "baselines/gospa.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Gospa, PsumTrafficScalesRoughlyWithT)
{
    // Fig. 5: at T=4, on average ~4x more partial-sum off-chip
    // traffic than at T=1.
    const LayerSpec spec4 = tables::vgg16L8();
    const LayerSpec spec1 = tables::withTimesteps(spec4, 1);
    GospaSim sim;
    sim.runLayer(generateLayer(spec4, 1));
    const std::uint64_t psum4 = sim.lastPsumDramBytes();
    sim.runLayer(generateLayer(spec1, 1));
    const std::uint64_t psum1 = sim.lastPsumDramBytes();
    EXPECT_GT(psum4, 0u);
    // The working set is M*N*T*4B minus the fixed buffer, so the
    // ratio is at least T.
    EXPECT_GE(static_cast<double>(psum4),
              4.0 * static_cast<double>(psum1));
}

TEST(Gospa, NoSpillWhenPsumFits)
{
    GospaConfig config;
    config.psum_buffer_bytes = 1 << 22; // 4 MB: everything fits
    LayerSpec spec = tables::vgg16L8();
    GospaSim sim(config);
    const RunResult r = sim.runLayer(generateLayer(spec, 2));
    EXPECT_EQ(sim.lastPsumDramBytes(), 0u);
    EXPECT_EQ(r.traffic.dramBytes(TensorCategory::Psum), 0u);
}

TEST(Gospa, SpillBytesMatchWorkingSetModel)
{
    GospaConfig config;
    config.psum_buffer_bytes = 32 * 1024;
    config.psum_spill_fraction = 0.5;
    const LayerSpec spec = tables::vgg16L8(); // ws = 16*512*4*4 B
    GospaSim sim(config);
    sim.runLayer(generateLayer(spec, 3));
    const std::uint64_t ws = 16ull * 512 * 4 * 4;
    EXPECT_EQ(sim.lastPsumDramBytes(),
              2 * static_cast<std::uint64_t>(0.5 * (ws - 32 * 1024)));
}

TEST(Gospa, PerSpikeCsrMetadataTraffic)
{
    // GoSPA stores spikes with multi-bit coordinates: its metadata
    // traffic exceeds one bitmask bit per neuron (the inefficiency
    // Section II-D calls out).
    const LayerData layer = generateLayer(tables::vgg16L8(), 4);
    GospaSim sim;
    const RunResult r = sim.runLayer(layer);
    const std::uint64_t meta_dram =
        r.traffic.dram_read[static_cast<int>(TensorCategory::Meta)];
    const std::uint64_t packed_mask_bytes =
        layer.spec.m * layer.spec.k / 8;
    EXPECT_GT(meta_dram, packed_mask_bytes);
}

TEST(Gospa, UpdateCountMatchesWork)
{
    // Every (spike, non-zero weight) pair in a shared k produces one
    // merge op.
    LayerSpec spec;
    spec.name = "tiny";
    spec.t = 2;
    spec.m = 4;
    spec.n = 8;
    spec.k = 16;
    spec.spike_sparsity = 0.5;
    spec.silent_ratio = 0.3;
    spec.silent_ratio_ft = 0.3;
    spec.weight_sparsity = 0.5;
    const LayerData layer = generateLayer(spec, 5);
    GospaSim sim;
    const RunResult r = sim.runLayer(layer);

    std::uint64_t expected = 0;
    for (int t = 0; t < spec.t; ++t)
        for (std::size_t k = 0; k < spec.k; ++k) {
            std::uint64_t spikes = 0;
            for (std::size_t m = 0; m < spec.m; ++m)
                spikes += layer.spikes.spike(m, k, t) ? 1 : 0;
            std::uint64_t weights = 0;
            for (std::size_t n = 0; n < spec.n; ++n)
                weights += layer.weights(k, n) != 0 ? 1 : 0;
            expected += spikes * weights;
        }
    EXPECT_EQ(r.ops.merge_ops, expected);
    EXPECT_EQ(r.ops.acc_ops, expected);
}

TEST(Gospa, ComputeCyclesBoundedBelowByUpdates)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 6);
    GospaConfig config;
    GospaSim sim(config);
    const RunResult r = sim.runLayer(layer);
    EXPECT_GE(r.compute_cycles,
              r.ops.merge_ops /
                  static_cast<std::uint64_t>(config.num_pes));
}

} // namespace
} // namespace loas
