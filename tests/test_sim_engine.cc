/** @file Tests for the batched multi-threaded simulation engine. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/json.hh"
#include "api/sim_engine.hh"
#include "core/loas_sim.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

/** A small two-network request covering plain and FT workloads. */
SimRequest
smallRequest()
{
    SimRequest request;
    request.accels = {"sparten", "loas", "loas-ft", "gamma?pes=8"};
    request.networks =
        {NetworkSpec{"net-a", {tables::alexnetL4(), tables::vgg16L8()}},
         NetworkSpec{"net-b", {tables::resnet19L19()}}};
    request.seed = 5;
    return request;
}

bool
identicalRuns(const SimRun& a, const SimRun& b)
{
    // Bit-identical simulation and energy outcomes; the JSON form
    // covers every scalar field, traffic category and op counter.
    return json::toJson(a) == json::toJson(b);
}

TEST(SimEngine, ProducesFullJobMatrixInRequestOrder)
{
    const SimRequest request = smallRequest();
    const SimReport report = SimEngine().run(request);
    ASSERT_EQ(report.runs.size(),
              request.accels.size() * request.networks.size());
    std::size_t i = 0;
    for (const auto& accel : request.accels) {
        for (const auto& net : request.networks) {
            EXPECT_EQ(report.runs[i].accel_spec, accel);
            EXPECT_EQ(report.runs[i].network, net.name);
            EXPECT_GT(report.runs[i].result.total_cycles, 0u);
            EXPECT_GT(report.runs[i].energy.totalPj(), 0.0);
            ++i;
        }
    }
    EXPECT_EQ(&report.at("loas", "net-b"),
              report.find("loas", "net-b"));
    EXPECT_EQ(report.find("loas", "no-such-network"), nullptr);
}

TEST(SimEngine, MultiThreadedRunIsBitIdenticalToSerial)
{
    SimRequest request = smallRequest();
    request.threads = 1;
    const SimReport serial = SimEngine().run(request);
    request.threads = 8;
    const SimReport threaded = SimEngine().run(request);

    ASSERT_EQ(serial.runs.size(), threaded.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE(serial.runs[i].accel_spec + " / " +
                     serial.runs[i].network);
        EXPECT_TRUE(identicalRuns(serial.runs[i], threaded.runs[i]));
    }
}

TEST(SimEngine, MatchesDirectSimulatorInvocation)
{
    SimRequest request;
    request.accels = {"loas"};
    request.networks = {tables::alexnet()};
    request.seed = 11;
    const SimReport report = SimEngine().run(request);

    LoasSim direct;
    const RunResult expected = direct.runNetwork(
        generateNetwork(tables::alexnet(), 11), tables::alexnet().name);
    const RunResult& got = report.runs.front().result;
    EXPECT_EQ(got.total_cycles, expected.total_cycles);
    EXPECT_EQ(got.compute_cycles, expected.compute_cycles);
    EXPECT_EQ(got.traffic.dramBytes(), expected.traffic.dramBytes());
    EXPECT_EQ(got.ops.total(), expected.ops.total());
}

TEST(SimEngine, FtDesignsGetTheFtWorkload)
{
    SimRequest request;
    request.accels = {"loas", "loas-ft"};
    request.networks = {NetworkSpec{"layer", {tables::vgg16L8()}}};
    request.seed = 3;
    const SimReport report = SimEngine().run(request);

    // The FT-preprocessed workload has more silent neurons, so the
    // fully temporal-parallel design does strictly less join work.
    EXPECT_LT(report.at("loas-ft", "layer").result.ops.total(),
              report.at("loas", "layer").result.ops.total());
}

TEST(SimEngine, RejectsBadRequestsBeforeSimulating)
{
    SimRequest request = smallRequest();
    request.accels.push_back("no-such-accel");
    EXPECT_THROW(SimEngine().run(request), std::invalid_argument);
    request = smallRequest();
    request.accels.push_back("loas?bogus=1");
    EXPECT_THROW(SimEngine().run(request), std::invalid_argument);
    // Duplicate network names would silently share compiled operands
    // (and alias report cells), so they are rejected up front.
    request = smallRequest();
    request.networks.push_back(
        NetworkSpec{"net-a", {tables::vgg16L8()}});
    EXPECT_THROW(SimEngine().run(request), std::invalid_argument);
}

TEST(SimEngineJson, ReportSerializesEveryRun)
{
    SimRequest request;
    request.accels = {"sparten", "loas"};
    request.networks = {NetworkSpec{"layer", {tables::alexnetL4()}}};
    request.seed = 9;
    const SimReport report = SimEngine().run(request);
    const std::string out = json::toJson(report);

    EXPECT_NE(out.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(out.find("\"accel_spec\": \"sparten\""),
              std::string::npos);
    EXPECT_NE(out.find("\"accel\": \"LoAS\""), std::string::npos);
    EXPECT_NE(out.find("\"total_cycles\": "), std::string::npos);
    EXPECT_NE(out.find("\"dram_read_bytes\": "), std::string::npos);
    EXPECT_NE(out.find("\"total_pj\": "), std::string::npos);
}

TEST(RunResultAggregation, StaticScaleAdoptsFirstWorkBearingSummand)
{
    RunResult total;
    RunResult empty;          // zero work: scale is immaterial
    empty.static_scale = 0.25;
    RunResult systolic;
    systolic.compute_cycles = 10;
    systolic.total_cycles = 10;
    systolic.static_scale = 0.2;

    total += empty;
    total += systolic;
    total += systolic;
    EXPECT_DOUBLE_EQ(total.static_scale, 0.2);
    EXPECT_EQ(total.total_cycles, 20u);
}

TEST(SimEngineJson, EscapesStrings)
{
    EXPECT_EQ(json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

} // namespace
} // namespace loas
