/** @file Tests for the P-LIF unit. */

#include <gtest/gtest.h>

#include "core/plif.hh"

namespace loas {
namespace {

TEST(Plif, MatchesScalarRecurrence)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    const Plif plif(p, 4);
    const PlifResult r = plif.fire({100, 50, 40, 0});
    EXPECT_EQ(r.spikes, lifAcrossTimesteps({100, 50, 40, 0}, p));
}

TEST(Plif, OneOpPerTimestep)
{
    const Plif plif(LifParams{}, 4);
    EXPECT_EQ(plif.fire({0, 0, 0, 0}).ops.lif_ops, 4u);
    const Plif plif8(LifParams{}, 8);
    EXPECT_EQ(plif8.fire({0, 0, 0, 0, 0, 0, 0, 0}).ops.lif_ops, 8u);
}

TEST(Plif, LatencyIsOneStagePerTimestep)
{
    EXPECT_EQ(Plif(LifParams{}, 4).latency(), 4u);
    EXPECT_EQ(Plif(LifParams{}, 16).latency(), 16u);
}

TEST(PlifDeath, WrongSumCount)
{
    const Plif plif(LifParams{}, 4);
    EXPECT_DEATH(plif.fire({1, 2, 3}), "P-LIF");
}

TEST(Plif, MembraneCarryProducesLaterSpike)
{
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;
    const Plif plif(p, 3);
    // 40 -> U 20; 40 -> 60, U 30; 40 -> 70 > 64 -> spike at t2 only.
    EXPECT_EQ(plif.fire({40, 40, 40}).spikes, 0b100u);
}

} // namespace
} // namespace loas
