/**
 * @file
 * Invariants of the batch axis (SimRequest::batch):
 *
 *  1. batch=1 is byte-identical to the pre-batching pipeline: the
 *     generator emits the same tensors, and the report JSON carries
 *     no "inputs" field.
 *  2. Batch-prefix property: input b is the same tensor (and the same
 *     RunResult) whatever the total batch size, so input 0 of any
 *     batch equals the batch=1 run.
 *  3. executeBatch is thread-count invariant: aggregate and per-input
 *     results are bit-identical at any thread count.
 *  4. The serve protocol round-trips "batch" (serve/2) and old
 *     clients that omit it get batch 1 (serve/1 behavior).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "api/json.hh"
#include "api/registry.hh"
#include "api/sim_engine.hh"
#include "serve/json_parse.hh"
#include "serve/protocol.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

void
expectSameResult(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.dram_cycles, b.dram_cycles);
    EXPECT_EQ(a.traffic.dramBytes(), b.traffic.dramBytes());
    EXPECT_EQ(a.traffic.sramBytes(), b.traffic.sramBytes());
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.ops.total(), b.ops.total());
}

// --- 1. batch=1 byte-identity ----------------------------------------

TEST(Batch, BatchOneGeneratorIsIdentical)
{
    const LayerSpec spec = tables::alexnetL4();
    for (const bool ft : {false, true}) {
        const LayerData legacy = generateLayer(spec, 101, ft);
        const LayerData batched = generateLayer(spec, 101, ft, 1);
        EXPECT_EQ(batched.batchSize(), 1u);
        EXPECT_TRUE(batched.extra_inputs.empty());
        EXPECT_TRUE(legacy.spikes == batched.spikes);
        EXPECT_TRUE(legacy.weights == batched.weights);
    }
}

TEST(Batch, BatchOneReportJsonHasNoInputsField)
{
    SimRequest request;
    request.accels = {"loas"};
    request.networks = {{"alexnet-l4", {tables::alexnetL4()}}};
    request.energy = false;
    const SimReport report = SimEngine().run(request);
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_TRUE(report.runs[0].per_input.empty());
    EXPECT_EQ(json::toJson(report).find("\"inputs\""), std::string::npos);
}

TEST(Batch, EngineRejectsBatchZero)
{
    SimRequest request;
    request.accels = {"loas"};
    request.networks = {{"alexnet-l4", {tables::alexnetL4()}}};
    request.batch = 0;
    EXPECT_THROW(SimEngine().run(request), std::invalid_argument);
}

// --- 2. Batch-prefix property ----------------------------------------

TEST(Batch, InputTensorsIndependentOfBatchSize)
{
    const LayerSpec spec = tables::vgg16L8();
    const LayerData small = generateLayer(spec, 101, false, 2);
    const LayerData large = generateLayer(spec, 101, false, 5);
    ASSERT_EQ(small.batchSize(), 2u);
    ASSERT_EQ(large.batchSize(), 5u);
    EXPECT_TRUE(small.weights == large.weights);
    for (std::size_t b = 0; b < small.batchSize(); ++b)
        EXPECT_TRUE(small.input(b) == large.input(b));
    // Distinct inputs really are distinct workloads.
    EXPECT_FALSE(large.input(0) == large.input(1));
    EXPECT_FALSE(large.input(1) == large.input(2));
}

TEST(Batch, InputZeroMatchesBatchOneExecution)
{
    const auto& registry = AcceleratorRegistry::instance();
    const LayerSpec spec = tables::alexnetL4();
    for (const auto& key : registry.keys()) {
        SCOPED_TRACE(key);
        const bool ft = registry.entry(key).ft_workload;
        const auto single = registry.make(key);
        const CompiledLayer c1 =
            single->prepare(generateLayer(spec, 101, ft, 1));
        const RunResult solo = single->execute(c1);

        const auto batched = registry.make(key);
        const CompiledLayer c4 =
            batched->prepare(generateLayer(spec, 101, ft, 4));
        EXPECT_EQ(c4.batch, 4u);
        std::vector<RunResult> per_input;
        batched->executeBatch(c4, 1, &per_input);
        ASSERT_EQ(per_input.size(), 4u);
        expectSameResult(per_input[0], solo);
    }
}

// --- 3. Thread-count invariance --------------------------------------

TEST(Batch, ExecuteBatchIsThreadCountInvariant)
{
    const auto& registry = AcceleratorRegistry::instance();
    const LayerSpec spec = tables::alexnetL4();
    for (const auto& key : registry.keys()) {
        SCOPED_TRACE(key);
        const bool ft = registry.entry(key).ft_workload;
        const LayerData layer = generateLayer(spec, 101, ft, 3);

        const auto serial = registry.make(key);
        const CompiledLayer compiled = serial->prepare(layer);
        std::vector<RunResult> serial_inputs;
        const RunResult serial_agg =
            serial->executeBatch(compiled, 1, &serial_inputs);

        const auto threaded = registry.make(key);
        const CompiledLayer compiled2 = threaded->prepare(layer);
        std::vector<RunResult> threaded_inputs;
        const RunResult threaded_agg =
            threaded->executeBatch(compiled2, 4, &threaded_inputs);

        expectSameResult(serial_agg, threaded_agg);
        ASSERT_EQ(serial_inputs.size(), threaded_inputs.size());
        for (std::size_t b = 0; b < serial_inputs.size(); ++b)
            expectSameResult(serial_inputs[b], threaded_inputs[b]);
    }
}

TEST(Batch, AggregateSumsPerInputCycles)
{
    SimRequest request;
    request.accels = {"loas"};
    request.networks = {{"alexnet-l4", {tables::alexnetL4()}}};
    request.batch = 4;
    request.energy = false;
    const SimReport report = SimEngine().run(request);
    ASSERT_EQ(report.runs.size(), 1u);
    const SimRun& run = report.runs[0];
    ASSERT_EQ(run.per_input.size(), 4u);
    std::uint64_t cycles = 0, ops = 0;
    for (const RunResult& r : run.per_input) {
        cycles += r.total_cycles;
        ops += r.ops.total();
    }
    EXPECT_EQ(run.result.total_cycles, cycles);
    EXPECT_EQ(run.result.ops.total(), ops);
    EXPECT_NE(json::toJson(report).find("\"inputs\""), std::string::npos);
}

// --- 4. Serve protocol round-trip ------------------------------------

TEST(Batch, ProtocolDefaultsToBatchOne)
{
    const serve::RunSpec spec = serve::parseRunSpec(serve::parseJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\"}"));
    EXPECT_EQ(spec.batch, 1u);
    EXPECT_EQ(serve::toSimRequest(spec).batch, 1u);
}

TEST(Batch, ProtocolRoundTripsBatch)
{
    const serve::RunSpec spec = serve::parseRunSpec(serve::parseJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"batch\": 6}"));
    EXPECT_EQ(spec.batch, 6u);
    EXPECT_EQ(serve::toSimRequest(spec).batch, 6u);
}

TEST(Batch, ProtocolRejectsBatchZero)
{
    EXPECT_THROW(serve::parseRunSpec(serve::parseJson(
                     "{\"cmd\": \"submit\", \"batch\": 0}")),
                 std::invalid_argument);
}

TEST(Batch, BatchIsPartOfDedupAndCoalesceKeys)
{
    serve::RunSpec a;
    a.accels = {"loas"};
    a.networks = {"alexnet-l4"};
    serve::RunSpec b = a;
    b.batch = 2;
    EXPECT_NE(serve::dedupKey(a), serve::dedupKey(b));
    EXPECT_NE(serve::coalesceKey(a), serve::coalesceKey(b));
    EXPECT_EQ(serve::dedupKey(a), serve::dedupKey(a));
}

} // namespace
} // namespace loas
