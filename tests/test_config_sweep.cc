/**
 * @file
 * Configuration-space property tests: the LoAS simulator must stay
 * bit-exact against the functional reference under any hardware
 * configuration, and its cycle counts must respond monotonically to
 * the resources that should matter.
 */

#include <gtest/gtest.h>

#include "core/loas_sim.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

LayerData
testLayer(std::uint64_t seed)
{
    LayerSpec spec;
    spec.name = "sweep";
    spec.t = 4;
    spec.m = 12;
    spec.n = 48;
    spec.k = 500;
    spec.spike_sparsity = 0.8;
    spec.silent_ratio = 0.6;
    spec.silent_ratio_ft = 0.6;
    spec.weight_sparsity = 0.9;
    return generateLayer(spec, seed);
}

/** (chunk_bits, fifo_depth, laggy_adders, num_pes, pipelined). */
using Config = std::tuple<int, int, int, int, bool>;

class LoasConfigSweep : public ::testing::TestWithParam<Config>
{
};

TEST_P(LoasConfigSweep, BitExactUnderAnyConfiguration)
{
    const auto [chunk, fifo, adders, pes, pipelined] = GetParam();
    LoasConfig config;
    config.join.chunk_bits = static_cast<std::size_t>(chunk);
    config.join.fifo_depth = static_cast<std::size_t>(fifo);
    config.join.laggy_adders = adders;
    config.num_pes = pes;
    config.pipelined_waves = pipelined;

    const LayerData layer = testLayer(17);
    LoasSim sim(config);
    const RunResult r = sim.runLayer(layer);
    EXPECT_GT(r.total_cycles, 0u);
    const SpikeTensor expected =
        referenceSnnLayer(layer.spikes, layer.weights, config.lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoasConfigSweep,
    ::testing::Combine(::testing::Values(64, 128, 256),
                       ::testing::Values(2, 8),
                       ::testing::Values(8, 32),
                       ::testing::Values(4, 16),
                       ::testing::Values(false, true)));

TEST(LoasConfigEffects, MorePesFewerCycles)
{
    const LayerData layer = testLayer(3);
    LoasConfig c4, c16, c64;
    c4.num_pes = 4;
    c16.num_pes = 16;
    c64.num_pes = 64;
    const auto r4 = LoasSim(c4).runLayer(layer);
    const auto r16 = LoasSim(c16).runLayer(layer);
    const auto r64 = LoasSim(c64).runLayer(layer);
    EXPECT_GT(r4.compute_cycles, r16.compute_cycles);
    EXPECT_GE(r16.compute_cycles, r64.compute_cycles);
}

TEST(LoasConfigEffects, DeeperFifoNeverSlower)
{
    const LayerData layer = testLayer(5);
    LoasConfig shallow, deep;
    shallow.join.fifo_depth = 1;
    deep.join.fifo_depth = 32;
    EXPECT_GE(LoasSim(shallow).runLayer(layer).compute_cycles,
              LoasSim(deep).runLayer(layer).compute_cycles);
}

TEST(LoasConfigEffects, WiderLaggyNeverSlower)
{
    const LayerData layer = testLayer(7);
    LoasConfig narrow, wide;
    narrow.join.laggy_adders = 4;
    wide.join.laggy_adders = 64;
    EXPECT_GE(LoasSim(narrow).runLayer(layer).compute_cycles,
              LoasSim(wide).runLayer(layer).compute_cycles);
}

TEST(LoasConfigEffects, PipeliningHelps)
{
    const LayerData layer = testLayer(9);
    LoasConfig on, off;
    on.pipelined_waves = true;
    off.pipelined_waves = false;
    EXPECT_LT(LoasSim(on).runLayer(layer).compute_cycles,
              LoasSim(off).runLayer(layer).compute_cycles);
}

TEST(LoasConfigEffects, SoftResetStaysBitExact)
{
    LoasConfig config;
    config.lif.reset = LifReset::Soft;
    config.lif.v_th = 20;
    const LayerData layer = testLayer(11);
    LoasSim sim(config);
    sim.runLayer(layer);
    const SpikeTensor expected =
        referenceSnnLayer(layer.spikes, layer.weights, config.lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

TEST(LoasConfigEffects, SmallerCacheNeverLessDram)
{
    const LayerData layer = generateLayer(tables::alexnetL4(), 13);
    LoasConfig small, big;
    small.cache.size_bytes = 32 * 1024;
    big.cache.size_bytes = 1024 * 1024;
    const auto r_small = LoasSim(small).runLayer(layer);
    const auto r_big = LoasSim(big).runLayer(layer);
    EXPECT_GE(r_small.traffic.dramBytes(), r_big.traffic.dramBytes());
}

} // namespace
} // namespace loas
