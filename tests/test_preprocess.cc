/** @file Tests for sparsity metrics and fine-tuned preprocessing. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "snn/metrics.hh"
#include "snn/preprocess.hh"

namespace loas {
namespace {

TEST(Metrics, ComputesTable2Columns)
{
    SpikeTensor a(2, 2, 4);
    a.setWord(0, 0, 0b0001); // single spike
    a.setWord(0, 1, 0b1011); // three spikes
    // two silent
    const SpikeStats stats = computeSpikeStats(a);
    EXPECT_DOUBLE_EQ(stats.origin_sparsity, 1.0 - 4.0 / 16.0);
    EXPECT_DOUBLE_EQ(stats.silent_ratio, 0.5);
    EXPECT_DOUBLE_EQ(stats.single_spike_ratio, 0.25);
    EXPECT_EQ(stats.neurons, 4u);
    EXPECT_EQ(stats.spikes, 4u);
}

TEST(Metrics, WeightSparsity)
{
    DenseMatrix<std::int8_t> b(2, 2, 0);
    b(0, 0) = 1;
    EXPECT_DOUBLE_EQ(weightSparsity(b), 0.75);
}

TEST(Preprocess, MasksSingleSpikeNeurons)
{
    SpikeTensor a(1, 3, 4);
    a.setWord(0, 0, 0b0001); // single -> masked
    a.setWord(0, 1, 0b0011); // double -> kept
    // neuron 2 already silent
    const std::size_t masked = maskLowActivityNeurons(a, 1);
    EXPECT_EQ(masked, 1u);
    EXPECT_EQ(a.word(0, 0), 0u);
    EXPECT_EQ(a.word(0, 1), 0b0011u);
    EXPECT_EQ(a.silentCount(), 2u);
}

TEST(Preprocess, ThresholdTwoMasksDoubles)
{
    SpikeTensor a(1, 2, 4);
    a.setWord(0, 0, 0b0011);
    a.setWord(0, 1, 0b0111);
    EXPECT_EQ(maskLowActivityNeurons(a, 2), 1u);
    EXPECT_EQ(a.word(0, 0), 0u);
    EXPECT_EQ(a.word(0, 1), 0b0111u);
}

TEST(Preprocess, IdempotentOnSecondPass)
{
    Rng rng(8);
    SpikeTensor a(10, 50, 4);
    for (std::size_t r = 0; r < 10; ++r)
        for (std::size_t c = 0; c < 50; ++c)
            for (int t = 0; t < 4; ++t)
                if (rng.bernoulli(0.2))
                    a.setSpike(r, c, t);
    maskLowActivityNeurons(a, 1);
    EXPECT_EQ(maskLowActivityNeurons(a, 1), 0u);
}

TEST(Preprocess, IncreasesSilentRatioMonotonically)
{
    Rng rng(15);
    SpikeTensor a(20, 100, 4);
    for (std::size_t r = 0; r < 20; ++r)
        for (std::size_t c = 0; c < 100; ++c)
            for (int t = 0; t < 4; ++t)
                if (rng.bernoulli(0.25))
                    a.setSpike(r, c, t);
    const double before = a.silentRatio();
    const std::size_t masked = maskLowActivityNeurons(a, 1);
    EXPECT_GT(masked, 0u);
    EXPECT_GT(a.silentRatio(), before);
    // Paper Section V: preprocessing creates up to ~1.1x more silent
    // neurons; at these densities the effect is clearly visible.
    EXPECT_GT(a.silentRatio(), before * 1.05);
}

} // namespace
} // namespace loas
