/**
 * @file
 * The runtime-dispatched SIMD kernel layer and the intra-layer
 * parallel execute() must be invisible in every result:
 *
 *  1. Kernel identity: andPopcountWords / firstMatchWord of every
 *     ISA the host supports agree with the scalar table on word
 *     counts covering empty, single-word, partial-tail and
 *     multi-block inputs, dense and sparse; the fused fan-out and
 *     collapse kernels agree with scalar across timestep widths
 *     spanning each ISA's vector-lane fast path and its scalar
 *     fallback.
 *  2. Golden matrix: every registered design run under
 *     {scalar, best ISA} x {1, 4 layer-threads} reproduces the
 *     scalar single-threaded RunResult field for field.
 *  3. Intra-layer partition edge cases: fewer rows than workers,
 *     k % 64 != 0, and batched inputs all stay byte-identical.
 *  4. ANN disk-cache identity: a prepareAnn artifact round-trips
 *     through a cold CompiledCache attached to a warm disk dir with
 *     zero compile time and an identical RunResult.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/accel_spec.hh"
#include "api/registry.hh"
#include "baselines/gamma.hh"
#include "baselines/sparten.hh"
#include "common/rng.hh"
#include "core/fused_join.hh"
#include "core/kernel_dispatch.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

namespace fs = std::filesystem;

/** Restores the process ISA on scope exit, whatever the test did. */
class IsaGuard
{
  public:
    IsaGuard() : saved_(kernels::resolvedIsa()) {}
    ~IsaGuard() { kernels::setIsa(saved_); }

  private:
    kernels::Isa saved_;
};

/** Every ISA this host can actually run. */
std::vector<kernels::Isa>
supportedIsas()
{
    std::vector<kernels::Isa> isas;
    for (const auto isa : {kernels::Isa::Scalar, kernels::Isa::Avx2,
                           kernels::Isa::Avx512})
        if (kernels::isaSupported(isa))
            isas.push_back(isa);
    return isas;
}

void
expectRunResultEq(const RunResult& a, const RunResult& b,
                  const std::string& what)
{
    EXPECT_EQ(a.accel, b.accel) << what;
    EXPECT_EQ(a.workload, b.workload) << what;
    EXPECT_EQ(a.compute_cycles, b.compute_cycles) << what;
    EXPECT_EQ(a.dram_cycles, b.dram_cycles) << what;
    EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
    EXPECT_EQ(a.cache_misses, b.cache_misses) << what;
    EXPECT_EQ(a.ops.acc_ops, b.ops.acc_ops) << what;
    EXPECT_EQ(a.ops.correction_ops, b.ops.correction_ops) << what;
    EXPECT_EQ(a.ops.mac_ops, b.ops.mac_ops) << what;
    EXPECT_EQ(a.ops.fast_prefix_ops, b.ops.fast_prefix_ops) << what;
    EXPECT_EQ(a.ops.laggy_prefix_ops, b.ops.laggy_prefix_ops) << what;
    EXPECT_EQ(a.ops.fifo_ops, b.ops.fifo_ops) << what;
    EXPECT_EQ(a.ops.lif_ops, b.ops.lif_ops) << what;
    EXPECT_EQ(a.ops.mask_and_ops, b.ops.mask_and_ops) << what;
    EXPECT_EQ(a.ops.merge_ops, b.ops.merge_ops) << what;
    EXPECT_EQ(a.ops.encode_ops, b.ops.encode_ops) << what;
    for (int c = 0; c < kNumCategories; ++c) {
        EXPECT_EQ(a.traffic.dram_read[c], b.traffic.dram_read[c])
            << what << " category " << c;
        EXPECT_EQ(a.traffic.dram_write[c], b.traffic.dram_write[c])
            << what << " category " << c;
        EXPECT_EQ(a.traffic.sram_read[c], b.traffic.sram_read[c])
            << what << " category " << c;
        EXPECT_EQ(a.traffic.sram_write[c], b.traffic.sram_write[c])
            << what << " category " << c;
    }
}

// ---------------------------------------------------------------------
// 1. Kernel identity across ISAs.
// ---------------------------------------------------------------------

TEST(KernelDispatch, IsaNamesRoundTrip)
{
    for (const auto isa : {kernels::Isa::Scalar, kernels::Isa::Avx2,
                           kernels::Isa::Avx512}) {
        kernels::Isa parsed;
        ASSERT_TRUE(kernels::parseIsa(kernels::isaName(isa), &parsed));
        EXPECT_EQ(parsed, isa);
    }
    kernels::Isa parsed;
    EXPECT_FALSE(kernels::parseIsa("sse9", &parsed));
    EXPECT_FALSE(kernels::parseIsa("", &parsed));
}

TEST(KernelDispatch, ScalarAlwaysSupportedAndBestResolvable)
{
    EXPECT_TRUE(kernels::isaSupported(kernels::Isa::Scalar));
    EXPECT_TRUE(kernels::isaSupported(kernels::bestSupportedIsa()));
}

TEST(KernelDispatch, KernelsMatchScalarOnEveryWordCount)
{
    IsaGuard guard;
    Rng rng(7);

    // Word counts crossing every block boundary of the vector paths
    // (4-word AVX2 blocks, 8-word AVX-512 blocks) plus ragged tails.
    const std::size_t word_counts[] = {0, 1, 2,  3,  4,  5,  7,
                                       8, 9, 15, 16, 17, 36, 130};
    for (const std::size_t n : word_counts) {
        // Three density regimes: dense overlap, sparse overlap (long
        // zero-AND stretches the scan must skip), and no overlap.
        for (const double density : {0.9, 0.05, 0.0}) {
            std::vector<std::uint64_t> a(n), b(n);
            for (std::size_t i = 0; i < n; ++i) {
                a[i] = rng.uniformInt(~0ull);
                b[i] = rng.bernoulli(density) ? rng.uniformInt(~0ull)
                                              : ~a[i];
            }

            kernels::setIsa(kernels::Isa::Scalar);
            const auto& scalar = kernels::ops();
            const std::uint64_t want_pop =
                scalar.andPopcountWords(a.data(), b.data(), n);
            std::vector<std::size_t> want_scan;
            for (std::size_t w =
                     scalar.firstMatchWord(a.data(), b.data(), 0, n);
                 w < n; w = scalar.firstMatchWord(a.data(), b.data(),
                                                  w + 1, n))
                want_scan.push_back(w);

            for (const auto isa : supportedIsas()) {
                kernels::setIsa(isa);
                const auto& ops = kernels::ops();
                EXPECT_EQ(ops.andPopcountWords(a.data(), b.data(), n),
                          want_pop)
                    << kernels::isaName(isa) << " n=" << n
                    << " density=" << density;
                std::vector<std::size_t> scan;
                for (std::size_t w = ops.firstMatchWord(a.data(),
                                                        b.data(), 0, n);
                     w < n; w = ops.firstMatchWord(a.data(), b.data(),
                                                   w + 1, n))
                    scan.push_back(w);
                EXPECT_EQ(scan, want_scan)
                    << kernels::isaName(isa) << " n=" << n
                    << " density=" << density;
                // Mid-range starts (the ranged forEachMatch path).
                for (const std::size_t w0 :
                     {n / 3, n / 2, n - (n != 0)})
                    EXPECT_EQ(
                        ops.firstMatchWord(a.data(), b.data(), w0, n),
                        scalar.firstMatchWord(a.data(), b.data(), w0,
                                              n))
                        << kernels::isaName(isa) << " n=" << n
                        << " from " << w0;
            }
        }
    }
}

TEST(KernelDispatch, FusedJoinKernelsMatchScalar)
{
    IsaGuard guard;
    Rng rng(13);
    const std::size_t k = 64 * 36 + 23; // ragged tail word

    // Timestep widths spanning every vector fast path and its scalar
    // fallback: AVX2 keeps lanes up to T=8, AVX-512 up to T=16, and
    // both fall back to the scalar kernel above their width.
    for (const int timesteps : {1, 3, 8, 12, 16, 32}) {
        const auto all_ones =
            timesteps >= kMaxTimesteps
                ? ~TimeWord(0)
                : static_cast<TimeWord>((TimeWord(1) << timesteps) - 1);
        for (const double density : {0.3, 0.02, 0.0}) {
            SpikeFiber fa;
            fa.mask = Bitmask(k);
            WeightFiber fb;
            fb.mask = Bitmask(k);
            for (std::size_t i = 0; i < k; ++i) {
                if (rng.bernoulli(0.25)) {
                    fa.mask.set(i);
                    // Zero temporal words included on purpose: a
                    // match with no firing timestep must still count
                    // as a match with zero fan-out adds.
                    fa.values.push_back(static_cast<TimeWord>(
                        rng.uniformInt(
                            static_cast<std::uint64_t>(all_ones) + 1)));
                }
                if (rng.bernoulli(density)) {
                    fb.mask.set(i);
                    fb.values.push_back(
                        static_cast<std::int32_t>(rng.uniformInt(255)) -
                        127);
                }
            }
            const RankedBitmask ra(fa.mask);
            const RankedBitmask rb(fb.mask);
            const auto tc = static_cast<std::size_t>(timesteps);
            std::vector<std::int32_t> want_sums(tc), got_sums(tc);
            std::vector<std::int64_t> want_corr(tc), got_corr(tc);

            kernels::setIsa(kernels::Isa::Scalar);
            const FusedJoinStats want_fan = fusedTemporalJoin(
                fa, ra, fb, rb, timesteps, /*collapse=*/false,
                want_sums.data());
            std::vector<std::int32_t> want_csums(tc);
            const FusedJoinStats want_col = fusedTemporalJoin(
                fa, ra, fb, rb, timesteps, /*collapse=*/true,
                want_csums.data(), want_corr.data());

            for (const auto isa : supportedIsas()) {
                kernels::setIsa(isa);
                const std::string what =
                    std::string(kernels::isaName(isa)) +
                    " T=" + std::to_string(timesteps) +
                    " density=" + std::to_string(density);

                const FusedJoinStats fan = fusedTemporalJoin(
                    fa, ra, fb, rb, timesteps, /*collapse=*/false,
                    got_sums.data());
                EXPECT_EQ(got_sums, want_sums) << what;
                EXPECT_EQ(fan.matches, want_fan.matches) << what;
                EXPECT_EQ(fan.acc_ops, want_fan.acc_ops) << what;
                EXPECT_EQ(fan.correction_ops, want_fan.correction_ops)
                    << what;

                std::vector<std::int32_t> got_csums(tc);
                const FusedJoinStats col = fusedTemporalJoin(
                    fa, ra, fb, rb, timesteps, /*collapse=*/true,
                    got_csums.data(), got_corr.data());
                EXPECT_EQ(got_csums, want_csums) << what;
                EXPECT_EQ(got_corr, want_corr) << what;
                EXPECT_EQ(col.matches, want_col.matches) << what;
                EXPECT_EQ(col.acc_ops, want_col.acc_ops) << what;
                EXPECT_EQ(col.correction_ops, want_col.correction_ops)
                    << what;
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Golden matrix: ISA x layer-threads x every registered design.
// ---------------------------------------------------------------------

TEST(KernelDispatch, GoldenMatrixAcrossIsaAndThreads)
{
    IsaGuard guard;
    const auto& registry = AcceleratorRegistry::instance();
    const NetworkSpec nets[] = {
        {"alexnet-l4", {tables::alexnetL4()}},
        {"vgg16-l8", {tables::vgg16L8()}},
    };
    const kernels::Isa isas[] = {kernels::Isa::Scalar,
                                 kernels::bestSupportedIsa()};

    for (const auto& net : nets) {
        for (const auto& key : registry.keys()) {
            const bool ft = registry.entry(key).ft_workload;
            const auto layers = generateNetwork(net, 101, ft);

            // Reference: scalar kernels, serial execute.
            kernels::setIsa(kernels::Isa::Scalar);
            const RunResult want =
                registry.make(key)->runNetwork(layers, net.name);

            for (const auto isa : isas) {
                for (const int layer_threads : {1, 4}) {
                    kernels::setIsa(isa);
                    const auto instance = registry.make(key);
                    instance->setLayerThreads(layer_threads);
                    const RunResult got =
                        instance->runNetwork(layers, net.name);
                    expectRunResultEq(
                        got, want,
                        net.name + "/" + key + "/" +
                            kernels::isaName(isa) + "/t" +
                            std::to_string(layer_threads));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Intra-layer partition edge cases.
// ---------------------------------------------------------------------

/** Serial-vs-parallel identity of one layer on one design spec. */
void
expectIntraIdentity(const std::string& key, const LayerSpec& spec,
                    int layer_threads)
{
    const auto& registry = AcceleratorRegistry::instance();
    const AccelSpec aspec = parseAccelSpec(key);
    const bool ft = registry.entry(aspec.key).ft_workload;
    const LayerData layer = generateLayer(spec, 303, ft);

    const auto serial = registry.make(aspec);
    const CompiledLayer cs = serial->prepare(layer);
    const RunResult want = serial->execute(cs);

    const auto parallel = registry.make(aspec);
    parallel->setLayerThreads(layer_threads);
    const CompiledLayer cp = parallel->prepare(layer);
    const RunResult got = parallel->execute(cp);
    expectRunResultEq(got, want,
                      key + "/" + spec.name + "/t" +
                          std::to_string(layer_threads));
}

TEST(KernelDispatch, IntraLayerFewerRowsThanWorkers)
{
    // 2 output rows against 8 workers; n keeps the item count above
    // the intra-layer engagement floor so the split actually runs.
    LayerSpec spec = tables::alexnetL4();
    spec.name = "thin-m";
    spec.m = 2;
    spec.n = 320;
    for (const char* key : {"loas", "sparten", "sparten?fused=1"})
        expectIntraIdentity(key, spec, 8);
}

TEST(KernelDispatch, IntraLayerRaggedReductionDim)
{
    LayerSpec spec = tables::alexnetL4();
    spec.name = "ragged-k";
    spec.k = 130; // k % 64 != 0: partial-word masks end-to-end
    for (const char* key : {"loas", "loas-ft", "sparten"})
        expectIntraIdentity(key, spec, 4);
}

TEST(KernelDispatch, IntraLayerBatchedInputsStayIdentical)
{
    const auto& registry = AcceleratorRegistry::instance();
    LayerSpec spec = tables::vgg16L8();
    spec.name = "intra-batch";
    constexpr std::size_t kBatch = 3;
    const LayerData layer = generateLayer(spec, 404, false, kBatch);

    const auto serial = registry.make("loas");
    const CompiledLayer cs = serial->prepare(layer);
    const RunResult want = serial->executeBatch(cs, 1);

    const auto parallel = registry.make("loas");
    parallel->setLayerThreads(4);
    const CompiledLayer cp = parallel->prepare(layer);
    const RunResult got = parallel->executeBatch(cp, 1);
    expectRunResultEq(got, want, "loas/intra-batch");

    // Per-input identity too, not just the batch aggregate.
    for (std::size_t input = 0; input < kBatch; ++input)
        expectRunResultEq(parallel->executeInput(cp, input, 0),
                          serial->executeInput(cs, input, 0),
                          "loas/intra-batch input " +
                              std::to_string(input));
}

// ---------------------------------------------------------------------
// 4. ANN artifacts through the disk cache: cold vs warm identity.
// ---------------------------------------------------------------------

/** Fresh, empty cache directory unique to the calling test. */
std::string
tempCacheDir(const std::string& name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("loas-cache-" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

template <typename Sim>
void
expectAnnDiskIdentity(const std::string& family,
                      const std::string& dir_name)
{
    LayerSpec spec = tables::vgg16L8();
    spec.spike_sparsity = 0.439;
    const AnnLayerData ann = generateAnnLayer(spec, 11);
    const std::string dir = tempCacheDir(dir_name);
    const std::string key =
        compiledLayerKey("ann-net", 0, false, family, 1, 11);

    // Cold: compile, execute, and spill the artifact to disk.
    RunResult want;
    {
        CompiledCache cache;
        cache.setDiskDir(dir);
        Sim sim;
        CompiledCache::Stats stats;
        const auto compiled = cache.getOrCompile(
            key, [&] { return sim.prepareAnn(ann); }, &stats);
        ASSERT_NE(compiled, nullptr);
        EXPECT_EQ(stats.misses, 1u);
        EXPECT_GT(stats.compile_ms, 0.0);
        EXPECT_EQ(cache.stats().disk_writes, 1u);
        want = sim.execute(*compiled);
    }

    // Warm: a fresh cache (cold memory) over the same directory must
    // deserialize instead of recompiling — zero compile time — and
    // the deserialized artifact must execute identically.
    {
        CompiledCache cache;
        cache.setDiskDir(dir);
        Sim sim;
        CompiledCache::Stats stats;
        const auto compiled = cache.getOrCompile(
            key,
            [&]() -> CompiledLayer {
                ADD_FAILURE() << family
                              << ": warm cache recompiled the layer";
                return Sim().prepareAnn(ann);
            },
            &stats);
        ASSERT_NE(compiled, nullptr);
        EXPECT_EQ(compiled->family, family);
        EXPECT_EQ(stats.disk_hits, 1u);
        EXPECT_EQ(stats.misses, 0u);
        EXPECT_EQ(stats.compile_ms, 0.0);
        expectRunResultEq(sim.execute(*compiled), want,
                          family + " warm-disk");
    }
    fs::remove_all(dir);
}

TEST(KernelDispatch, SpartenAnnColdVsWarmDiskIdentity)
{
    expectAnnDiskIdentity<SpartenSim>(SpartenSim::kAnnFamily,
                                      "sparten-ann");
}

TEST(KernelDispatch, GammaAnnColdVsWarmDiskIdentity)
{
    expectAnnDiskIdentity<GammaSim>(GammaSim::kAnnFamily, "gamma-ann");
}

} // namespace
} // namespace loas
