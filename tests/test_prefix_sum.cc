/** @file Tests for the prefix-sum circuit models. */

#include <gtest/gtest.h>

#include "core/prefix_sum.hh"

namespace loas {
namespace {

TEST(PrefixSum, OffsetsAreRanks)
{
    Bitmask mask(16);
    mask.set(1);
    mask.set(4);
    mask.set(9);
    mask.set(15);
    const auto offs = prefix_sum::offsets(mask, {1, 4, 9, 15});
    ASSERT_EQ(offs.size(), 4u);
    EXPECT_EQ(offs[0], 0u);
    EXPECT_EQ(offs[1], 1u);
    EXPECT_EQ(offs[2], 2u);
    EXPECT_EQ(offs[3], 3u);
}

TEST(PrefixSum, OffsetsOnSubset)
{
    Bitmask mask(300);
    for (std::size_t i = 0; i < 300; i += 3)
        mask.set(i);
    const auto offs = prefix_sum::offsets(mask, {0, 30, 150});
    EXPECT_EQ(offs[0], 0u);
    EXPECT_EQ(offs[1], 10u);
    EXPECT_EQ(offs[2], 50u);
}

TEST(FastPrefixSum, SingleCycleLatency)
{
    EXPECT_EQ(FastPrefixSum::kLatency, 1u);
}

TEST(LaggyPrefixSum, LatencyMatchesTable3)
{
    // Table III: 16 adders over a 128-bit buffer -> 8 cycles.
    const LaggyPrefixSum laggy(128, 16);
    EXPECT_EQ(laggy.readyLatency(), 8u);
}

TEST(LaggyPrefixSum, LatencyScalesWithAdders)
{
    EXPECT_EQ(LaggyPrefixSum(128, 32).readyLatency(), 4u);
    EXPECT_EQ(LaggyPrefixSum(128, 8).readyLatency(), 16u);
    EXPECT_EQ(LaggyPrefixSum(100, 16).readyLatency(), 7u);
}

} // namespace
} // namespace loas
