/** @file Tests for the BPTT / LTH training substrate. */

#include <gtest/gtest.h>

#include "train/mlp_snn.hh"

namespace loas {
namespace {

MlpSnnConfig
tinyConfig()
{
    MlpSnnConfig config;
    config.inputs = 12;
    config.hidden = 32;
    config.classes = 4;
    config.timesteps = 4;
    return config;
}

Dataset
tinyData(std::uint64_t seed = 1)
{
    return makeClusterDataset(320, 12, 4, 0.35, seed);
}

TEST(Dataset, ShapesAndLabels)
{
    const Dataset data = tinyData();
    EXPECT_EQ(data.size(), 320u);
    EXPECT_EQ(data.x.rows(), 320u);
    EXPECT_EQ(data.x.cols(), 12u);
    for (const auto label : data.y) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 4);
    }
}

TEST(Dataset, SplitPreservesSamples)
{
    const Dataset data = tinyData();
    const auto [train, test] = splitDataset(data, 0.75);
    EXPECT_EQ(train.size(), 240u);
    EXPECT_EQ(test.size(), 80u);
    EXPECT_EQ(train.x(0, 0), data.x(0, 0));
    EXPECT_EQ(test.y[0], data.y[240]);
}

TEST(Train, LossDecreases)
{
    const Dataset data = tinyData();
    MlpSnn snn(tinyConfig(), 3);
    const float first = snn.trainEpoch(data);
    float last = first;
    for (int e = 0; e < 4; ++e)
        last = snn.trainEpoch(data);
    EXPECT_LT(last, first);
}

TEST(Train, BeatsChanceAfterTraining)
{
    const Dataset data = tinyData();
    const auto [train, test] = splitDataset(data, 0.8);
    MlpSnn snn(tinyConfig(), 3);
    for (int e = 0; e < 6; ++e)
        snn.trainEpoch(train);
    EXPECT_GT(snn.accuracy(test), 0.5); // chance is 0.25
}

TEST(Train, PruningReachesTargetSparsity)
{
    MlpSnn snn(tinyConfig(), 5);
    EXPECT_NEAR(snn.weightSparsity(), 0.0, 1e-9);
    snn.pruneToSparsity(0.6);
    EXPECT_NEAR(snn.weightSparsity(), 0.6, 0.02);
    snn.pruneToSparsity(0.9);
    EXPECT_NEAR(snn.weightSparsity(), 0.9, 0.02);
    // Lowering the target is a no-op (pruning is monotone).
    snn.pruneToSparsity(0.5);
    EXPECT_NEAR(snn.weightSparsity(), 0.9, 0.02);
}

TEST(Train, RewindRestoresSurvivors)
{
    const Dataset data = tinyData();
    MlpSnn a(tinyConfig(), 7);
    MlpSnn b(tinyConfig(), 7); // identical init
    a.trainEpoch(data);
    a.pruneToSparsity(0.5);
    a.rewindWeights();
    // After rewind, surviving weights equal the untouched twin's init
    // => the two nets classify identically when b is given a's mask.
    b.pruneToSparsity(0.0); // no-op
    // Indirect check: rewound net still functions and has the mask.
    EXPECT_NEAR(a.weightSparsity(), 0.5, 0.02);
    EXPECT_GT(a.accuracy(data), 0.0);
}

TEST(Train, LotteryTicketRecoversAccuracy)
{
    const Dataset data = tinyData(9);
    const auto [train, test] = splitDataset(data, 0.8);
    MlpSnn snn(tinyConfig(), 11);
    for (int e = 0; e < 6; ++e)
        snn.trainEpoch(train);
    const double dense_acc = snn.accuracy(test);
    snn.pruneToSparsity(0.7);
    snn.rewindWeights();
    for (int e = 0; e < 8; ++e)
        snn.trainEpoch(train);
    const double sparse_acc = snn.accuracy(test);
    EXPECT_GT(sparse_acc, dense_acc - 0.15);
}

TEST(Train, MaskingSilencesNeuronsAndFtRecovers)
{
    // The Fig. 11 trend: masking costs a little accuracy; a few
    // fine-tuning epochs recover most of it.
    const Dataset data = tinyData(13);
    const auto [train, test] = splitDataset(data, 0.8);
    MlpSnn snn(tinyConfig(), 17);
    for (int e = 0; e < 8; ++e)
        snn.trainEpoch(train);
    const double origin = snn.accuracy(test);
    const auto before = snn.hiddenActivity(test);

    const std::size_t masked = snn.maskLowActivityHidden(train, 1);
    const auto after = snn.hiddenActivity(test);
    EXPECT_GE(after.silent_ratio, before.silent_ratio);
    if (masked > 0) {
        for (int e = 0; e < 5; ++e)
            snn.trainEpoch(train);
        const double recovered = snn.accuracy(test);
        EXPECT_GT(recovered, origin - 0.08);
    }
}

TEST(Train, ExportedSpikesMatchActivity)
{
    const Dataset data = tinyData(21);
    MlpSnn snn(tinyConfig(), 23);
    snn.trainEpoch(data);
    const SpikeTensor spikes = snn.exportHiddenSpikes(data, 16);
    EXPECT_EQ(spikes.rows(), 16u);
    EXPECT_EQ(spikes.cols(), 32u);
    EXPECT_EQ(spikes.timesteps(), 4);
    // Forward passes are deterministic: exporting twice agrees.
    EXPECT_EQ(snn.exportHiddenSpikes(data, 16), spikes);
}

TEST(Train, QuantizedWeightsInRange)
{
    MlpSnn snn(tinyConfig(), 29);
    const auto q = snn.exportQuantizedW2();
    EXPECT_EQ(q.rows(), 32u);
    EXPECT_EQ(q.cols(), 32u);
    bool any_nonzero = false;
    for (const auto v : q.data())
        any_nonzero = any_nonzero || v != 0;
    EXPECT_TRUE(any_nonzero);
}

} // namespace
} // namespace loas
