/** @file Tests for the cycle-level FTP-friendly inner-join unit. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/inner_join.hh"
#include "tensor/compress.hh"

namespace loas {
namespace {

SpikeFiber
makeSpikeFiber(std::size_t k,
               const std::vector<std::pair<std::size_t, TimeWord>>& nz)
{
    SpikeFiber f;
    f.mask = Bitmask(k);
    for (const auto& [pos, w] : nz) {
        f.mask.set(pos);
        f.values.push_back(w);
    }
    return f;
}

WeightFiber
makeWeightFiber(std::size_t k,
                const std::vector<std::pair<std::size_t, std::int32_t>>&
                    nz)
{
    WeightFiber f;
    f.mask = Bitmask(k);
    for (const auto& [pos, v] : nz) {
        f.mask.set(pos);
        f.values.push_back(v);
    }
    return f;
}

TEST(InnerJoin, Fig10WalkThrough)
{
    // The fiber pair of Fig. 10: five positions; a2 matches with word
    // 1111 (prediction correct, b2 discarded from correction) and a4
    // with 1010 (prediction wrong at t0 and t2... bit order: spikes at
    // t1 and t3), so b4 is corrected into the accumulators of the
    // missing timesteps.
    const SpikeFiber fa =
        makeSpikeFiber(5, {{2, 0b1111}, {4, 0b1010}});
    const WeightFiber fb =
        makeWeightFiber(5, {{0, 10}, {2, 20}, {4, 30}});

    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const JoinResult r = unit.join(fa, fb);

    EXPECT_EQ(r.matches, 2u);
    EXPECT_EQ(r.corrections, 1u);
    // pseudo = 20 + 30; corrections remove 30 from t0 and t2.
    EXPECT_EQ(r.sums[0], 20);
    EXPECT_EQ(r.sums[1], 50);
    EXPECT_EQ(r.sums[2], 20);
    EXPECT_EQ(r.sums[3], 50);
}

TEST(InnerJoin, EmptyIntersection)
{
    const SpikeFiber fa = makeSpikeFiber(256, {{0, 0b0001}});
    const WeightFiber fb = makeWeightFiber(256, {{5, 9}});
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const JoinResult r = unit.join(fa, fb);
    EXPECT_EQ(r.matches, 0u);
    for (const auto s : r.sums)
        EXPECT_EQ(s, 0);
    // Still pays the chunk scans plus setup/drain.
    const InnerJoinConfig config;
    EXPECT_GE(r.cycles, 2u); // 256/128 chunks
    EXPECT_LE(r.cycles,
              config.setup_cycles + 2 + config.drain_cycles + 1);
}

TEST(InnerJoin, AllOnesNeedNoCorrection)
{
    // Dense spike words (neuron fires every timestep): the pseudo
    // accumulation is always right, as in the paper's dense argument.
    SpikeFiber fa;
    fa.mask = Bitmask(128);
    WeightFiber fb;
    fb.mask = Bitmask(128);
    for (std::size_t i = 0; i < 128; ++i) {
        fa.mask.set(i);
        fa.values.push_back(0b1111);
        fb.mask.set(i);
        fb.values.push_back(1);
    }
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const JoinResult r = unit.join(fa, fb);
    EXPECT_EQ(r.matches, 128u);
    EXPECT_EQ(r.corrections, 0u);
    EXPECT_EQ(r.ops.correction_ops, 4u); // only the final subtraction
    for (const auto s : r.sums)
        EXPECT_EQ(s, 128);
}

TEST(InnerJoin, CyclesLowerBoundedByChunksAndMatches)
{
    Rng rng(4);
    SpikeFiber fa;
    fa.mask = Bitmask(512);
    WeightFiber fb;
    fb.mask = Bitmask(512);
    for (std::size_t i = 0; i < 512; ++i) {
        if (rng.bernoulli(0.5)) {
            fa.mask.set(i);
            fa.values.push_back(
                static_cast<TimeWord>(1 + rng.uniformInt(15)));
        }
        if (rng.bernoulli(0.5)) {
            fb.mask.set(i);
            fb.values.push_back(1);
        }
    }
    const InnerJoinConfig config;
    const InnerJoinUnit unit(config, 4);
    const JoinResult r = unit.join(fa, fb);
    const std::uint64_t chunks = 512 / config.chunk_bits;
    EXPECT_GE(r.cycles, chunks);
    EXPECT_GE(r.cycles, r.matches);
    // And within a small envelope of the ideal pipeline.
    EXPECT_LE(r.cycles, config.setup_cycles + chunks + r.matches +
                            config.laggyLatency() +
                            config.drain_cycles + r.matches / 4 + 4);
}

TEST(InnerJoin, OpCountsConsistent)
{
    const SpikeFiber fa =
        makeSpikeFiber(128, {{1, 0b0101}, {2, 0b0010}, {100, 0b1000}});
    const WeightFiber fb =
        makeWeightFiber(128, {{1, 3}, {100, -5}, {101, 7}});
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const JoinResult r = unit.join(fa, fb);
    EXPECT_EQ(r.matches, 2u);
    EXPECT_EQ(r.ops.acc_ops, 2u);          // one per match
    EXPECT_EQ(r.ops.fast_prefix_ops, 2u);  // one per match
    EXPECT_EQ(r.ops.fifo_ops, 8u);         // 2 push + 2 pop per match
    EXPECT_EQ(r.ops.mask_and_ops, 1u);     // one 128-bit chunk
    // a1 = 0101 corrects t1,t3; a100 = 1000 corrects t0,t1,t2; plus
    // final subtraction of 4.
    EXPECT_EQ(r.ops.correction_ops, 2u + 3u + 4u);
}

TEST(InnerJoin, FifoBackpressureSlowsDenseChunks)
{
    // A chunk with every position matched must stall once the depth-8
    // FIFO fills faster than the laggy path drains.
    SpikeFiber fa;
    fa.mask = Bitmask(128);
    WeightFiber fb;
    fb.mask = Bitmask(128);
    for (std::size_t i = 0; i < 128; ++i) {
        fa.mask.set(i);
        fa.values.push_back(0b0101);
        fb.mask.set(i);
        fb.values.push_back(2);
    }
    InnerJoinConfig deep;
    deep.fifo_depth = 1024;
    InnerJoinConfig shallow;
    shallow.fifo_depth = 2;
    const JoinResult fast = InnerJoinUnit(deep, 4).join(fa, fb);
    const JoinResult slow = InnerJoinUnit(shallow, 4).join(fa, fb);
    EXPECT_GE(slow.cycles, fast.cycles);
    EXPECT_EQ(slow.sums, fast.sums); // functionally identical
}

TEST(InnerJoin, MatchedOffsetsIndexFiberValues)
{
    const SpikeFiber fa = makeSpikeFiber(
        128, {{0, 0b0001}, {5, 0b0011}, {64, 0b1000}});
    const WeightFiber fb = makeWeightFiber(128, {{5, 1}, {64, 1}});
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    const JoinResult r = unit.join(fa, fb);
    ASSERT_EQ(r.matched_offsets_a.size(), 2u);
    EXPECT_EQ(r.matched_offsets_a[0], 1u); // a5 is the 2nd stored value
    EXPECT_EQ(r.matched_offsets_a[1], 2u);
}

/**
 * Property sweep: the join's functional output equals the brute-force
 * per-timestep dot product for random fibers (the core correctness
 * claim of the pseudo-accumulator + correction scheme).
 */
class InnerJoinProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(InnerJoinProperty, MatchesBruteForce)
{
    const int seed = std::get<0>(GetParam());
    const int timesteps = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(seed) * 1000 + timesteps);
    const std::size_t k = 1 + rng.uniformInt(700);

    SpikeFiber fa;
    fa.mask = Bitmask(k);
    WeightFiber fb;
    fb.mask = Bitmask(k);
    std::vector<TimeWord> dense_a(k, 0);
    std::vector<std::int32_t> dense_b(k, 0);
    const TimeWord word_cap = (timesteps >= 32)
                                  ? ~TimeWord{0}
                                  : ((TimeWord{1} << timesteps) - 1);
    for (std::size_t i = 0; i < k; ++i) {
        if (rng.bernoulli(0.35)) {
            const TimeWord w = 1 + static_cast<TimeWord>(
                                       rng.uniformInt(word_cap));
            dense_a[i] = w;
            fa.mask.set(i);
            fa.values.push_back(w);
        }
        if (rng.bernoulli(0.3)) {
            const auto v = static_cast<std::int32_t>(
                               rng.uniformInt(255)) - 127;
            if (v != 0) {
                dense_b[i] = v;
                fb.mask.set(i);
                fb.values.push_back(v);
            }
        }
    }

    const InnerJoinUnit unit(InnerJoinConfig{}, timesteps);
    const JoinResult r = unit.join(fa, fb);

    for (int t = 0; t < timesteps; ++t) {
        std::int32_t expected = 0;
        for (std::size_t i = 0; i < k; ++i)
            if ((dense_a[i] >> t) & 1u)
                expected += dense_b[i];
        EXPECT_EQ(r.sums[static_cast<std::size_t>(t)], expected)
            << "t=" << t << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InnerJoinProperty,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

} // namespace
} // namespace loas
