/** @file Tests for the design-space sweep engine and its writers. */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/json.hh"
#include "api/sim_engine.hh"
#include "api/sweep.hh"
#include "api/sweep_io.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

/** A small sweep: 2x LoAS grid + the SparTen baseline on one layer. */
SweepRequest
smallSweep()
{
    SweepRequest request;
    request.grids = {"loas?pes=8,16"};
    request.baseline = "sparten";
    request.networks = {"alexnet-l4"};
    request.seed = 7;
    return request;
}

TEST(NetworkGrids, ExpandsLayerVariantsWithUniqueNames)
{
    const auto nets =
        expandNetworkGrids({"vgg16-l8?ws=0.5,0.25", "t-hff"});
    ASSERT_EQ(nets.size(), 3u);
    EXPECT_EQ(nets[0].name, "vgg16-l8?ws=0.5");
    EXPECT_EQ(nets[1].name, "vgg16-l8?ws=0.25");
    EXPECT_EQ(nets[2].name, "t-hff");
    ASSERT_EQ(nets[0].layers.size(), 1u);
    EXPECT_DOUBLE_EQ(nets[0].layers[0].weight_sparsity, 0.5);
    EXPECT_DOUBLE_EQ(nets[1].layers[0].weight_sparsity, 0.25);
}

TEST(NetworkGrids, TimestepOptionRescalesTheLayer)
{
    const auto nets = expandNetworkGrids({"vgg16-l8?t=4,8"});
    ASSERT_EQ(nets.size(), 2u);
    EXPECT_EQ(nets[0].layers[0].t, 4);
    EXPECT_EQ(nets[1].layers[0].t, 8);
    // t=4 is the base layer, untouched by the rescale.
    EXPECT_DOUBLE_EQ(nets[0].layers[0].silent_ratio,
                     tables::vgg16L8().silent_ratio);
    EXPECT_LT(nets[1].layers[0].silent_ratio,
              nets[0].layers[0].silent_ratio);
}

TEST(NetworkGrids, FullNetworksExpandAndDeduplicate)
{
    const auto nets = expandNetworkGrids({"all", "alexnet"});
    ASSERT_EQ(nets.size(), 3u); // alexnet deduped against "all"
    EXPECT_EQ(nets[0].name, tables::alexnet().name);
}

TEST(NetworkGrids, RejectsUnknownKeysAndOptions)
{
    EXPECT_THROW(expandNetworkGrids({"no-such-net"}),
                 std::invalid_argument);
    EXPECT_THROW(expandNetworkGrids({"vgg16-l8?bogus=1"}),
                 std::invalid_argument);
    EXPECT_THROW(expandNetworkGrids({"vgg16?t=8"}),
                 std::invalid_argument); // options on a full network
    EXPECT_THROW(expandNetworkGrids({"vgg16-l8?ws=1.5"}),
                 std::invalid_argument); // sparsity out of range
}

TEST(SweepEngine, RejectsBadRequestsBeforeSimulating)
{
    SweepRequest request = smallSweep();
    request.grids = {"no-such-accel?pes=8,16"};
    EXPECT_THROW(SweepEngine().run(request), std::invalid_argument);
    request = smallSweep();
    request.grids.push_back("loas?bogus=1,2");
    EXPECT_THROW(SweepEngine().run(request), std::invalid_argument);
    request = smallSweep();
    request.grids.clear();
    EXPECT_THROW(SweepEngine().run(request), std::invalid_argument);
}

TEST(SweepEngine, MatchesAHandWrittenSimEngineLoopByteIdentically)
{
    const SweepRequest request = smallSweep();
    const SweepReport sweep = SweepEngine().run(request);

    // The retired-harness pattern: expand by hand, run the SimEngine
    // directly, one cell at a time.
    SimRequest sim;
    sim.accels = {"loas?pes=8", "loas?pes=16", "sparten"};
    sim.networks = expandNetworkGrids({"alexnet-l4"});
    sim.seed = 7;
    const SimReport direct = SimEngine().run(sim);

    ASSERT_EQ(sweep.cells.size(), direct.runs.size());
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        SCOPED_TRACE(sweep.cells[i].accel_spec);
        EXPECT_EQ(sweep.cells[i].accel_spec,
                  direct.runs[i].accel_spec);
        EXPECT_EQ(json::toJson(sweep.cells[i].result),
                  json::toJson(direct.runs[i].result));
        EXPECT_EQ(json::toJson(sweep.cells[i].energy),
                  json::toJson(direct.runs[i].energy));
    }
}

TEST(SweepEngine, DerivedColumnsAreConsistent)
{
    const SweepReport report = SweepEngine().run(smallSweep());
    EXPECT_EQ(report.baseline, "sparten");
    ASSERT_EQ(report.cells.size(), 3u);

    const SweepCell& base = report.at("sparten", "alexnet-l4");
    EXPECT_TRUE(base.is_baseline);
    EXPECT_DOUBLE_EQ(base.speedup, 1.0);
    EXPECT_DOUBLE_EQ(base.energy_gain, 1.0);

    for (const auto& cell : report.cells) {
        EXPECT_DOUBLE_EQ(
            cell.speedup,
            static_cast<double>(base.result.total_cycles) /
                static_cast<double>(cell.result.total_cycles));
        EXPECT_DOUBLE_EQ(cell.edp,
                         cell.energy.totalPj() *
                             static_cast<double>(
                                 cell.result.total_cycles));
        EXPECT_FALSE(cell.is_baseline &&
                     cell.accel_spec != "sparten");
    }
}

TEST(SweepEngine, GridValueWithSemicolonIsRejectedNotSplit)
{
    // A ';' inside a grid element must not silently split it into
    // extra designs (the CLI splits on ';' before building the
    // request; a programmatic caller's stray ';' is a bad value).
    SweepRequest request = smallSweep();
    request.grids = {"loas?t=4;gamma"};
    EXPECT_THROW(SweepEngine().run(request), std::invalid_argument);
}

TEST(SweepEngine, BaselineInsideTheGridIsNotDuplicated)
{
    SweepRequest request = smallSweep();
    request.grids.push_back("sparten");
    const SweepReport report = SweepEngine().run(request);
    EXPECT_EQ(report.cells.size(), 3u);
}

TEST(SweepEngine, OutputIsThreadCountInvariant)
{
    SweepRequest request = smallSweep();
    request.grids = {"loas?pes=8,16", "gospa"};
    request.threads = 1;
    const SweepReport serial = SweepEngine().run(request);
    request.threads = 8;
    const SweepReport threaded = SweepEngine().run(request);

    EXPECT_EQ(toCsv(serial), toCsv(threaded));
    EXPECT_EQ(json::toJson(serial), json::toJson(threaded));
}

TEST(ParetoFront, FlagsExactlyTheNonDominatedPoints)
{
    const std::vector<std::pair<double, double>> points = {
        {1.0, 4.0}, // front
        {2.0, 2.0}, // front
        {4.0, 1.0}, // front
        {3.0, 3.0}, // dominated by (2,2)
        {2.0, 4.0}, // dominated by (1,4) and (2,2)
    };
    const auto front = paretoFront(points);
    EXPECT_EQ(front,
              (std::vector<bool>{true, true, true, false, false}));
}

TEST(ParetoFront, DuplicatesAndEdgeCases)
{
    EXPECT_EQ(paretoFront({}), std::vector<bool>{});
    EXPECT_EQ(paretoFront({{1.0, 1.0}}), std::vector<bool>{true});
    // Equal points do not dominate each other.
    EXPECT_EQ(paretoFront({{1.0, 1.0}, {1.0, 1.0}}),
              (std::vector<bool>{true, true}));
    // Ties on one axis: strictly better on the other axis wins.
    EXPECT_EQ(paretoFront({{1.0, 2.0}, {1.0, 1.0}}),
              (std::vector<bool>{false, true}));
}

TEST(SweepEngine, ParetoColumnMatchesTheFreeFunction)
{
    SweepRequest request = smallSweep();
    request.grids = {"loas?pes=8,16", "gamma"};
    const SweepReport report = SweepEngine().run(request);

    std::vector<std::pair<double, double>> points;
    for (const auto& cell : report.cells)
        points.emplace_back(
            static_cast<double>(cell.result.total_cycles),
            cell.energy.totalPj());
    const auto front = paretoFront(points);
    for (std::size_t i = 0; i < report.cells.size(); ++i)
        EXPECT_EQ(report.cells[i].pareto, front[i]) << i;
}

TEST(SweepCsv, EscapesFieldsPerRfc4180)
{
    EXPECT_EQ(csv::escape("plain"), "plain");
    EXPECT_EQ(csv::escape("loas?pes=16&t=4"), "loas?pes=16&t=4");
    EXPECT_EQ(csv::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv::escape("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(csv::escape("a\nb"), "\"a\nb\"");
    EXPECT_EQ(csv::escape(""), "");
}

TEST(SweepCsv, LaysOutOptionColumnsAndDerivedFields)
{
    const SweepReport report = SweepEngine().run(smallSweep());
    ASSERT_EQ(report.option_columns,
              std::vector<std::string>{"pes"});

    const std::string out = toCsv(report);
    EXPECT_EQ(out.substr(0, out.find('\n')),
              "accel_spec,accel_key,network,pes,total_cycles,"
              "compute_cycles,dram_cycles,dram_bytes,sram_bytes,"
              "cache_miss_rate,energy_pj,speedup,energy_gain,edp,"
              "pareto,baseline");
    // One header + one row per cell, every row ending in the
    // pareto/baseline flags; sparten leaves the pes column empty.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              static_cast<long>(1 + report.cells.size()));
    EXPECT_NE(out.find("loas?pes=8,loas,alexnet-l4,8,"),
              std::string::npos);
    EXPECT_NE(out.find("sparten,sparten,alexnet-l4,,"),
              std::string::npos);
}

TEST(SweepJson, CarriesDerivedColumnsAndFullDetail)
{
    const SweepReport report = SweepEngine().run(smallSweep());
    const std::string out = json::toJson(report);
    EXPECT_NE(out.find("\"baseline\": \"sparten\""),
              std::string::npos);
    EXPECT_NE(out.find("\"option_columns\": [\"pes\"]"),
              std::string::npos);
    EXPECT_NE(out.find("\"speedup\": "), std::string::npos);
    EXPECT_NE(out.find("\"edp\": "), std::string::npos);
    EXPECT_NE(out.find("\"pareto\": "), std::string::npos);
    EXPECT_NE(out.find("\"total_cycles\": "), std::string::npos);
    EXPECT_NE(out.find("\"dram_read_bytes\": "), std::string::npos);
}

} // namespace
} // namespace loas
