/**
 * @file
 * Socket-level tests of the serve daemon: the NDJSON protocol, the
 * golden-identity guarantee (a served report is byte-identical to the
 * one-shot `loas_cli run --json` document for the same parameters, on
 * every registered design), backpressure, cancellation over the wire,
 * and drain shutdown.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/registry.hh"
#include "api/versions.hh"
#include "common/fault.hh"
#include "serve/client.hh"
#include "serve/json_parse.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace loas {
namespace serve {
namespace {

/** Unique short socket path (sun_path caps at ~108 bytes). */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/loas-serve-test-" + std::to_string(::getpid()) +
           "-" + std::to_string(counter++) + ".sock";
}

/** A server on its own thread + cache, torn down on destruction. */
class TestServer
{
  public:
    explicit TestServer(JobQueue::Config queue_config = {},
                        JobQueue::Runner runner = {})
    {
        Server::Config config;
        config.socket_path = socketPath();
        config.queue = queue_config;
        server = std::make_unique<Server>(config, &cache,
                                          std::move(runner));
        thread = std::thread([this] { server->run(); });
    }

    ~TestServer()
    {
        server->requestStop(true);
        thread.join();
    }

    const std::string& path() const { return server->socketPath(); }

    CompiledCache cache;
    std::unique_ptr<Server> server;
    std::thread thread;
};

TEST(Serve, ServedReportIsByteIdenticalToOneShotOnAllDesigns)
{
    // Every registered design in one request; alexnet-l4 keeps each
    // cell small while still exercising all seven simulators.
    std::string accels;
    for (const auto& key : AcceleratorRegistry::instance().keys())
        accels += (accels.empty() ? "" : ",") + key;

    TestServer server;
    ServeClient client(server.path());
    const JsonValue reply = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": " + json::quote(accels) +
        ", \"network\": \"alexnet-l4\", \"seed\": 11}");
    ASSERT_TRUE(reply.getBool("ok", false));
    ASSERT_EQ(reply.getString("state", ""), "done");

    RunSpec one_shot;
    one_shot.accels = splitSpecList(accels);
    one_shot.networks = {"alexnet-l4"};
    one_shot.seed = 11;
    const SimReport report = SimEngine().run(toSimRequest(one_shot));

    const JsonValue* served = reply.get("report");
    ASSERT_NE(served, nullptr);
    ASSERT_TRUE(served->isString());
    EXPECT_EQ(served->string, json::toJson(report));

    // The per-request stats carry the exact cache attribution.
    const JsonValue* stats = reply.get("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue* cache = stats->get("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GT(cache->getNumber("misses", 0), 0.0);
    EXPECT_GE(stats->getNumber("run_ms", -1), 0.0);
}

TEST(Serve, WarmRepeatRequestCompilesNothing)
{
    TestServer server;
    ServeClient client(server.path());
    const std::string submit =
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}";

    const JsonValue cold = client.callJson(submit);
    ASSERT_EQ(cold.getString("state", ""), "done");
    EXPECT_GT(cold.get("stats")->get("cache")->getNumber("misses", 0),
              0.0);

    const JsonValue warm = client.callJson(submit);
    ASSERT_EQ(warm.getString("state", ""), "done");
    const JsonValue* cache = warm.get("stats")->get("cache");
    EXPECT_EQ(cache->getNumber("misses", -1), 0.0);
    EXPECT_GT(cache->getNumber("hits", 0), 0.0);

    // Identical inputs, identical bytes — cold or warm.
    EXPECT_EQ(cold.get("report")->string, warm.get("report")->string);
}

TEST(Serve, VersionAndStatsCommands)
{
    TestServer server;
    ServeClient client(server.path());

    const JsonValue version = client.callJson("{\"cmd\": \"version\"}");
    EXPECT_TRUE(version.getBool("ok", false));
    const JsonValue* inner = version.get("version");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->getString("serve_schema", ""), kServeSchema);
    EXPECT_EQ(inner->getString("cli", ""), kCliVersion);
    EXPECT_EQ(inner->getString("bench_schema", ""), kBenchSchema);
    EXPECT_GT(inner->getNumber("artifact_format", 0), 0.0);

    const JsonValue stats = client.callJson("{\"cmd\": \"stats\"}");
    EXPECT_TRUE(stats.getBool("ok", false));
    ASSERT_NE(stats.get("queue"), nullptr);
    ASSERT_NE(stats.get("cache"), nullptr);
    EXPECT_EQ(stats.get("queue")->getNumber("submitted", -1), 0.0);
}

TEST(Serve, MalformedAndUnknownRequestsGetStructuredErrors)
{
    TestServer server;
    ServeClient client(server.path());

    const JsonValue garbage = client.callJson("this is not json");
    EXPECT_FALSE(garbage.getBool("ok", true));
    EXPECT_EQ(garbage.getString("error", ""), "bad_request");

    const JsonValue unknown_cmd =
        client.callJson("{\"cmd\": \"frobnicate\"}");
    EXPECT_EQ(unknown_cmd.getString("error", ""), "bad_request");

    const JsonValue bad_network = client.callJson(
        "{\"cmd\": \"submit\", \"network\": \"no-such-net\"}");
    EXPECT_EQ(bad_network.getString("error", ""), "bad_request");

    const JsonValue unknown_id =
        client.callJson("{\"cmd\": \"poll\", \"id\": 424242}");
    EXPECT_EQ(unknown_id.getString("error", ""), "unknown_id");

    // uint64 fields ride in JSON doubles, exact only below 2^53; a
    // seed that would silently round to a DIFFERENT integer must be
    // rejected, not simulated with the rounded value.
    const JsonValue big_seed = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"seed\": 9007199254740993}");
    EXPECT_EQ(big_seed.getString("error", ""), "bad_request");

    const JsonValue big_id =
        client.callJson("{\"cmd\": \"poll\", \"id\": 1e300}");
    EXPECT_EQ(big_id.getString("error", ""), "bad_request");
}

TEST(Serve, OversizedRequestLineGetsBadRequestAndClose)
{
    TestServer server;

    // Raw socket: stream past the 1 MiB line cap WITHOUT a newline,
    // stop, and expect a bad_request reply followed by EOF instead of
    // the server buffering our bytes forever.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, server.path().c_str(),
                server.path().size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);

    const std::string blob((1 << 20) + (1 << 12), 'x');
    std::size_t off = 0;
    while (off < blob.size()) {
        const ssize_t n = ::send(fd, blob.data() + off,
                                 blob.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }

    std::string reply;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF: the server closed the connection
        reply.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const std::size_t newline_at = reply.find('\n');
    ASSERT_NE(newline_at, std::string::npos);
    const JsonValue parsed = parseJson(reply.substr(0, newline_at));
    EXPECT_FALSE(parsed.getBool("ok", true));
    EXPECT_EQ(parsed.getString("error", ""), "bad_request");
}

TEST(Serve, FinishedConnectionsAreReapedNotAccumulated)
{
    const auto openFds = [] {
        std::size_t count = 0;
        for (const auto& entry :
             std::filesystem::directory_iterator("/proc/self/fd")) {
            (void)entry;
            ++count;
        }
        return count;
    };

    TestServer server;
    {
        ServeClient warm(server.path());
        warm.callJson("{\"cmd\": \"stats\"}");
    }
    const std::size_t baseline = openFds();

    for (int i = 0; i < 32; ++i) {
        ServeClient client(server.path());
        client.callJson("{\"cmd\": \"stats\"}");
    }

    // Each accept reaps connections already finished; the EOF handlers
    // run asynchronously, so keep poking until the fd table settles
    // back to its baseline neighbourhood.
    std::size_t now = 0;
    for (int attempt = 0; attempt < 200; ++attempt) {
        {
            ServeClient poke(server.path());
            poke.callJson("{\"cmd\": \"stats\"}");
        }
        now = openFds();
        if (now <= baseline + 6)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_LE(now, baseline + 6);
}

TEST(Serve, FullQueueRepliesWithBackpressureNotAHang)
{
    JobQueue::Config config;
    config.max_depth = 0; // every submit beyond the workers bounces
    TestServer server(config, [](const SimRequest&) {
        // Never reached: nothing is ever admitted.
        return SimReport{};
    });
    ServeClient client(server.path());

    const JsonValue reply = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}");
    EXPECT_FALSE(reply.getBool("ok", true));
    EXPECT_EQ(reply.getString("error", ""), "queue_full");
    EXPECT_FALSE(reply.getString("message", "").empty());
}

TEST(Serve, CancelOverTheWire)
{
    // Runner parks until its cancel token trips, like the engine's
    // cooperative checkpoints.
    TestServer server({}, [](const SimRequest& request) -> SimReport {
        while (request.cancel == nullptr ||
               !request.cancel->load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw SimCancelled();
    });
    ServeClient client(server.path());

    const JsonValue submitted = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"wait\": false}");
    ASSERT_TRUE(submitted.getBool("ok", false));
    const auto id = static_cast<std::uint64_t>(
        submitted.getNumber("id", 0));

    const JsonValue cancelled = client.callJson(
        "{\"cmd\": \"cancel\", \"id\": " + std::to_string(id) + "}");
    EXPECT_TRUE(cancelled.getBool("ok", false));
    EXPECT_TRUE(cancelled.getBool("cancelled", false));

    const JsonValue polled = client.callJson(
        "{\"cmd\": \"poll\", \"id\": " + std::to_string(id) + "}");
    EXPECT_EQ(polled.getString("state", ""), "cancelled");

    // Cancelling a terminal job is a no-op, reported as such.
    const JsonValue again = client.callJson(
        "{\"cmd\": \"cancel\", \"id\": " + std::to_string(id) + "}");
    EXPECT_TRUE(again.getBool("ok", false));
    EXPECT_FALSE(again.getBool("cancelled", true));
}

TEST(Serve, ShutdownCommandDrainsInFlightJobs)
{
    Server::Config config;
    config.socket_path = socketPath();
    CompiledCache cache;
    Server server(config, &cache);
    std::thread thread([&server] { server.run(); });

    {
        ServeClient client(server.socketPath());
        const JsonValue submitted = client.callJson(
            "{\"cmd\": \"submit\", \"accel\": \"loas\", "
            "\"network\": \"alexnet-l4\", \"wait\": false}");
        ASSERT_TRUE(submitted.getBool("ok", false));
        const JsonValue stopping =
            client.callJson("{\"cmd\": \"shutdown\", \"drain\": true}");
        EXPECT_TRUE(stopping.getBool("ok", false));
        EXPECT_TRUE(stopping.getBool("stopping", false));
    }
    thread.join(); // run() returns only after the queue drained

    const JobQueue::Counters counters = server.queue().counters();
    EXPECT_EQ(counters.done, 1u);
    EXPECT_EQ(counters.cancelled, 0u);
    EXPECT_EQ(counters.failed, 0u);
}

TEST(Serve, ConcurrentIdenticalClientsShareOneCompile)
{
    TestServer server;
    const std::string submit =
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"seed\": 3}";

    std::string reports[3];
    std::thread clients[3];
    for (int i = 0; i < 3; ++i) {
        clients[i] = std::thread([&, i] {
            ServeClient client(server.path());
            const JsonValue reply = client.callJson(submit);
            if (reply.getString("state", "") == "done" &&
                reply.get("report") != nullptr)
                reports[i] = reply.get("report")->string;
        });
    }
    for (auto& client : clients)
        client.join();

    ASSERT_FALSE(reports[0].empty());
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    // One compiled-artifact key; however the three submits raced
    // (dedup, coalesce, or sequential warm runs), it compiled once.
    EXPECT_EQ(server.cache.stats().misses, 1u);
}

/** Tests below arm the process-global fault registry; disarm after. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

TEST(ServeFaults, FailedJobIsStructuredAndTheDaemonSurvives)
{
    TestServer server({}, [](const SimRequest&) -> SimReport {
        throw std::runtime_error("boom: engine exploded");
    });
    ServeClient client(server.path());

    const JsonValue reply = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}");
    EXPECT_TRUE(reply.getBool("ok", false)); // outcome, not an error
    EXPECT_EQ(reply.getString("state", ""), "failed");
    EXPECT_EQ(reply.getString("error", ""), "boom: engine exploded");
    EXPECT_EQ(reply.getString("message", ""),
              "boom: engine exploded");
    EXPECT_EQ(reply.get("report"), nullptr);

    // Polling the failed id keeps returning the structured error, and
    // the daemon is fully alive for unrelated commands.
    const auto id =
        static_cast<std::uint64_t>(reply.getNumber("id", 0));
    const JsonValue polled = client.callJson(
        "{\"cmd\": \"poll\", \"id\": " + std::to_string(id) + "}");
    EXPECT_EQ(polled.getString("state", ""), "failed");
    EXPECT_EQ(polled.getString("error", ""), "boom: engine exploded");
    const JsonValue stats = client.callJson("{\"cmd\": \"stats\"}");
    EXPECT_TRUE(stats.getBool("ok", false));
    EXPECT_EQ(stats.get("queue")->getNumber("failed", 0), 1.0);
}

TEST(ServeFaults, InjectedEngineFaultFailsTheJobNotTheDaemon)
{
    FaultGuard guard;
    TestServer server; // real engine
    ServeClient client(server.path());

    fault::configure("engine.execute=1");
    const JsonValue faulted = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}");
    EXPECT_EQ(faulted.getString("state", ""), "failed");
    EXPECT_EQ(faulted.getString("error", ""),
              "injected fault at engine.execute");

    // Disarmed, the very same daemon serves the same request fine.
    fault::reset();
    const JsonValue healed = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}");
    EXPECT_EQ(healed.getString("state", ""), "done");
    ASSERT_NE(healed.get("report"), nullptr);
}

TEST(ServeFaults, DroppedRepliesCostTheConnectionNotTheDaemon)
{
    FaultGuard guard;
    TestServer server({}, [](const SimRequest& request) {
        SimReport report;
        for (const auto& accel : request.accels)
            for (const auto& net : request.networks) {
                SimRun run;
                run.accel_spec = accel;
                run.network = net.name;
                run.result.total_cycles = 1;
                report.runs.push_back(std::move(run));
            }
        return report;
    });

    // Every reply write fails: the client sees a dropped connection,
    // never a hung call or a dead daemon.
    fault::configure("socket.write=1");
    {
        ServeClient client(server.path());
        EXPECT_THROW(client.call("{\"cmd\": \"stats\"}"),
                     std::runtime_error);
    }
    // Read faults likewise close the connection before a reply.
    fault::configure("socket.read=1");
    {
        ServeClient client(server.path());
        EXPECT_THROW(client.call("{\"cmd\": \"stats\"}"),
                     std::runtime_error);
    }

    fault::reset();
    ServeClient client(server.path());
    const JsonValue stats = client.callJson("{\"cmd\": \"stats\"}");
    EXPECT_TRUE(stats.getBool("ok", false));
}

TEST(ServeFaults, RetryWithBackoffRidesOutALateStartingDaemon)
{
    // The daemon binds its socket ~150 ms after the client's first
    // connect attempt; callWithRetry must absorb the refusals and
    // deliver the reply.
    const std::string path = socketPath();
    CompiledCache cache;
    std::unique_ptr<Server> server;
    std::thread server_thread;
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        Server::Config config;
        config.socket_path = path;
        server = std::make_unique<Server>(config, &cache);
        server_thread = std::thread([&] { server->run(); });
    });

    RetryPolicy policy;
    policy.retries = 50;
    policy.backoff_ms = 10.0;
    policy.max_backoff_ms = 100.0;
    const std::string reply =
        callWithRetry(path, "{\"cmd\": \"version\"}", policy);
    EXPECT_TRUE(parseJson(reply).getBool("ok", false));

    starter.join();
    server->requestStop(true);
    server_thread.join();
}

TEST(ServeFaults, ExhaustedRetriesSurfaceTheTransportError)
{
    RetryPolicy policy;
    policy.retries = 2;
    policy.backoff_ms = 1.0;
    EXPECT_THROW(callWithRetry("/tmp/loas-no-such-daemon.sock",
                               "{\"cmd\": \"stats\"}", policy),
                 std::runtime_error);
}

} // namespace
} // namespace serve
} // namespace loas
