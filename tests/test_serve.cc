/**
 * @file
 * Socket-level tests of the serve daemon: the NDJSON protocol, the
 * golden-identity guarantee (a served report is byte-identical to the
 * one-shot `loas_cli run --json` document for the same parameters, on
 * every registered design), backpressure, cancellation over the wire,
 * and drain shutdown.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/registry.hh"
#include "api/versions.hh"
#include "serve/client.hh"
#include "serve/json_parse.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace loas {
namespace serve {
namespace {

/** Unique short socket path (sun_path caps at ~108 bytes). */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/loas-serve-test-" + std::to_string(::getpid()) +
           "-" + std::to_string(counter++) + ".sock";
}

/** A server on its own thread + cache, torn down on destruction. */
class TestServer
{
  public:
    explicit TestServer(JobQueue::Config queue_config = {},
                        JobQueue::Runner runner = {})
    {
        Server::Config config;
        config.socket_path = socketPath();
        config.queue = queue_config;
        server = std::make_unique<Server>(config, &cache,
                                          std::move(runner));
        thread = std::thread([this] { server->run(); });
    }

    ~TestServer()
    {
        server->requestStop(true);
        thread.join();
    }

    const std::string& path() const { return server->socketPath(); }

    CompiledCache cache;
    std::unique_ptr<Server> server;
    std::thread thread;
};

TEST(Serve, ServedReportIsByteIdenticalToOneShotOnAllDesigns)
{
    // Every registered design in one request; alexnet-l4 keeps each
    // cell small while still exercising all seven simulators.
    std::string accels;
    for (const auto& key : AcceleratorRegistry::instance().keys())
        accels += (accels.empty() ? "" : ",") + key;

    TestServer server;
    ServeClient client(server.path());
    const JsonValue reply = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": " + json::quote(accels) +
        ", \"network\": \"alexnet-l4\", \"seed\": 11}");
    ASSERT_TRUE(reply.getBool("ok", false));
    ASSERT_EQ(reply.getString("state", ""), "done");

    RunSpec one_shot;
    one_shot.accels = splitSpecList(accels);
    one_shot.networks = {"alexnet-l4"};
    one_shot.seed = 11;
    const SimReport report = SimEngine().run(toSimRequest(one_shot));

    const JsonValue* served = reply.get("report");
    ASSERT_NE(served, nullptr);
    ASSERT_TRUE(served->isString());
    EXPECT_EQ(served->string, json::toJson(report));

    // The per-request stats carry the exact cache attribution.
    const JsonValue* stats = reply.get("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue* cache = stats->get("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GT(cache->getNumber("misses", 0), 0.0);
    EXPECT_GE(stats->getNumber("run_ms", -1), 0.0);
}

TEST(Serve, WarmRepeatRequestCompilesNothing)
{
    TestServer server;
    ServeClient client(server.path());
    const std::string submit =
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}";

    const JsonValue cold = client.callJson(submit);
    ASSERT_EQ(cold.getString("state", ""), "done");
    EXPECT_GT(cold.get("stats")->get("cache")->getNumber("misses", 0),
              0.0);

    const JsonValue warm = client.callJson(submit);
    ASSERT_EQ(warm.getString("state", ""), "done");
    const JsonValue* cache = warm.get("stats")->get("cache");
    EXPECT_EQ(cache->getNumber("misses", -1), 0.0);
    EXPECT_GT(cache->getNumber("hits", 0), 0.0);

    // Identical inputs, identical bytes — cold or warm.
    EXPECT_EQ(cold.get("report")->string, warm.get("report")->string);
}

TEST(Serve, VersionAndStatsCommands)
{
    TestServer server;
    ServeClient client(server.path());

    const JsonValue version = client.callJson("{\"cmd\": \"version\"}");
    EXPECT_TRUE(version.getBool("ok", false));
    const JsonValue* inner = version.get("version");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->getString("serve_schema", ""), kServeSchema);
    EXPECT_EQ(inner->getString("cli", ""), kCliVersion);
    EXPECT_EQ(inner->getString("bench_schema", ""), kBenchSchema);
    EXPECT_GT(inner->getNumber("artifact_format", 0), 0.0);

    const JsonValue stats = client.callJson("{\"cmd\": \"stats\"}");
    EXPECT_TRUE(stats.getBool("ok", false));
    ASSERT_NE(stats.get("queue"), nullptr);
    ASSERT_NE(stats.get("cache"), nullptr);
    EXPECT_EQ(stats.get("queue")->getNumber("submitted", -1), 0.0);
}

TEST(Serve, MalformedAndUnknownRequestsGetStructuredErrors)
{
    TestServer server;
    ServeClient client(server.path());

    const JsonValue garbage = client.callJson("this is not json");
    EXPECT_FALSE(garbage.getBool("ok", true));
    EXPECT_EQ(garbage.getString("error", ""), "bad_request");

    const JsonValue unknown_cmd =
        client.callJson("{\"cmd\": \"frobnicate\"}");
    EXPECT_EQ(unknown_cmd.getString("error", ""), "bad_request");

    const JsonValue bad_network = client.callJson(
        "{\"cmd\": \"submit\", \"network\": \"no-such-net\"}");
    EXPECT_EQ(bad_network.getString("error", ""), "bad_request");

    const JsonValue unknown_id =
        client.callJson("{\"cmd\": \"poll\", \"id\": 424242}");
    EXPECT_EQ(unknown_id.getString("error", ""), "unknown_id");
}

TEST(Serve, FullQueueRepliesWithBackpressureNotAHang)
{
    JobQueue::Config config;
    config.max_depth = 0; // every submit beyond the workers bounces
    TestServer server(config, [](const SimRequest&) {
        // Never reached: nothing is ever admitted.
        return SimReport{};
    });
    ServeClient client(server.path());

    const JsonValue reply = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\"}");
    EXPECT_FALSE(reply.getBool("ok", true));
    EXPECT_EQ(reply.getString("error", ""), "queue_full");
    EXPECT_FALSE(reply.getString("message", "").empty());
}

TEST(Serve, CancelOverTheWire)
{
    // Runner parks until its cancel token trips, like the engine's
    // cooperative checkpoints.
    TestServer server({}, [](const SimRequest& request) -> SimReport {
        while (request.cancel == nullptr ||
               !request.cancel->load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw SimCancelled();
    });
    ServeClient client(server.path());

    const JsonValue submitted = client.callJson(
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"wait\": false}");
    ASSERT_TRUE(submitted.getBool("ok", false));
    const auto id = static_cast<std::uint64_t>(
        submitted.getNumber("id", 0));

    const JsonValue cancelled = client.callJson(
        "{\"cmd\": \"cancel\", \"id\": " + std::to_string(id) + "}");
    EXPECT_TRUE(cancelled.getBool("ok", false));
    EXPECT_TRUE(cancelled.getBool("cancelled", false));

    const JsonValue polled = client.callJson(
        "{\"cmd\": \"poll\", \"id\": " + std::to_string(id) + "}");
    EXPECT_EQ(polled.getString("state", ""), "cancelled");

    // Cancelling a terminal job is a no-op, reported as such.
    const JsonValue again = client.callJson(
        "{\"cmd\": \"cancel\", \"id\": " + std::to_string(id) + "}");
    EXPECT_TRUE(again.getBool("ok", false));
    EXPECT_FALSE(again.getBool("cancelled", true));
}

TEST(Serve, ShutdownCommandDrainsInFlightJobs)
{
    Server::Config config;
    config.socket_path = socketPath();
    CompiledCache cache;
    Server server(config, &cache);
    std::thread thread([&server] { server.run(); });

    {
        ServeClient client(server.socketPath());
        const JsonValue submitted = client.callJson(
            "{\"cmd\": \"submit\", \"accel\": \"loas\", "
            "\"network\": \"alexnet-l4\", \"wait\": false}");
        ASSERT_TRUE(submitted.getBool("ok", false));
        const JsonValue stopping =
            client.callJson("{\"cmd\": \"shutdown\", \"drain\": true}");
        EXPECT_TRUE(stopping.getBool("ok", false));
        EXPECT_TRUE(stopping.getBool("stopping", false));
    }
    thread.join(); // run() returns only after the queue drained

    const JobQueue::Counters counters = server.queue().counters();
    EXPECT_EQ(counters.done, 1u);
    EXPECT_EQ(counters.cancelled, 0u);
    EXPECT_EQ(counters.failed, 0u);
}

TEST(Serve, ConcurrentIdenticalClientsShareOneCompile)
{
    TestServer server;
    const std::string submit =
        "{\"cmd\": \"submit\", \"accel\": \"loas\", "
        "\"network\": \"alexnet-l4\", \"seed\": 3}";

    std::string reports[3];
    std::thread clients[3];
    for (int i = 0; i < 3; ++i) {
        clients[i] = std::thread([&, i] {
            ServeClient client(server.path());
            const JsonValue reply = client.callJson(submit);
            if (reply.getString("state", "") == "done" &&
                reply.get("report") != nullptr)
                reports[i] = reply.get("report")->string;
        });
    }
    for (auto& client : clients)
        client.join();

    ASSERT_FALSE(reports[0].empty());
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    // One compiled-artifact key; however the three submits raced
    // (dedup, coalesce, or sequential warm runs), it compiled once.
    EXPECT_EQ(server.cache.stats().misses, 1u);
}

} // namespace
} // namespace serve
} // namespace loas
