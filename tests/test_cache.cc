/** @file Tests for the set-associative LRU cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace loas {
namespace {

CacheConfig
smallCache()
{
    CacheConfig config;
    config.size_bytes = 1024; // 16 lines
    config.ways = 4;
    config.line_bytes = 64;
    return config;
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache());
    auto first = cache.accessLine(0, false, TensorCategory::Input);
    EXPECT_FALSE(first.hit);
    auto second = cache.accessLine(32, false, TensorCategory::Input);
    EXPECT_TRUE(second.hit); // same 64 B line
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 4 sets x 4 ways: addresses with the same set index collide.
    Cache cache(smallCache());
    const std::uint64_t stride = 4 * 64; // same set every time
    for (int i = 0; i < 4; ++i)
        cache.accessLine(i * stride, false, TensorCategory::Input);
    // Touch line 0 so line 1 becomes LRU.
    cache.accessLine(0, false, TensorCategory::Input);
    // A 5th line evicts line 1 (the LRU), not line 0.
    cache.accessLine(4 * stride, false, TensorCategory::Input);
    EXPECT_TRUE(cache.accessLine(0, false, TensorCategory::Input).hit);
    EXPECT_FALSE(
        cache.accessLine(1 * stride, false, TensorCategory::Input).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache());
    const std::uint64_t stride = 4 * 64;
    cache.accessLine(0, true, TensorCategory::Psum); // dirty
    for (int i = 1; i <= 3; ++i)
        cache.accessLine(i * stride, false, TensorCategory::Input);
    const auto result =
        cache.accessLine(4 * stride, false, TensorCategory::Input);
    EXPECT_FALSE(result.hit);
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(result.writeback_cat, TensorCategory::Psum);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache cache(smallCache());
    const std::uint64_t stride = 4 * 64;
    for (int i = 0; i <= 4; ++i) {
        const auto result =
            cache.accessLine(i * stride, false, TensorCategory::Input);
        EXPECT_FALSE(result.writeback);
    }
}

TEST(Cache, FlushReturnsDirtyBytesByCategory)
{
    Cache cache(smallCache());
    cache.accessLine(0, true, TensorCategory::Psum);
    cache.accessLine(64, true, TensorCategory::Output);
    cache.accessLine(128, false, TensorCategory::Input);
    const auto dirty = cache.flush();
    EXPECT_EQ(dirty[static_cast<int>(TensorCategory::Psum)], 64u);
    EXPECT_EQ(dirty[static_cast<int>(TensorCategory::Output)], 64u);
    EXPECT_EQ(dirty[static_cast<int>(TensorCategory::Input)], 0u);
    // Everything invalid after the flush.
    EXPECT_FALSE(cache.accessLine(0, false, TensorCategory::Input).hit);
}

TEST(Cache, MissRate)
{
    Cache cache(smallCache());
    cache.accessLine(0, false, TensorCategory::Input);
    cache.accessLine(0, false, TensorCategory::Input);
    cache.accessLine(0, false, TensorCategory::Input);
    cache.accessLine(0, false, TensorCategory::Input);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.25);
}

TEST(Cache, Table3GeometryAccepted)
{
    CacheConfig config; // defaults: 256 KB, 16-way, 64 B lines
    Cache cache(config);
    EXPECT_EQ(cache.config().size_bytes, 256u * 1024);
    // 256 KB working set fits: second sweep all hits.
    for (std::uint64_t addr = 0; addr < 256 * 1024; addr += 64)
        cache.accessLine(addr, false, TensorCategory::Weight);
    const std::uint64_t misses_after_fill = cache.misses();
    for (std::uint64_t addr = 0; addr < 256 * 1024; addr += 64)
        cache.accessLine(addr, false, TensorCategory::Weight);
    EXPECT_EQ(cache.misses(), misses_after_fill);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    CacheConfig config;
    config.line_bytes = 48; // not a power of two
    EXPECT_DEATH({ Cache cache(config); }, "power of two");
}

} // namespace
} // namespace loas
