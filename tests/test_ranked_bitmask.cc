/** @file RankedBitmask: O(1) rank/popcountRange and word-AND matching. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "tensor/ranked_bitmask.hh"

namespace loas {
namespace {

Bitmask
randomMask(std::size_t size, double density, std::uint64_t seed)
{
    Rng rng(seed);
    Bitmask mask(size);
    for (std::size_t i = 0; i < size; ++i)
        if (rng.bernoulli(density))
            mask.set(i);
    return mask;
}

TEST(RankedBitmask, EmptyMask)
{
    const Bitmask mask(0);
    const RankedBitmask ranked(mask);
    EXPECT_EQ(ranked.rank(0), 0u);
    EXPECT_EQ(ranked.popcountRange(0, 0), 0u);
    EXPECT_EQ(ranked.popcount(), 0u);
}

TEST(RankedBitmask, AllZeros)
{
    const Bitmask mask(200);
    const RankedBitmask ranked(mask);
    for (std::size_t i = 0; i <= 200; i += 7)
        EXPECT_EQ(ranked.rank(i), 0u);
    EXPECT_EQ(ranked.popcountRange(0, 200), 0u);
}

TEST(RankedBitmask, AllOnesOddLength)
{
    // k deliberately not a multiple of 64: the trailing partial word
    // must not contribute phantom bits.
    const std::size_t k = 130;
    Bitmask mask(k);
    for (std::size_t i = 0; i < k; ++i)
        mask.set(i);
    const RankedBitmask ranked(mask);
    for (std::size_t i = 0; i <= k; ++i)
        EXPECT_EQ(ranked.rank(i), i);
    for (std::size_t lo = 0; lo <= k; lo += 13)
        for (std::size_t hi = lo; hi <= k; hi += 17)
            EXPECT_EQ(ranked.popcountRange(lo, hi), hi - lo);
    EXPECT_EQ(ranked.popcount(), k);
}

TEST(RankedBitmask, MatchesScalarRankEverywhere)
{
    for (const std::size_t k : {1ul, 63ul, 64ul, 65ul, 67ul, 512ul}) {
        const Bitmask mask = randomMask(k, 0.3, k);
        const RankedBitmask ranked(mask);
        for (std::size_t i = 0; i <= k; ++i)
            EXPECT_EQ(ranked.rank(i), mask.rank(i)) << "k=" << k
                                                    << " i=" << i;
    }
}

TEST(RankedBitmask, MatchesScalarPopcountRange)
{
    const std::size_t k = 300;
    const Bitmask mask = randomMask(k, 0.4, 5);
    const RankedBitmask ranked(mask);
    for (std::size_t lo = 0; lo <= k; lo += 11)
        for (std::size_t hi = 0; hi <= k + 8; hi += 13)
            EXPECT_EQ(ranked.popcountRange(lo, hi),
                      mask.popcountRange(lo, hi));
}

TEST(RankedBitmask, RankOutOfRangeDies)
{
    const Bitmask mask(64);
    const RankedBitmask ranked(mask);
    EXPECT_DEATH(ranked.rank(65), "out of range");
}

/** Reference: matches of a & b over [lo, hi) via the scalar path. */
std::vector<std::size_t>
referenceMatches(const Bitmask& a, const Bitmask& b, std::size_t lo,
                 std::size_t hi)
{
    std::vector<std::size_t> out;
    for (const auto pos : a.setBitsInRange(lo, hi))
        if (b.test(pos))
            out.push_back(pos);
    return out;
}

TEST(ForEachMatch, AgreesWithScalarReference)
{
    for (const std::size_t k : {1ul, 64ul, 67ul, 130ul, 512ul}) {
        const Bitmask a = randomMask(k, 0.5, k * 2 + 1);
        const Bitmask b = randomMask(k, 0.5, k * 3 + 7);
        const RankedBitmask ra(a), rb(b);
        for (std::size_t lo = 0; lo <= k; lo += 29) {
            for (std::size_t hi = lo; hi <= k; hi += 37) {
                const auto want = referenceMatches(a, b, lo, hi);
                std::vector<std::size_t> got;
                forEachMatch(ra, rb, lo, hi,
                             [&](std::size_t pos, std::size_t rank_a,
                                 std::size_t rank_b) {
                                 EXPECT_EQ(rank_a, a.rank(pos));
                                 EXPECT_EQ(rank_b, b.rank(pos));
                                 got.push_back(pos);
                             });
                EXPECT_EQ(got, want) << "k=" << k << " lo=" << lo
                                     << " hi=" << hi;
                EXPECT_EQ(anyMatch(a, b, lo, hi), !want.empty());
            }
        }
    }
}

TEST(ForEachMatch, FullRangeOverloadTracksWeightRank)
{
    const std::size_t k = 200;
    const Bitmask a = randomMask(k, 0.6, 17);
    const Bitmask b = randomMask(k, 0.2, 23);
    const RankedBitmask rb(b);
    const auto want = referenceMatches(a, b, 0, k);
    std::vector<std::size_t> got;
    forEachMatch(a, rb, [&](std::size_t pos, std::size_t rank_b) {
        EXPECT_EQ(rank_b, b.rank(pos));
        got.push_back(pos);
    });
    EXPECT_EQ(got, want);
}

TEST(ForEachMatch, AllOnesBothSides)
{
    const std::size_t k = 130;
    Bitmask a(k), b(k);
    for (std::size_t i = 0; i < k; ++i) {
        a.set(i);
        b.set(i);
    }
    const RankedBitmask ra(a), rb(b);
    std::size_t n = 0;
    forEachMatch(ra, rb, 0, k,
                 [&](std::size_t pos, std::size_t rank_a,
                     std::size_t rank_b) {
                     EXPECT_EQ(pos, n);
                     EXPECT_EQ(rank_a, n);
                     EXPECT_EQ(rank_b, n);
                     ++n;
                 });
    EXPECT_EQ(n, k);
}

TEST(Bitmask, AndPopcountMatchesMaterializedAnd)
{
    for (const std::size_t k : {1ul, 64ul, 67ul, 300ul}) {
        const Bitmask a = randomMask(k, 0.5, k + 11);
        const Bitmask b = randomMask(k, 0.5, k + 13);
        EXPECT_EQ(a.andPopcount(b), (a & b).popcount());
    }
}

} // namespace
} // namespace loas
