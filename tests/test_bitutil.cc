/** @file Unit tests for common/bitutil.hh. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

namespace loas {
namespace {

TEST(BitUtil, Popcount)
{
    EXPECT_EQ(popcount64(0ull), 0);
    EXPECT_EQ(popcount64(1ull), 1);
    EXPECT_EQ(popcount64(0xffull), 8);
    EXPECT_EQ(popcount64(~0ull), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0u, 8u), 0u);
    EXPECT_EQ(ceilDiv(1u, 8u), 1u);
    EXPECT_EQ(ceilDiv(8u, 8u), 1u);
    EXPECT_EQ(ceilDiv(9u, 8u), 2u);
    EXPECT_EQ(ceilDiv<std::uint64_t>(2304, 128), 18u);
    EXPECT_EQ(ceilDiv<std::uint64_t>(2305, 128), 19u);
}

TEST(BitUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0u, 64u), 0u);
    EXPECT_EQ(roundUp(1u, 64u), 64u);
    EXPECT_EQ(roundUp(64u, 64u), 64u);
    EXPECT_EQ(roundUp(65u, 64u), 128u);
}

TEST(BitUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(128), 7);
    EXPECT_EQ(floorLog2(1ull << 63), 63);
}

TEST(BitUtil, LowestSetBit)
{
    EXPECT_EQ(lowestSetBit(1ull), 0);
    EXPECT_EQ(lowestSetBit(0x80ull), 7);
    EXPECT_EQ(lowestSetBit(0x8000000000000000ull), 63);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask64(0), 0ull);
    EXPECT_EQ(lowMask64(1), 1ull);
    EXPECT_EQ(lowMask64(8), 0xffull);
    EXPECT_EQ(lowMask64(64), ~0ull);
}

} // namespace
} // namespace loas
