/** @file Tests for the functional reference SNN layer (Eq. 1-3). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "snn/reference.hh"

namespace loas {
namespace {

TEST(Reference, HandComputedMatmul)
{
    // A (1 x 2 x 2), B (2 x 2).
    SpikeTensor a(1, 2, 2);
    a.setSpike(0, 0, 0);
    a.setSpike(0, 1, 0);
    a.setSpike(0, 1, 1);
    DenseMatrix<std::int8_t> b(2, 2, 0);
    b(0, 0) = 3;
    b(0, 1) = -1;
    b(1, 0) = 2;
    b(1, 1) = 4;

    const auto o0 = referenceMatmulAtT(a, b, 0);
    EXPECT_EQ(o0(0, 0), 5);  // 3 + 2
    EXPECT_EQ(o0(0, 1), 3);  // -1 + 4
    const auto o1 = referenceMatmulAtT(a, b, 1);
    EXPECT_EQ(o1(0, 0), 2);
    EXPECT_EQ(o1(0, 1), 4);
}

TEST(Reference, LayerAppliesLifRecurrence)
{
    SpikeTensor a(1, 1, 3);
    a.setSpike(0, 0, 0);
    a.setSpike(0, 0, 1);
    a.setSpike(0, 0, 2);
    DenseMatrix<std::int8_t> b(1, 1, 0);
    b(0, 0) = 50;
    LifParams p;
    p.v_th = 64;
    p.tau_shift = 1;

    // t0: X=50, no spike, U=25. t1: X=75 -> spike, U=0. t2: X=50, no.
    const SpikeTensor c = referenceSnnLayer(a, b, p);
    EXPECT_EQ(c.word(0, 0), 0b010u);
}

TEST(Reference, FullSumsExposed)
{
    SpikeTensor a(2, 3, 2);
    a.setSpike(0, 0, 0);
    a.setSpike(1, 2, 1);
    DenseMatrix<std::int8_t> b(3, 2, 0);
    b(0, 0) = 7;
    b(2, 1) = -3;
    LifParams p;

    DenseMatrix<std::int32_t> sums;
    referenceSnnLayer(a, b, p, &sums);
    ASSERT_EQ(sums.rows(), 2u);
    ASSERT_EQ(sums.cols(), 4u); // n * T
    EXPECT_EQ(sums(0, 0 * 2 + 0), 7);
    EXPECT_EQ(sums(0, 0 * 2 + 1), 0);
    EXPECT_EQ(sums(1, 1 * 2 + 1), -3);
}

TEST(Reference, SilentInputYieldsSilentOutput)
{
    SpikeTensor a(3, 5, 4);
    DenseMatrix<std::int8_t> b(5, 6, 1);
    LifParams p;
    const SpikeTensor c = referenceSnnLayer(a, b, p);
    EXPECT_EQ(c.countSpikes(), 0u);
}

TEST(Reference, AcOpsCountsSpikeWeightPairs)
{
    SpikeTensor a(1, 2, 2);
    a.setWord(0, 0, 0b11); // two spikes
    a.setWord(0, 1, 0b01); // one spike
    DenseMatrix<std::int8_t> b(2, 3, 0);
    b(0, 0) = 1; // row 0 has 1 non-zero
    b(1, 0) = 1;
    b(1, 2) = 1; // row 1 has 2 non-zeros
    EXPECT_EQ(referenceAcOps(a, b), 2u * 1 + 1u * 2);
}

TEST(ReferenceDeath, ShapeMismatch)
{
    SpikeTensor a(1, 3, 2);
    DenseMatrix<std::int8_t> b(4, 2, 0);
    EXPECT_DEATH(referenceMatmulAtT(a, b, 0), "shape mismatch");
}

/**
 * Property: the layer output is invariant to the order in which we
 * evaluate timesteps (the matmul is per-timestep independent), and
 * matches a naive per-element recomputation.
 */
class ReferenceProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReferenceProperty, MatchesNaiveRecomputation)
{
    Rng rng(GetParam() * 31 + 5);
    const std::size_t m = 1 + rng.uniformInt(6);
    const std::size_t k = 1 + rng.uniformInt(20);
    const std::size_t n = 1 + rng.uniformInt(8);
    const int timesteps = 1 + static_cast<int>(rng.uniformInt(6));

    SpikeTensor a(m, k, timesteps);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < k; ++c)
            for (int t = 0; t < timesteps; ++t)
                if (rng.bernoulli(0.3))
                    a.setSpike(r, c, t);
    DenseMatrix<std::int8_t> b(k, n, 0);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < n; ++c)
            if (rng.bernoulli(0.4))
                b(r, c) = static_cast<std::int8_t>(
                    static_cast<int>(rng.uniformInt(100)) - 50);

    LifParams p;
    p.v_th = 20;
    const SpikeTensor out = referenceSnnLayer(a, b, p);

    for (std::size_t row = 0; row < m; ++row)
        for (std::size_t col = 0; col < n; ++col) {
            std::vector<std::int32_t> sums(
                static_cast<std::size_t>(timesteps), 0);
            for (int t = 0; t < timesteps; ++t)
                for (std::size_t kk = 0; kk < k; ++kk)
                    if (a.spike(row, kk, t))
                        sums[static_cast<std::size_t>(t)] += b(kk, col);
            EXPECT_EQ(out.word(row, col), lifAcrossTimesteps(sums, p));
        }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace loas
