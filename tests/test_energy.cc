/** @file Tests for the energy model. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace loas {
namespace {

TEST(EnergyModel, ZeroRunZeroEnergy)
{
    const EnergyModel model;
    const RunResult result;
    const EnergyBreakdown e = model.evaluate(result);
    EXPECT_DOUBLE_EQ(e.totalPj(), 0.0);
}

TEST(EnergyModel, ComputeTermsAdd)
{
    EnergyParams params;
    params.acc_pj = 1.0;
    params.lif_pj = 2.0;
    params.static_pj_per_cycle = 0.0;
    const EnergyModel model(params);
    RunResult result;
    result.ops.acc_ops = 10;
    result.ops.lif_ops = 5;
    const EnergyBreakdown e = model.evaluate(result);
    EXPECT_DOUBLE_EQ(e.compute_pj, 10.0 + 10.0);
    EXPECT_DOUBLE_EQ(e.totalPj(), 20.0);
}

TEST(EnergyModel, TrafficTerms)
{
    EnergyParams params;
    params.sram_pj_per_byte = 1.0;
    params.dram_pj_per_byte = 10.0;
    params.static_pj_per_cycle = 0.0;
    const EnergyModel model(params);
    RunResult result;
    result.traffic.sram_read[0] = 100;
    result.traffic.dram_write[1] = 7;
    const EnergyBreakdown e = model.evaluate(result);
    EXPECT_DOUBLE_EQ(e.sram_pj, 100.0);
    EXPECT_DOUBLE_EQ(e.dram_pj, 70.0);
}

TEST(EnergyModel, StaticTermScalesWithCycles)
{
    EnergyParams params;
    params.static_pj_per_cycle = 2.5;
    const EnergyModel model(params);
    RunResult result;
    result.total_cycles = 1000;
    EXPECT_DOUBLE_EQ(model.evaluate(result).static_pj, 2500.0);
}

TEST(EnergyModel, DramCostsMoreThanSramPerByte)
{
    // Sanity of the default calibration: the memory-hierarchy energy
    // ordering must hold or every ratio in the evaluation flips.
    const EnergyParams params;
    EXPECT_GT(params.dram_pj_per_byte, params.sram_pj_per_byte * 5);
    // A MAC costs more than an AC (the SNN advantage, Section II-B).
    EXPECT_GT(params.mac_pj, params.acc_pj * 2);
    // The fast prefix tree dominates the laggy chain (Table IV).
    EXPECT_GT(params.fast_prefix_pj, params.laggy_prefix_pj * 3);
}

TEST(EnergyModel, DataMovementFraction)
{
    EnergyParams params;
    params.static_pj_per_cycle = 0.0;
    params.acc_pj = 1.0;
    params.sram_pj_per_byte = 1.0;
    params.dram_pj_per_byte = 1.0;
    const EnergyModel model(params);
    RunResult result;
    result.ops.acc_ops = 40;
    result.traffic.sram_read[0] = 30;
    result.traffic.dram_read[0] = 30;
    const EnergyBreakdown e = model.evaluate(result);
    EXPECT_NEAR(e.dataMovementFraction(), 0.6, 1e-12);
}

} // namespace
} // namespace loas
