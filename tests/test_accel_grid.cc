/** @file Tests for multi-value spec grids and OptionReader::getDouble. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/accel_spec.hh"

namespace loas {
namespace {

TEST(AccelSpecGrid, BareKeyExpandsToItself)
{
    const auto specs = expandSpecGrid("loas");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0], "loas");
}

TEST(AccelSpecGrid, SingleValuedOptionsExpandToOneSpec)
{
    const auto specs = expandSpecGrid("gamma?pes=32&radix=8");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0], "gamma?pes=32&radix=8");
}

TEST(AccelSpecGrid, CartesianExpansionInOdometerOrder)
{
    // Option axes iterate in sorted name order ("pes" < "t") and the
    // last axis varies fastest.
    const auto specs = expandSpecGrid("loas?pes=16,32&t=4,8");
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0], "loas?pes=16&t=4");
    EXPECT_EQ(specs[1], "loas?pes=16&t=8");
    EXPECT_EQ(specs[2], "loas?pes=32&t=4");
    EXPECT_EQ(specs[3], "loas?pes=32&t=8");
}

TEST(AccelSpecGrid, ValueOrderIsPreservedWithinAnAxis)
{
    const auto specs = expandSpecGrid("loas?pes=64,16");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "loas?pes=64");
    EXPECT_EQ(specs[1], "loas?pes=16");
}

TEST(AccelSpecGrid, CellCountIsTheProductOfAxisSizes)
{
    const AccelSpecGrid grid =
        parseAccelSpecGrid("loas?pes=1,2,3&t=4,8&chunk=64,128");
    EXPECT_EQ(grid.cells(), 12u);
    EXPECT_EQ(grid.expand().size(), 12u);
}

TEST(AccelSpecGrid, RejectsEmptyAndDuplicateValues)
{
    EXPECT_THROW(parseAccelSpecGrid("loas?pes=16,,32"),
                 std::invalid_argument);
    EXPECT_THROW(parseAccelSpecGrid("loas?pes=,16"),
                 std::invalid_argument);
    EXPECT_THROW(parseAccelSpecGrid("loas?pes=16,16"),
                 std::invalid_argument);
}

TEST(AccelSpecGrid, RejectsMalformedSpecsLikeTheScalarParser)
{
    EXPECT_THROW(parseAccelSpecGrid(""), std::invalid_argument);
    EXPECT_THROW(parseAccelSpecGrid("LoAS?pes=16"),
                 std::invalid_argument);
    EXPECT_THROW(parseAccelSpecGrid("loas?pes"),
                 std::invalid_argument);
    EXPECT_THROW(parseAccelSpecGrid("loas?pes=16&pes=32"),
                 std::invalid_argument);
}

TEST(AccelSpecGrid, RejectsExpansionsPastTheCellCap)
{
    // 70 x 70 = 4900 > kMaxGridCells.
    std::string a = "x?a=0", b = "&b=0";
    for (int i = 1; i < 70; ++i) {
        a += ',';
        a += std::to_string(i);
        b += ',';
        b += std::to_string(i);
    }
    EXPECT_NO_THROW(parseAccelSpecGrid(a));
    EXPECT_THROW(parseAccelSpecGrid(a + b), std::invalid_argument);
}

TEST(AccelSpecGrid, GridListExpandsAndDeduplicatesAcrossGrids)
{
    const auto specs =
        expandSpecGridList("loas?pes=16,32;sparten;loas?pes=32,64");
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0], "loas?pes=16");
    EXPECT_EQ(specs[1], "loas?pes=32");
    EXPECT_EQ(specs[2], "sparten");
    EXPECT_EQ(specs[3], "loas?pes=64"); // pes=32 deduped, order kept

    // The vector overload is the same expansion without the split.
    EXPECT_EQ(expandSpecGridList(
                  {"loas?pes=16,32", "sparten", "loas?pes=32,64"}),
              specs);
}

TEST(OptionReaderDouble, ParsesValidatesAndDefaults)
{
    const AccelSpec spec = parseAccelSpec("net?ws=0.25");
    {
        OptionReader opts(spec);
        EXPECT_DOUBLE_EQ(opts.getDouble("ws", 0.9, 0.0, 1.0), 0.25);
        EXPECT_DOUBLE_EQ(opts.getDouble("absent", 0.5, 0.0, 1.0), 0.5);
        EXPECT_NO_THROW(opts.finish());
    }
    {
        OptionReader opts(spec);
        EXPECT_THROW(opts.getDouble("ws", 0.0, 0.5, 1.0),
                     std::invalid_argument); // below min
    }
    const AccelSpec bad = parseAccelSpec("net?ws=abc");
    OptionReader opts(bad);
    EXPECT_THROW(opts.getDouble("ws", 0.0, 0.0, 1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace loas
