/** @file Calibration tests for the synthetic workload generator. */

#include <gtest/gtest.h>

#include "snn/metrics.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(TruncatedBinomial, KnownValues)
{
    // Unconditioned mean when min_spikes = 0.
    EXPECT_NEAR(truncatedBinomialMean(0.5, 4, 0), 2.0, 1e-12);
    // Conditioning on >= 1 raises the mean.
    EXPECT_GT(truncatedBinomialMean(0.1, 4, 1),
              truncatedBinomialMean(0.1, 4, 0));
    // As p -> 1 the conditioning stops mattering.
    EXPECT_NEAR(truncatedBinomialMean(0.999, 4, 1), 4.0, 0.01);
    // min == t forces the mean to t.
    EXPECT_NEAR(truncatedBinomialMean(0.3, 4, 4), 4.0, 1e-12);
}

TEST(TruncatedBinomial, SolverInverts)
{
    for (const double target : {1.2, 2.0, 2.8, 3.5}) {
        const double p = solveFiringProbability(target, 4, 1);
        EXPECT_NEAR(truncatedBinomialMean(p, 4, 1), target, 1e-6);
    }
    for (const double target : {2.2, 3.0, 3.7}) {
        const double p = solveFiringProbability(target, 4, 2);
        EXPECT_NEAR(truncatedBinomialMean(p, 4, 2), target, 1e-6);
    }
}

TEST(TruncatedBinomial, SolverClampsUnreachableTargets)
{
    // Mean below the conditioned floor: returns ~0 probability.
    const double lo = solveFiringProbability(0.5, 4, 1);
    EXPECT_LT(lo, 0.05);
    // Mean at the ceiling: returns p = 1.
    EXPECT_DOUBLE_EQ(solveFiringProbability(4.0, 4, 1), 1.0);
}

TEST(Generator, HitsPublishedLayerStatistics)
{
    const LayerSpec spec = tables::vgg16L8();
    const LayerData data = generateLayer(spec, 123);
    const SpikeStats stats = computeSpikeStats(data.spikes);
    EXPECT_NEAR(stats.origin_sparsity, spec.spike_sparsity, 0.012);
    EXPECT_NEAR(stats.silent_ratio, spec.silent_ratio, 0.012);
    EXPECT_NEAR(data.weights.sparsity(), spec.weight_sparsity, 0.005);
    EXPECT_EQ(data.spikes.rows(), spec.m);
    EXPECT_EQ(data.spikes.cols(), spec.k);
    EXPECT_EQ(data.weights.rows(), spec.k);
    EXPECT_EQ(data.weights.cols(), spec.n);
}

TEST(Generator, FtModeRaisesSilentRatioAndKillsSingles)
{
    const LayerSpec spec = tables::alexnetL4();
    const LayerData origin = generateLayer(spec, 9, false);
    const LayerData ft = generateLayer(spec, 9, true);
    EXPECT_NEAR(origin.spikes.silentRatio(), spec.silent_ratio, 0.012);
    EXPECT_NEAR(ft.spikes.silentRatio(), spec.silent_ratio_ft, 0.012);
    EXPECT_GT(ft.spikes.silentRatio(), origin.spikes.silentRatio());
    // Preprocessing masks single-spike neurons: the FT workload has
    // none.
    EXPECT_EQ(ft.spikes.singleSpikeCount(), 0u);
}

TEST(Generator, Deterministic)
{
    const LayerSpec spec = tables::resnet19L19();
    const LayerData a = generateLayer(spec, 77);
    const LayerData b = generateLayer(spec, 77);
    EXPECT_EQ(a.spikes, b.spikes);
    EXPECT_EQ(a.weights, b.weights);
    const LayerData c = generateLayer(spec, 78);
    EXPECT_FALSE(a.spikes == c.spikes);
}

TEST(Generator, DenseSpecProducesDenseData)
{
    LayerSpec spec;
    spec.name = "dense";
    spec.t = 4;
    spec.m = 8;
    spec.n = 8;
    spec.k = 64;
    spec.spike_sparsity = 0.0;
    spec.silent_ratio = 0.0;
    spec.silent_ratio_ft = 0.0;
    spec.weight_sparsity = 0.0;
    const LayerData data = generateLayer(spec, 1);
    EXPECT_EQ(data.spikes.countSpikes(), 8u * 64 * 4);
    EXPECT_EQ(data.weights.zeroCount(), 0u);
}

TEST(Generator, SingleTimestepDegenerates)
{
    LayerSpec spec = tables::vgg16L8();
    spec = tables::withTimesteps(spec, 1);
    const LayerData data = generateLayer(spec, 5);
    // With T=1 the silent ratio IS the bit sparsity.
    EXPECT_NEAR(data.spikes.silentRatio(),
                data.spikes.originSparsity(), 1e-9);
    EXPECT_NEAR(data.spikes.originSparsity(), spec.spike_sparsity,
                0.02);
}

TEST(Generator, AnnLayerSparsityAndPositivity)
{
    LayerSpec spec = tables::vgg16L8();
    spec.spike_sparsity = 0.439; // activation sparsity for Fig. 18
    const AnnLayerData data = generateAnnLayer(spec, 31);
    EXPECT_NEAR(data.acts.sparsity(), 0.439, 0.012);
    for (const auto v : data.acts.data())
        EXPECT_GE(v, 0); // ReLU outputs
    EXPECT_NEAR(data.weights.sparsity(), spec.weight_sparsity, 0.01);
}

TEST(Generator, NetworkGeneration)
{
    const NetworkSpec net = tables::alexnet();
    const auto layers = generateNetwork(net, 2);
    ASSERT_EQ(layers.size(), net.layers.size());
    for (std::size_t l = 0; l < layers.size(); ++l) {
        EXPECT_EQ(layers[l].spec.name, net.layers[l].name);
        EXPECT_EQ(layers[l].spikes.rows(), net.layers[l].m);
    }
}

/** Property: generated statistics track the spec across the tables. */
class GeneratorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(GeneratorProperty, PinnedLayersCalibrated)
{
    const std::vector<LayerSpec> specs = {
        tables::alexnetL4(), tables::vgg16L8(), tables::resnet19L19()};
    const LayerSpec spec = specs[static_cast<std::size_t>(GetParam())];
    for (const std::uint64_t seed : {1ull, 2ull}) {
        const LayerData data = generateLayer(spec, seed);
        EXPECT_NEAR(data.spikes.originSparsity(), spec.spike_sparsity,
                    0.015)
            << spec.name;
        EXPECT_NEAR(data.spikes.silentRatio(), spec.silent_ratio, 0.015)
            << spec.name;
        EXPECT_NEAR(data.weights.sparsity(), spec.weight_sparsity,
                    0.005)
            << spec.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Pinned, GeneratorProperty,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace loas
