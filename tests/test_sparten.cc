/** @file Tests for the SparTen-SNN / SparTen-ANN baseline. */

#include <gtest/gtest.h>

#include "baselines/sparten.hh"
#include "common/rng.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Sparten, OutputMatchesReference)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 1);
    SpartenSim sim;
    sim.runLayer(layer);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, SpartenConfig{}.lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

TEST(Sparten, SequentialTimestepsCostMoreThanOne)
{
    // The core observation of the paper: T sequential timesteps cost
    // roughly T mask scans plus per-timestep restarts.
    LayerSpec spec = tables::vgg16L8();
    const LayerData t4 = generateLayer(spec, 2);
    const LayerSpec spec1 = tables::withTimesteps(spec, 1);
    const LayerData t1 = generateLayer(spec1, 2);
    SpartenSim sim;
    const auto r4 = sim.runLayer(t4);
    const auto r1 = sim.runLayer(t1);
    EXPECT_GT(r4.compute_cycles,
              3 * r1.compute_cycles);
}

TEST(Sparten, FetchesDenseSpikeTrains)
{
    // SparTen-SNN uses the raw spike train as bitmask-and-data: every
    // bit of A crosses the SRAM interface, every timestep (Section
    // II-D), unlike LoAS's non-silent-only fetches.
    const LayerData layer = generateLayer(tables::vgg16L8(), 3);
    SpartenSim sim;
    const RunResult r = sim.runLayer(layer);
    const std::uint64_t input_sram =
        r.traffic.sramBytes(TensorCategory::Input);
    // One full dense pass per (output-column, timestep).
    const std::uint64_t dense_per_pass =
        layer.spikes.denseBytesPerTimestep();
    EXPECT_GE(input_sram,
              dense_per_pass * layer.spec.n * layer.spec.t / 2);
}

TEST(Sparten, AnnModeRunsAndCountsMacs)
{
    LayerSpec spec = tables::vgg16L8();
    spec.spike_sparsity = 0.439; // ANN activation sparsity (Fig. 18)
    const AnnLayerData ann = generateAnnLayer(spec, 4);
    SpartenSim sim;
    const RunResult r = sim.runAnnLayer(ann);
    EXPECT_EQ(r.accel, "SparTen-ANN");
    EXPECT_GT(r.ops.mac_ops, 0u);
    EXPECT_EQ(r.ops.acc_ops, 0u);
    // Two fast prefix circuits per match.
    EXPECT_EQ(r.ops.fast_prefix_ops, 2 * r.ops.mac_ops);
    EXPECT_GT(r.total_cycles, 0u);
}

TEST(Sparten, WaveParallelismUsesAllPes)
{
    // 16 PEs: doubling the PE count roughly halves the cycles.
    const LayerData layer = generateLayer(tables::vgg16L8(), 5);
    SpartenConfig c16;
    SpartenConfig c32;
    c32.num_pes = 32;
    SpartenSim s16(c16), s32(c32);
    const auto r16 = s16.runLayer(layer);
    const auto r32 = s32.runLayer(layer);
    EXPECT_LT(r32.compute_cycles, r16.compute_cycles * 3 / 4);
}

/** Property: SparTen-SNN is functionally exact too. */
class SpartenProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpartenProperty, BitExactAgainstReference)
{
    Rng rng(GetParam() * 7 + 1);
    LayerSpec spec;
    spec.name = "prop";
    spec.t = 1 + static_cast<int>(rng.uniformInt(4));
    spec.m = 1 + rng.uniformInt(12);
    spec.n = 1 + rng.uniformInt(24);
    spec.k = 1 + rng.uniformInt(300);
    spec.spike_sparsity = rng.uniform(0.3, 0.9);
    spec.silent_ratio = spec.spike_sparsity * 0.7;
    spec.silent_ratio_ft = spec.silent_ratio;
    spec.weight_sparsity = rng.uniform(0.3, 0.95);
    const LayerData layer = generateLayer(spec, GetParam());
    SpartenSim sim;
    sim.runLayer(layer);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, SpartenConfig{}.lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpartenProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace loas
