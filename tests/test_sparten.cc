/** @file Tests for the SparTen-SNN / SparTen-ANN baseline. */

#include <gtest/gtest.h>

#include "baselines/sparten.hh"
#include "common/rng.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace loas {
namespace {

TEST(Sparten, OutputMatchesReference)
{
    const LayerData layer = generateLayer(tables::vgg16L8(), 1);
    SpartenSim sim;
    sim.runLayer(layer);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, SpartenConfig{}.lif);
    EXPECT_EQ(sim.lastOutput(), expected);
}

TEST(Sparten, SequentialTimestepsCostMoreThanOne)
{
    // The core observation of the paper: T sequential timesteps cost
    // roughly T mask scans plus per-timestep restarts.
    LayerSpec spec = tables::vgg16L8();
    const LayerData t4 = generateLayer(spec, 2);
    const LayerSpec spec1 = tables::withTimesteps(spec, 1);
    const LayerData t1 = generateLayer(spec1, 2);
    SpartenSim sim;
    const auto r4 = sim.runLayer(t4);
    const auto r1 = sim.runLayer(t1);
    EXPECT_GT(r4.compute_cycles,
              3 * r1.compute_cycles);
}

TEST(Sparten, FetchesDenseSpikeTrains)
{
    // SparTen-SNN uses the raw spike train as bitmask-and-data: every
    // bit of A crosses the SRAM interface, every timestep (Section
    // II-D), unlike LoAS's non-silent-only fetches.
    const LayerData layer = generateLayer(tables::vgg16L8(), 3);
    SpartenSim sim;
    const RunResult r = sim.runLayer(layer);
    const std::uint64_t input_sram =
        r.traffic.sramBytes(TensorCategory::Input);
    // One full dense pass per (output-column, timestep).
    const std::uint64_t dense_per_pass =
        layer.spikes.denseBytesPerTimestep();
    EXPECT_GE(input_sram,
              dense_per_pass * layer.spec.n * layer.spec.t / 2);
}

TEST(Sparten, AnnModeRunsAndCountsMacs)
{
    LayerSpec spec = tables::vgg16L8();
    spec.spike_sparsity = 0.439; // ANN activation sparsity (Fig. 18)
    const AnnLayerData ann = generateAnnLayer(spec, 4);
    SpartenSim sim;
    const RunResult r = sim.execute(sim.prepareAnn(ann));
    EXPECT_EQ(r.accel, "SparTen-ANN");
    EXPECT_GT(r.ops.mac_ops, 0u);
    EXPECT_EQ(r.ops.acc_ops, 0u);
    // Two fast prefix circuits per match.
    EXPECT_EQ(r.ops.fast_prefix_ops, 2 * r.ops.mac_ops);
    EXPECT_GT(r.total_cycles, 0u);
}

TEST(Sparten, WaveParallelismUsesAllPes)
{
    // 16 PEs: doubling the PE count roughly halves the cycles.
    const LayerData layer = generateLayer(tables::vgg16L8(), 5);
    SpartenConfig c16;
    SpartenConfig c32;
    c32.num_pes = 32;
    SpartenSim s16(c16), s32(c32);
    const auto r16 = s16.runLayer(layer);
    const auto r32 = s32.runLayer(layer);
    EXPECT_LT(r32.compute_cycles, r16.compute_cycles * 3 / 4);
}

TEST(SpartenFused, OutputMatchesSequentialOnBothNetworks)
{
    // The fused temporally-parallel datapath is a pure perf change:
    // spike outputs must be bit-identical to the sequential baseline
    // (and to the reference) on representative layers of both
    // networks.
    for (const auto& spec : {tables::alexnetL4(), tables::vgg16L8()}) {
        SCOPED_TRACE(spec.name);
        const LayerData layer = generateLayer(spec, 11);
        SpartenSim sequential;
        SpartenConfig fused_config;
        fused_config.fused = true;
        SpartenSim fused(fused_config);
        sequential.runLayer(layer);
        fused.runLayer(layer);
        EXPECT_EQ(fused.lastOutput(), sequential.lastOutput());
        EXPECT_EQ(fused.lastOutput(),
                  referenceSnnLayer(layer.spikes, layer.weights,
                                    SpartenConfig{}.lif));
    }
}

TEST(SpartenFused, OneMaskScanForAllTimesteps)
{
    // The tentpole: the fused datapath streams each weight-column mask
    // once instead of once per timestep, so its compute cycles must
    // undercut the sequential baseline by well over half at T >= 4.
    const LayerData layer = generateLayer(tables::vgg16L8(), 13);
    ASSERT_GE(layer.spec.t, 4);
    SpartenSim sequential;
    SpartenConfig fused_config;
    fused_config.fused = true;
    SpartenSim fused(fused_config);
    const auto r_seq = sequential.runLayer(layer);
    const auto r_fused = fused.runLayer(layer);
    EXPECT_LT(r_fused.compute_cycles, r_seq.compute_cycles / 2);
    EXPECT_EQ(r_fused.accel, "SparTen-SNN(f)");
    EXPECT_EQ(r_seq.accel, "SparTen-SNN");
}

TEST(SpartenFused, CollapseThresholdEdgesPreserveOutputs)
{
    // Threshold 0 forces the pseudo-accumulator datapath onto every
    // non-empty row, threshold 1 restricts it to fully dense rows;
    // both are exact, so outputs never move.
    const LayerData layer = generateLayer(tables::alexnetL4(), 17);
    SpartenSim sequential;
    sequential.runLayer(layer);
    for (const double threshold : {0.0, 0.5, 1.0}) {
        SCOPED_TRACE(threshold);
        SpartenConfig config;
        config.fused = true;
        config.collapse_threshold = threshold;
        SpartenSim fused(config);
        fused.runLayer(layer);
        EXPECT_EQ(fused.lastOutput(), sequential.lastOutput());
    }
}

TEST(SpartenFused, SingleTimestepLayerRuns)
{
    // T=1 is the degenerate fusion: nothing to fan out, but the packed
    // artifact and both collapse extremes must still be exact.
    const LayerSpec spec = tables::withTimesteps(tables::alexnetL4(), 1);
    const LayerData layer = generateLayer(spec, 19);
    SpartenSim sequential;
    sequential.runLayer(layer);
    for (const double threshold : {0.0, 1.0}) {
        SpartenConfig config;
        config.fused = true;
        config.collapse_threshold = threshold;
        SpartenSim fused(config);
        fused.runLayer(layer);
        EXPECT_EQ(fused.lastOutput(), sequential.lastOutput());
    }
}

TEST(SpartenFused, OddChunkWidthsPreserveOutputs)
{
    // Chunk widths that do not divide K (and K % 64 != 0) exercise the
    // trailing-chunk accounting of both cycle models without touching
    // functional outputs.
    LayerSpec spec = tables::alexnetL4();
    spec.k = 130;
    const LayerData layer = generateLayer(spec, 23);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, SpartenConfig{}.lif);
    for (const std::size_t chunk_bits : {48ul, 100ul, 128ul}) {
        SCOPED_TRACE(chunk_bits);
        SpartenConfig config;
        config.chunk_bits = chunk_bits;
        config.fused = true;
        SpartenSim fused(config);
        fused.runLayer(layer);
        EXPECT_EQ(fused.lastOutput(), expected);
    }
}

/** Property: SparTen-SNN is functionally exact too. */
class SpartenProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpartenProperty, BitExactAgainstReference)
{
    Rng rng(GetParam() * 7 + 1);
    LayerSpec spec;
    spec.name = "prop";
    spec.t = 1 + static_cast<int>(rng.uniformInt(4));
    spec.m = 1 + rng.uniformInt(12);
    spec.n = 1 + rng.uniformInt(24);
    spec.k = 1 + rng.uniformInt(300);
    spec.spike_sparsity = rng.uniform(0.3, 0.9);
    spec.silent_ratio = spec.spike_sparsity * 0.7;
    spec.silent_ratio_ft = spec.silent_ratio;
    spec.weight_sparsity = rng.uniform(0.3, 0.95);
    const LayerData layer = generateLayer(spec, GetParam());
    SpartenSim sim;
    sim.runLayer(layer);
    const SpikeTensor expected = referenceSnnLayer(
        layer.spikes, layer.weights, SpartenConfig{}.lif);
    EXPECT_EQ(sim.lastOutput(), expected);

    // The fused datapath under a random collapse threshold is exact on
    // the same random layer.
    SpartenConfig fused_config;
    fused_config.fused = true;
    fused_config.collapse_threshold = rng.uniform(0.0, 1.0);
    SpartenSim fused(fused_config);
    fused.runLayer(layer);
    EXPECT_EQ(fused.lastOutput(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpartenProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace loas
