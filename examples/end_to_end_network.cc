/**
 * @file
 * End-to-end network run: synthesize all layers of one of the paper's
 * networks (default VGG16, Table II), run every layer through LoAS,
 * verify two layers against the functional reference, and print the
 * per-layer and whole-network results.
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "core/loas_sim.hh"
#include "energy/energy_model.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

int
main(int argc, char** argv)
{
    using namespace loas;

    NetworkSpec net = tables::vgg16();
    if (argc > 1) {
        const std::string which = argv[1];
        if (which == "alexnet")
            net = tables::alexnet();
        else if (which == "resnet19")
            net = tables::resnet19();
        else if (which != "vgg16") {
            std::fprintf(stderr,
                         "usage: %s [alexnet|vgg16|resnet19]\n",
                         argv[0]);
            return 1;
        }
    }

    const auto layers = generateNetwork(net, 2024);
    LoasSim loas;
    const EnergyModel energy_model;

    TextTable table({"layer", "M", "N", "K", "cycles", "off-chip KB",
                     "on-chip MB"});
    RunResult total;
    bool verified = true;
    for (std::size_t l = 0; l < layers.size(); ++l) {
        const RunResult r = loas.runLayer(layers[l]);
        // Spot-verify the first and last layers bit-exactly.
        if (l == 0 || l + 1 == layers.size()) {
            const SpikeTensor expected = referenceSnnLayer(
                layers[l].spikes, layers[l].weights, loas.config().lif);
            verified = verified && (expected == loas.lastOutput());
        }
        table.addRow({layers[l].spec.name,
                      std::to_string(layers[l].spec.m),
                      std::to_string(layers[l].spec.n),
                      std::to_string(layers[l].spec.k),
                      TextTable::fmtInt(r.total_cycles),
                      TextTable::fmt(r.traffic.dramBytes() / 1024.0, 1),
                      TextTable::fmt(
                          r.traffic.sramBytes() / (1024.0 * 1024.0),
                          2)});
        total += r;
    }

    std::printf("%s on LoAS\n\n%s\n", net.name.c_str(),
                table.str().c_str());
    const EnergyBreakdown e = energy_model.evaluate(total);
    std::printf("network total: %llu cycles, %.1f KB off-chip, "
                "%.1f MB on-chip, %.2f uJ\n",
                static_cast<unsigned long long>(total.total_cycles),
                total.traffic.dramBytes() / 1024.0,
                total.traffic.sramBytes() / (1024.0 * 1024.0),
                e.totalPj() / 1e6);
    std::printf("functional spot-check: %s\n",
                verified ? "PASS" : "FAIL");
    return verified ? 0 : 1;
}
