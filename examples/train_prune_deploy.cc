/**
 * @file
 * The full algorithm-to-hardware pipeline of the paper on a small
 * scale: train a direct-coded SNN with BPTT + surrogate gradients,
 * prune it with lottery-ticket iterative magnitude pruning, apply the
 * fine-tuned preprocessing (mask low-activity neurons, fine-tune),
 * then deploy the resulting dual-sparse hidden layer onto the LoAS
 * and SparTen-SNN simulators.
 */

#include <cstdio>

#include "baselines/sparten.hh"
#include "core/loas_sim.hh"
#include "snn/metrics.hh"
#include "train/mlp_snn.hh"
#include "workload/generator.hh"

int
main()
{
    using namespace loas;

    // 1. Train a small SNN on a synthetic task.
    MlpSnnConfig config;
    config.inputs = 24;
    config.hidden = 64;
    config.classes = 6;
    const Dataset all =
        makeClusterDataset(1200, config.inputs, config.classes, 0.40, 3);
    const auto [train, test] = splitDataset(all, 0.8);

    MlpSnn snn(config, 11);
    for (int epoch = 0; epoch < 12; ++epoch)
        snn.trainEpoch(train);
    std::printf("dense accuracy: %.1f%%\n", 100.0 * snn.accuracy(test));

    // 2. Lottery-ticket pruning: train, prune, rewind, retrain.
    const double schedule[] = {0.5, 0.65, 0.8, 0.88};
    for (const double target : schedule) {
        snn.pruneToSparsity(target);
        snn.rewindWeights();
        for (int epoch = 0; epoch < 8; ++epoch)
            snn.trainEpoch(train);
    }
    std::printf("pruned accuracy: %.1f%% at %.1f%% weight sparsity\n",
                100.0 * snn.accuracy(test),
                100.0 * snn.weightSparsity());

    // 3. Fine-tuned preprocessing: mask low-activity neurons, recover.
    const auto before = snn.hiddenActivity(test);
    snn.maskLowActivityHidden(train, 1);
    const double masked_acc = snn.accuracy(test);
    for (int epoch = 0; epoch < 5; ++epoch)
        snn.trainEpoch(train);
    const auto after = snn.hiddenActivity(test);
    std::printf("silent neurons %.1f%% -> %.1f%% "
                "(accuracy %.1f%% after mask, %.1f%% after FT)\n",
                100.0 * before.silent_ratio, 100.0 * after.silent_ratio,
                100.0 * masked_acc, 100.0 * snn.accuracy(test));

    // 4. Deploy the hidden layer onto the accelerator simulators.
    LayerData layer;
    layer.spikes = snn.exportHiddenSpikes(test, 64);
    layer.weights = snn.exportQuantizedW2();
    layer.spec.name = "trained-hidden";
    layer.spec.t = config.timesteps;
    layer.spec.m = layer.spikes.rows();
    layer.spec.k = layer.spikes.cols();
    layer.spec.n = layer.weights.cols();
    layer.spec.spike_sparsity = layer.spikes.originSparsity();
    layer.spec.silent_ratio = layer.spikes.silentRatio();
    layer.spec.weight_sparsity = layer.weights.sparsity();

    LoasSim loas;
    SpartenSim sparten;
    const RunResult r_loas = loas.runLayer(layer);
    const RunResult r_sparten = sparten.runLayer(layer);
    std::printf("deployed %zux%zux%zu layer (T=%d): LoAS %llu cycles, "
                "SparTen-SNN %llu cycles -> %.2fx speedup\n",
                layer.spec.m, layer.spec.n, layer.spec.k, layer.spec.t,
                static_cast<unsigned long long>(r_loas.total_cycles),
                static_cast<unsigned long long>(r_sparten.total_cycles),
                static_cast<double>(r_sparten.total_cycles) /
                    static_cast<double>(r_loas.total_cycles));

    // The two simulators compute the same spikes.
    const bool ok = loas.lastOutput() == sparten.lastOutput();
    std::printf("cross-simulator functional check: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
