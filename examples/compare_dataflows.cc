/**
 * @file
 * Run one dual-sparse SNN layer on every simulated dataflow (LoAS's
 * fully temporal-parallel inner product against the SparTen/GoSPA/
 * Gamma sequential-timestep baselines) and print a side-by-side
 * comparison: the single-layer version of the paper's Fig. 12/13.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accel/accelerator.hh"
#include "baselines/gamma.hh"
#include "baselines/gospa.hh"
#include "baselines/sparten.hh"
#include "common/table.hh"
#include "core/loas_sim.hh"
#include "energy/energy_model.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

int
main(int argc, char** argv)
{
    using namespace loas;

    // Pick the layer by name: A-L4 (default), V-L8 or R-L19.
    LayerSpec spec = tables::alexnetL4();
    if (argc > 1) {
        const std::string which = argv[1];
        if (which == "V-L8")
            spec = tables::vgg16L8();
        else if (which == "R-L19")
            spec = tables::resnet19L19();
        else if (which != "A-L4") {
            std::fprintf(stderr,
                         "usage: %s [A-L4|V-L8|R-L19]\n", argv[0]);
            return 1;
        }
    }
    const LayerData layer = generateLayer(spec, 7);

    std::vector<std::unique_ptr<Accelerator>> accels;
    accels.push_back(std::make_unique<SpartenSim>());
    accels.push_back(std::make_unique<GospaSim>());
    accels.push_back(std::make_unique<GammaSim>());
    accels.push_back(std::make_unique<LoasSim>());

    const EnergyModel energy_model;
    TextTable table({"accelerator", "cycles", "speedup", "off-chip KB",
                     "on-chip MB", "energy uJ", "eff. gain"});

    std::vector<RunResult> results;
    for (auto& accel : accels)
        results.push_back(accel->runLayer(layer));

    const double base_cycles =
        static_cast<double>(results.front().total_cycles);
    const double base_energy =
        energy_model.evaluate(results.front()).totalPj();
    for (const auto& r : results) {
        const EnergyBreakdown e = energy_model.evaluate(r);
        table.addRow({
            r.accel,
            TextTable::fmtInt(r.total_cycles),
            TextTable::fmtX(base_cycles /
                            static_cast<double>(r.total_cycles)),
            TextTable::fmt(r.traffic.dramBytes() / 1024.0, 1),
            TextTable::fmt(r.traffic.sramBytes() / (1024.0 * 1024.0),
                           2),
            TextTable::fmt(e.totalPj() / 1e6, 2),
            TextTable::fmtX(base_energy / e.totalPj()),
        });
    }

    std::printf("layer %s (M=%zu N=%zu K=%zu T=%d)\n\n",
                spec.name.c_str(), spec.m, spec.n, spec.k, spec.t);
    std::printf("%s", table.str().c_str());
    return 0;
}
