/**
 * @file
 * Run one dual-sparse SNN layer on every simulated dataflow (LoAS's
 * fully temporal-parallel inner product against the SparTen/GoSPA/
 * Gamma sequential-timestep baselines) and print a side-by-side
 * comparison: the single-layer version of the paper's Fig. 12/13.
 *
 * The designs are named by registry spec strings and executed as one
 * SimEngine batch, so comparing a variant is an argv edit away
 * (e.g. "gamma?pes=32"): see `loas_cli list` for the registry keys.
 */

#include <cstdio>
#include <string>

#include "api/sim_engine.hh"
#include "common/table.hh"
#include "workload/networks.hh"

int
main(int argc, char** argv)
{
    using namespace loas;

    // Pick the layer by name: A-L4 (default), V-L8 or R-L19.
    LayerSpec spec = tables::alexnetL4();
    if (argc > 1) {
        const std::string which = argv[1];
        if (which == "V-L8")
            spec = tables::vgg16L8();
        else if (which == "R-L19")
            spec = tables::resnet19L19();
        else if (which != "A-L4") {
            std::fprintf(stderr,
                         "usage: %s [A-L4|V-L8|R-L19]\n", argv[0]);
            return 1;
        }
    }

    SimRequest request;
    request.accels = {"sparten", "gospa", "gamma", "loas"};
    request.networks = {NetworkSpec{spec.name, {spec}}};
    request.seed = 7;
    const SimReport report = SimEngine().run(request);

    TextTable table({"accelerator", "cycles", "speedup", "off-chip KB",
                     "on-chip MB", "energy uJ", "eff. gain"});

    const SimRun& base = report.runs.front();
    for (const SimRun& run : report.runs) {
        table.addRow({
            run.result.accel,
            TextTable::fmtInt(run.result.total_cycles),
            TextTable::fmtX(
                static_cast<double>(base.result.total_cycles) /
                static_cast<double>(run.result.total_cycles)),
            TextTable::fmt(run.result.traffic.dramBytes() / 1024.0, 1),
            TextTable::fmt(
                run.result.traffic.sramBytes() / (1024.0 * 1024.0), 2),
            TextTable::fmt(run.energy.totalPj() / 1e6, 2),
            TextTable::fmtX(base.energy.totalPj() /
                            run.energy.totalPj()),
        });
    }

    std::printf("layer %s (M=%zu N=%zu K=%zu T=%d)\n\n",
                spec.name.c_str(), spec.m, spec.n, spec.k, spec.t);
    std::printf("%s", table.str().c_str());
    return 0;
}
