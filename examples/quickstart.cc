/**
 * @file
 * Quickstart: generate one dual-sparse SNN layer (the paper's VGG16
 * conv4_1 a.k.a. V-L8), run it through the LoAS simulator, verify the
 * output spikes against the functional reference, and print the
 * headline statistics.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/loas_sim.hh"
#include "energy/energy_model.hh"
#include "snn/reference.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

int
main()
{
    using namespace loas;

    // 1. Describe and synthesize the workload. Any LayerSpec works;
    //    here we use the published V-L8 layer from Table II.
    const LayerSpec spec = tables::vgg16L8();
    const LayerData layer = generateLayer(spec, /*seed=*/42);
    std::printf("workload %s: M=%zu N=%zu K=%zu T=%d\n",
                spec.name.c_str(), spec.m, spec.n, spec.k, spec.t);
    std::printf("  spike sparsity %.1f%%, silent neurons %.1f%%, "
                "weight sparsity %.1f%%\n",
                100.0 * layer.spikes.originSparsity(),
                100.0 * layer.spikes.silentRatio(),
                100.0 * layer.weights.sparsity());

    // 2. Run LoAS.
    LoasSim loas;
    const RunResult result = loas.runLayer(layer);

    // 3. Verify against the functional reference (Eqs. 1-3).
    const SpikeTensor expected =
        referenceSnnLayer(layer.spikes, layer.weights,
                          loas.config().lif);
    const bool ok = expected == loas.lastOutput();
    std::printf("functional check: %s\n", ok ? "PASS" : "FAIL");

    // 4. Report performance and energy.
    const EnergyModel energy_model;
    const EnergyBreakdown energy = energy_model.evaluate(result);
    std::printf("cycles: %llu total (%llu compute, %llu DRAM)\n",
                static_cast<unsigned long long>(result.total_cycles),
                static_cast<unsigned long long>(result.compute_cycles),
                static_cast<unsigned long long>(result.dram_cycles));
    std::printf("traffic: %.1f KB off-chip, %.2f MB on-chip\n",
                result.traffic.dramBytes() / 1024.0,
                result.traffic.sramBytes() / (1024.0 * 1024.0));
    std::printf("energy: %.2f uJ (%.0f%% data movement)\n",
                energy.totalPj() / 1e6,
                100.0 * energy.dataMovementFraction());
    return ok ? 0 : 1;
}
