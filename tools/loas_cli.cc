/**
 * @file
 * Command-line driver over the accelerator registry and the SimEngine.
 *
 *   loas_cli list [--json [PATH]]
 *       Print every registered accelerator key with its description.
 *       --json emits a machine-readable catalog (key, description,
 *       ft_workload, accepted spec options) for tooling/CI discovery,
 *       to PATH or stdout when PATH is omitted or "-".
 *
 *   loas_cli run [--accel LIST] [--network LIST] [--seed N]
 *                [--threads N] [--no-energy] [--json PATH]
 *       Run the (accelerator x network) job matrix and print a summary
 *       table (speedup and energy gain are relative to the first
 *       accelerator in LIST). LIST entries are comma-separated; an
 *       accelerator entry is a registry spec string, so design
 *       variants work directly: --accel "loas,loas?pes=64,gamma".
 *       --network accepts alexnet / vgg16 / resnet19 / all.
 *       --json writes the full report (per-category traffic, op
 *       counts, energy breakdown) to PATH, or stdout for "-".
 *
 *   loas_cli sweep --grid GRIDS [--network GRIDS] [--baseline SPEC]
 *                  [--seed N] [--threads N] [--no-energy]
 *                  [--csv PATH] [--json PATH]
 *       Expand design-space grids ("loas?pes=16,32,64&t=4,8,16") into
 *       one batched job matrix, simulate it, and emit derived columns
 *       (speedup vs --baseline, EDP, Pareto flag). Grids are
 *       semicolon-separated (commas separate values inside a grid);
 *       --grid may repeat. --network takes network grids
 *       ("vgg16-l8?ws=0.982,0.684,0.25") or named networks.
 *
 *   loas_cli bench [--quick] [--seed N] [--threads N] [--out PATH]
 *                  [--kernels-out PATH]
 *       Self-timing harness for the simulator itself: measures
 *       workload-synthesis time, per-accelerator simulation time and
 *       sweep-engine throughput (cells/s), and writes a schema-stable
 *       BENCH_sweep.json for the perf trajectory. A second section
 *       times the hot simulation kernels (word-parallel inner join,
 *       fused vs sequential temporal joins, O(1) rank tables) and
 *       verifies the zero-allocation steady state of every registered
 *       design's execute() including the fused SparTen path, written
 *       as BENCH_kernels.json (schema loas-kernels/3), including the
 *       per-ISA join throughputs behind the simd_speedup metric.
 *
 *   loas_cli cache stats|clear|warm --cache-dir PATH ...
 *       Manage the on-disk compiled-artifact cache: report occupancy,
 *       delete stored artifacts, or precompile (warm) the artifacts a
 *       later run/sweep would need.
 *
 *   loas_cli serve --socket PATH [--workers N] [--max-depth N] ...
 *       Long-running simulation daemon: accepts concurrent requests
 *       as newline-delimited JSON over a unix socket (schema
 *       loas-serve/4, see src/serve/protocol.hh), runs them through
 *       an async job queue with dedup, coalescing, cancellation and
 *       backpressure, and shares one process-lifetime compiled cache
 *       across every request — a warm daemon serves repeat requests
 *       with zero compiles. SIGTERM/SIGINT drain and exit cleanly.
 *
 *   loas_cli request --socket PATH [run flags] [--json PATH]
 *       Client for the daemon: submit one run (the report written by
 *       --json is byte-identical to `loas_cli run --json` of the same
 *       parameters), or --cmd stats|version|shutdown, or --raw LINE.
 *
 *   loas_cli version
 *       One JSON object with the CLI version and every artifact
 *       schema/format version this binary reads or writes.
 *
 * run, sweep and bench accept the shared cache flags:
 *   --cache-dir PATH  persist compiled artifacts on disk; a later
 *                     invocation with the same flag skips operand
 *                     recompression entirely
 *   --cache-mb N      in-memory compiled-cache byte budget in MiB
 *                     (0 = unlimited); LRU eviction, finished
 *                     networks first
 *   --cache-stats PATH
 *                     write the run's cache counters as JSON ("-":
 *                     stdout) — hits, misses, disk hits/writes/
 *                     rejects, evictions, compile_ms
 */

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/registry.hh"
#include "api/sim_engine.hh"
#include "api/sweep.hh"
#include "api/sweep_io.hh"
#include "api/versions.hh"
#include "common/alloc_hook.hh"
#include "common/fault.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/fused_join.hh"
#include "core/inner_join.hh"
#include "core/kernel_dispatch.hh"
#include "serve/client.hh"
#include "serve/json_parse.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "tensor/ranked_bitmask.hh"
#include "workload/artifact_store.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace {

using namespace loas;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s list [--json [PATH]]\n"
        "       %s run [--accel LIST] [--network LIST] [--seed N]\n"
        "           [--batch N] [--threads N] [--no-energy]\n"
        "           [--json PATH] [cache flags]\n"
        "       %s sweep --grid GRIDS [--network GRIDS]\n"
        "           [--baseline SPEC] [--seed N] [--batch N]\n"
        "           [--threads N] [--no-energy] [--csv PATH]\n"
        "           [--json PATH] [cache flags]\n"
        "       %s bench [--quick] [--seed N] [--threads N] [--out PATH]\n"
        "           [cache flags]\n"
        "       loas_cli cache stats|clear --cache-dir PATH\n"
        "       loas_cli cache warm --cache-dir PATH [--accel LIST]\n"
        "           [--network GRIDS] [--seed N]\n"
        "       loas_cli serve --socket PATH [--workers N]\n"
        "           [--engine-threads N] [--max-depth N]\n"
        "           [--timeout-ms MS] [--no-coalesce] [cache flags]\n"
        "       loas_cli request --socket PATH [--accel LIST]\n"
        "           [--network LIST] [--seed N] [--batch N]\n"
        "           [--no-energy] [--timeout-ms MS] [--no-wait]\n"
        "           [--json PATH] [--retries N] [--backoff-ms B]\n"
        "           [--cmd submit|stats|version|shutdown]\n"
        "           [--no-drain] [--raw LINE]\n"
        "       loas_cli version\n"
        "\n"
        "cache flags (run/sweep/bench):\n"
        "  --cache-dir PATH  persist compiled artifacts on disk and\n"
        "                    reuse them across invocations\n"
        "  --cache-mb N      in-memory compiled-cache budget in MiB\n"
        "                    (default 0 = unlimited)\n"
        "  --cache-stats PATH\n"
        "                    write cache counters as JSON (\"-\": stdout)\n"
        "\n"
        "simd (list/run/sweep/bench/serve):\n"
        "  --isa NAME      force the join-kernel ISA: scalar, avx2 or\n"
        "                  avx512 (default: best the host supports;\n"
        "                  $LOAS_ISA configures any command)\n"
        "\n"
        "fault injection (run/sweep/bench/serve/request):\n"
        "  --fault-spec SPEC\n"
        "                    arm deterministic fault injection, e.g.\n"
        "                    \"disk.write=0.02,engine.execute=0.01@seed=7\"\n"
        "                    ($LOAS_FAULT_SPEC configures any command)\n"
        "\n"
        "list:\n"
        "  --json [PATH]   machine-readable catalog of registered\n"
        "                  accelerators and their accepted spec options\n"
        "                  (PATH omitted or \"-\": stdout)\n"
        "\n"
        "run:\n"
        "  --accel LIST    comma-separated accelerator specs\n"
        "                  (default: sparten,gospa,gamma,loas,loas-ft)\n"
        "  --network LIST  alexnet, vgg16, resnet19, all (default), or\n"
        "                  single-layer grids like alexnet-l4?t=8\n"
        "                  (';'-separated when grids carry value lists)\n"
        "  --seed N        workload-synthesis seed (default 101)\n"
        "  --batch N       inputs per (accel, network) cell; each gets\n"
        "                  an independently-seeded spike tensor, weights\n"
        "                  and compiled artifacts are shared (default 1)\n"
        "  --threads N     worker threads (default: all cores)\n"
        "  --no-energy     skip the energy model\n"
        "  --json PATH     write the full report as JSON (\"-\": stdout)\n"
        "\n"
        "sweep:\n"
        "  --grid GRIDS    accelerator spec grids, ';'-separated; commas\n"
        "                  separate values (\"loas?pes=16,32,64&t=4,8\");\n"
        "                  the flag may repeat\n"
        "  --network GRIDS network grids, ';'-separated: alexnet, vgg16,\n"
        "                  resnet19, all, or single-layer workloads\n"
        "                  alexnet-l4 / vgg16-l8 / resnet19-l19 / t-hff\n"
        "                  with t= and ws= value lists (default: all)\n"
        "  --baseline SPEC design the speedup/energy-gain columns are\n"
        "                  relative to (default: first expanded design)\n"
        "  --csv PATH      write per-cell CSV (\"-\": stdout)\n"
        "  --json PATH     write the full sweep JSON (\"-\": stdout)\n"
        "\n"
        "bench:\n"
        "  --quick         small matrix for the CI perf-smoke job\n"
        "  --out PATH      output JSON (default BENCH_sweep.json)\n"
        "  --kernels-out PATH\n"
        "                  kernel-bench JSON (default BENCH_kernels.json)\n"
        "\n"
        "serve:\n"
        "  --socket PATH   unix-socket path to listen on (required)\n"
        "  --workers N     concurrent engine runs (default 1)\n"
        "  --engine-threads N\n"
        "                  threads inside each run (default: all cores)\n"
        "  --max-depth N   queued jobs before submits get queue_full\n"
        "                  (default 64)\n"
        "  --timeout-ms MS default per-job deadline (default 0 = none)\n"
        "  --no-coalesce   never merge compatible jobs into one run\n"
        "\n"
        "request:\n"
        "  --socket PATH   daemon socket to connect to (required)\n"
        "  --cmd CMD       submit (default), stats, version, shutdown\n"
        "  --json PATH     write the served report (\"-\": stdout);\n"
        "                  byte-identical to `run --json` of the same\n"
        "                  --accel/--network/--seed/--no-energy\n"
        "  --no-wait       submit asynchronously and print the job id\n"
        "  --no-drain      with --cmd shutdown: cancel in-flight jobs\n"
        "  --raw LINE      send LINE verbatim, print the reply line\n"
        "  --retries N     retry connect/reset/EPIPE failures N times\n"
        "                  with exponential backoff (default 0)\n"
        "  --backoff-ms B  first retry delay; doubles per retry with\n"
        "                  deterministic jitter (default 100)\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

std::uint64_t
parseUint(const std::string& flag, const std::string& value)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument(flag + " value '" + value +
                                    "' is not a non-negative integer");
    return parsed;
}

/** Cursor over a subcommand's argv tail. */
class ArgCursor
{
  public:
    ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

    bool more() const { return i_ < argc_; }

    std::string next() { return argv_[i_++]; }

    /** The next token without consuming it (only valid when more()). */
    std::string peek() const { return argv_[i_]; }

    /** The value following `flag`; throws when the tail is exhausted. */
    std::string
    value(const std::string& flag)
    {
        if (i_ >= argc_)
            throw std::invalid_argument(flag + " needs a value");
        return argv_[i_++];
    }

  private:
    int argc_;
    char** argv_;
    int i_ = 0;
};

/**
 * --isa NAME: pin the join-kernel ISA for this process (overrides the
 * cpuid pick and $LOAS_ISA). Unknown names are rejected here;
 * unsupported-on-this-host names are rejected by setIsa().
 */
bool
handleIsaFlag(const std::string& arg, ArgCursor& args)
{
    if (arg != "--isa")
        return false;
    const std::string name = args.value(arg);
    kernels::Isa isa;
    if (!kernels::parseIsa(name, &isa))
        throw std::invalid_argument(
            "--isa value '" + name +
            "' unknown (want scalar, avx2 or avx512)");
    kernels::setIsa(isa);
    return true;
}

/** Flags every subcommand shares; true when `arg` was consumed. */
bool
handleCommonFlag(const std::string& arg, ArgCursor& args,
                 std::uint64_t& seed, int& threads)
{
    if (arg == "--seed") {
        seed = parseUint(arg, args.value(arg));
        return true;
    }
    if (arg == "--threads") {
        threads = static_cast<int>(std::min<std::uint64_t>(
            parseUint(arg, args.value(arg)), 1024));
        return true;
    }
    return handleIsaFlag(arg, args);
}

/** Parse a --batch value (>= 1 enforced here, not in the engine). */
std::size_t
parseBatch(const std::string& flag, const std::string& value)
{
    const std::uint64_t batch = parseUint(flag, value);
    if (batch == 0)
        throw std::invalid_argument(flag + " must be >= 1");
    return static_cast<std::size_t>(batch);
}

/**
 * --fault-spec SPEC (run/sweep/bench/serve/request): arm the
 * deterministic fault-injection registry, e.g.
 * "disk.write=0.02,engine.execute=0.01@seed=7" (common/fault.hh).
 * $LOAS_FAULT_SPEC does the same for every subcommand (tests, CI).
 */
bool
handleFaultFlag(const std::string& arg, ArgCursor& args)
{
    if (arg != "--fault-spec")
        return false;
    fault::configure(args.value(arg));
    return true;
}

/** Shared --cache-* flag state of the run/sweep/bench subcommands. */
struct CacheFlags
{
    std::string dir;
    std::uint64_t budget_mb = 0;
    std::string stats_path;
};

/** True when `arg` was one of the shared cache flags (and consumed). */
bool
handleCacheFlag(const std::string& arg, ArgCursor& args,
                CacheFlags& flags)
{
    if (arg == "--cache-dir") {
        flags.dir = args.value(arg);
        return true;
    }
    if (arg == "--cache-mb") {
        flags.budget_mb = parseUint(arg, args.value(arg));
        return true;
    }
    if (arg == "--cache-stats") {
        flags.stats_path = args.value(arg);
        return true;
    }
    return false;
}

/**
 * The process-lifetime compiled cache, configured from the flags.
 * Every engine run of one CLI invocation shares it, so e.g. the bench
 * harness compiles each operand format once across all its stages.
 */
CompiledCache*
processCache(const CacheFlags& flags)
{
    CompiledCache& cache = CompiledCache::process();
    cache.setByteBudget(flags.budget_mb * 1024 * 1024);
    cache.setDiskDir(flags.dir);
    return &cache;
}

/** One-line cache accounting summary (stderr, grep-friendly). */
void
printCacheSummary(const CompiledCache::Stats& stats)
{
    std::fprintf(
        stderr,
        "compile cache: %llu misses, %llu hits, %llu disk hits, "
        "%llu disk writes, %llu disk rejects, %llu evictions, "
        "%.3f compile ms, %.1f KB resident\n",
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.disk_hits),
        static_cast<unsigned long long>(stats.disk_writes),
        static_cast<unsigned long long>(stats.disk_rejects),
        static_cast<unsigned long long>(stats.evictions),
        stats.compile_ms,
        static_cast<double>(stats.bytes) / 1024.0);
}

/** Write `content` to PATH, or stdout when PATH is "-". */
int
writeOutput(const std::string& path, const std::string& content,
            bool quiet = false)
{
    if (path == "-") {
        std::printf("%s", content.c_str());
        return 0;
    }
    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     path.c_str());
        return 1;
    }
    file << content;
    file.close();
    if (!file) {
        std::fprintf(stderr, "error writing '%s'\n", path.c_str());
        return 1;
    }
    if (!quiet)
        std::printf("wrote %s\n", path.c_str());
    return 0;
}

/** Honor --cache-stats: write the run's counters as JSON. */
int
writeCacheStats(const CacheFlags& flags,
                const CompiledCache::Stats& stats)
{
    if (flags.stats_path.empty())
        return 0;
    return writeOutput(flags.stats_path, json::toJson(stats) + "\n",
                       flags.stats_path == "-");
}

int
runList(int argc, char** argv)
{
    bool as_json = false;
    std::string json_path = "-";
    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--json") {
            as_json = true;
            // An optional PATH follows; a flag-like token ("--...") is
            // the next flag, not a filename to silently create.
            if (args.more() && args.peek().rfind("--", 0) != 0)
                json_path = args.next();
        } else if (handleIsaFlag(arg, args)) {
            continue;
        } else {
            throw std::invalid_argument("unknown flag '" + arg + "'");
        }
    }

    const auto& registry = AcceleratorRegistry::instance();
    const auto joined_options = [&](const std::string& key) {
        std::string joined;
        for (const auto& option : registry.entry(key).options)
            joined += (joined.empty() ? "" : ", ") + option;
        return joined;
    };

    if (!as_json) {
        TextTable table({"key", "description", "options"});
        for (const auto& key : registry.keys())
            table.addRow({key, registry.entry(key).description,
                          joined_options(key)});
        std::printf("%s", table.str().c_str());
        return 0;
    }

    // Machine-readable catalog, schema-versioned like the bench output.
    // Besides the registry it reports how this host would execute: the
    // resolved join-kernel ISA and the worker-pool sizing (loas-list/2).
    const auto keys = registry.keys();
    std::string out = "{\n";
    out += std::string("  \"schema\": \"") + kListSchema + "\",\n";
    out += "  \"isa\": " +
           json::quote(kernels::isaName(kernels::resolvedIsa())) + ",\n";
    out += "  \"best_isa\": " +
           json::quote(kernels::isaName(kernels::bestSupportedIsa())) +
           ",\n";
    out += "  \"workers\": {\"engine_threads\": " +
           std::to_string(resolveThreads(0)) + "},\n";
    out += "  \"accelerators\": [\n";
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto& entry = registry.entry(keys[i]);
        out += "    {\"key\": " + json::quote(keys[i]) +
               ", \"description\": " + json::quote(entry.description) +
               ", \"ft_workload\": " +
               (entry.ft_workload ? "true" : "false") +
               ", \"options\": [";
        for (std::size_t o = 0; o < entry.options.size(); ++o) {
            out += json::quote(entry.options[o]);
            if (o + 1 < entry.options.size())
                out += ", ";
        }
        out += "]}";
        out += i + 1 < keys.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return writeOutput(json_path, out);
}

/**
 * Split a --network value into grid strings. Grid option values are
 * comma-separated ("alexnet-l4?t=4,8"), so lists holding grids use
 * ';'; plain name lists keep the historical comma form. The entries
 * feed expandNetworkGrids — the same resolution the sweep engine and
 * the serve daemon use, which is what makes a served report
 * byte-identical to the one-shot run of the same parameters.
 */
std::vector<std::string>
splitNetworkList(const std::string& list)
{
    const bool grid_form = list.find(';') != std::string::npos ||
                           list.find('?') != std::string::npos;
    return splitSpecList(list, grid_form ? ';' : ',');
}

int
runRun(int argc, char** argv)
{
    std::string accel_list = serve::kDefaultAccels;
    std::string network_list = "all";
    std::string json_path;
    SimRequest request;
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--accel")
            accel_list = args.value(arg);
        else if (arg == "--network")
            network_list = args.value(arg);
        else if (arg == "--batch")
            request.batch = parseBatch(arg, args.value(arg));
        else if (handleCommonFlag(arg, args, request.seed,
                                  request.threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (handleFaultFlag(arg, args))
            continue;
        else if (arg == "--no-energy")
            request.energy = false;
        else if (arg == "--json")
            json_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }

    request.accels = splitSpecList(accel_list);
    if (request.accels.empty())
        throw std::invalid_argument("--accel list is empty");
    request.networks =
        expandNetworkGrids(splitNetworkList(network_list));
    if (request.networks.empty())
        throw std::invalid_argument("--network list is empty");
    if (json_path == "-" && cache_flags.stats_path == "-")
        throw std::invalid_argument(
            "--json - and --cache-stats - would interleave two "
            "documents on stdout; write at most one of them to '-'");
    request.compiled_cache = processCache(cache_flags);

    const SimReport report = SimEngine().run(request);
    printCacheSummary(report.compile_cache);

    // Summary table, normalized to the first requested accelerator.
    std::vector<std::string> headers = {"network", "accel", "cycles",
                                        "speedup", "off-chip KB",
                                        "on-chip MB"};
    if (request.energy) {
        headers.push_back("energy uJ");
        headers.push_back("eff. gain");
    }
    TextTable table(std::move(headers));
    const std::string& base_accel = request.accels.front();
    for (const auto& net : request.networks) {
        const SimRun& base = report.at(base_accel, net.name);
        for (const auto& accel : request.accels) {
            const SimRun& run = report.at(accel, net.name);
            std::vector<std::string> row = {
                net.name, accel,
                TextTable::fmtInt(run.result.total_cycles),
                TextTable::fmtX(
                    static_cast<double>(base.result.total_cycles) /
                    static_cast<double>(run.result.total_cycles)),
                TextTable::fmt(run.result.traffic.dramBytes() / 1024.0,
                               1),
                TextTable::fmt(run.result.traffic.sramBytes() /
                                   (1024.0 * 1024.0),
                               2)};
            if (request.energy) {
                row.push_back(
                    TextTable::fmt(run.energy.totalPj() / 1e6, 2));
                row.push_back(TextTable::fmtX(base.energy.totalPj() /
                                              run.energy.totalPj()));
            }
            table.addRow(std::move(row));
        }
    }
    std::printf("%s", table.str().c_str());

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    if (!json_path.empty())
        rc |= writeOutput(json_path, json::toJson(report));
    return rc;
}

int
runSweep(int argc, char** argv)
{
    SweepRequest request;
    std::string csv_path, json_path;
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--grid")
            for (auto& grid : splitSpecList(args.value(arg), ';'))
                request.grids.push_back(std::move(grid));
        else if (arg == "--network")
            for (auto& grid : splitSpecList(args.value(arg), ';'))
                request.networks.push_back(std::move(grid));
        else if (arg == "--baseline")
            request.baseline = args.value(arg);
        else if (arg == "--batch")
            request.batch = parseBatch(arg, args.value(arg));
        else if (handleCommonFlag(arg, args, request.seed,
                                  request.threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (handleFaultFlag(arg, args))
            continue;
        else if (arg == "--no-energy")
            request.energy = false;
        else if (arg == "--csv")
            csv_path = args.value(arg);
        else if (arg == "--json")
            json_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (request.grids.empty())
        throw std::invalid_argument("sweep needs at least one --grid");
    const int stdout_sinks = (csv_path == "-") + (json_path == "-") +
                             (cache_flags.stats_path == "-");
    if (stdout_sinks > 1)
        throw std::invalid_argument(
            "--csv, --json and --cache-stats would interleave "
            "multiple documents on stdout; write at most one of them "
            "to '-'");
    if (request.networks.empty())
        request.networks.push_back("all");
    request.compiled_cache = processCache(cache_flags);

    const SweepReport report = SweepEngine().run(request);
    // The CSV/JSON artifacts stay cache-agnostic (byte-identical cold
    // or warm); the accounting goes to stderr and --cache-stats.
    printCacheSummary(report.compile_cache);

    // Summary table; full per-cell detail goes to --csv/--json.
    const bool to_stdout = csv_path == "-" || json_path == "-";
    if (!to_stdout) {
        std::vector<std::string> headers = {"network", "design",
                                            "cycles", "speedup"};
        if (request.energy) {
            headers.push_back("energy uJ");
            headers.push_back("eff. gain");
            headers.push_back("EDP uJ*Mcyc");
        }
        headers.push_back("pareto");
        TextTable table(std::move(headers));
        for (const auto& cell : report.cells) {
            std::vector<std::string> row = {
                cell.network,
                cell.accel_spec + (cell.is_baseline ? " *" : ""),
                TextTable::fmtInt(cell.result.total_cycles),
                TextTable::fmtX(cell.speedup)};
            if (request.energy) {
                row.push_back(
                    TextTable::fmt(cell.energy.totalPj() / 1e6, 2));
                row.push_back(TextTable::fmtX(cell.energy_gain));
                row.push_back(TextTable::fmt(cell.edp / 1e12, 3));
            }
            row.push_back(cell.pareto ? "yes" : "");
            table.addRow(std::move(row));
        }
        std::printf("%s", table.str().c_str());
        std::size_t n_designs = 0;
        for (const auto& cell : report.cells)
            if (cell.network == report.cells.front().network)
                ++n_designs;
        std::printf("(* = baseline %s; %zu designs x %zu networks)\n",
                    report.baseline.c_str(), n_designs,
                    n_designs == 0 ? 0
                                   : report.cells.size() / n_designs);
    }

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    if (!csv_path.empty())
        rc |= writeOutput(csv_path, toCsv(report), to_stdout);
    if (!json_path.empty())
        rc |= writeOutput(json_path, json::toJson(report), to_stdout);
    return rc;
}

/**
 * Time the hot simulation kernels and verify the zero-allocation
 * steady-state contract of every registered design's execute().
 * Appends (name, value) metric pairs for the loas-kernels/3 schema.
 */
void
runKernelBench(bool quick, std::uint64_t seed,
               std::vector<std::pair<std::string, double>>& metrics)
{
    using Clock = std::chrono::steady_clock;
    const auto seconds_since = [](Clock::time_point start) {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    // --- Word-parallel inner join on a representative fiber pair
    // (VGG-class K, Table II-like densities).
    const std::size_t k = 2304;
    Rng rng(seed);
    SpikeFiber fa;
    fa.mask = Bitmask(k);
    WeightFiber fb;
    fb.mask = Bitmask(k);
    for (std::size_t i = 0; i < k; ++i) {
        if (rng.bernoulli(0.25)) {
            fa.mask.set(i);
            fa.values.push_back(
                static_cast<TimeWord>(1 + rng.uniformInt(15)));
        }
        if (rng.bernoulli(0.03)) {
            fb.mask.set(i);
            fb.values.push_back(
                static_cast<std::int32_t>(rng.uniformInt(255)) - 127);
        }
    }
    const RankedBitmask rank_a(fa.mask);
    const RankedBitmask rank_b(fb.mask);
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    JoinScratch scratch;
    unit.join(fa, rank_a, fb, rank_b, scratch); // warm the scratch

    const int join_iters = quick ? 20000 : 100000;
    const std::uint64_t allocs_before = allochook::allocationCount();
    const auto t_join = Clock::now();
    std::uint64_t matches = 0;
    for (int i = 0; i < join_iters; ++i)
        matches += unit.join(fa, rank_a, fb, rank_b, scratch).matches;
    const double join_s = seconds_since(t_join);
    const auto join_allocs = static_cast<double>(
        allochook::allocationCount() - allocs_before);
    metrics.emplace_back("join_calls_per_s", join_iters / join_s);
    metrics.emplace_back("join_matches_per_s",
                         static_cast<double>(matches) / join_s);
    metrics.emplace_back("join_allocs_steady", join_allocs);

    // --- Fused temporally-parallel join vs the sequential baseline at
    // T=8: the sequential path scans T per-timestep row masks against
    // the weight fiber (one pass each), the fused path ANDs the union
    // mask once and fans matches out through the packed temporal
    // words. Same sums, so the throughput ratio is the tentpole claim
    // (>= 2x, gated by bench_compare). Operands follow the paper's
    // VGG16 fc6 layer: K = 512*7*7 = 25088, weight sparsity 98.2%
    // (Table II), and non-silent neurons firing on 1-3 of the 8
    // timesteps — the regime the fusion targets, where the T
    // redundant mask scans dominate the per-match fan-out work.
    const int t8 = 8;
    const std::size_t k8 = 25088;
    Rng rng8(seed + 1);
    SpikeFiber fa8;
    fa8.mask = Bitmask(k8);
    WeightFiber fb8;
    fb8.mask = Bitmask(k8);
    std::vector<Bitmask> t8_masks(
        static_cast<std::size_t>(t8), Bitmask(k8));
    for (std::size_t i = 0; i < k8; ++i) {
        if (rng8.bernoulli(0.018)) {
            fb8.mask.set(i);
            fb8.values.push_back(
                static_cast<std::int32_t>(rng8.uniformInt(255)) - 127);
        }
        if (!rng8.bernoulli(0.25))
            continue;
        TimeWord word = 0;
        const auto spikes = 1 + rng8.uniformInt(3);
        for (std::uint64_t s = 0; s < spikes; ++s)
            word |= static_cast<TimeWord>(1u << rng8.uniformInt(8));
        fa8.mask.set(i);
        fa8.values.push_back(word);
        for (int t = 0; t < t8; ++t)
            if ((word >> t) & 1u)
                t8_masks[static_cast<std::size_t>(t)].set(i);
    }
    const RankedBitmask rank_a8(fa8.mask);
    const RankedBitmask rank_b8(fb8.mask);
    std::vector<std::int32_t> sums8(static_cast<std::size_t>(t8), 0);
    std::vector<std::int64_t> corr8(static_cast<std::size_t>(t8), 0);

    // Interleave the two paths in alternating batches so slow drift
    // (CI runner load) hits both sides equally — the gated quantity is
    // the ratio, not either absolute rate.
    const int t8_batches = 20;
    const int t8_batch_iters = quick ? 2500 : 10000;
    const int t8_iters = t8_batches * t8_batch_iters;
    std::int64_t sums_sink = 0;
    double seq_s = 0.0, fused_s = 0.0;
    for (int batch = 0; batch < t8_batches; ++batch) {
        const auto t_seq = Clock::now();
        for (int i = 0; i < t8_batch_iters; ++i) {
            for (int t = 0; t < t8; ++t) {
                std::int32_t acc = 0;
                forEachMatch(t8_masks[static_cast<std::size_t>(t)],
                             rank_b8,
                             [&](std::size_t, std::size_t b_off) {
                                 acc += fb8.values[b_off];
                             });
                sums8[static_cast<std::size_t>(t)] = acc;
            }
            sums_sink += sums8[0];
        }
        seq_s += seconds_since(t_seq);
        const auto t_fused = Clock::now();
        for (int i = 0; i < t8_batch_iters; ++i) {
            fusedTemporalJoin(fa8, rank_a8, fb8, rank_b8, t8,
                              /*collapse=*/false, sums8.data(),
                              corr8.data());
            sums_sink -= sums8[0];
        }
        fused_s += seconds_since(t_fused);
    }
    if (sums_sink != 0)
        throw std::runtime_error(
            "fused join disagrees with the sequential path");
    metrics.emplace_back("join_seq_t8_calls_per_s", t8_iters / seq_s);
    metrics.emplace_back("join_fused_t8_calls_per_s",
                         t8_iters / fused_s);
    metrics.emplace_back("join_fused_speedup_t8", seq_s / fused_s);

    // --- Per-ISA join throughput (loas-kernels/3): the same workloads
    // forced through the scalar kernel table, so bench history tracks
    // what the SIMD dispatch buys. simd_speedup is informational in
    // bench_compare — it reflects the runner's ISA, not a code
    // regression by itself — and is ~1.0 when the dispatch already
    // resolved to scalar.
    const kernels::Isa bench_isa = kernels::resolvedIsa();
    const std::int32_t fused_sum0 = sums8[0];
    kernels::setIsa(kernels::Isa::Scalar);
    const auto t_sjoin = Clock::now();
    std::uint64_t smatches = 0;
    for (int i = 0; i < join_iters; ++i)
        smatches += unit.join(fa, rank_a, fb, rank_b, scratch).matches;
    const double sjoin_s = seconds_since(t_sjoin);
    const auto t_sfused = Clock::now();
    for (int i = 0; i < t8_iters; ++i)
        fusedTemporalJoin(fa8, rank_a8, fb8, rank_b8, t8,
                          /*collapse=*/false, sums8.data(),
                          corr8.data());
    const double sfused_s = seconds_since(t_sfused);
    kernels::setIsa(bench_isa);
    if (smatches != matches || sums8[0] != fused_sum0)
        throw std::runtime_error(
            "scalar join disagrees with the dispatched join");
    metrics.emplace_back("join_scalar_calls_per_s",
                         join_iters / sjoin_s);
    metrics.emplace_back("join_fused_t8_scalar_calls_per_s",
                         t8_iters / sfused_s);
    metrics.emplace_back("simd_speedup", sfused_s / fused_s);

    // --- O(1) rank-table queries.
    const int rank_iters = quick ? 1000000 : 4000000;
    std::size_t pos = 0;
    std::uint64_t sink = 0;
    const auto t_rank = Clock::now();
    for (int i = 0; i < rank_iters; ++i) {
        sink += rank_a.rank(pos);
        pos = (pos + 97) % (k + 1);
    }
    metrics.emplace_back("rank_ops_per_s",
                         rank_iters / seconds_since(t_rank));
    const auto t_pr = Clock::now();
    for (int i = 0; i < rank_iters; ++i) {
        sink += rank_a.popcountRange(pos, k);
        pos = (pos + 97) % (k + 1);
    }
    metrics.emplace_back("popcount_range_ops_per_s",
                         rank_iters / seconds_since(t_pr));
    if (sink == 0xdeadbeef) // defeat dead-code elimination
        std::printf("\n");

    // --- Steady-state execute() of every registered design must not
    // touch the heap: two warm-up layers grow the scratch buffers,
    // the third is counted. (The layer name stays within the small-
    // string capacity on purpose — RunResult carries it by value.)
    const auto& registry = AcceleratorRegistry::instance();
    LayerSpec kspec = tables::alexnetL4();
    if (quick)
        kspec.m = 64;
    kspec.name = "kbench";
    for (const auto& key : registry.keys()) {
        const bool ft = registry.entry(key).ft_workload;
        const LayerData layer = generateLayer(kspec, seed, ft);
        const auto instance = registry.make(key);
        const CompiledLayer compiled = instance->prepare(layer);
        instance->execute(compiled);
        instance->execute(compiled);
        const std::uint64_t before = allochook::allocationCount();
        const RunResult r = instance->execute(compiled);
        const auto allocs = static_cast<double>(
            allochook::allocationCount() - before);
        if (r.total_cycles == 0)
            throw std::runtime_error(
                "kernel bench execute produced zero cycles");
        metrics.emplace_back("execute_allocs_steady_" + key, allocs);
    }

    // --- Batched steady state: executeBatch() over a multi-input
    // layer must stay off the heap too once the per-input result slots
    // and per-worker scratch pools are warm. threads=1 on purpose —
    // spawning pool threads allocates, and this gates the execute
    // path, not the thread fan-out.
    constexpr std::size_t kBenchBatch = 4;
    for (const auto& key : registry.keys()) {
        const bool ft = registry.entry(key).ft_workload;
        const LayerData layer =
            generateLayer(kspec, seed, ft, kBenchBatch);
        const auto instance = registry.make(key);
        const CompiledLayer compiled = instance->prepare(layer);
        instance->executeBatch(compiled, 1);
        instance->executeBatch(compiled, 1);
        const std::uint64_t before = allochook::allocationCount();
        const RunResult r = instance->executeBatch(compiled, 1);
        const auto allocs = static_cast<double>(
            allochook::allocationCount() - before);
        if (r.total_cycles == 0)
            throw std::runtime_error(
                "kernel bench executeBatch produced zero cycles");
        metrics.emplace_back("execute_batch_allocs_steady_" + key,
                             allocs);
    }

    // --- The fused SparTen datapath is a spec option, not a registry
    // key, so it gets its own explicit steady-state gates (collapse
    // exercised at the default threshold).
    {
        const LayerData layer = generateLayer(kspec, seed, false);
        const auto fused = registry.make("sparten?fused=1");
        const CompiledLayer compiled = fused->prepare(layer);
        fused->execute(compiled);
        fused->execute(compiled);
        std::uint64_t before = allochook::allocationCount();
        const RunResult r = fused->execute(compiled);
        metrics.emplace_back("execute_allocs_steady_sparten_fused",
                             static_cast<double>(
                                 allochook::allocationCount() - before));
        if (r.total_cycles == 0)
            throw std::runtime_error(
                "kernel bench fused execute produced zero cycles");

        const LayerData blayer =
            generateLayer(kspec, seed, false, kBenchBatch);
        const auto bfused = registry.make("sparten?fused=1");
        const CompiledLayer bcompiled = bfused->prepare(blayer);
        bfused->executeBatch(bcompiled, 1);
        bfused->executeBatch(bcompiled, 1);
        before = allochook::allocationCount();
        const RunResult br = bfused->executeBatch(bcompiled, 1);
        metrics.emplace_back(
            "execute_batch_allocs_steady_sparten_fused",
            static_cast<double>(allochook::allocationCount() - before));
        if (br.total_cycles == 0)
            throw std::runtime_error(
                "kernel bench fused executeBatch produced zero cycles");
    }
    metrics.emplace_back("alloc_hook_active",
                         allochook::active() ? 1.0 : 0.0);
}

int
runBench(int argc, char** argv)
{
    bool quick = false;
    std::uint64_t seed = 101;
    int threads = 0;
    std::string out_path = "BENCH_sweep.json";
    std::string kernels_out_path = "BENCH_kernels.json";
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--quick")
            quick = true;
        else if (handleCommonFlag(arg, args, seed, threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (handleFaultFlag(arg, args))
            continue;
        else if (arg == "--out")
            out_path = args.value(arg);
        else if (arg == "--kernels-out")
            kernels_out_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }

    using Clock = std::chrono::steady_clock;
    auto ms_since = [](Clock::time_point start) {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start)
            .count();
    };

    std::vector<std::pair<std::string, double>> metrics;

    // 1. Workload synthesis: the expensive calibrated tensor
    //    generation the engine caches per (network, ft-variant).
    const NetworkSpec net =
        quick ? NetworkSpec{"alexnet-l4", {tables::alexnetL4()}}
              : tables::alexnet();
    const auto t_synth = Clock::now();
    const std::vector<LayerData> layers = generateNetwork(net, seed);
    const std::vector<LayerData> layers_ft =
        generateNetwork(net, seed, /*ft=*/true);
    metrics.emplace_back("workload_synthesis_ms", ms_since(t_synth));

    // 2. Per-accelerator simulation on the shared workload.
    const auto& registry = AcceleratorRegistry::instance();
    for (const std::string design :
         {"sparten", "gospa", "gamma", "loas", "loas-ft"}) {
        const bool ft = registry.entry(design).ft_workload;
        const auto t_sim = Clock::now();
        const RunResult r = registry.make(design)->runNetwork(
            ft ? layers_ft : layers, net.name);
        double ms = ms_since(t_sim);
        if (r.total_cycles == 0)
            throw std::runtime_error("bench run produced zero cycles");
        metrics.emplace_back(std::string("sim_ms_") + design, ms);
    }

    // 3. Sweep-engine throughput, end to end (expansion, synthesis,
    //    simulation, derived columns) on a representative grid.
    SweepRequest sweep;
    sweep.grids = {quick ? "loas?pes=8,16&t=4,8"
                         : "loas?pes=8,16,32,64&t=4,8,16"};
    sweep.baseline = "sparten";
    if (quick)
        sweep.networks = {"alexnet-l4"};
    else
        sweep.networks = {"vgg16-l8", "alexnet-l4"};
    sweep.seed = seed;
    sweep.threads = threads;
    sweep.compiled_cache = processCache(cache_flags);
    const auto t_sweep = Clock::now();
    const SweepReport report = SweepEngine().run(sweep);
    const double sweep_ms = ms_since(t_sweep);
    metrics.emplace_back("sweep_wall_ms", sweep_ms);
    metrics.emplace_back("sweep_cells",
                         static_cast<double>(report.cells.size()));
    metrics.emplace_back("sweep_cells_per_s",
                         static_cast<double>(report.cells.size()) /
                             (sweep_ms / 1000.0));
    // Two-phase split: time compiling operands (once per cache key)
    // vs time executing the datapath models.
    metrics.emplace_back("prepare_ms", report.prepare_ms);
    metrics.emplace_back("sim_ms", report.sim_ms);
    // Compiled-cache counters: informational for trend tooling (they
    // are zero on a cold, disk-less run by design).
    const CompiledCache::Stats& cc = report.compile_cache;
    metrics.emplace_back("cache_hits", static_cast<double>(cc.hits));
    metrics.emplace_back("cache_misses",
                         static_cast<double>(cc.misses));
    metrics.emplace_back("cache_disk_hits",
                         static_cast<double>(cc.disk_hits));
    metrics.emplace_back("cache_evictions",
                         static_cast<double>(cc.evictions));
    metrics.emplace_back("cache_bytes",
                         static_cast<double>(cc.bytes));

    // 3b. Batched-inference throughput along the request dimension:
    //     one engine run at batch 8 on the LoAS design over the same
    //     network as stage 1; each cell compiles its artifacts once
    //     and fans its inputs out over the batch-level parallel loop,
    //     so the rate amortizes synthesis + compile across the batch.
    {
        constexpr std::size_t kBatch = 8;
        SimRequest batch_request;
        batch_request.accels = {"loas"};
        batch_request.networks = {net};
        batch_request.seed = seed;
        batch_request.threads = threads;
        batch_request.batch = kBatch;
        batch_request.compiled_cache = sweep.compiled_cache;
        const auto t_batch = Clock::now();
        const SimReport batch_report =
            SimEngine().run(batch_request);
        const double batch_ms = ms_since(t_batch);
        metrics.emplace_back(
            "batch_inferences_per_s",
            static_cast<double>(kBatch * batch_report.runs.size()) /
                (batch_ms / 1000.0));
    }

    // 3c. Disabled-path cost of the fault-injection hooks: the same
    //     single-cell engine run timed with the registry disarmed vs
    //     armed at all-zero rates. The armed pass is a strict upper
    //     bound on the hook cost (it takes the slow path's rate load
    //     on every check; the disarmed path is one relaxed atomic
    //     load), so the fractional gap proves the hooks are free when
    //     off. Interleaving the batches cancels runner drift. The
    //     stage owns the registry: an operator-supplied --fault-spec
    //     is disarmed from here on, as injected faults would
    //     invalidate every perf number anyway.
    {
        SimRequest hook_request;
        hook_request.accels = {"loas"};
        hook_request.networks = {
            NetworkSpec{"alexnet-l4", {tables::alexnetL4()}}};
        hook_request.seed = seed;
        hook_request.threads = threads;
        hook_request.energy = false;
        hook_request.compiled_cache = sweep.compiled_cache;
        SimEngine hook_engine;
        hook_engine.run(hook_request); // warm: compile + synth cached
        // Min-of-batches on each side rejects scheduler noise that a
        // summed ratio would fold straight into the estimate.
        double off_ms = 1e300;
        double armed_ms = 1e300;
        const int hook_batches = quick ? 6 : 12;
        for (int b = 0; b < hook_batches; ++b) {
            fault::reset();
            auto t_hook = Clock::now();
            hook_engine.run(hook_request);
            off_ms = std::min(off_ms, ms_since(t_hook));
            fault::configure("disk.write=0@seed=1");
            t_hook = Clock::now();
            hook_engine.run(hook_request);
            armed_ms = std::min(armed_ms, ms_since(t_hook));
        }
        fault::reset();
        metrics.emplace_back("fault_overhead_frac",
                             off_ms > 0.0 ? armed_ms / off_ms - 1.0
                                          : 0.0);
    }

    // 4. Served-request throughput: a daemon on a scratch socket,
    //    one warm-up submit, then timed sequential requests — every
    //    timed one is a pure cache-hit run, so this tracks the serve
    //    pipeline overhead (socket round trip, queue, report slicing
    //    and rendering), not compile time.
    {
        serve::Server::Config server_config;
        server_config.socket_path = "/tmp/loas-bench-" +
                                    std::to_string(::getpid()) +
                                    ".sock";
        server_config.queue.engine_threads = threads;
        serve::Server server(server_config, sweep.compiled_cache);
        std::thread server_thread([&server] { server.run(); });
        {
            serve::ServeClient client(server_config.socket_path);
            const std::string submit =
                std::string("{\"cmd\": \"submit\", \"accel\": "
                            "\"loas\", \"network\": ") +
                json::quote(quick ? "alexnet-l4" : "alexnet") +
                ", \"seed\": " + std::to_string(seed) + "}";
            client.call(submit); // warm-up: compiles once
            const int requests = quick ? 8 : 32;
            const auto t_serve = Clock::now();
            for (int i = 0; i < requests; ++i)
                client.call(submit);
            metrics.emplace_back("serve_requests_per_s",
                                 requests /
                                     (ms_since(t_serve) / 1000.0));
        }
        server.requestStop(true);
        server_thread.join();
    }

    // 5. Kernel microbenches + the zero-allocation steady-state check,
    //    reported in their own schema-stable file.
    std::vector<std::pair<std::string, double>> kernel_metrics;
    runKernelBench(quick, seed, kernel_metrics);

    // Schema-stable output: the perf-trajectory tooling and the CI
    // trend gate (tools/bench_compare.py) both key on "schema" and
    // the metric list. loas-bench/2 added the prepare_ms / sim_ms
    // two-phase split, loas-bench/3 the compile-cache counters,
    // loas-bench/4 the served-request throughput, loas-bench/5 the
    // batched-inference throughput (the kernels file gained the
    // batched alloc gates alongside), loas-bench/6 the fault-hook
    // overhead fraction; loas-kernels/1 is the kernel-bench
    // companion.
    const auto render = [&](const char* schema, const auto& list) {
        std::string out = "{\n";
        out += std::string("  \"schema\": \"") + schema + "\",\n";
        out += std::string("  \"mode\": ") +
               (quick ? "\"quick\"" : "\"full\"") + ",\n";
        out += "  \"threads\": " + std::to_string(threads) + ",\n";
        out += "  \"seed\": " + std::to_string(seed) + ",\n";
        out += "  \"metrics\": [\n";
        for (std::size_t i = 0; i < list.size(); ++i) {
            out += "    {\"name\": " + json::quote(list[i].first) +
                   ", \"value\": " + json::num(list[i].second) + "}";
            out += i + 1 < list.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    };

    for (const auto& [name, value] : metrics)
        std::printf("%-24s %12.3f\n", name.c_str(), value);
    printCacheSummary(report.compile_cache);
    for (const auto& [name, value] : kernel_metrics)
        std::printf("%-32s %16.3f\n", name.c_str(), value);

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    rc |= writeOutput(out_path, render(kBenchSchema, metrics));
    rc |= writeOutput(kernels_out_path,
                      render(kKernelsSchema, kernel_metrics));
    return rc;
}

/**
 * Manage the on-disk artifact cache.
 *
 *   cache stats --cache-dir PATH   occupancy + format version
 *   cache clear --cache-dir PATH   delete every stored artifact
 *   cache warm  --cache-dir PATH [--accel LIST] [--network GRIDS]
 *               [--seed N]
 *       Precompile the artifacts the given accelerators would need on
 *       the given networks and persist them, so the *first* real run
 *       already skips recompression. Only one compilation happens per
 *       (family, ft-variant) x layer, exactly like an engine run.
 */
int
runCache(int argc, char** argv)
{
    if (argc < 1)
        throw std::invalid_argument(
            "cache needs an action: stats, clear or warm");
    const std::string action = argv[0];
    if (action != "stats" && action != "clear" && action != "warm")
        throw std::invalid_argument(
            "unknown cache action '" + action +
            "' (known: stats, clear, warm)");

    std::string accel_list = serve::kDefaultAccels;
    std::string network_list = "all";
    std::uint64_t seed = 101;
    int threads = 0;
    CacheFlags cache_flags;

    ArgCursor args(argc - 1, argv + 1);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--accel")
            accel_list = args.value(arg);
        else if (arg == "--network")
            network_list = args.value(arg);
        else if (handleCommonFlag(arg, args, seed, threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (cache_flags.dir.empty())
        throw std::invalid_argument("cache " + action +
                                    " needs --cache-dir PATH");

    const ArtifactStore store(cache_flags.dir);
    if (action == "stats") {
        const ArtifactStore::DiskStats stats = store.stats();
        std::printf("cache dir:      %s\n", store.dir().c_str());
        std::printf("format version: %u\n",
                    ArtifactStore::kFormatVersion);
        std::printf("artifacts:      %llu\n",
                    static_cast<unsigned long long>(stats.files));
        std::printf("bytes:          %llu (%.1f KB)\n",
                    static_cast<unsigned long long>(stats.bytes),
                    static_cast<double>(stats.bytes) / 1024.0);
        std::printf("stale temps:    %llu\n",
                    static_cast<unsigned long long>(stats.tmp_files));
        return 0;
    }
    if (action == "clear") {
        const std::size_t removed = store.clear();
        std::printf("removed %zu artifacts from %s\n", removed,
                    store.dir().c_str());
        return 0;
    }

    // warm: compile once per (network, layer, family, ft, t, seed)
    // key through a disk-backed cache — misses write the files a
    // later run/sweep/bench with the same --cache-dir will load.
    const auto& registry = AcceleratorRegistry::instance();
    struct Variant
    {
        std::unique_ptr<Accelerator> instance;
        bool ft;
    };
    std::vector<Variant> variants;
    std::set<std::string> seen_families;
    for (const auto& spec_string : splitSpecList(accel_list)) {
        const AccelSpec spec = parseAccelSpec(spec_string);
        const bool ft = registry.entry(spec.key).ft_workload;
        auto instance = registry.make(spec);
        if (seen_families
                .insert(instance->formatFamily() +
                        (ft ? "#ft" : "#plain"))
                .second)
            variants.push_back(Variant{std::move(instance), ft});
    }

    CompiledCache cache;
    cache.setByteBudget(cache_flags.budget_mb * 1024 * 1024);
    cache.setDiskDir(cache_flags.dir);
    const std::vector<NetworkSpec> networks =
        expandNetworkGrids(splitSpecList(network_list, ';'));
    bool want_plain = false, want_ft = false;
    for (const auto& variant : variants)
        (variant.ft ? want_ft : want_plain) = true;
    for (const auto& net : networks) {
        std::vector<LayerData> plain, ft;
        if (want_plain)
            plain = generateNetwork(net, seed);
        if (want_ft)
            ft = generateNetwork(net, seed, /*ft=*/true);
        // Warm layers in parallel (--threads): prepare() is const and
        // builds only locals, so concurrent calls on one instance are
        // safe, and the cache's per-slot locking keeps each distinct
        // key once-only.
        for (const auto& variant : variants) {
            const auto& layers = variant.ft ? ft : plain;
            parallelFor(
                layers.size(), resolveThreads(threads),
                [&](std::size_t l) {
                    cache.getOrCompile(
                        compiledLayerKey(
                            net.name, l, variant.ft,
                            variant.instance->formatFamily(),
                            layers[l].spec.t, seed),
                        [&] {
                            return variant.instance->prepare(
                                layers[l]);
                        });
                });
        }
    }

    const CompiledCache::Stats stats = cache.stats();
    const ArtifactStore::DiskStats disk = store.stats();
    std::printf("warmed %s: %llu compiled, %llu already on disk, "
                "%llu files (%.1f KB) total\n",
                store.dir().c_str(),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.disk_hits),
                static_cast<unsigned long long>(disk.files),
                static_cast<double>(disk.bytes) / 1024.0);
    return writeCacheStats(cache_flags, stats);
}

/** `loas_cli version`: one JSON object, every version in one place. */
int
runVersion(int argc, char** argv)
{
    (void)argv;
    if (argc != 0)
        throw std::invalid_argument("version takes no flags");
    std::printf("%s\n", serve::versionJson().c_str());
    return 0;
}

serve::Server* g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    // Async-signal-safe: requestStop only write()s to a wake pipe.
    if (g_server != nullptr)
        g_server->requestStop(/*drain=*/true);
}

int
runServe(int argc, char** argv)
{
    serve::Server::Config config;
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--socket")
            config.socket_path = args.value(arg);
        else if (arg == "--workers")
            config.queue.workers = static_cast<int>(
                std::min<std::uint64_t>(parseUint(arg, args.value(arg)),
                                        256));
        else if (arg == "--engine-threads" || arg == "--threads")
            config.queue.engine_threads = static_cast<int>(
                std::min<std::uint64_t>(parseUint(arg, args.value(arg)),
                                        1024));
        else if (arg == "--max-depth")
            config.queue.max_depth = static_cast<std::size_t>(
                parseUint(arg, args.value(arg)));
        else if (arg == "--timeout-ms")
            config.queue.default_timeout_ms = static_cast<double>(
                parseUint(arg, args.value(arg)));
        else if (arg == "--no-coalesce")
            config.queue.coalesce = false;
        else if (handleIsaFlag(arg, args))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (handleFaultFlag(arg, args))
            continue;
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (config.socket_path.empty())
        throw std::invalid_argument("serve needs --socket PATH");
    if (config.queue.workers < 1)
        throw std::invalid_argument("--workers must be >= 1");

    serve::Server server(config, processCache(cache_flags));
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);
    // A client that disconnects mid-reply must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    std::fprintf(stderr,
                 "loas_cli serve: listening on %s "
                 "(workers %d, max depth %zu)\n",
                 config.socket_path.c_str(), config.queue.workers,
                 config.queue.max_depth);
    server.run();
    g_server = nullptr;
    std::fprintf(stderr, "loas_cli serve: stopped\n");
    return 0;
}

int
runRequest(int argc, char** argv)
{
    std::string socket_path;
    std::string cmd = "submit";
    std::string accel_list = serve::kDefaultAccels;
    std::string network_list = "all";
    std::string json_path;
    std::string raw_line;
    std::uint64_t seed = 101;
    std::size_t batch = 1;
    bool energy = true;
    bool wait = true;
    bool drain = true;
    double timeout_ms = 0.0;
    serve::RetryPolicy retry;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--socket")
            socket_path = args.value(arg);
        else if (arg == "--cmd")
            cmd = args.value(arg);
        else if (arg == "--accel")
            accel_list = args.value(arg);
        else if (arg == "--network")
            network_list = args.value(arg);
        else if (arg == "--seed")
            seed = parseUint(arg, args.value(arg));
        else if (arg == "--batch")
            batch = parseBatch(arg, args.value(arg));
        else if (arg == "--no-energy")
            energy = false;
        else if (arg == "--no-wait")
            wait = false;
        else if (arg == "--no-drain")
            drain = false;
        else if (arg == "--timeout-ms")
            timeout_ms =
                static_cast<double>(parseUint(arg, args.value(arg)));
        else if (arg == "--json")
            json_path = args.value(arg);
        else if (arg == "--raw")
            raw_line = args.value(arg);
        else if (arg == "--retries")
            retry.retries = static_cast<int>(
                std::min<std::uint64_t>(parseUint(arg, args.value(arg)),
                                        1000));
        else if (arg == "--backoff-ms")
            retry.backoff_ms =
                static_cast<double>(parseUint(arg, args.value(arg)));
        else if (handleFaultFlag(arg, args))
            continue;
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (socket_path.empty())
        throw std::invalid_argument("request needs --socket PATH");

    // Each exchange rides its own connection through the retry helper,
    // so a daemon that is late to listen, restarts between calls, or
    // drops a connection (injected socket fault, say) costs a backoff
    // delay instead of the whole invocation.
    const auto call = [&](const std::string& line) {
        return serve::callWithRetry(socket_path, line, retry);
    };

    if (!raw_line.empty()) {
        std::printf("%s\n", call(raw_line).c_str());
        return 0;
    }

    if (cmd == "stats" || cmd == "version") {
        std::printf("%s\n",
                    call("{\"cmd\": \"" + cmd + "\"}").c_str());
        return 0;
    }
    if (cmd == "shutdown") {
        std::printf("%s\n",
                    call(std::string("{\"cmd\": \"shutdown\", "
                                     "\"drain\": ") +
                         (drain ? "true" : "false") + "}")
                        .c_str());
        return 0;
    }
    if (cmd != "submit")
        throw std::invalid_argument(
            "unknown --cmd '" + cmd +
            "' (known: submit, stats, version, shutdown)");

    // Submit: the "network" field is ';'-separated on the wire, so a
    // comma-form name list translates; grids pass through verbatim.
    std::string network_field;
    for (const auto& entry : splitNetworkList(network_list)) {
        if (!network_field.empty())
            network_field += ';';
        network_field += entry;
    }
    std::string submit = "{\"cmd\": \"submit\"";
    submit += ", \"accel\": " + json::quote(accel_list);
    submit += ", \"network\": " + json::quote(network_field);
    submit += ", \"seed\": " + std::to_string(seed);
    // Omitted at 1: the wire default, and what serve/1 clients send.
    if (batch > 1)
        submit += ", \"batch\": " + std::to_string(batch);
    submit += std::string(", \"energy\": ") +
              (energy ? "true" : "false");
    if (timeout_ms > 0)
        submit += ", \"timeout_ms\": " + json::num(timeout_ms);
    if (!wait)
        submit += ", \"wait\": false";
    submit += "}";

    const serve::JsonValue reply = serve::parseJson(call(submit));
    if (!reply.getBool("ok", false)) {
        std::fprintf(stderr, "request failed: %s: %s\n",
                     reply.getString("error", "?").c_str(),
                     reply.getString("message", "").c_str());
        return 1;
    }
    const std::uint64_t id =
        static_cast<std::uint64_t>(reply.getNumber("id", 0));
    const std::string state = reply.getString("state", "?");
    if (!wait) {
        std::printf("submitted job %llu (%s%s)\n",
                    static_cast<unsigned long long>(id), state.c_str(),
                    reply.getBool("deduped", false) ? ", deduped"
                                                    : "");
        return 0;
    }
    if (state != "done") {
        std::fprintf(stderr, "job %llu: %s%s%s\n",
                     static_cast<unsigned long long>(id),
                     state.c_str(),
                     reply.get("message") != nullptr ? ": " : "",
                     reply.getString("message", "").c_str());
        return 1;
    }
    const serve::JsonValue* stats = reply.get("stats");
    if (stats != nullptr) {
        const serve::JsonValue* cache = stats->get("cache");
        std::fprintf(
            stderr,
            "job %llu done: queue %.1f ms, run %.1f ms "
            "(compile %.1f ms, sim %.1f ms), cache %g hits / "
            "%g misses%s%s\n",
            static_cast<unsigned long long>(id),
            stats->getNumber("queue_ms", 0), stats->getNumber("run_ms", 0),
            stats->getNumber("compile_ms", 0),
            stats->getNumber("sim_ms", 0),
            cache != nullptr ? cache->getNumber("hits", 0) : 0.0,
            cache != nullptr ? cache->getNumber("misses", 0) : 0.0,
            reply.getBool("deduped", false) ? ", deduped" : "",
            reply.getNumber("coalesced_with", 0) > 0 ? ", coalesced"
                                                     : "");
    }
    const serve::JsonValue* report = reply.get("report");
    if (report == nullptr || !report->isString()) {
        std::fprintf(stderr, "reply carried no report\n");
        return 1;
    }
    if (!json_path.empty())
        return writeOutput(json_path, report->string,
                           json_path == "-");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    try {
        // $LOAS_FAULT_SPEC arms fault injection for any subcommand;
        // an explicit --fault-spec flag overrides it.
        fault::configureFromEnv();
        if (command == "list")
            return runList(argc - 2, argv + 2);
        if (command == "run")
            return runRun(argc - 2, argv + 2);
        if (command == "sweep")
            return runSweep(argc - 2, argv + 2);
        if (command == "bench")
            return runBench(argc - 2, argv + 2);
        if (command == "cache")
            return runCache(argc - 2, argv + 2);
        if (command == "serve")
            return runServe(argc - 2, argv + 2);
        if (command == "request")
            return runRequest(argc - 2, argv + 2);
        if (command == "version")
            return runVersion(argc - 2, argv + 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
