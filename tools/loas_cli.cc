/**
 * @file
 * Command-line driver over the accelerator registry and the SimEngine.
 *
 *   loas_cli list
 *       Print every registered accelerator key with its description.
 *
 *   loas_cli run [--accel LIST] [--network LIST] [--seed N]
 *                [--threads N] [--no-energy] [--json PATH]
 *       Run the (accelerator x network) job matrix and print a summary
 *       table (speedup and energy gain are relative to the first
 *       accelerator in LIST). LIST entries are comma-separated; an
 *       accelerator entry is a registry spec string, so design
 *       variants work directly: --accel "loas,loas?pes=64,gamma".
 *       --network accepts alexnet / vgg16 / resnet19 / all.
 *       --json writes the full report (per-category traffic, op
 *       counts, energy breakdown) to PATH, or stdout for "-".
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/registry.hh"
#include "api/sim_engine.hh"
#include "common/table.hh"
#include "workload/networks.hh"

namespace {

using namespace loas;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s list\n"
        "       %s run [--accel LIST] [--network LIST] [--seed N]\n"
        "           [--threads N] [--no-energy] [--json PATH]\n"
        "\n"
        "  --accel LIST    comma-separated accelerator specs\n"
        "                  (default: sparten,gospa,gamma,loas,loas-ft)\n"
        "  --network LIST  alexnet, vgg16, resnet19 or all (default)\n"
        "  --seed N        workload-synthesis seed (default 101)\n"
        "  --threads N     worker threads (default: all cores)\n"
        "  --no-energy     skip the energy model\n"
        "  --json PATH     write the full report as JSON (\"-\": stdout)\n",
        argv0, argv0);
    return 2;
}

int
runList()
{
    const auto& registry = AcceleratorRegistry::instance();
    TextTable table({"key", "description"});
    for (const auto& key : registry.keys())
        table.addRow({key, registry.entry(key).description});
    std::printf("%s", table.str().c_str());
    return 0;
}

std::uint64_t
parseUint(const std::string& flag, const std::string& value)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument(flag + " value '" + value +
                                    "' is not a non-negative integer");
    return parsed;
}

std::vector<NetworkSpec>
resolveNetworks(const std::string& list)
{
    std::vector<NetworkSpec> networks;
    for (const auto& name : splitSpecList(list)) {
        if (name == "all") {
            for (const auto& net : tables::allNetworks())
                networks.push_back(net);
        } else if (name == "alexnet") {
            networks.push_back(tables::alexnet());
        } else if (name == "vgg16") {
            networks.push_back(tables::vgg16());
        } else if (name == "resnet19") {
            networks.push_back(tables::resnet19());
        } else {
            throw std::invalid_argument(
                "unknown network '" + name +
                "' (known: alexnet, vgg16, resnet19, all)");
        }
    }
    return networks;
}

int
runRun(int argc, char** argv)
{
    std::string accel_list = "sparten,gospa,gamma,loas,loas-ft";
    std::string network_list = "all";
    std::string json_path;
    SimRequest request;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                throw std::invalid_argument(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--accel")
            accel_list = value();
        else if (arg == "--network")
            network_list = value();
        else if (arg == "--seed")
            request.seed = parseUint(arg, value());
        else if (arg == "--threads")
            request.threads = static_cast<int>(std::min<std::uint64_t>(
                parseUint(arg, value()), 1024));
        else if (arg == "--no-energy")
            request.energy = false;
        else if (arg == "--json")
            json_path = value();
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }

    request.accels = splitSpecList(accel_list);
    if (request.accels.empty())
        throw std::invalid_argument("--accel list is empty");
    request.networks = resolveNetworks(network_list);
    if (request.networks.empty())
        throw std::invalid_argument("--network list is empty");

    const SimReport report = SimEngine().run(request);

    // Summary table, normalized to the first requested accelerator.
    std::vector<std::string> headers = {"network", "accel", "cycles",
                                        "speedup", "off-chip KB",
                                        "on-chip MB"};
    if (request.energy) {
        headers.push_back("energy uJ");
        headers.push_back("eff. gain");
    }
    TextTable table(std::move(headers));
    const std::string& base_accel = request.accels.front();
    for (const auto& net : request.networks) {
        const SimRun& base = report.at(base_accel, net.name);
        for (const auto& accel : request.accels) {
            const SimRun& run = report.at(accel, net.name);
            std::vector<std::string> row = {
                net.name, accel,
                TextTable::fmtInt(run.result.total_cycles),
                TextTable::fmtX(
                    static_cast<double>(base.result.total_cycles) /
                    static_cast<double>(run.result.total_cycles)),
                TextTable::fmt(run.result.traffic.dramBytes() / 1024.0,
                               1),
                TextTable::fmt(run.result.traffic.sramBytes() /
                                   (1024.0 * 1024.0),
                               2)};
            if (request.energy) {
                row.push_back(
                    TextTable::fmt(run.energy.totalPj() / 1e6, 2));
                row.push_back(TextTable::fmtX(base.energy.totalPj() /
                                              run.energy.totalPj()));
            }
            table.addRow(std::move(row));
        }
    }
    std::printf("%s", table.str().c_str());

    if (!json_path.empty()) {
        const std::string out = json::toJson(report);
        if (json_path == "-") {
            std::printf("%s", out.c_str());
        } else {
            std::ofstream file(json_path);
            if (!file) {
                std::fprintf(stderr, "cannot open '%s' for writing\n",
                             json_path.c_str());
                return 1;
            }
            file << out;
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    try {
        if (command == "list")
            return runList();
        if (command == "run")
            return runRun(argc - 2, argv + 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
