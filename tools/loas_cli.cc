/**
 * @file
 * Command-line driver over the accelerator registry and the SimEngine.
 *
 *   loas_cli list [--json [PATH]]
 *       Print every registered accelerator key with its description.
 *       --json emits a machine-readable catalog (key, description,
 *       ft_workload, accepted spec options) for tooling/CI discovery,
 *       to PATH or stdout when PATH is omitted or "-".
 *
 *   loas_cli run [--accel LIST] [--network LIST] [--seed N]
 *                [--threads N] [--no-energy] [--json PATH]
 *       Run the (accelerator x network) job matrix and print a summary
 *       table (speedup and energy gain are relative to the first
 *       accelerator in LIST). LIST entries are comma-separated; an
 *       accelerator entry is a registry spec string, so design
 *       variants work directly: --accel "loas,loas?pes=64,gamma".
 *       --network accepts alexnet / vgg16 / resnet19 / all.
 *       --json writes the full report (per-category traffic, op
 *       counts, energy breakdown) to PATH, or stdout for "-".
 *
 *   loas_cli sweep --grid GRIDS [--network GRIDS] [--baseline SPEC]
 *                  [--seed N] [--threads N] [--no-energy]
 *                  [--csv PATH] [--json PATH]
 *       Expand design-space grids ("loas?pes=16,32,64&t=4,8,16") into
 *       one batched job matrix, simulate it, and emit derived columns
 *       (speedup vs --baseline, EDP, Pareto flag). Grids are
 *       semicolon-separated (commas separate values inside a grid);
 *       --grid may repeat. --network takes network grids
 *       ("vgg16-l8?ws=0.982,0.684,0.25") or named networks.
 *
 *   loas_cli bench [--quick] [--seed N] [--threads N] [--out PATH]
 *                  [--kernels-out PATH]
 *       Self-timing harness for the simulator itself: measures
 *       workload-synthesis time, per-accelerator simulation time and
 *       sweep-engine throughput (cells/s), and writes a schema-stable
 *       BENCH_sweep.json for the perf trajectory. A second section
 *       times the hot simulation kernels (word-parallel inner join,
 *       O(1) rank tables) and verifies the zero-allocation steady
 *       state of every registered design's execute(), written as
 *       BENCH_kernels.json (schema loas-kernels/1).
 *
 *   loas_cli cache stats|clear|warm --cache-dir PATH ...
 *       Manage the on-disk compiled-artifact cache: report occupancy,
 *       delete stored artifacts, or precompile (warm) the artifacts a
 *       later run/sweep would need.
 *
 * run, sweep and bench accept the shared cache flags:
 *   --cache-dir PATH  persist compiled artifacts on disk; a later
 *                     invocation with the same flag skips operand
 *                     recompression entirely
 *   --cache-mb N      in-memory compiled-cache byte budget in MiB
 *                     (0 = unlimited); LRU eviction, finished
 *                     networks first
 *   --cache-stats PATH
 *                     write the run's cache counters as JSON ("-":
 *                     stdout) — hits, misses, disk hits/writes/
 *                     rejects, evictions, compile_ms
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/accel_spec.hh"
#include "api/json.hh"
#include "api/registry.hh"
#include "api/sim_engine.hh"
#include "api/sweep.hh"
#include "api/sweep_io.hh"
#include "common/alloc_hook.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/inner_join.hh"
#include "tensor/ranked_bitmask.hh"
#include "workload/artifact_store.hh"
#include "workload/compiled_cache.hh"
#include "workload/generator.hh"
#include "workload/networks.hh"

namespace {

using namespace loas;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s list [--json [PATH]]\n"
        "       %s run [--accel LIST] [--network LIST] [--seed N]\n"
        "           [--threads N] [--no-energy] [--json PATH]\n"
        "           [cache flags]\n"
        "       %s sweep --grid GRIDS [--network GRIDS]\n"
        "           [--baseline SPEC] [--seed N] [--threads N]\n"
        "           [--no-energy] [--csv PATH] [--json PATH]\n"
        "           [cache flags]\n"
        "       %s bench [--quick] [--seed N] [--threads N] [--out PATH]\n"
        "           [cache flags]\n"
        "       loas_cli cache stats|clear --cache-dir PATH\n"
        "       loas_cli cache warm --cache-dir PATH [--accel LIST]\n"
        "           [--network GRIDS] [--seed N]\n"
        "\n"
        "cache flags (run/sweep/bench):\n"
        "  --cache-dir PATH  persist compiled artifacts on disk and\n"
        "                    reuse them across invocations\n"
        "  --cache-mb N      in-memory compiled-cache budget in MiB\n"
        "                    (default 0 = unlimited)\n"
        "  --cache-stats PATH\n"
        "                    write cache counters as JSON (\"-\": stdout)\n"
        "\n"
        "list:\n"
        "  --json [PATH]   machine-readable catalog of registered\n"
        "                  accelerators and their accepted spec options\n"
        "                  (PATH omitted or \"-\": stdout)\n"
        "\n"
        "run:\n"
        "  --accel LIST    comma-separated accelerator specs\n"
        "                  (default: sparten,gospa,gamma,loas,loas-ft)\n"
        "  --network LIST  alexnet, vgg16, resnet19 or all (default)\n"
        "  --seed N        workload-synthesis seed (default 101)\n"
        "  --threads N     worker threads (default: all cores)\n"
        "  --no-energy     skip the energy model\n"
        "  --json PATH     write the full report as JSON (\"-\": stdout)\n"
        "\n"
        "sweep:\n"
        "  --grid GRIDS    accelerator spec grids, ';'-separated; commas\n"
        "                  separate values (\"loas?pes=16,32,64&t=4,8\");\n"
        "                  the flag may repeat\n"
        "  --network GRIDS network grids, ';'-separated: alexnet, vgg16,\n"
        "                  resnet19, all, or single-layer workloads\n"
        "                  alexnet-l4 / vgg16-l8 / resnet19-l19 / t-hff\n"
        "                  with t= and ws= value lists (default: all)\n"
        "  --baseline SPEC design the speedup/energy-gain columns are\n"
        "                  relative to (default: first expanded design)\n"
        "  --csv PATH      write per-cell CSV (\"-\": stdout)\n"
        "  --json PATH     write the full sweep JSON (\"-\": stdout)\n"
        "\n"
        "bench:\n"
        "  --quick         small matrix for the CI perf-smoke job\n"
        "  --out PATH      output JSON (default BENCH_sweep.json)\n"
        "  --kernels-out PATH\n"
        "                  kernel-bench JSON (default BENCH_kernels.json)\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

std::uint64_t
parseUint(const std::string& flag, const std::string& value)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        throw std::invalid_argument(flag + " value '" + value +
                                    "' is not a non-negative integer");
    return parsed;
}

/** Cursor over a subcommand's argv tail. */
class ArgCursor
{
  public:
    ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

    bool more() const { return i_ < argc_; }

    std::string next() { return argv_[i_++]; }

    /** The next token without consuming it (only valid when more()). */
    std::string peek() const { return argv_[i_]; }

    /** The value following `flag`; throws when the tail is exhausted. */
    std::string
    value(const std::string& flag)
    {
        if (i_ >= argc_)
            throw std::invalid_argument(flag + " needs a value");
        return argv_[i_++];
    }

  private:
    int argc_;
    char** argv_;
    int i_ = 0;
};

/** Flags every subcommand shares; true when `arg` was consumed. */
bool
handleCommonFlag(const std::string& arg, ArgCursor& args,
                 std::uint64_t& seed, int& threads)
{
    if (arg == "--seed") {
        seed = parseUint(arg, args.value(arg));
        return true;
    }
    if (arg == "--threads") {
        threads = static_cast<int>(std::min<std::uint64_t>(
            parseUint(arg, args.value(arg)), 1024));
        return true;
    }
    return false;
}

/** Shared --cache-* flag state of the run/sweep/bench subcommands. */
struct CacheFlags
{
    std::string dir;
    std::uint64_t budget_mb = 0;
    std::string stats_path;
};

/** True when `arg` was one of the shared cache flags (and consumed). */
bool
handleCacheFlag(const std::string& arg, ArgCursor& args,
                CacheFlags& flags)
{
    if (arg == "--cache-dir") {
        flags.dir = args.value(arg);
        return true;
    }
    if (arg == "--cache-mb") {
        flags.budget_mb = parseUint(arg, args.value(arg));
        return true;
    }
    if (arg == "--cache-stats") {
        flags.stats_path = args.value(arg);
        return true;
    }
    return false;
}

/**
 * The process-lifetime compiled cache, configured from the flags.
 * Every engine run of one CLI invocation shares it, so e.g. the bench
 * harness compiles each operand format once across all its stages.
 */
CompiledCache*
processCache(const CacheFlags& flags)
{
    CompiledCache& cache = CompiledCache::process();
    cache.setByteBudget(flags.budget_mb * 1024 * 1024);
    cache.setDiskDir(flags.dir);
    return &cache;
}

/** One-line cache accounting summary (stderr, grep-friendly). */
void
printCacheSummary(const CompiledCache::Stats& stats)
{
    std::fprintf(
        stderr,
        "compile cache: %llu misses, %llu hits, %llu disk hits, "
        "%llu disk writes, %llu disk rejects, %llu evictions, "
        "%.3f compile ms, %.1f KB resident\n",
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.disk_hits),
        static_cast<unsigned long long>(stats.disk_writes),
        static_cast<unsigned long long>(stats.disk_rejects),
        static_cast<unsigned long long>(stats.evictions),
        stats.compile_ms,
        static_cast<double>(stats.bytes) / 1024.0);
}

/** Write `content` to PATH, or stdout when PATH is "-". */
int
writeOutput(const std::string& path, const std::string& content,
            bool quiet = false)
{
    if (path == "-") {
        std::printf("%s", content.c_str());
        return 0;
    }
    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     path.c_str());
        return 1;
    }
    file << content;
    file.close();
    if (!file) {
        std::fprintf(stderr, "error writing '%s'\n", path.c_str());
        return 1;
    }
    if (!quiet)
        std::printf("wrote %s\n", path.c_str());
    return 0;
}

/** Honor --cache-stats: write the run's counters as JSON. */
int
writeCacheStats(const CacheFlags& flags,
                const CompiledCache::Stats& stats)
{
    if (flags.stats_path.empty())
        return 0;
    return writeOutput(flags.stats_path, json::toJson(stats) + "\n",
                       flags.stats_path == "-");
}

int
runList(int argc, char** argv)
{
    bool as_json = false;
    std::string json_path = "-";
    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--json") {
            as_json = true;
            // An optional PATH follows; a flag-like token ("--...") is
            // the next flag, not a filename to silently create.
            if (args.more() && args.peek().rfind("--", 0) != 0)
                json_path = args.next();
        } else {
            throw std::invalid_argument("unknown flag '" + arg + "'");
        }
    }

    const auto& registry = AcceleratorRegistry::instance();
    const auto joined_options = [&](const std::string& key) {
        std::string joined;
        for (const auto& option : registry.entry(key).options)
            joined += (joined.empty() ? "" : ", ") + option;
        return joined;
    };

    if (!as_json) {
        TextTable table({"key", "description", "options"});
        for (const auto& key : registry.keys())
            table.addRow({key, registry.entry(key).description,
                          joined_options(key)});
        std::printf("%s", table.str().c_str());
        return 0;
    }

    // Machine-readable catalog, schema-versioned like the bench output.
    const auto keys = registry.keys();
    std::string out = "{\n";
    out += "  \"schema\": \"loas-list/1\",\n";
    out += "  \"accelerators\": [\n";
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto& entry = registry.entry(keys[i]);
        out += "    {\"key\": " + json::quote(keys[i]) +
               ", \"description\": " + json::quote(entry.description) +
               ", \"ft_workload\": " +
               (entry.ft_workload ? "true" : "false") +
               ", \"options\": [";
        for (std::size_t o = 0; o < entry.options.size(); ++o) {
            out += json::quote(entry.options[o]);
            if (o + 1 < entry.options.size())
                out += ", ";
        }
        out += "]}";
        out += i + 1 < keys.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return writeOutput(json_path, out);
}

std::vector<NetworkSpec>
resolveNetworks(const std::string& list)
{
    std::vector<NetworkSpec> networks;
    for (const auto& name : splitSpecList(list)) {
        if (name == "all") {
            for (const auto& net : tables::allNetworks())
                networks.push_back(net);
        } else if (name == "alexnet") {
            networks.push_back(tables::alexnet());
        } else if (name == "vgg16") {
            networks.push_back(tables::vgg16());
        } else if (name == "resnet19") {
            networks.push_back(tables::resnet19());
        } else {
            throw std::invalid_argument(
                "unknown network '" + name +
                "' (known: alexnet, vgg16, resnet19, all)");
        }
    }
    return networks;
}

int
runRun(int argc, char** argv)
{
    std::string accel_list = "sparten,gospa,gamma,loas,loas-ft";
    std::string network_list = "all";
    std::string json_path;
    SimRequest request;
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--accel")
            accel_list = args.value(arg);
        else if (arg == "--network")
            network_list = args.value(arg);
        else if (handleCommonFlag(arg, args, request.seed,
                                  request.threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (arg == "--no-energy")
            request.energy = false;
        else if (arg == "--json")
            json_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }

    request.accels = splitSpecList(accel_list);
    if (request.accels.empty())
        throw std::invalid_argument("--accel list is empty");
    request.networks = resolveNetworks(network_list);
    if (request.networks.empty())
        throw std::invalid_argument("--network list is empty");
    if (json_path == "-" && cache_flags.stats_path == "-")
        throw std::invalid_argument(
            "--json - and --cache-stats - would interleave two "
            "documents on stdout; write at most one of them to '-'");
    request.compiled_cache = processCache(cache_flags);

    const SimReport report = SimEngine().run(request);
    printCacheSummary(report.compile_cache);

    // Summary table, normalized to the first requested accelerator.
    std::vector<std::string> headers = {"network", "accel", "cycles",
                                        "speedup", "off-chip KB",
                                        "on-chip MB"};
    if (request.energy) {
        headers.push_back("energy uJ");
        headers.push_back("eff. gain");
    }
    TextTable table(std::move(headers));
    const std::string& base_accel = request.accels.front();
    for (const auto& net : request.networks) {
        const SimRun& base = report.at(base_accel, net.name);
        for (const auto& accel : request.accels) {
            const SimRun& run = report.at(accel, net.name);
            std::vector<std::string> row = {
                net.name, accel,
                TextTable::fmtInt(run.result.total_cycles),
                TextTable::fmtX(
                    static_cast<double>(base.result.total_cycles) /
                    static_cast<double>(run.result.total_cycles)),
                TextTable::fmt(run.result.traffic.dramBytes() / 1024.0,
                               1),
                TextTable::fmt(run.result.traffic.sramBytes() /
                                   (1024.0 * 1024.0),
                               2)};
            if (request.energy) {
                row.push_back(
                    TextTable::fmt(run.energy.totalPj() / 1e6, 2));
                row.push_back(TextTable::fmtX(base.energy.totalPj() /
                                              run.energy.totalPj()));
            }
            table.addRow(std::move(row));
        }
    }
    std::printf("%s", table.str().c_str());

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    if (!json_path.empty())
        rc |= writeOutput(json_path, json::toJson(report));
    return rc;
}

int
runSweep(int argc, char** argv)
{
    SweepRequest request;
    std::string csv_path, json_path;
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--grid")
            for (auto& grid : splitSpecList(args.value(arg), ';'))
                request.grids.push_back(std::move(grid));
        else if (arg == "--network")
            for (auto& grid : splitSpecList(args.value(arg), ';'))
                request.networks.push_back(std::move(grid));
        else if (arg == "--baseline")
            request.baseline = args.value(arg);
        else if (handleCommonFlag(arg, args, request.seed,
                                  request.threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (arg == "--no-energy")
            request.energy = false;
        else if (arg == "--csv")
            csv_path = args.value(arg);
        else if (arg == "--json")
            json_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (request.grids.empty())
        throw std::invalid_argument("sweep needs at least one --grid");
    const int stdout_sinks = (csv_path == "-") + (json_path == "-") +
                             (cache_flags.stats_path == "-");
    if (stdout_sinks > 1)
        throw std::invalid_argument(
            "--csv, --json and --cache-stats would interleave "
            "multiple documents on stdout; write at most one of them "
            "to '-'");
    if (request.networks.empty())
        request.networks.push_back("all");
    request.compiled_cache = processCache(cache_flags);

    const SweepReport report = SweepEngine().run(request);
    // The CSV/JSON artifacts stay cache-agnostic (byte-identical cold
    // or warm); the accounting goes to stderr and --cache-stats.
    printCacheSummary(report.compile_cache);

    // Summary table; full per-cell detail goes to --csv/--json.
    const bool to_stdout = csv_path == "-" || json_path == "-";
    if (!to_stdout) {
        std::vector<std::string> headers = {"network", "design",
                                            "cycles", "speedup"};
        if (request.energy) {
            headers.push_back("energy uJ");
            headers.push_back("eff. gain");
            headers.push_back("EDP uJ*Mcyc");
        }
        headers.push_back("pareto");
        TextTable table(std::move(headers));
        for (const auto& cell : report.cells) {
            std::vector<std::string> row = {
                cell.network,
                cell.accel_spec + (cell.is_baseline ? " *" : ""),
                TextTable::fmtInt(cell.result.total_cycles),
                TextTable::fmtX(cell.speedup)};
            if (request.energy) {
                row.push_back(
                    TextTable::fmt(cell.energy.totalPj() / 1e6, 2));
                row.push_back(TextTable::fmtX(cell.energy_gain));
                row.push_back(TextTable::fmt(cell.edp / 1e12, 3));
            }
            row.push_back(cell.pareto ? "yes" : "");
            table.addRow(std::move(row));
        }
        std::printf("%s", table.str().c_str());
        std::size_t n_designs = 0;
        for (const auto& cell : report.cells)
            if (cell.network == report.cells.front().network)
                ++n_designs;
        std::printf("(* = baseline %s; %zu designs x %zu networks)\n",
                    report.baseline.c_str(), n_designs,
                    n_designs == 0 ? 0
                                   : report.cells.size() / n_designs);
    }

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    if (!csv_path.empty())
        rc |= writeOutput(csv_path, toCsv(report), to_stdout);
    if (!json_path.empty())
        rc |= writeOutput(json_path, json::toJson(report), to_stdout);
    return rc;
}

/**
 * Time the hot simulation kernels and verify the zero-allocation
 * steady-state contract of every registered design's execute().
 * Appends (name, value) metric pairs for the loas-kernels/1 schema.
 */
void
runKernelBench(bool quick, std::uint64_t seed,
               std::vector<std::pair<std::string, double>>& metrics)
{
    using Clock = std::chrono::steady_clock;
    const auto seconds_since = [](Clock::time_point start) {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    // --- Word-parallel inner join on a representative fiber pair
    // (VGG-class K, Table II-like densities).
    const std::size_t k = 2304;
    Rng rng(seed);
    SpikeFiber fa;
    fa.mask = Bitmask(k);
    WeightFiber fb;
    fb.mask = Bitmask(k);
    for (std::size_t i = 0; i < k; ++i) {
        if (rng.bernoulli(0.25)) {
            fa.mask.set(i);
            fa.values.push_back(
                static_cast<TimeWord>(1 + rng.uniformInt(15)));
        }
        if (rng.bernoulli(0.03)) {
            fb.mask.set(i);
            fb.values.push_back(
                static_cast<std::int32_t>(rng.uniformInt(255)) - 127);
        }
    }
    const RankedBitmask rank_a(fa.mask);
    const RankedBitmask rank_b(fb.mask);
    const InnerJoinUnit unit(InnerJoinConfig{}, 4);
    JoinScratch scratch;
    unit.join(fa, rank_a, fb, rank_b, scratch); // warm the scratch

    const int join_iters = quick ? 20000 : 100000;
    const std::uint64_t allocs_before = allochook::allocationCount();
    const auto t_join = Clock::now();
    std::uint64_t matches = 0;
    for (int i = 0; i < join_iters; ++i)
        matches += unit.join(fa, rank_a, fb, rank_b, scratch).matches;
    const double join_s = seconds_since(t_join);
    const auto join_allocs = static_cast<double>(
        allochook::allocationCount() - allocs_before);
    metrics.emplace_back("join_calls_per_s", join_iters / join_s);
    metrics.emplace_back("join_matches_per_s",
                         static_cast<double>(matches) / join_s);
    metrics.emplace_back("join_allocs_steady", join_allocs);

    // --- O(1) rank-table queries.
    const int rank_iters = quick ? 1000000 : 4000000;
    std::size_t pos = 0;
    std::uint64_t sink = 0;
    const auto t_rank = Clock::now();
    for (int i = 0; i < rank_iters; ++i) {
        sink += rank_a.rank(pos);
        pos = (pos + 97) % (k + 1);
    }
    metrics.emplace_back("rank_ops_per_s",
                         rank_iters / seconds_since(t_rank));
    const auto t_pr = Clock::now();
    for (int i = 0; i < rank_iters; ++i) {
        sink += rank_a.popcountRange(pos, k);
        pos = (pos + 97) % (k + 1);
    }
    metrics.emplace_back("popcount_range_ops_per_s",
                         rank_iters / seconds_since(t_pr));
    if (sink == 0xdeadbeef) // defeat dead-code elimination
        std::printf("\n");

    // --- Steady-state execute() of every registered design must not
    // touch the heap: two warm-up layers grow the scratch buffers,
    // the third is counted. (The layer name stays within the small-
    // string capacity on purpose — RunResult carries it by value.)
    const auto& registry = AcceleratorRegistry::instance();
    LayerSpec kspec = tables::alexnetL4();
    if (quick)
        kspec.m = 64;
    kspec.name = "kbench";
    for (const auto& key : registry.keys()) {
        const bool ft = registry.entry(key).ft_workload;
        const LayerData layer = generateLayer(kspec, seed, ft);
        const auto instance = registry.make(key);
        const CompiledLayer compiled = instance->prepare(layer);
        instance->execute(compiled);
        instance->execute(compiled);
        const std::uint64_t before = allochook::allocationCount();
        const RunResult r = instance->execute(compiled);
        const auto allocs = static_cast<double>(
            allochook::allocationCount() - before);
        if (r.total_cycles == 0)
            throw std::runtime_error(
                "kernel bench execute produced zero cycles");
        metrics.emplace_back("execute_allocs_steady_" + key, allocs);
    }
    metrics.emplace_back("alloc_hook_active",
                         allochook::active() ? 1.0 : 0.0);
}

int
runBench(int argc, char** argv)
{
    bool quick = false;
    std::uint64_t seed = 101;
    int threads = 0;
    std::string out_path = "BENCH_sweep.json";
    std::string kernels_out_path = "BENCH_kernels.json";
    CacheFlags cache_flags;

    ArgCursor args(argc, argv);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--quick")
            quick = true;
        else if (handleCommonFlag(arg, args, seed, threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else if (arg == "--out")
            out_path = args.value(arg);
        else if (arg == "--kernels-out")
            kernels_out_path = args.value(arg);
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }

    using Clock = std::chrono::steady_clock;
    auto ms_since = [](Clock::time_point start) {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start)
            .count();
    };

    std::vector<std::pair<std::string, double>> metrics;

    // 1. Workload synthesis: the expensive calibrated tensor
    //    generation the engine caches per (network, ft-variant).
    const NetworkSpec net =
        quick ? NetworkSpec{"alexnet-l4", {tables::alexnetL4()}}
              : tables::alexnet();
    const auto t_synth = Clock::now();
    const std::vector<LayerData> layers = generateNetwork(net, seed);
    const std::vector<LayerData> layers_ft =
        generateNetwork(net, seed, /*ft=*/true);
    metrics.emplace_back("workload_synthesis_ms", ms_since(t_synth));

    // 2. Per-accelerator simulation on the shared workload.
    const auto& registry = AcceleratorRegistry::instance();
    for (const std::string design :
         {"sparten", "gospa", "gamma", "loas", "loas-ft"}) {
        const bool ft = registry.entry(design).ft_workload;
        const auto t_sim = Clock::now();
        const RunResult r = registry.make(design)->runNetwork(
            ft ? layers_ft : layers, net.name);
        double ms = ms_since(t_sim);
        if (r.total_cycles == 0)
            throw std::runtime_error("bench run produced zero cycles");
        metrics.emplace_back(std::string("sim_ms_") + design, ms);
    }

    // 3. Sweep-engine throughput, end to end (expansion, synthesis,
    //    simulation, derived columns) on a representative grid.
    SweepRequest sweep;
    sweep.grids = {quick ? "loas?pes=8,16&t=4,8"
                         : "loas?pes=8,16,32,64&t=4,8,16"};
    sweep.baseline = "sparten";
    if (quick)
        sweep.networks = {"alexnet-l4"};
    else
        sweep.networks = {"vgg16-l8", "alexnet-l4"};
    sweep.seed = seed;
    sweep.threads = threads;
    sweep.compiled_cache = processCache(cache_flags);
    const auto t_sweep = Clock::now();
    const SweepReport report = SweepEngine().run(sweep);
    const double sweep_ms = ms_since(t_sweep);
    metrics.emplace_back("sweep_wall_ms", sweep_ms);
    metrics.emplace_back("sweep_cells",
                         static_cast<double>(report.cells.size()));
    metrics.emplace_back("sweep_cells_per_s",
                         static_cast<double>(report.cells.size()) /
                             (sweep_ms / 1000.0));
    // Two-phase split: time compiling operands (once per cache key)
    // vs time executing the datapath models.
    metrics.emplace_back("prepare_ms", report.prepare_ms);
    metrics.emplace_back("sim_ms", report.sim_ms);
    // Compiled-cache counters: informational for trend tooling (they
    // are zero on a cold, disk-less run by design).
    const CompiledCache::Stats& cc = report.compile_cache;
    metrics.emplace_back("cache_hits", static_cast<double>(cc.hits));
    metrics.emplace_back("cache_misses",
                         static_cast<double>(cc.misses));
    metrics.emplace_back("cache_disk_hits",
                         static_cast<double>(cc.disk_hits));
    metrics.emplace_back("cache_evictions",
                         static_cast<double>(cc.evictions));
    metrics.emplace_back("cache_bytes",
                         static_cast<double>(cc.bytes));

    // 4. Kernel microbenches + the zero-allocation steady-state check,
    //    reported in their own schema-stable file.
    std::vector<std::pair<std::string, double>> kernel_metrics;
    runKernelBench(quick, seed, kernel_metrics);

    // Schema-stable output: the perf-trajectory tooling and the CI
    // trend gate (tools/bench_compare.py) both key on "schema" and
    // the metric list. loas-bench/2 added the prepare_ms / sim_ms
    // two-phase split, loas-bench/3 the compile-cache counters;
    // loas-kernels/1 is the kernel-bench companion.
    const auto render = [&](const char* schema, const auto& list) {
        std::string out = "{\n";
        out += std::string("  \"schema\": \"") + schema + "\",\n";
        out += std::string("  \"mode\": ") +
               (quick ? "\"quick\"" : "\"full\"") + ",\n";
        out += "  \"threads\": " + std::to_string(threads) + ",\n";
        out += "  \"seed\": " + std::to_string(seed) + ",\n";
        out += "  \"metrics\": [\n";
        for (std::size_t i = 0; i < list.size(); ++i) {
            out += "    {\"name\": " + json::quote(list[i].first) +
                   ", \"value\": " + json::num(list[i].second) + "}";
            out += i + 1 < list.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    };

    for (const auto& [name, value] : metrics)
        std::printf("%-24s %12.3f\n", name.c_str(), value);
    printCacheSummary(report.compile_cache);
    for (const auto& [name, value] : kernel_metrics)
        std::printf("%-32s %16.3f\n", name.c_str(), value);

    int rc = writeCacheStats(cache_flags, report.compile_cache);
    rc |= writeOutput(out_path, render("loas-bench/3", metrics));
    rc |= writeOutput(kernels_out_path,
                      render("loas-kernels/1", kernel_metrics));
    return rc;
}

/**
 * Manage the on-disk artifact cache.
 *
 *   cache stats --cache-dir PATH   occupancy + format version
 *   cache clear --cache-dir PATH   delete every stored artifact
 *   cache warm  --cache-dir PATH [--accel LIST] [--network GRIDS]
 *               [--seed N]
 *       Precompile the artifacts the given accelerators would need on
 *       the given networks and persist them, so the *first* real run
 *       already skips recompression. Only one compilation happens per
 *       (family, ft-variant) x layer, exactly like an engine run.
 */
int
runCache(int argc, char** argv)
{
    if (argc < 1)
        throw std::invalid_argument(
            "cache needs an action: stats, clear or warm");
    const std::string action = argv[0];
    if (action != "stats" && action != "clear" && action != "warm")
        throw std::invalid_argument(
            "unknown cache action '" + action +
            "' (known: stats, clear, warm)");

    std::string accel_list = "sparten,gospa,gamma,loas,loas-ft";
    std::string network_list = "all";
    std::uint64_t seed = 101;
    int threads = 0;
    CacheFlags cache_flags;

    ArgCursor args(argc - 1, argv + 1);
    while (args.more()) {
        const std::string arg = args.next();
        if (arg == "--accel")
            accel_list = args.value(arg);
        else if (arg == "--network")
            network_list = args.value(arg);
        else if (handleCommonFlag(arg, args, seed, threads))
            continue;
        else if (handleCacheFlag(arg, args, cache_flags))
            continue;
        else
            throw std::invalid_argument("unknown flag '" + arg + "'");
    }
    if (cache_flags.dir.empty())
        throw std::invalid_argument("cache " + action +
                                    " needs --cache-dir PATH");

    const ArtifactStore store(cache_flags.dir);
    if (action == "stats") {
        const ArtifactStore::DiskStats stats = store.stats();
        std::printf("cache dir:      %s\n", store.dir().c_str());
        std::printf("format version: %u\n",
                    ArtifactStore::kFormatVersion);
        std::printf("artifacts:      %llu\n",
                    static_cast<unsigned long long>(stats.files));
        std::printf("bytes:          %llu (%.1f KB)\n",
                    static_cast<unsigned long long>(stats.bytes),
                    static_cast<double>(stats.bytes) / 1024.0);
        return 0;
    }
    if (action == "clear") {
        const std::size_t removed = store.clear();
        std::printf("removed %zu artifacts from %s\n", removed,
                    store.dir().c_str());
        return 0;
    }

    // warm: compile once per (network, layer, family, ft, t, seed)
    // key through a disk-backed cache — misses write the files a
    // later run/sweep/bench with the same --cache-dir will load.
    const auto& registry = AcceleratorRegistry::instance();
    struct Variant
    {
        std::unique_ptr<Accelerator> instance;
        bool ft;
    };
    std::vector<Variant> variants;
    std::set<std::string> seen_families;
    for (const auto& spec_string : splitSpecList(accel_list)) {
        const AccelSpec spec = parseAccelSpec(spec_string);
        const bool ft = registry.entry(spec.key).ft_workload;
        auto instance = registry.make(spec);
        if (seen_families
                .insert(instance->formatFamily() +
                        (ft ? "#ft" : "#plain"))
                .second)
            variants.push_back(Variant{std::move(instance), ft});
    }

    CompiledCache cache;
    cache.setByteBudget(cache_flags.budget_mb * 1024 * 1024);
    cache.setDiskDir(cache_flags.dir);
    const std::vector<NetworkSpec> networks =
        expandNetworkGrids(splitSpecList(network_list, ';'));
    bool want_plain = false, want_ft = false;
    for (const auto& variant : variants)
        (variant.ft ? want_ft : want_plain) = true;
    for (const auto& net : networks) {
        std::vector<LayerData> plain, ft;
        if (want_plain)
            plain = generateNetwork(net, seed);
        if (want_ft)
            ft = generateNetwork(net, seed, /*ft=*/true);
        // Warm layers in parallel (--threads): prepare() is const and
        // builds only locals, so concurrent calls on one instance are
        // safe, and the cache's per-slot locking keeps each distinct
        // key once-only.
        for (const auto& variant : variants) {
            const auto& layers = variant.ft ? ft : plain;
            parallelFor(
                layers.size(), resolveThreads(threads),
                [&](std::size_t l) {
                    cache.getOrCompile(
                        compiledLayerKey(
                            net.name, l, variant.ft,
                            variant.instance->formatFamily(),
                            layers[l].spec.t, seed),
                        [&] {
                            return variant.instance->prepare(
                                layers[l]);
                        });
                });
        }
    }

    const CompiledCache::Stats stats = cache.stats();
    const ArtifactStore::DiskStats disk = store.stats();
    std::printf("warmed %s: %llu compiled, %llu already on disk, "
                "%llu files (%.1f KB) total\n",
                store.dir().c_str(),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.disk_hits),
                static_cast<unsigned long long>(disk.files),
                static_cast<double>(disk.bytes) / 1024.0);
    return writeCacheStats(cache_flags, stats);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string command = argv[1];
    try {
        if (command == "list")
            return runList(argc - 2, argv + 2);
        if (command == "run")
            return runRun(argc - 2, argv + 2);
        if (command == "sweep")
            return runSweep(argc - 2, argv + 2);
        if (command == "bench")
            return runBench(argc - 2, argv + 2);
        if (command == "cache")
            return runCache(argc - 2, argv + 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
